"""CI gate: delta evaluation and bound pruning must change nothing.

Usage::

    python ci/check_incremental_parity.py [--jobs 4] [--circuit s298]

Three proofs, each required to demonstrate its mechanism actually fired
(a vacuously-passing run exits nonzero):

1. Annealing under the incremental engine reproduces the ``"fast"``
   engine's accepted-move trajectory, final design and energy exactly
   (same seed) — and the delta path really ran (move counter > 0, at
   least one early-terminated cone).
2. The bound-pruned grid search returns the identical optimum as the
   unpruned scan, serially and on the worker pool — and cells were
   really pruned (PRUNED_CELLS > 0) with fewer total evaluations.
3. The archived bench result (``benchmarks/results/incremental.json``)
   meets its own recorded speedup floors, so a regression cannot hide
   behind a stale artifact.

Exits nonzero with a one-line diagnosis on any divergence.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import NoReturn

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

RESULTS = os.path.join(os.path.dirname(__file__), "..", "benchmarks",
                       "results", "incremental.json")


def fail(message: str) -> NoReturn:
    print(f"check_incremental_parity: {message}", file=sys.stderr)
    raise SystemExit(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--circuit", default="s298")
    args = parser.parse_args()

    from repro.experiments.common import build_problem
    from repro.obs.metrics import MetricsRegistry, use_metrics
    from repro.optimize.annealing import AnnealingSettings, \
        optimize_annealing
    from repro.optimize.heuristic import HeuristicSettings, optimize_joint
    from repro.runtime.pool import multiprocessing_available
    from repro.runtime.supervisor import ParallelPlan

    problem = build_problem(args.circuit, 0.1)

    print(f"[1/3] {args.circuit} annealing: fast vs incremental "
          f"trajectory identity")
    registry = MetricsRegistry()
    results = {}
    for engine in ("fast", "incremental"):
        settings = AnnealingSettings(passes=2, iterations_per_pass=250,
                                     seed=11, engine=engine)
        with use_metrics(registry):
            results[engine] = optimize_annealing(problem, settings=settings)
    fast, delta = results["fast"], results["incremental"]
    if delta.details["trajectory"] != fast.details["trajectory"]:
        fail(f"accepted-move trajectories diverged:\n"
             f"  fast:        {fast.details['trajectory']}\n"
             f"  incremental: {delta.details['trajectory']}")
    if delta.details["accepts_per_pass"] != fast.details["accepts_per_pass"]:
        fail("per-pass accept counts diverged")
    if (delta.design.vdd, delta.design.vth) \
            != (fast.design.vdd, fast.design.vth) \
            or delta.design.widths != fast.design.widths \
            or delta.energy.total != fast.energy.total:
        fail("final designs diverged between fast and incremental")
    moves = registry.counter("engine.incremental.moves")
    if moves == 0:
        fail("the incremental move path never ran; the gate proved nothing")

    print(f"[2/3] {args.circuit} grid search: pruned vs unpruned argmin, "
          f"serial and --jobs {args.jobs}")
    grid = dict(engine="fast", grid_vdd=9, grid_vth=7, refine_iters=6,
                refine_rounds=1)
    plain = optimize_joint(problem, settings=HeuristicSettings(**grid))
    registry = MetricsRegistry()
    with use_metrics(registry):
        pruned = optimize_joint(problem, settings=HeuristicSettings(
            prune=True, **grid))
    if not multiprocessing_available():
        fail("multiprocessing unavailable; the pruned pool leg "
             "cannot run")
    pooled = optimize_joint(problem, settings=HeuristicSettings(
        prune=True, parallel=ParallelPlan(jobs=args.jobs, heartbeat_s=0.1),
        **grid))
    for label, other in (("serial", pruned), (f"jobs={args.jobs}", pooled)):
        if (other.design.vdd, other.design.vth) \
                != (plain.design.vdd, plain.design.vth) \
                or other.design.widths != plain.design.widths \
                or other.energy.total != plain.energy.total:
            fail(f"pruned {label} search found a different optimum: "
                 f"(Vdd={other.design.vdd}, Vth={other.design.vth}, "
                 f"E={other.energy.total}) vs unpruned "
                 f"(Vdd={plain.design.vdd}, Vth={plain.design.vth}, "
                 f"E={plain.energy.total})")
    cut = registry.counter("search.pruned_cells")
    if cut == 0 or pruned.details.get("pruned_cells", 0) == 0:
        fail("no cells were pruned; the gate proved nothing")
    if pruned.evaluations + pruned.details["prune_probes"] \
            >= plain.evaluations:
        fail(f"pruning was not a net saving: "
             f"{pruned.evaluations} + {pruned.details['prune_probes']} "
             f"probes vs {plain.evaluations} unpruned")

    print("[3/3] archived bench result meets its recorded floors")
    if not os.path.exists(RESULTS):
        fail(f"missing archived bench result {RESULTS}; run "
             f"'pytest benchmarks/bench_incremental.py'")
    with open(RESULTS) as handle:
        document = json.load(handle)
    delta_speedup = document.get("delta_speedup", 0.0)
    delta_floor = document.get("delta_floor", 0.0)
    anneal = document.get("anneal_speedups", {})
    anneal_floor = document.get("anneal_floor", 0.0)
    if delta_speedup < delta_floor:
        fail(f"archived delta-move speedup {delta_speedup:.2f}x is below "
             f"the {delta_floor:.1f}x floor")
    if anneal.get("c2670", 0.0) < anneal_floor:
        fail(f"archived c2670 annealing speedup "
             f"{anneal.get('c2670', 0.0):.2f}x is below the "
             f"{anneal_floor:.1f}x floor")

    print(f"incremental parity OK: trajectory identical over {moves} "
          f"delta moves, argmin identical with {cut} cells pruned "
          f"({pruned.evaluations} vs {plain.evaluations} evaluations), "
          f"archived delta speedup {delta_speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
