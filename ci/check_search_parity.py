"""CI gate: the search-strategy seam changes nothing it must not change.

Usage::

    python ci/check_search_parity.py [--jobs 4] [--budget 12]

Four assertions on s27:

1. **Grid identity** — the ``GridStrategy`` seam produces the identical
   design (point, widths, energy, evaluation count) serially and on the
   worker pool, with pruning on and off, exactly like the pre-seam
   monolithic loop.
2. **Adaptive quality** — random, surrogate, and hyperband each land
   within 5% of the reference grid's refined optimum.
3. **Adaptive efficiency** — each spends at least 2x fewer model
   evaluations than the reference grid.
4. **Jobs/resume invariance** — each adaptive strategy is byte-identical
   serial vs pooled, and a run killed mid-search resumes to the
   identical result.

Exits nonzero with a one-line diagnosis on any divergence.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import tempfile
from pathlib import Path
from typing import NoReturn

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

REFERENCE = dict(grid_vdd=13, grid_vth=11, refine_iters=6,
                 refine_rounds=1, engine="fast")
ADAPTIVE = ("random", "surrogate", "hyperband")
TOLERANCE = 0.05


def fail(message: str) -> NoReturn:
    print(f"check_search_parity: {message}", file=sys.stderr)
    raise SystemExit(1)


def _same_design(lhs, rhs) -> bool:
    return (lhs.design.vdd == rhs.design.vdd
            and lhs.design.vth == rhs.design.vth
            and lhs.design.widths == rhs.design.widths
            and lhs.energy.total == rhs.energy.total)


def _same(lhs, rhs) -> bool:
    return _same_design(lhs, rhs) and lhs.evaluations == rhs.evaluations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--budget", type=int, default=12)
    args = parser.parse_args()

    from repro.activity.profiles import uniform_profile
    from repro.errors import RunCancelled
    from repro.netlist.benchmarks import benchmark_circuit
    from repro.optimize.heuristic import HeuristicSettings, optimize_joint
    from repro.optimize.problem import OptimizationProblem
    from repro.runtime.controller import RunController
    from repro.runtime.pool import multiprocessing_available
    from repro.runtime.supervisor import ParallelPlan
    from repro.technology.process import Technology
    from repro.units import MHZ

    if not multiprocessing_available():
        fail("multiprocessing unavailable; the parity gate cannot "
             "exercise the pool")

    network = benchmark_circuit("s27")
    profile = uniform_profile(network, probability=0.5, density=0.1)
    problem = OptimizationProblem.build(Technology.default(), network,
                                        profile, frequency=300 * MHZ)
    plan = ParallelPlan(jobs=args.jobs, heartbeat_s=0.05)

    print(f"[1/4] grid seam identity, serial vs --jobs {args.jobs}, "
          f"pruned and unpruned")
    serial = optimize_joint(problem, settings=HeuristicSettings(**REFERENCE))
    for prune in (False, True):
        pooled = optimize_joint(problem, settings=HeuristicSettings(
            prune=prune, parallel=plan, **REFERENCE))
        # Pruning provably keeps the argmin but skips evaluations, so
        # the unpruned pooled run must be fully identical while the
        # pruned one must agree on the design and spend *less*.
        identical = _same(serial, pooled) if not prune else (
            _same_design(serial, pooled)
            and pooled.evaluations < serial.evaluations)
        if not identical:
            fail(f"grid (prune={prune}) diverged on the pool: "
                 f"{pooled.design.vdd}/{pooled.design.vth} "
                 f"({pooled.evaluations} evals) vs "
                 f"{serial.design.vdd}/{serial.design.vth} "
                 f"({serial.evaluations} evals)")

    print("[2/4] adaptive quality within "
          f"{TOLERANCE:.0%} of the reference optimum")
    results = {}
    for strategy in ADAPTIVE:
        settings = HeuristicSettings(strategy=strategy,
                                     search_budget=args.budget, **REFERENCE)
        results[strategy] = optimize_joint(problem, settings=settings)
        gap = (results[strategy].energy.total - serial.energy.total) \
            / serial.energy.total
        print(f"      {strategy}: {results[strategy].evaluations} evals, "
              f"{gap:+.2%} vs grid")
        if gap > TOLERANCE:
            fail(f"{strategy} landed {gap:+.2%} above the grid optimum "
                 f"(tolerance {TOLERANCE:.0%})")

    print("[3/4] adaptive efficiency: >= 2x fewer evaluations than "
          f"the grid's {serial.evaluations}")
    for strategy in ADAPTIVE:
        if results[strategy].evaluations * 2 > serial.evaluations:
            fail(f"{strategy} used {results[strategy].evaluations} "
                 f"evaluations; bar is {serial.evaluations / 2:.0f}")

    print("[4/4] jobs and resume invariance per adaptive strategy")
    for strategy in ADAPTIVE:
        settings = HeuristicSettings(strategy=strategy,
                                     search_budget=args.budget, **REFERENCE)
        pooled = optimize_joint(problem, settings=dataclasses.replace(
            settings, parallel=plan))
        if not _same(results[strategy], pooled):
            fail(f"{strategy} diverged between serial and --jobs "
                 f"{args.jobs}")
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / f"{strategy}.ckpt"
            box = {}
            count = [0]

            def cancel_soon(event, count=count, box=box):
                count[0] += 1
                if count[0] == 9:
                    box["controller"].cancel()

            controller = RunController(progress=cancel_soon,
                                       checkpoint_path=path)
            box["controller"] = controller
            try:
                optimize_joint(problem, settings=dataclasses.replace(
                    settings, controller=controller))
                fail(f"{strategy}: the mid-search cancel never fired")
            except RunCancelled:
                pass
            resumed = optimize_joint(problem, settings=settings,
                                     resume_from=path)
            if not _same(results[strategy], resumed):
                fail(f"{strategy} resume diverged from the "
                     f"uninterrupted run")
            if resumed.details.get("resumed_corners", 0) <= 0:
                fail(f"{strategy} resume replayed no corners — the "
                     f"kill landed after the search finished")

    print("search parity holds: grid identity, adaptive quality, "
          "2x efficiency, jobs/resume invariance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
