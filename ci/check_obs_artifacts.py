"""CI gate: a traced experiment run must leave parseable artifacts.

Usage::

    python ci/check_obs_artifacts.py obs-artifacts/table1

Given the artifact stem ``<dir>/<name>``, asserts that

* ``<stem>.trace.jsonl`` is strict JSONL whose span records form a
  well-nested tree (every parent_id refers to a recorded span), and
* ``<stem>.metrics.json`` parses and carries nonzero core counters
  (``objective_evaluations``, ``sta_calls``).

Exits nonzero with a one-line diagnosis on any violation, so the CI
step fails loudly instead of archiving broken telemetry.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import NoReturn

CORE_COUNTERS = ("objective_evaluations", "sta_calls")


def fail(message: str) -> NoReturn:
    print(f"check_obs_artifacts: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_trace(path: Path) -> int:
    if not path.exists():
        fail(f"{path}: missing trace file")
    span_ids = set()
    parents = []
    spans = 0
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"{path}:{lineno}: invalid JSON ({exc.msg})")
        if record.get("type") != "span":
            continue
        spans += 1
        span_ids.add(record["span_id"])
        if record.get("parent_id") is not None:
            parents.append((lineno, record["parent_id"]))
        if record.get("wall_s") is None:
            fail(f"{path}:{lineno}: span without wall time")
    if not spans:
        fail(f"{path}: no span records")
    for lineno, parent in parents:
        if parent not in span_ids:
            fail(f"{path}:{lineno}: dangling parent_id {parent}")
    return spans


def check_metrics(path: Path) -> dict:
    if not path.exists():
        fail(f"{path}: missing metrics file")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        fail(f"{path}: invalid JSON ({exc.msg})")
    counters = payload.get("counters")
    if not isinstance(counters, dict):
        fail(f"{path}: no counters object")
    for name in CORE_COUNTERS:
        if not counters.get(name):
            fail(f"{path}: core counter {name!r} missing or zero")
    return counters


def main(argv: list) -> int:
    if len(argv) != 1:
        fail("usage: check_obs_artifacts.py <artifact-stem>")
    stem = Path(argv[0])
    spans = check_trace(stem.with_suffix(stem.suffix + ".trace.jsonl"))
    counters = check_metrics(stem.with_suffix(stem.suffix + ".metrics.json"))
    print(f"ok: {spans} spans, "
          + ", ".join(f"{name}={counters[name]}" for name in CORE_COUNTERS))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
