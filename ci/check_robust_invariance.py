"""CI gate: the statistical objective changes nothing it must not change.

Usage::

    python ci/check_robust_invariance.py [--jobs 4]

Four assertions on s27 with the default robust config (p95, 95% yield
target, 40 samples, z=1 guard band):

1. **Jobs invariance** — a robust search is byte-identical serial and
   on a worker pool, including every per-corner Monte-Carlo statistic
   (the counter-seeded sample streams make the estimate a pure function
   of ``(design, config)``).
2. **Resume identity** — a robust run cancelled mid-search resumes
   from its checkpoint to the identical result, with the per-corner
   statistics restored from the checkpoint instead of re-sampled.
3. **Statistical identity separation** — a nominal checkpoint can
   never resume a robust search (and vice versa): the resolved robust
   config joins the checkpoint fingerprint.
4. **Degradation labeling** — a robust search over a fault-injected
   model quarantines the poisoned samples and returns a labeled
   ``DegradedResult``; it never crashes and never passes silently.

Exits nonzero with a one-line diagnosis on any divergence.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path
from typing import NoReturn

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

GRID = dict(grid_vdd=9, grid_vth=7, refine_iters=4, refine_rounds=1,
            engine="fast")


def fail(message: str) -> NoReturn:
    print(f"check_robust_invariance: {message}", file=sys.stderr)
    raise SystemExit(1)


def identity(result) -> str:
    return json.dumps({
        "vdd": result.design.vdd,
        "vth": result.design.vth,
        "widths": dict(result.design.widths),
        "energy": result.energy.total,
        "evaluations": result.evaluations,
        "robust": result.details["robust"],
    }, sort_keys=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args()

    from repro.activity.profiles import uniform_profile
    from repro.context import CircuitContext
    from repro.engine import use_engine
    from repro.errors import CheckpointError, RunCancelled
    from repro.netlist.benchmarks import benchmark_circuit
    from repro.optimize.heuristic import HeuristicSettings, optimize_joint
    from repro.optimize.problem import OptimizationProblem
    from repro.robust import RobustConfig
    from repro.runtime.controller import RunController
    from repro.runtime.fallback import DegradedResult
    from repro.runtime.faults import FaultInjector, FaultSpec
    from repro.runtime.pool import multiprocessing_available
    from repro.runtime.supervisor import ParallelPlan
    from repro.technology.process import Technology
    from repro.units import MHZ

    if not multiprocessing_available():
        fail("multiprocessing unavailable; the invariance gate cannot "
             "exercise the pool")

    network = benchmark_circuit("s27")
    profile = uniform_profile(network, probability=0.5, density=0.1)
    problem = OptimizationProblem(
        ctx=CircuitContext(Technology.default(), network, profile),
        frequency=300 * MHZ)
    config = RobustConfig()

    def settings(**overrides):
        merged = dict(GRID, robust=config)
        merged.update(overrides)
        return HeuristicSettings(**merged)

    # 1. Jobs invariance, byte for byte including the robust stats.
    serial = optimize_joint(problem, settings=settings())
    pooled = optimize_joint(problem, settings=settings(
        parallel=ParallelPlan(jobs=args.jobs, heartbeat_s=0.05)))
    if identity(serial) != identity(pooled):
        fail(f"robust search diverges serial vs --jobs {args.jobs}")
    print(f"jobs invariance: serial == jobs={args.jobs} "
          f"({serial.details['robust']['corners']} corners, "
          f"{serial.details['robust']['samples']} samples)")

    # 2. Resume identity after a mid-search cancellation.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "robust.ckpt"
        box = {}
        events = []

        def cancel_after_five(event):
            events.append(event)
            if len(events) == 5:
                box["controller"].cancel()

        controller = RunController(progress=cancel_after_five,
                                   checkpoint_path=path)
        box["controller"] = controller
        try:
            optimize_joint(problem, settings=settings(
                controller=controller))
            fail("cancellation never fired; the resume leg tested nothing")
        except RunCancelled:
            pass
        if not path.exists():
            fail("no checkpoint written before the cancellation")
        resumed = optimize_joint(problem, settings=settings(),
                                 resume_from=path)
        if identity(resumed) != identity(serial):
            fail("resumed robust search diverges from the uninterrupted "
                 "run")
        if resumed.details["resumed_corners"] <= 0:
            fail("resume replayed no corners; the identity was vacuous")
        print(f"resume identity: {resumed.details['resumed_corners']} "
              f"corners replayed, result identical")

        # 3. A nominal checkpoint must refuse a robust resume.
        nominal_path = Path(tmp) / "nominal.ckpt"
        optimize_joint(problem, settings=HeuristicSettings(
            **GRID, controller=RunController(
                checkpoint_path=nominal_path)))
        try:
            optimize_joint(problem, settings=settings(),
                           resume_from=nominal_path)
            fail("a robust search resumed from a nominal checkpoint")
        except CheckpointError:
            print("statistical identity: nominal checkpoint refused")

    # 4. Fault-plan degradation labeling (scalar engine: faults live at
    #    the scalar model seams).
    plan = [FaultSpec(seam="energy", kind="nan", at_call=40, count=60)]
    with use_engine("scalar"), FaultInjector(plan) as injector:
        degraded = optimize_joint(problem, settings=settings(
            engine="scalar"))
    if not injector.triggered:
        fail("fault plan never fired; the degradation leg tested nothing")
    if not isinstance(degraded, DegradedResult):
        fail("fault-injected robust search returned an unlabeled result")
    if degraded.degradation.get("stage") != "robust_estimate":
        fail(f"unexpected degradation stage: {degraded.degradation}")
    if degraded.details["robust"]["samples_quarantined"] <= 0:
        fail("no samples quarantined despite the armed fault plan")
    print(f"degradation labeling: "
          f"{degraded.details['robust']['samples_quarantined']} samples "
          f"quarantined, result labeled degraded")

    print("check_robust_invariance: all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
