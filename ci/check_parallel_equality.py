"""CI gate: the sharded pool must be jobs-invariant under crashes.

Usage::

    python ci/check_parallel_equality.py [--jobs 2] [--samples 32]

Runs Table 1 and a Monte-Carlo sweep twice — serially, then on the
supervised worker pool with a crash injected into the first task
(``REPRO_POOL_CRASH_TASKS=first``) — and asserts the artifacts are
**identical**. Also asserts the crash actually happened (a worker was
respawned and the task retried): a passing run must prove the recovery
path executed, not merely that nothing went wrong.

Exits nonzero with a one-line diagnosis on any divergence.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import NoReturn

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


def fail(message: str) -> NoReturn:
    print(f"check_parallel_equality: {message}", file=sys.stderr)
    raise SystemExit(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--samples", type=int, default=32,
                        help="Monte-Carlo samples (default 32)")
    args = parser.parse_args()

    from repro.analysis.montecarlo import monte_carlo_variation
    from repro.experiments.table1 import run_table1
    from repro.obs.metrics import MetricsRegistry, use_metrics
    from repro.optimize.baseline import optimize_fixed_vth
    from repro.runtime.pool import multiprocessing_available
    from repro.runtime.supervisor import ParallelPlan, use_parallel

    if not multiprocessing_available():
        fail("multiprocessing unavailable in this environment; the "
             "equality gate cannot exercise the pool")

    plan = ParallelPlan(jobs=args.jobs, retries=2, heartbeat_s=0.1)
    os.environ["REPRO_POOL_CRASH_TASKS"] = "first"
    registry = MetricsRegistry()

    print(f"[1/2] table1: serial vs --jobs {args.jobs} with a "
          f"SIGKILLed worker")
    serial_rows = run_table1()
    with use_metrics(registry), use_parallel(plan):
        pooled_rows = run_table1()
    if pooled_rows != serial_rows:
        for serial, pooled in zip(serial_rows, pooled_rows):
            if serial != pooled:
                fail(f"table1 row diverged:\n  serial: {serial}\n"
                     f"  pooled: {pooled}")
        fail("table1 artifacts diverged")

    print(f"[2/2] monte-carlo ({args.samples} samples): serial vs "
          f"--jobs {args.jobs} with a SIGKILLed worker")
    from repro.experiments.common import build_problem

    problem = build_problem("s298", 0.1)
    design = optimize_fixed_vth(problem).design
    serial_mc = monte_carlo_variation(problem, design,
                                      samples=args.samples, seed=0)
    with use_metrics(registry), use_parallel(plan):
        pooled_mc = monte_carlo_variation(problem, design,
                                          samples=args.samples, seed=0)
    if pooled_mc != serial_mc:
        fail(f"monte-carlo outcome diverged:\n  serial: {serial_mc}\n"
             f"  pooled: {pooled_mc}")

    counters = registry.counters()
    respawns = counters.get("pool.workers.respawned", 0)
    retried = counters.get("pool.tasks.retried", 0)
    if respawns < 2 or retried < 2:
        fail(f"crash injection did not fire in both runs "
             f"(respawns={respawns}, retried={retried}); the gate "
             f"proved nothing")

    print(f"parallel equality OK: {len(serial_rows)} table1 rows and "
          f"{args.samples} MC samples identical through "
          f"{respawns} worker crash(es), {retried} retried task(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
