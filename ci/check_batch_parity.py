"""CI gate: the batched engine is a pure execution detail.

Usage::

    python ci/check_batch_parity.py [--jobs 4]

Five assertions on s27, comparing ``engine="batch"`` against
``engine="fast"`` (the looped array engine the batch axis vectorizes):

1. **Grid identity** — the grid search lands on the identical design
   (point, widths, energy, evaluation count), and the checkpoint files
   the two runs write are **byte-identical** (the batch engine
   fingerprints as ``"fast"``, so the files are interchangeable).
2. **Jobs invariance** — the same holds at ``--jobs N`` on the worker
   pool, for both engines, against the serial reference.
3. **Serve cache keys** — ``request_fingerprint`` digests (and the
   checkpoint fingerprints they extend) are equal for the two engines:
   a cached fast result satisfies a batch request and vice versa.
4. **Robust + Monte-Carlo identity** — a robust (yield-constrained)
   search and a Monte-Carlo sweep produce identical outcomes through
   the batched die/sample stages.
5. **Benchmark floors** — ``BENCH_batch.json`` is present, well formed,
   and (when it was measured on >= 2 cores) meets the speedup floors it
   declares.

The gate also proves the batched path actually ran (``engine.batch.*``
counters fired) — parity of a fallback loop would prove nothing.

Exits nonzero with a one-line diagnosis on any divergence.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import tempfile
from pathlib import Path
from typing import NoReturn

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_batch.json"

REFERENCE = dict(grid_vdd=13, grid_vth=11, refine_iters=6, refine_rounds=1)


def fail(message: str) -> NoReturn:
    print(f"check_batch_parity: {message}", file=sys.stderr)
    raise SystemExit(1)


def _same(lhs, rhs) -> bool:
    return (lhs.design.vdd == rhs.design.vdd
            and lhs.design.vth == rhs.design.vth
            and lhs.design.widths == rhs.design.widths
            and lhs.energy.total == rhs.energy.total
            and lhs.evaluations == rhs.evaluations)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args()

    from repro.activity.profiles import uniform_profile
    from repro.analysis.montecarlo import monte_carlo_variation
    from repro.netlist.benchmarks import benchmark_circuit
    from repro.obs.instrument import BATCH_CALLS
    from repro.obs.metrics import MetricsRegistry, use_metrics
    from repro.optimize.heuristic import HeuristicSettings, optimize_joint
    from repro.optimize.problem import OptimizationProblem
    from repro.robust.config import RobustConfig
    from repro.runtime.controller import RunController
    from repro.runtime.pool import multiprocessing_available
    from repro.runtime.supervisor import ParallelPlan
    from repro.serve.jobs import JobRequest, request_fingerprint, \
        search_fingerprint_for
    from repro.technology.process import Technology
    from repro.units import MHZ

    network = benchmark_circuit("s27")
    profile = uniform_profile(network, probability=0.5, density=0.1)
    problem = OptimizationProblem.build(Technology.default(), network,
                                        profile, frequency=300 * MHZ)

    def run(engine, *, checkpoint=None, registry=None, **overrides):
        settings = HeuristicSettings(engine=engine, **REFERENCE, **overrides)
        if checkpoint is not None:
            settings = dataclasses.replace(settings, controller=RunController(
                checkpoint_path=checkpoint))
        with use_metrics(registry or MetricsRegistry()):
            return optimize_joint(problem, settings=settings)

    print("[1/5] grid identity and checkpoint bytes, fast vs batch")
    batch_metrics = MetricsRegistry()
    with tempfile.TemporaryDirectory() as tmp:
        fast_ckpt = Path(tmp) / "fast.ckpt"
        batch_ckpt = Path(tmp) / "batch.ckpt"
        fast = run("fast", checkpoint=fast_ckpt)
        batch = run("batch", checkpoint=batch_ckpt, registry=batch_metrics)
        if not _same(fast, batch):
            fail(f"grid diverged: batch {batch.design.vdd}/{batch.design.vth}"
                 f" ({batch.evaluations} evals) vs fast "
                 f"{fast.design.vdd}/{fast.design.vth} "
                 f"({fast.evaluations} evals)")
        if fast_ckpt.read_bytes() != batch_ckpt.read_bytes():
            fail("checkpoint files differ between fast and batch — the "
                 "engines are not interchangeable on resume")
    if batch_metrics.counter(BATCH_CALLS) < 1:
        fail("the batch run never entered a batched kernel "
             f"({BATCH_CALLS} == 0); parity of the fallback loop proves "
             "nothing")

    print(f"[2/5] jobs invariance at --jobs {args.jobs}, both engines")
    if not multiprocessing_available():
        fail("multiprocessing unavailable; the parity gate cannot "
             "exercise the pool")
    plan = ParallelPlan(jobs=args.jobs, heartbeat_s=0.05)
    for engine in ("fast", "batch"):
        pooled = run(engine, parallel=plan)
        if not _same(fast, pooled):
            fail(f"{engine} diverged between serial and --jobs "
                 f"{args.jobs}")

    print("[3/5] serve cache keys equal for fast and batch requests")
    requests = {engine: JobRequest(circuit="s27", engine=engine,
                                   **REFERENCE)
                for engine in ("fast", "batch")}
    prints = {engine: search_fingerprint_for(request)
              for engine, request in requests.items()}
    if prints["fast"] != prints["batch"]:
        fail(f"checkpoint fingerprints differ: {prints}")
    digests = {engine: request_fingerprint(request)[1]
               for engine, request in requests.items()}
    if digests["fast"] != digests["batch"]:
        fail(f"serve cache keys differ: {digests}")

    print("[4/5] robust search and Monte-Carlo identity")
    # 10 samples cap the Wilson z=1 lower bound at ~0.90, so the yield
    # target must sit below that for the tiny CI budget to be feasible.
    robust = RobustConfig(samples=10, cull_samples=4, seed=3,
                          yield_target=0.80)
    with tempfile.TemporaryDirectory() as tmp:
        fast_ckpt = Path(tmp) / "fast.ckpt"
        batch_ckpt = Path(tmp) / "batch.ckpt"
        fast_r = run("fast", robust=robust, checkpoint=fast_ckpt)
        batch_r = run("batch", robust=robust, checkpoint=batch_ckpt)
        if not _same(fast_r, batch_r):
            fail("robust search diverged between fast and batch")
        if fast_ckpt.read_bytes() != batch_ckpt.read_bytes():
            fail("robust checkpoints differ — per-corner robust stats "
                 "are not batch-invariant")
    fast_mc = monte_carlo_variation(problem, fast.design, samples=24,
                                    seed=0, engine="fast")
    batch_mc = monte_carlo_variation(problem, fast.design, samples=24,
                                     seed=0, engine="batch")
    if fast_mc != batch_mc:
        fail(f"monte-carlo diverged:\n  fast:  {fast_mc}\n"
             f"  batch: {batch_mc}")

    print("[5/5] BENCH_batch.json floors")
    if not BENCH_PATH.exists():
        fail(f"{BENCH_PATH} missing — run benchmarks/bench_batch.py")
    bench = json.loads(BENCH_PATH.read_text())
    for key in ("grid_speedup", "robust_speedup", "grid_speedup_floor",
                "robust_speedup_floor", "cores"):
        if key not in bench:
            fail(f"BENCH_batch.json missing {key!r}")
    grid_x, robust_x = bench["grid_speedup"], bench["robust_speedup"]
    if bench["cores"] >= 2:
        if grid_x < bench["grid_speedup_floor"]:
            fail(f"grid speedup {grid_x:.2f}x is below the "
                 f"{bench['grid_speedup_floor']}x floor")
        if robust_x < bench["robust_speedup_floor"]:
            fail(f"robust speedup {robust_x:.2f}x is below the "
                 f"{bench['robust_speedup_floor']}x floor")
    elif min(grid_x, robust_x) <= 1.0:
        fail(f"batching is not faster than the loop even on a loaded "
             f"single-core host (grid {grid_x:.2f}x, robust "
             f"{robust_x:.2f}x)")

    print(f"batch parity holds: identical grid/robust/MC results, "
          f"byte-identical checkpoints, equal cache keys, "
          f"grid {grid_x:.2f}x / robust {robust_x:.2f}x "
          f"(floors {'enforced' if bench['cores'] >= 2 else 'waived on 1 core'})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
