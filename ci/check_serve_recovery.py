"""CI gate: the serve daemon must survive a SIGKILL mid-job.

Usage::

    python ci/check_serve_recovery.py [--root DIR] [--circuit s298]

Starts the serve daemon, submits a multi-second job through the file
spool, SIGKILLs the daemon's process group once the solve is running
and has flushed a checkpoint, restarts it, and asserts:

* every accepted job reaches a terminal state (``DONE``),
* recovery actually executed (``serve.jobs.recovered >= 1`` — a run
  where the kill happened to land after the solve finished proves
  nothing and fails),
* resubmitting the identical request is served from the result cache
  (``serve.cache.hits >= 1``) with byte-identical payload.

Exits nonzero with a one-line diagnosis on any divergence.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import NoReturn

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


def fail(message: str) -> NoReturn:
    print(f"check_serve_recovery: {message}", file=sys.stderr)
    raise SystemExit(1)


def start_daemon(root: Path, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep \
        + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(root), *extra],
        env=env, start_new_session=True)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if (root / "daemon.json").exists() or process.poll() is not None:
            break
        time.sleep(0.05)
    if process.poll() is not None:
        fail(f"daemon exited during startup (rc={process.returncode})")
    return process


def kill_daemon(process: subprocess.Popen) -> None:
    if process.poll() is None:
        try:
            os.killpg(os.getpgid(process.pid), signal.SIGKILL)
        except ProcessLookupError:
            pass
    process.wait(timeout=30)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default="serve-smoke",
                        help="service root directory (default serve-smoke)")
    parser.add_argument("--circuit", default="s298")
    parser.add_argument("--grid", type=int, nargs=2, default=(25, 20),
                        metavar=("VDD", "VTH"),
                        help="search grid; big enough that the SIGKILL "
                             "lands mid-solve (default 25 20)")
    args = parser.parse_args()

    from repro.serve.client import (read_job_status, submit_request,
                                    wait_for_reply, wait_for_terminal)
    from repro.serve.jobs import TERMINAL_STATES, JobRequest

    root = Path(args.root)
    root.mkdir(parents=True, exist_ok=True)
    request = JobRequest(circuit=args.circuit, frequency_mhz=100.0,
                         grid_vdd=args.grid[0], grid_vth=args.grid[1])

    print(f"[1/3] daemon up; submitting {args.circuit} on a "
          f"{args.grid[0]}x{args.grid[1]} grid, then SIGKILL mid-solve")
    daemon = start_daemon(root)
    try:
        ticket = submit_request(root, request)
        reply = wait_for_reply(root, ticket, timeout_s=60)
        if reply.get("status") != "accepted":
            fail(f"submission not accepted: {reply}")
        job_id = reply["job_id"]
        checkpoint = root / "checkpoints" / f"{job_id}.ckpt"
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            status = read_job_status(root, job_id)
            if status and status["state"] == "RUNNING" \
                    and checkpoint.exists():
                break
            time.sleep(0.05)
        else:
            fail("job never reached RUNNING with a flushed checkpoint")
    finally:
        kill_daemon(daemon)

    status = read_job_status(root, job_id)
    if status["state"] in TERMINAL_STATES:
        fail(f"kill landed after the solve finished ({status['state']}); "
             f"the gate proved nothing — enlarge --grid")

    print("[2/3] daemon restarted; waiting for journaled recovery")
    daemon = start_daemon(root, "--max-jobs", "1", "--max-idle", "60")
    try:
        status = wait_for_terminal(root, job_id, timeout_s=300)
    finally:
        daemon.wait(timeout=120)
        kill_daemon(daemon)
    if status["state"] != "DONE":
        fail(f"recovered job ended {status['state']}, expected DONE: "
             f"{status.get('detail')}")
    metrics = json.loads((root / "metrics.json").read_text())
    recovered = metrics["counters"].get("serve.jobs.recovered", 0)
    if recovered < 1:
        fail("serve.jobs.recovered is 0; recovery never executed")
    statuses = [json.loads(path.read_text())
                for path in (root / "jobs").glob("*.json")]
    non_terminal = [s["job_id"] for s in statuses
                    if s["state"] not in TERMINAL_STATES]
    if non_terminal:
        fail(f"jobs left non-terminal after recovery: {non_terminal}")
    if len(statuses) != 1:
        fail(f"expected exactly 1 job after recovery, found "
             f"{[s['job_id'] for s in statuses]}")
    first_bytes = (root / "results" / f"{job_id}.json").read_bytes()

    print("[3/3] resubmitting the identical request; expecting a "
          "cache hit")
    daemon = start_daemon(root, "--max-jobs", "1", "--max-idle", "60")
    try:
        ticket = submit_request(root, request)
        reply = wait_for_reply(root, ticket, timeout_s=60)
        if reply.get("status") != "accepted":
            fail(f"resubmission not accepted: {reply}")
        status = wait_for_terminal(root, reply["job_id"], timeout_s=120)
    finally:
        daemon.wait(timeout=120)
        kill_daemon(daemon)
    if status["state"] != "DONE" or not status["detail"].get("cached"):
        fail(f"resubmission was not a cache hit: {status}")
    metrics = json.loads((root / "metrics.json").read_text())
    hits = metrics["counters"].get("serve.cache.hits", 0)
    if hits < 1:
        fail(f"serve.cache.hits = {hits}; the cache never served")
    hit_bytes = (root / "results"
                 / f"{reply['job_id']}.json").read_bytes()
    if hit_bytes != first_bytes:
        fail("cache hit payload differs from the recovered solve")

    print(f"serve recovery OK: job {job_id} survived SIGKILL "
          f"({recovered} recovered), resubmission served from cache "
          f"({hits} hit(s)), payloads byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
