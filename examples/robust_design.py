#!/usr/bin/env python
"""Scenario: designing for process variation and clock skew.

A design team wants the paper's savings but must survive fab reality:
threshold voltages vary from die to die and the clock tree has skew.
This example walks the two §5 robustness analyses on one circuit:

1. worst-case Vth tolerance (Figure 2a): optimize with slow-corner delay
   and leaky-corner power, watch savings erode with tolerance;
2. clock-skew margin (eq. 1's ``b`` factor): shrink the usable cycle and
   watch the optimizer trade supply voltage for margin;
3. the payoff direction (Figure 2b): if the architecture can tolerate a
   slower clock, savings climb toward the paper's ~25x.

Run with::

    python examples/robust_design.py [circuit]
"""

from __future__ import annotations

import sys

from repro.activity import uniform_profile
from repro.analysis.report import format_table
from repro.analysis.sweeps import sweep_cycle_slack, sweep_vth_tolerance
from repro.netlist import benchmark_circuit
from repro.optimize import OptimizationProblem, optimize_joint
from repro.technology import Technology
from repro.units import MHZ, NS


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "s298"
    tech = Technology.default()
    network = benchmark_circuit(circuit)
    profile = uniform_profile(network, probability=0.5, density=0.1)
    problem = OptimizationProblem.build(tech, network, profile,
                                        frequency=300 * MHZ)

    print(f"Robustness analysis for {circuit} at 300 MHz\n")

    tolerance_points = sweep_vth_tolerance(problem,
                                           (0.0, 0.1, 0.2, 0.3))
    print(format_table(
        headers=["Vth tolerance", "worst-case savings", "Vdd (V)",
                 "nominal Vth (mV)"],
        rows=[[f"±{point.tolerance * 100:.0f}%", f"{point.savings:.1f}x",
               f"{point.vdd:.2f}", f"{point.vth_nominal * 1000:.0f}"]
              for point in tolerance_points],
        title="Process variation (Figure 2a)"))
    print()

    skew_rows = []
    for skew in (1.0, 0.9, 0.8):
        skewed = OptimizationProblem(ctx=problem.ctx,
                                     frequency=problem.frequency,
                                     skew_factor=skew)
        result = optimize_joint(skewed)
        skew_rows.append([f"{(1 - skew) * 100:.0f}%",
                          f"{result.design.vdd:.2f}",
                          f"{result.timing.critical_delay / NS:.2f}",
                          f"{result.total_energy * 1e15:.1f}"])
    print(format_table(
        headers=["skew margin", "Vdd (V)", "critical delay (ns)",
                 "energy/cycle (fJ)"],
        rows=skew_rows,
        title="Clock-skew margin (eq. 1's b factor)"))
    print()

    slack_points = sweep_cycle_slack(problem, (1.0, 1.5, 2.0, 3.0))
    print(format_table(
        headers=["slack", "cycle (ns)", "savings", "Vdd (V)"],
        rows=[[f"{point.slack_factor:.1f}x",
               f"{point.cycle_time / NS:.1f}",
               f"{point.savings:.1f}x", f"{point.vdd:.2f}"]
              for point in slack_points],
        title="Cycle-time slack payoff (Figure 2b)"))


if __name__ == "__main__":
    main()
