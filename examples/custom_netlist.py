#!/usr/bin/env python
"""Scenario: optimizing your own netlist from a ``.bench`` file.

A downstream user rarely starts from our embedded benchmarks — they have
their own gate-level netlist. This example shows the full path:

1. parse an ISCAS ``.bench`` netlist (flip-flops are cut into the
   combinational core automatically),
2. lint it for structural problems,
3. estimate internal activities with Najm transition densities and
   cross-check the estimate with Monte-Carlo logic simulation,
4. jointly optimize, then inspect the widest/hottest gates.

Run with::

    python examples/custom_netlist.py [path/to/netlist.bench]

Without an argument it writes and uses a small demo netlist.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.activity import estimate_activity, simulate_activity, uniform_profile
from repro.analysis.report import format_table
from repro.netlist import parse_bench_file
from repro.netlist.validate import lint
from repro.optimize import OptimizationProblem, optimize_joint
from repro.technology import Technology
from repro.units import MHZ, NS

DEMO_BENCH = """
# demo: a tiny arbiter-ish combinational core
INPUT(req0)
INPUT(req1)
INPUT(mask)
INPUT(mode)
OUTPUT(grant0)
OUTPUT(grant1)
n_mask = NOT(mask)
both   = AND(req0, req1)
prio   = DFF(grant0)
sel    = XOR(mode, prio)
g0_raw = AND(req0, n_mask)
g1_raw = AND(req1, n_mask)
steer0 = NAND(both, sel)
grant0 = AND(g0_raw, steer0)
steer1 = NOT(steer0)
grant1 = NOR(g1_raw, steer1)
"""


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        path = Path(tempfile.gettempdir()) / "repro_demo.bench"
        path.write_text(DEMO_BENCH)
        print(f"(no netlist given — using demo written to {path})\n")

    network = parse_bench_file(path)
    print(f"Parsed {network.name}: {network.gate_count} gates, "
          f"{len(network.inputs)} inputs (flip-flops cut), "
          f"depth {network.depth}")
    issues = lint(network)
    if issues:
        print(f"lint: {len(issues)} issue(s), e.g. {issues[0]}")
    else:
        print("lint: clean")

    profile = uniform_profile(network, probability=0.5, density=0.2)
    estimate = estimate_activity(network, profile)
    measured = simulate_activity(network, profile, cycles=4096, seed=1)
    rows = []
    for name in network.outputs:
        rows.append([name, f"{estimate.density(name):.3f}",
                     f"{measured.density(name):.3f}"])
    print()
    print(format_table(
        headers=["output", "Najm estimate", "Monte-Carlo"],
        rows=rows,
        title="Transition densities at the primary outputs"))

    tech = Technology.default()
    problem = OptimizationProblem.build(tech, network, profile,
                                        frequency=300 * MHZ)
    result = optimize_joint(problem)
    print(f"\nOptimized: Vdd = {result.design.vdd:.2f} V, "
          f"Vth = {result.design.distinct_vths()[0] * 1000:.0f} mV, "
          f"critical delay {result.timing.critical_delay / NS:.2f} ns, "
          f"total {result.total_energy * 1e15:.2f} fJ/cycle")
    widest = sorted(result.design.widths.items(),
                    key=lambda item: -item[1])[:5]
    print("Widest gates (speed-critical):",
          ", ".join(f"{name} (w={width:.1f})" for name, width in widest))


if __name__ == "__main__":
    main()
