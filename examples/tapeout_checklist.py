#!/usr/bin/env python
"""Scenario: from optimizer output to a tapeout-ready design.

The joint optimum is a continuous-mathematics object; shipping it means
passing the manufacturability gauntlet. This example walks the chain the
extension modules provide:

1. optimize (Procedures 1 + 2),
2. snap widths to a standard-cell drive ladder and re-verify timing,
3. check the neglected short-circuit component stays negligible,
4. Monte-Carlo the threshold variation for timing yield; if yield is
   short, switch to the worst-case-robust (Figure 2a) design,
5. program the Figure 1 back-bias rails that realize the chosen Vth.

Run with::

    python examples/tapeout_checklist.py [circuit]
"""

from __future__ import annotations

import sys

from repro.activity import uniform_profile
from repro.analysis.montecarlo import (
    VariationStatistics,
    monte_carlo_variation,
)
from repro.netlist import benchmark_circuit
from repro.optimize import OptimizationProblem, optimize_joint
from repro.optimize.discretize import discretize_result
from repro.optimize.variation import VariationModel, optimize_with_variation
from repro.power.short_circuit import (
    total_short_circuit_energy,
    transition_times_from_budgets,
)
from repro.technology import Technology, bias_for_target_vth
from repro.units import MHZ, NS


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "s298"
    tech = Technology.default()
    network = benchmark_circuit(circuit)
    profile = uniform_profile(network, probability=0.5, density=0.1)
    problem = OptimizationProblem.build(tech, network, profile,
                                        frequency=300 * MHZ)

    print(f"Tapeout checklist for {circuit} @ 300 MHz\n")

    result = optimize_joint(problem)
    vth = float(result.design.distinct_vths()[0])
    print(f"[1] optimized: Vdd={result.design.vdd:.2f} V, "
          f"Vth={vth * 1000:.0f} mV, "
          f"E={result.total_energy * 1e15:.1f} fJ/cycle, "
          f"delay={result.timing.critical_delay / NS:.2f} ns")

    outcome = discretize_result(problem, result)
    print(f"[2] discrete sizing (sqrt2 ladder, {outcome.grid_size} sizes): "
          f"energy penalty {100 * (outcome.energy_penalty - 1):.1f} %, "
          f"timing {'OK' if outcome.discrete.feasible else 'VIOLATED'}")
    design = outcome.discrete.design

    budgets = problem.budgets()
    times = transition_times_from_budgets(problem.ctx, budgets.budgets)
    sc = total_short_circuit_energy(problem.ctx, design.vdd, design.vth,
                                    design.widths, times)
    print(f"[3] short-circuit check: "
          f"{100 * sc.fraction_of(outcome.discrete.energy.dynamic):.1f} % "
          f"of switching energy (paper neglects it; must stay small)")

    stats = VariationStatistics(sigma_die=0.012, sigma_within=0.008)
    mc = monte_carlo_variation(problem, design, statistics=stats,
                               samples=150, seed=2)
    print(f"[4] statistical Vth variation "
          f"(sigma {stats.sigma_die * 1000:.0f}/{stats.sigma_within * 1000:.0f} mV): "
          f"timing yield {mc.timing_yield * 100:.0f} %, "
          f"median E {mc.energy_percentile(0.5) * 1e15:.1f} fJ")
    if mc.timing_yield < 0.99:
        robust = optimize_with_variation(problem, VariationModel(0.15))
        robust_discrete = discretize_result(problem, robust).discrete
        mc_robust = monte_carlo_variation(problem, robust_discrete.design,
                                          statistics=stats, samples=150,
                                          seed=2)
        vth = float(robust.design.distinct_vths()[0])
        print(f"    -> switching to the Fig 2a-robust design "
              f"(Vdd={robust.design.vdd:.2f} V, Vth={vth * 1000:.0f} mV): "
              f"yield {mc_robust.timing_yield * 100:.0f} %, "
              f"E {robust_discrete.total_energy * 1e15:.1f} fJ")
        design = robust_discrete.design

    if vth >= tech.vth_natural:
        bias = bias_for_target_vth(tech, vth)
        print(f"[5] Figure 1 back-bias programming: "
              f"V_SUBSTRATE = -{bias:.2f} V, "
              f"V_NWELL = Vdd + {bias:.2f} V realizes "
              f"Vth = {vth * 1000:.0f} mV from the "
              f"{tech.vth_natural * 1000:.0f} mV natural device")
    else:
        print(f"[5] target Vth below the natural device: needs an "
              f"implant tweak instead of back-bias")

    print("\nchecklist complete.")


if __name__ == "__main__":
    main()
