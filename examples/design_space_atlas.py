#!/usr/bin/env python
"""Scenario: mapping the whole (Vdd, Vth) design space of a circuit.

Before trusting an optimizer, a designer wants to *see* the landscape it
searches: where the feasible region lives, how sharp the minimum is, and
how close the feasibility cliff sits to the optimum. This example scans
the (Vdd, Vth) energy surface of a circuit (each point fully re-sized by
the Procedure 2 inner loop), prints an ASCII atlas, and exports the raw
surface plus the Figure 2 series as CSV for plotting.

Run with::

    python examples/design_space_atlas.py [circuit] [out_dir]
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

from repro.activity import uniform_profile
from repro.analysis.export import write_csv
from repro.analysis.sweeps import scan_energy_surface
from repro.netlist import benchmark_circuit
from repro.optimize import OptimizationProblem, optimize_joint
from repro.technology import Technology
from repro.units import MHZ

GLYPHS = " .:-=+*#%@"


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "s298"
    out_dir = Path(sys.argv[2] if len(sys.argv) > 2 else "atlas_out")

    tech = Technology.default()
    network = benchmark_circuit(circuit)
    profile = uniform_profile(network, probability=0.5, density=0.1)
    problem = OptimizationProblem.build(tech, network, profile,
                                        frequency=300 * MHZ)

    vdd_values = [round(0.2 + 0.155 * i, 3) for i in range(21)]
    vth_values = [round(0.1 + 0.05 * i, 3) for i in range(13)]
    print(f"Scanning {len(vdd_values)}x{len(vth_values)} design points "
          f"of {circuit} (every point fully re-sized)...")
    surface = scan_energy_surface(problem, vdd_values, vth_values)

    finite = [value for value in surface.values() if math.isfinite(value)]
    low, high = min(finite), max(finite)
    optimum = optimize_joint(problem)

    print(f"\nEnergy atlas ('X' = infeasible, darker = more energy; "
          f"optimum at Vdd={optimum.design.vdd:.2f} V, "
          f"Vth={float(optimum.design.distinct_vths()[0]) * 1000:.0f} mV)\n")
    header = "Vdd\\Vth " + " ".join(f"{vth:4.2f}" for vth in vth_values)
    print(header)
    for vdd in reversed(vdd_values):
        cells = []
        for vth in vth_values:
            value = surface[(vdd, vth)]
            if math.isinf(value):
                cells.append("   X")
            else:
                shade = (math.log(value) - math.log(low)) \
                    / max(math.log(high) - math.log(low), 1e-9)
                glyph = GLYPHS[min(int(shade * (len(GLYPHS) - 1)),
                                   len(GLYPHS) - 1)]
                cells.append(f"   {glyph}")
        print(f"{vdd:5.2f}  " + " ".join(cells))

    out_dir.mkdir(parents=True, exist_ok=True)
    path = write_csv(
        out_dir / f"{circuit}_surface.csv",
        headers=["vdd_V", "vth_V", "total_energy_J"],
        rows=[[vdd, vth, "" if math.isinf(value) else value]
              for (vdd, vth), value in sorted(surface.items())],
        provenance=f"(Vdd, Vth) energy surface of {circuit} at 300 MHz")
    print(f"\nsurface exported to {path}")
    print(f"feasible points: {len(finite)}/{len(surface)}; "
          f"energy spans {high / low:.0f}x across the feasible region")


if __name__ == "__main__":
    main()
