#!/usr/bin/env python
"""Scenario: is a second threshold voltage worth an extra mask?

The paper's problem statement (§2) allows ``n_v`` distinct threshold
voltages, at the price of "additional implant masking steps, or
generation and application of multiple tub biases". This example answers
the process-economics question for a benchmark: how much energy does each
extra Vth buy?

For n_v = 1, 2, 3 the multi-Vth optimizer groups gates by delay-budget
tightness (critical gates keep the fast, leaky threshold; slack-rich
gates take the frugal one) and re-optimizes. Expected shape: a visible
gain from 1 -> 2 thresholds, diminishing returns after.

Run with::

    python examples/multi_vth_design.py [circuit]
"""

from __future__ import annotations

import sys

from repro.activity import uniform_profile
from repro.analysis.report import format_table
from repro.netlist import benchmark_circuit
from repro.optimize import OptimizationProblem, optimize_multi_vth
from repro.technology import Technology
from repro.units import MHZ


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "s298"
    tech = Technology.default()
    network = benchmark_circuit(circuit)
    profile = uniform_profile(network, probability=0.5, density=0.1)

    rows = []
    single_energy = None
    for n_vth in (1, 2, 3):
        problem = OptimizationProblem.build(tech, network, profile,
                                            frequency=300 * MHZ,
                                            n_vth=n_vth)
        result = optimize_multi_vth(problem)
        if single_energy is None:
            single_energy = result.total_energy
        vths = "/".join(f"{vth * 1000:.0f}"
                        for vth in result.design.distinct_vths())
        rows.append([n_vth, f"{result.design.vdd:.2f}", vths,
                     f"{result.total_energy * 1e15:.1f}",
                     f"{single_energy / result.total_energy:.3f}x"])

    print(format_table(
        headers=["n_vth", "Vdd (V)", "Vth values (mV)",
                 "energy/cycle (fJ)", "gain vs single Vth"],
        rows=rows,
        title=f"Multi-threshold payoff for {circuit} at 300 MHz"))
    print("\nEach extra Vth costs an implant mask or a separate tub bias "
          "(paper Figure 1);\nthe last column is what it buys.")


if __name__ == "__main__":
    main()
