#!/usr/bin/env python
"""Quickstart: jointly optimize one circuit and inspect the result.

This is the paper's headline flow in ~40 lines of API:

1. pick a technology deck and a benchmark circuit,
2. describe the input activity,
3. run the fixed-Vth baseline (Table 1's comparator),
4. run the joint Vdd/Vth/width optimization (Procedures 1 + 2),
5. compare: order-of-magnitude total-energy savings at the same clock.

Run with::

    python examples/quickstart.py [circuit] [activity]
"""

from __future__ import annotations

import sys

from repro.activity import uniform_profile
from repro.netlist import benchmark_circuit
from repro.optimize import (
    OptimizationProblem,
    optimize_fixed_vth,
    optimize_joint,
)
from repro.technology import Technology
from repro.units import MHZ, NS, format_si


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "s298"
    activity = float(sys.argv[2]) if len(sys.argv) > 2 else 0.1

    tech = Technology.default()
    network = benchmark_circuit(circuit)
    profile = uniform_profile(network, probability=0.5, density=activity)
    problem = OptimizationProblem.build(tech, network, profile,
                                        frequency=300 * MHZ)

    print(f"Circuit {network.name}: {network.gate_count} gates, "
          f"depth {network.depth}, clock 300 MHz, "
          f"input activity {activity} transitions/cycle\n")

    baseline = optimize_fixed_vth(problem)
    print("Baseline (fixed Vth = 700 mV, widths + Vdd optimized):")
    print(f"  Vdd = {baseline.design.vdd:.2f} V, "
          f"critical delay = {baseline.timing.critical_delay / NS:.2f} ns")
    print(f"  static  energy/cycle = {format_si(baseline.energy.static, 'J')}")
    print(f"  dynamic energy/cycle = {format_si(baseline.energy.dynamic, 'J')}")
    print(f"  total   energy/cycle = {format_si(baseline.total_energy, 'J')}\n")

    joint = optimize_joint(problem)
    vth = joint.design.distinct_vths()[0]
    print("Joint device-circuit optimization (Procedures 1 + 2):")
    print(f"  Vdd = {joint.design.vdd:.2f} V, Vth = {vth * 1000:.0f} mV, "
          f"critical delay = {joint.timing.critical_delay / NS:.2f} ns")
    print(f"  static  energy/cycle = {format_si(joint.energy.static, 'J')}")
    print(f"  dynamic energy/cycle = {format_si(joint.energy.dynamic, 'J')}")
    print(f"  total   energy/cycle = {format_si(joint.total_energy, 'J')}\n")

    savings = baseline.total_energy / joint.total_energy
    ratio = joint.energy.static / joint.energy.dynamic
    print(f"Savings over the baseline: {savings:.1f}x at the same clock")
    print(f"Static/dynamic balance at the optimum: {ratio:.2f} "
          "(the paper's 'comparable components')")


if __name__ == "__main__":
    main()
