#!/usr/bin/env python
"""Scenario: picking the threshold voltage for a future low-power process.

The paper's §1 pitch: "In determining the threshold voltage for a process
being developed for future applications, one may use the algorithms on
existing benchmarks with predicted circuit timing parameters to find the
most desirable threshold voltage."

This example plays process engineer:

1. run the joint optimizer over the benchmark suite on the current deck
   and on a constant-field-scaled future deck,
2. pool the per-circuit Vth choices into a recommendation,
3. show how the Figure 1 static back-bias scheme would realize that Vth
   from natural (un-implanted) devices — the substrate/n-well voltages a
   designer would actually program.

Run with::

    python examples/process_designer.py
"""

from __future__ import annotations

from repro.analysis import recommend_threshold
from repro.analysis.report import format_table
from repro.technology import Technology, bias_for_target_vth
from repro.units import MHZ

CIRCUITS = ("s298", "s382", "s386", "s526")


def report(tech: Technology, frequency: float) -> None:
    recommendation = recommend_threshold(tech, CIRCUITS,
                                         frequency=frequency,
                                         activity=0.1)
    print(format_table(
        headers=["Circuit", "chosen Vth (mV)", "chosen Vdd (V)",
                 "energy/cycle (fJ)"],
        rows=[[name, f"{vth * 1000:.0f}", f"{vdd:.2f}",
               f"{energy * 1e15:.1f}"]
              for name, vth, vdd, energy in recommendation.per_circuit],
        title=f"Deck {tech.name!r} at {frequency / MHZ:.0f} MHz"))
    print(f"  -> recommended process Vth: "
          f"{recommendation.recommended_vth * 1000:.0f} mV "
          f"(spread {recommendation.vth_spread * 1000:.0f} mV)")
    if recommendation.infeasible:
        print(f"  -> infeasible on this deck: {recommendation.infeasible}")

    target = recommendation.recommended_vth
    if target >= tech.vth_natural:
        bias = bias_for_target_vth(tech, target)
        print(f"  -> Figure 1 static back-bias realizing it from natural "
              f"devices (Vth0 = {tech.vth_natural * 1000:.0f} mV): "
              f"reverse bias = {bias:.2f} V "
              f"(V_SUBSTRATE = -{bias:.2f} V, V_NWELL = Vdd + {bias:.2f} V)")
    else:
        print(f"  -> target below the natural threshold "
              f"({tech.vth_natural * 1000:.0f} mV); needs a lower-Vth "
              "starting device rather than back-bias")
    print()


def main() -> None:
    print("Threshold selection for a low-power process (paper §1 use case)\n")
    report(Technology.default(), frequency=300 * MHZ)
    future = Technology.scaled(0.18e-6, name="future-0.18um")
    report(future, frequency=300 * MHZ)


if __name__ == "__main__":
    main()
