"""The grid-search cuts: bound-based pruning and warm-started bisection.

Pruning carries a proof obligation — skipping a cell must never change
the argmin — so these tests compare pruned and unpruned searches for
*identical* results (design, energy, best point), not merely similar
ones, serially and on the worker pool. The closed-form bound itself is
checked admissible against real evaluations.
"""

from __future__ import annotations

import math

import pytest

from repro.engine import use_engine
from repro.errors import InfeasibleError, OptimizationError
from repro.obs.instrument import (PRUNED_CELLS, WARM_START_SKIPPED,
                                  WARM_STARTS)
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.optimize.heuristic import (
    HeuristicSettings,
    _grid_cells,
    _grid_lower_bounds,
    _prune_cells,
    optimize_joint,
)
from repro.runtime.supervisor import ParallelPlan

GRID = dict(grid_vdd=9, grid_vth=7, refine_iters=6, refine_rounds=1)


def _assert_same_result(lhs, rhs):
    assert lhs.design.vdd == rhs.design.vdd
    assert lhs.design.vth == rhs.design.vth
    assert lhs.design.widths == rhs.design.widths
    assert lhs.energy.total == rhs.energy.total
    assert lhs.timing.critical_delay == rhs.timing.critical_delay


def test_prune_probes_validated():
    with pytest.raises(OptimizationError, match="prune_probes"):
        HeuristicSettings(prune_probes=0)


def test_bounds_are_admissible(s27_problem):
    """The closed-form bound never exceeds a real sized evaluation."""
    settings = HeuristicSettings(engine="fast", **GRID)
    vdd_range = (s27_problem.tech.vdd_min, s27_problem.tech.vdd_max)
    vth_range = (s27_problem.tech.vth_min, s27_problem.tech.vth_max)
    cells = _grid_cells(vdd_range, vth_range, settings)
    bounds = _grid_lower_bounds(s27_problem, cells)
    assert len(bounds) == len(cells) == 9 * 7
    evaluator = s27_problem.evaluator(engine="fast")
    checked = 0
    for (_, vdd, vth), bound in zip(cells, bounds):
        evaluation = evaluator(vdd, vth)
        if evaluation.feasible:
            # When the solver returns all-minimum widths the bound
            # equals the energy mathematically and may land an ulp
            # above it (different summation order); the prune cut's
            # 1e-9 relative margin absorbs exactly this.
            assert bound <= evaluation.energy * (1.0 + 1e-9), (vdd, vth)
            checked += 1
        elif not math.isfinite(bound):
            # Drive-infeasible bound: the evaluator must agree.
            assert evaluation.energy == math.inf
    assert checked > 0


def test_prune_cells_spares_the_argmin(s27_problem):
    """Direct check on the prune set: the unpruned winner survives."""
    settings = HeuristicSettings(engine="fast", prune=True, **GRID)
    vdd_range = (s27_problem.tech.vdd_min, s27_problem.tech.vdd_max)
    vth_range = (s27_problem.tech.vth_min, s27_problem.tech.vth_max)
    cells = _grid_cells(vdd_range, vth_range, settings)
    budgets = s27_problem.budgets()
    pruned, probes = _prune_cells(s27_problem, budgets, settings, "fast",
                                  cells, vdd_range, vth_range)
    assert 0 < probes <= settings.prune_probes + 1
    assert pruned, "the cut never fired on s27"
    evaluator = s27_problem.evaluator(budgets, "fast")
    best_index, best_energy = None, math.inf
    for index, vdd, vth in cells:
        evaluation = evaluator(vdd, vth)
        if evaluation.feasible and evaluation.energy < best_energy:
            best_index, best_energy = index, evaluation.energy
    assert best_index is not None
    assert best_index not in pruned


@pytest.mark.parametrize("engine", ["fast", "incremental"])
def test_pruned_search_identical_serial(s27_problem, engine):
    settings = HeuristicSettings(engine=engine, **GRID)
    plain = optimize_joint(s27_problem, settings=settings)
    registry = MetricsRegistry()
    with use_metrics(registry):
        pruned = optimize_joint(
            s27_problem,
            settings=HeuristicSettings(engine=engine, prune=True, **GRID))
    _assert_same_result(plain, pruned)
    assert pruned.details["pruned_cells"] > 0
    assert registry.counter(PRUNED_CELLS) == pruned.details["pruned_cells"]
    # The cut plus its probes must still be a net saving.
    assert (pruned.evaluations + pruned.details["prune_probes"]
            < plain.evaluations)
    assert "pruned_cells" not in plain.details


def test_pruned_search_identical_parallel(s27_problem):
    plain = optimize_joint(s27_problem,
                           settings=HeuristicSettings(engine="fast", **GRID))
    pooled = optimize_joint(
        s27_problem,
        settings=HeuristicSettings(
            engine="fast", prune=True,
            parallel=ParallelPlan(jobs=2, heartbeat_s=0.05), **GRID))
    _assert_same_result(plain, pooled)
    assert pooled.details["pruned_cells"] > 0
    assert pooled.details["parallel_jobs"] == 2


def test_pruned_search_identical_s298(s298_problem):
    settings = HeuristicSettings(engine="fast", **GRID)
    plain = optimize_joint(s298_problem, settings=settings)
    pruned = optimize_joint(
        s298_problem,
        settings=HeuristicSettings(engine="fast", prune=True, **GRID))
    _assert_same_result(plain, pruned)
    assert pruned.details["pruned_cells"] > 0


def test_infeasible_problem_still_raises(s27_problem):
    """An unmeetable clock raises the same typed error pruned or not."""
    from repro.optimize.problem import OptimizationProblem

    tight = OptimizationProblem(ctx=s27_problem.ctx, frequency=1e12)
    with pytest.raises(InfeasibleError):
        optimize_joint(tight, settings=HeuristicSettings(engine="fast",
                                                         **GRID))
    with pytest.raises(InfeasibleError):
        optimize_joint(tight, settings=HeuristicSettings(
            engine="fast", prune=True, **GRID))


def test_variation_bias_disables_pruning(s27_problem):
    """Corner-biased objectives break the bound's premise; the search
    must quietly scan unpruned rather than mis-prune."""
    settings = HeuristicSettings(engine="fast", prune=True, **GRID)
    result = optimize_joint(s27_problem, settings=settings,
                            _energy_vth_bias=lambda vth: vth + 0.05)
    assert result.feasible
    assert "pruned_cells" not in result.details


# --- warm-started bisection --------------------------------------------------


def test_warm_start_bisect_feasible_and_close(s27_problem):
    cold = optimize_joint(s27_problem, settings=HeuristicSettings(
        engine="fast", width_method="bisect", **GRID))
    registry = MetricsRegistry()
    with use_metrics(registry):
        warm = optimize_joint(s27_problem, settings=HeuristicSettings(
            engine="fast", width_method="bisect", warm_start=True, **GRID))
    assert warm.feasible
    assert registry.counter(WARM_STARTS) > 0
    assert warm.details["warm_start"] is True
    # Warm brackets change the bisection discretization, not the
    # optimum: the designs agree to solver tolerance.
    assert warm.energy.total == pytest.approx(cold.energy.total, rel=1e-2)
    assert warm.design.vdd == pytest.approx(cold.design.vdd, rel=1e-2)


def test_warm_start_skipped_under_parallel(s27_problem, caplog):
    """warm_start + --jobs: parallelism wins and the skip is loud —
    warning log, ``search.warm_start_skipped`` counter, and details —
    never a silent drop."""
    registry = MetricsRegistry()
    with use_metrics(registry), caplog.at_level("WARNING", logger="repro"):
        result = optimize_joint(s27_problem, settings=HeuristicSettings(
            engine="fast", width_method="bisect", warm_start=True,
            parallel=ParallelPlan(jobs=2, heartbeat_s=0.05), **GRID))
    assert result.feasible
    assert result.details["parallel_jobs"] == 2
    assert result.details["warm_start"] is False
    assert result.details["warm_start_skipped"] is True
    assert registry.counter(WARM_START_SKIPPED) == 1
    assert registry.counter(WARM_STARTS) == 0
    assert any("warm_start" in message for message in caplog.messages)
    # The sharded scan must match the plain (cold) parallel scan.
    cold = optimize_joint(s27_problem, settings=HeuristicSettings(
        engine="fast", width_method="bisect",
        parallel=ParallelPlan(jobs=2, heartbeat_s=0.05), **GRID))
    _assert_same_result(result, cold)


def test_warm_start_deterministic(s27_problem):
    settings = HeuristicSettings(engine="fast", width_method="bisect",
                                 warm_start=True, **GRID)
    first = optimize_joint(s27_problem, settings=settings)
    second = optimize_joint(s27_problem, settings=settings)
    _assert_same_result(first, second)


def test_fingerprint_records_cut_settings(s27_problem):
    from repro.optimize.heuristic import _search_fingerprint

    ranges = ((0.5, 3.3), (0.1, 0.5))
    plain = _search_fingerprint(s27_problem, HeuristicSettings(), *ranges,
                                engine_name="fast")
    cut = _search_fingerprint(s27_problem, HeuristicSettings(prune=True),
                              *ranges, engine_name="fast")
    warm = _search_fingerprint(s27_problem,
                               HeuristicSettings(warm_start=True),
                               *ranges, engine_name="fast")
    assert plain["prune"] is False and cut["prune"] is True
    assert plain != cut and plain != warm
