"""Tests for design-point serialization."""

import json

import pytest

from repro.errors import OptimizationError
from repro.optimize.heuristic import optimize_joint
from repro.optimize.persist import (
    design_from_dict,
    design_to_dict,
    load_design,
    save_design,
)


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    from repro.experiments.common import build_problem
    from repro.optimize.heuristic import HeuristicSettings

    problem = build_problem("s27", 0.1)
    result = optimize_joint(problem, settings=HeuristicSettings(
        grid_vdd=9, grid_vth=7, refine_iters=8, refine_rounds=1))
    path = tmp_path_factory.mktemp("designs") / "s27.json"
    save_design(result, path)
    return problem, result, path


def test_roundtrip(saved):
    problem, result, path = saved
    design = load_design(path, problem)
    assert design.vdd == pytest.approx(result.design.vdd)
    assert design.distinct_vths() == pytest.approx(
        result.design.distinct_vths())
    for name in problem.network.logic_gates:
        assert design.width_of(name) == pytest.approx(
            result.design.width_of(name))
    # The reloaded design evaluates identically.
    assert design.evaluate_energy(problem).total == pytest.approx(
        result.total_energy)
    assert design.is_feasible(problem)


def test_provenance_fields(saved):
    _, result, path = saved
    payload = json.loads(path.read_text())
    assert payload["network"] == "s27"
    assert payload["technology"] == "generic-0.25um"
    assert payload["total_energy_j"] == pytest.approx(result.total_energy)


def test_wrong_network_rejected(saved):
    from repro.experiments.common import build_problem

    _, _, path = saved
    other = build_problem("s298", 0.1)
    with pytest.raises(OptimizationError, match="is for network"):
        load_design(path, other)


def test_missing_widths_rejected(saved):
    problem, _, path = saved
    payload = json.loads(path.read_text())
    first_gate = next(iter(payload["widths"]))
    del payload["widths"][first_gate]
    with pytest.raises(OptimizationError, match="misses widths"):
        design_from_dict(payload, problem)


def test_format_checks(saved):
    problem, _, _ = saved
    with pytest.raises(OptimizationError, match="format marker"):
        design_from_dict({"widths": {}}, problem)
    payload = {"_format": "repro-design", "_version": 99}
    with pytest.raises(OptimizationError, match="version"):
        design_from_dict(payload, problem)


def test_invalid_json(tmp_path, saved):
    problem, _, _ = saved
    path = tmp_path / "junk.json"
    path.write_text("{nope")
    with pytest.raises(OptimizationError, match="invalid JSON"):
        load_design(path, problem)


def test_vth_map_roundtrips(saved, tmp_path):
    from repro.optimize.problem import OptimizationResult, DesignPoint

    problem, result, _ = saved
    vth_map = {name: 0.2 for name in problem.network.logic_gates}
    mapped = OptimizationResult(
        problem=problem,
        design=DesignPoint(vdd=result.design.vdd, vth=vth_map,
                           widths=result.design.widths),
        energy=result.energy, timing=result.timing, evaluations=0)
    path = tmp_path / "mapped.json"
    save_design(mapped, path)
    design = load_design(path, problem)
    assert design.vth_of("G8") == pytest.approx(0.2)
    assert isinstance(design.vth, dict)
