"""Extra coverage: cross-feature combinations and CLI plumbing."""

import json

import pytest

from repro.cli import main
from repro.power.breakdown import energy_breakdown
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.problem import DesignPoint
from repro.technology.library import save_technology
from repro.technology.process import Technology


def test_breakdown_with_per_gate_vdd(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    gates = s27_ctx.network.logic_gates
    vdd_map = {name: (1.0 if index % 2 else 1.5)
               for index, name in enumerate(gates)}
    breakdown = energy_breakdown(s27_ctx, vdd_map, 0.3, widths, 300e6)
    assert breakdown.wire_dynamic + breakdown.device_dynamic \
        == pytest.approx(breakdown.report.dynamic)


def test_design_point_with_vdd_map_evaluates(s27_problem):
    gates = s27_problem.network.logic_gates
    widths = s27_problem.ctx.uniform_widths(8.0)
    vdd_map = {name: 2.0 for name in gates}
    design = DesignPoint(vdd=vdd_map, vth=0.3, widths=widths)
    assert design.vdd_of(gates[0]) == 2.0
    assert design.distinct_vdds() == (2.0,)
    energy = design.evaluate_energy(s27_problem)
    scalar = DesignPoint(vdd=2.0, vth=0.3,
                         widths=widths).evaluate_energy(s27_problem)
    assert energy.total == pytest.approx(scalar.total)


def test_fast_engine_with_variation_bias(s27_problem):
    from repro.optimize.variation import VariationModel, \
        optimize_with_variation

    settings = HeuristicSettings(engine="fast", grid_vdd=9, grid_vth=7,
                                 refine_iters=6, refine_rounds=1)
    scalar_settings = HeuristicSettings(grid_vdd=9, grid_vth=7,
                                        refine_iters=6, refine_rounds=1)
    model = VariationModel(0.15)
    fast = optimize_with_variation(s27_problem, model, settings=settings)
    scalar = optimize_with_variation(s27_problem, model,
                                     settings=scalar_settings)
    assert fast.total_energy == pytest.approx(scalar.total_energy,
                                              rel=1e-9)


def test_cli_deck_file(tmp_path, capsys):
    deck_path = tmp_path / "deck.json"
    save_technology(Technology.default().with_overrides(name="mine"),
                    deck_path)
    assert main(["optimize", "s27", "--deck-file", str(deck_path),
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["joint"]["network"] == "s27"


def test_cli_experiments_subcommand(capsys, monkeypatch):
    from repro.experiments import runner

    monkeypatch.setitem(runner._EXPERIMENTS, "quick",
                        lambda: "QUICK-ARTIFACT")
    assert main(["experiments", "quick"]) == 0
    out = capsys.readouterr().out
    assert "QUICK-ARTIFACT" in out


def test_cli_bad_deck_file(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text("{}")
    assert main(["optimize", "s27", "--deck-file", str(path)]) == 1
    assert "error:" in capsys.readouterr().err


def test_multivdd_empty_cluster_returns_single(s27_problem):
    from repro.optimize.multivdd import MultiVddSettings, optimize_multi_vdd

    settings = MultiVddSettings(
        cluster_fraction=0.01,  # too small to admit any gate on s27
        refine_iters=4,
        single=HeuristicSettings(grid_vdd=9, grid_vth=7, refine_iters=6,
                                 refine_rounds=1))
    result = optimize_multi_vdd(s27_problem, settings=settings)
    assert len(result.design.distinct_vdds()) == 1


def test_experiment_csv_exports_integrate():
    from repro.analysis.export import table1_rows_to_csv
    from repro.experiments.common import ExperimentConfig
    from repro.experiments.table1 import run_table1

    config = ExperimentConfig().with_circuits(("s298",))
    rows = run_table1(config)
    text = table1_rows_to_csv(rows)
    lines = text.strip().splitlines()
    assert lines[1].startswith("circuit,")
    assert len(lines) == 2 + len(rows)
