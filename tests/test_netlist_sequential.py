"""Tests for the sequential-circuit wrapper."""

import pytest

from repro.errors import NetlistError, TimingError
from repro.netlist.bench import extract_registers
from repro.netlist.benchmarks import S27_BENCH
from repro.netlist.sequential import (
    RegisterTiming,
    SequentialCircuit,
    parse_sequential_bench,
    sequential_problem,
)
from repro.activity.profiles import uniform_profile
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.technology.process import Technology
from repro.units import MHZ, PS


def test_extract_registers_s27():
    registers = extract_registers(S27_BENCH)
    assert set(registers) == {("G5", "G10"), ("G6", "G11"), ("G7", "G13")}


def test_parse_sequential_s27():
    circuit = parse_sequential_bench(S27_BENCH, name="s27")
    assert circuit.register_count == 3
    assert circuit.core.gate_count == 10
    # True PIs exclude register Q pins; true POs exclude D pins.
    assert set(circuit.true_inputs) == {"G0", "G1", "G2", "G3"}
    assert set(circuit.true_outputs) == {"G17"}


def test_register_nets_must_exist():
    circuit = parse_sequential_bench(S27_BENCH, name="s27")
    with pytest.raises(NetlistError, match="missing from the core"):
        SequentialCircuit(core=circuit.core,
                          registers=(("ghost", "G10"),))
    with pytest.raises(NetlistError, match="missing from the core"):
        SequentialCircuit(core=circuit.core,
                          registers=(("G5", "ghost"),))


def test_register_timing_validation():
    with pytest.raises(TimingError):
        RegisterTiming(clock_to_q=-1.0)
    timing = RegisterTiming(clock_to_q=80 * PS, setup=50 * PS)
    assert timing.total == pytest.approx(130 * PS)


def test_usable_cycle_fraction():
    circuit = parse_sequential_bench(S27_BENCH, name="s27")
    timing = RegisterTiming(clock_to_q=100 * PS, setup=100 * PS)
    cycle = 2000 * PS
    fraction = circuit.usable_cycle_fraction(cycle, timing)
    assert fraction == pytest.approx(0.9)
    # Skew stacks multiplicatively on the cycle before margins.
    skewed = circuit.usable_cycle_fraction(cycle, timing, skew_factor=0.9)
    assert skewed == pytest.approx((0.9 * cycle - 200 * PS) / cycle)


def test_margins_eating_whole_cycle_rejected():
    circuit = parse_sequential_bench(S27_BENCH, name="s27")
    timing = RegisterTiming(clock_to_q=2000 * PS, setup=2000 * PS)
    with pytest.raises(TimingError, match="consume the whole"):
        circuit.usable_cycle_fraction(1000 * PS, timing)


def test_sequential_problem_optimizes_with_margin():
    tech = Technology.default()
    circuit = parse_sequential_bench(S27_BENCH, name="s27")
    profile = uniform_profile(circuit.core, probability=0.5, density=0.1)
    settings = HeuristicSettings(grid_vdd=9, grid_vth=7, refine_iters=6,
                                 refine_rounds=1)

    plain = sequential_problem(tech, circuit, profile, 300 * MHZ,
                               timing=RegisterTiming(0.0, 0.0))
    margined = sequential_problem(tech, circuit, profile, 300 * MHZ)
    assert margined.skew_factor < plain.skew_factor == pytest.approx(1.0)

    result = optimize_joint(margined, settings=settings)
    # The optimized core leaves room for the register margins.
    assert result.timing.critical_delay \
        <= margined.skew_factor * margined.cycle_time * (1 + 1e-6)
    # Margins cost energy relative to the margin-free problem.
    free = optimize_joint(plain, settings=settings)
    assert result.total_energy >= free.total_energy * 0.999
