"""Checkpoint/resume: exact state round-trips and resume identity.

The headline property: a Procedure 2 search interrupted at *any* corner
and resumed from its checkpoint finishes with the identical design point
and total energy as an uninterrupted run.
"""

import dataclasses
import json
import math

import pytest

from repro.errors import CheckpointError, RunCancelled
from repro.optimize.heuristic import optimize_joint
from repro.runtime.checkpoint import (
    FORMAT_KEY,
    FORMAT_VERSION,
    SearchCheckpoint,
)
from repro.runtime.controller import RunController

FINGERPRINT = {"network": "unit", "strategy": "grid", "vdd_range": (1.0, 3.3)}


class TestSearchCheckpointUnit:
    def test_record_lookup_and_dedupe(self):
        checkpoint = SearchCheckpoint(FINGERPRINT)
        assert checkpoint.lookup(1.0, 0.2) is None
        checkpoint.record(1.0, 0.2, 5e-12, True,
                          best_energy=5e-12, best_point=(1.0, 0.2),
                          best_widths={"g1": 2.0})
        checkpoint.record(1.0, 0.2, 5e-12, True,
                          best_energy=5e-12, best_point=(1.0, 0.2),
                          best_widths={"g1": 2.0})
        assert checkpoint.completed == 1
        assert checkpoint.lookup(1.0, 0.2) == (5e-12, True)
        assert checkpoint.best_point == (1.0, 0.2)

    def test_worse_best_does_not_displace(self):
        checkpoint = SearchCheckpoint(FINGERPRINT)
        checkpoint.record(1.0, 0.2, 5e-12, True, 5e-12, (1.0, 0.2),
                          {"g1": 2.0})
        checkpoint.record(2.0, 0.3, 7e-12, True, 5e-12, (1.0, 0.2),
                          {"g1": 2.0})
        assert checkpoint.best_energy == 5e-12
        assert checkpoint.best_point == (1.0, 0.2)

    def test_validation(self):
        with pytest.raises(CheckpointError, match="every"):
            SearchCheckpoint(FINGERPRINT, every=0)

    def test_save_load_roundtrip_with_nonfinite_floats(self, tmp_path):
        path = tmp_path / "state.json"
        checkpoint = SearchCheckpoint(FINGERPRINT, path=path)
        checkpoint.record(1.0, 0.2, math.inf, False, math.inf, None, None)
        checkpoint.record(2.0, math.nan, 4e-12, True, 4e-12, (2.0, 0.25),
                          {"g1": 1.5, "g2": 3.0})
        loaded = SearchCheckpoint.load(path, FINGERPRINT)
        assert loaded.completed == 2
        assert loaded.lookup(1.0, 0.2) == (math.inf, False)
        vdd, vth, energy, feasible = loaded.log[1]
        assert vdd == 2.0 and math.isnan(vth)
        assert loaded.best_energy == 4e-12
        assert loaded.best_point == (2.0, 0.25)
        assert loaded.best_widths == {"g1": 1.5, "g2": 3.0}

    def test_every_batches_saves_and_flush_forces(self, tmp_path):
        path = tmp_path / "batched.json"
        checkpoint = SearchCheckpoint(FINGERPRINT, path=path, every=3)
        checkpoint.record(1.0, 0.2, 1e-12, True, 1e-12, (1.0, 0.2), {})
        checkpoint.record(1.1, 0.2, 2e-12, True, 1e-12, (1.0, 0.2), {})
        assert not path.exists()
        checkpoint.flush()
        assert SearchCheckpoint.load(path, FINGERPRINT).completed == 2

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        SearchCheckpoint(FINGERPRINT, path=path).save()
        other = dict(FINGERPRINT, strategy="paper")
        with pytest.raises(CheckpointError, match="different search"):
            SearchCheckpoint.load(path, other)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"_format": "repro-checkpoint", "evalu')
        with pytest.raises(CheckpointError, match="invalid JSON"):
            SearchCheckpoint.load(path, FINGERPRINT)

    def test_foreign_json_rejected(self, tmp_path):
        path = tmp_path / "design.json"
        path.write_text('{"vdd": 1.2}')
        with pytest.raises(CheckpointError, match="format marker"):
            SearchCheckpoint.load(path, FINGERPRINT)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"_format": FORMAT_KEY,
                                    "_version": FORMAT_VERSION + 1,
                                    "fingerprint": {}}))
        with pytest.raises(CheckpointError, match="version"):
            SearchCheckpoint.load(path, FINGERPRINT)


@pytest.fixture(scope="module")
def reference(s27_problem, fast_settings):
    """The uninterrupted search every resume must reproduce."""
    return optimize_joint(s27_problem, settings=fast_settings)


def _assert_same_optimum(result, reference):
    assert result.design.vdd == reference.design.vdd
    assert result.design.vth == reference.design.vth
    assert result.design.widths == reference.design.widths
    assert result.total_energy == reference.total_energy
    assert result.evaluations == reference.evaluations


class TestCheckpointedSearch:
    def test_checkpointing_does_not_change_the_answer(
            self, s27_problem, fast_settings, reference, tmp_path):
        path = tmp_path / "s27.ckpt"
        controller = RunController(checkpoint_path=path)
        settings = dataclasses.replace(fast_settings, controller=controller)
        result = optimize_joint(s27_problem, settings=settings)
        _assert_same_optimum(result, reference)
        assert result.details["checkpoint"] == str(path)
        assert result.details["resumed_corners"] == 0
        assert path.exists()

    def test_resume_of_a_finished_search_replays_from_cache(
            self, s27_problem, fast_settings, reference, tmp_path):
        path = tmp_path / "s27.ckpt"
        first = optimize_joint(s27_problem, settings=fast_settings,
                               resume_from=path)
        resumed = optimize_joint(s27_problem, settings=fast_settings,
                                 resume_from=path)
        _assert_same_optimum(first, reference)
        _assert_same_optimum(resumed, reference)
        assert resumed.details["resumed_corners"] > 0

    def test_resume_refuses_a_different_strategy(
            self, s27_problem, fast_settings, tmp_path):
        path = tmp_path / "s27.ckpt"
        optimize_joint(s27_problem, settings=fast_settings, resume_from=path)
        paper = dataclasses.replace(fast_settings, strategy="paper")
        with pytest.raises(CheckpointError, match="different search"):
            optimize_joint(s27_problem, settings=paper, resume_from=path)

    @pytest.mark.parametrize("interrupt_after", [1, 17, 63, 109])
    def test_interrupt_anywhere_then_resume_is_identical(
            self, s27_problem, fast_settings, reference, tmp_path,
            interrupt_after):
        """The resume-identity property, sampled across the search."""
        path = tmp_path / f"s27-{interrupt_after}.ckpt"
        box = {}
        events = []

        def cancel_after_k(event):
            events.append(event)
            if len(events) == interrupt_after:
                box["controller"].cancel()

        controller = RunController(progress=cancel_after_k,
                                   checkpoint_path=path)
        box["controller"] = controller
        settings = dataclasses.replace(fast_settings, controller=controller)
        with pytest.raises(RunCancelled):
            optimize_joint(s27_problem, settings=settings)
        assert path.exists(), "interrupted search must leave its checkpoint"

        resumed = optimize_joint(s27_problem, settings=fast_settings,
                                 resume_from=path)
        _assert_same_optimum(resumed, reference)
        assert 0 < resumed.details["resumed_corners"] <= interrupt_after
