"""Tests for worst-case Vth-variation optimization."""

import pytest

from repro.errors import OptimizationError
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.variation import VariationModel, optimize_with_variation

FAST = HeuristicSettings(grid_vdd=9, grid_vth=7, refine_iters=8,
                         refine_rounds=1)


def test_variation_model_corners():
    model = VariationModel(0.2)
    assert model.slow_corner(0.2) == pytest.approx(0.24)
    assert model.leaky_corner(0.2) == pytest.approx(0.16)


def test_variation_model_validation():
    with pytest.raises(OptimizationError):
        VariationModel(-0.1)
    with pytest.raises(OptimizationError):
        VariationModel(1.0)


def test_zero_tolerance_matches_nominal(s27_problem):
    nominal = optimize_joint(s27_problem, settings=FAST)
    robust = optimize_with_variation(s27_problem, VariationModel(0.0),
                                     settings=FAST)
    assert robust.total_energy == pytest.approx(nominal.total_energy,
                                                rel=1e-9)


def test_timing_verified_at_slow_corner(s27_problem):
    model = VariationModel(0.25)
    result = optimize_with_variation(s27_problem, model, settings=FAST)
    # The reported timing is the slow-corner guarantee.
    assert result.feasible
    from repro.timing.sta import analyze_timing

    nominal_vth = float(result.design.distinct_vths()[0])
    slow = analyze_timing(s27_problem.ctx, result.design.vdd,
                          model.slow_corner(nominal_vth),
                          result.design.widths)
    assert slow.critical_delay == pytest.approx(
        result.timing.critical_delay)
    assert slow.meets(s27_problem.cycle_time, tolerance=1e-6)


def test_energy_reported_at_leaky_corner(s27_problem):
    model = VariationModel(0.25)
    result = optimize_with_variation(s27_problem, model, settings=FAST)
    from repro.power.energy import total_energy

    nominal_vth = float(result.design.distinct_vths()[0])
    leaky = total_energy(s27_problem.ctx, result.design.vdd,
                         model.leaky_corner(nominal_vth),
                         result.design.widths, s27_problem.frequency)
    assert leaky.total == pytest.approx(result.total_energy)


def test_savings_decay_with_tolerance(s27_problem):
    energies = []
    for tolerance in (0.0, 0.15, 0.3):
        result = optimize_with_variation(s27_problem,
                                         VariationModel(tolerance),
                                         settings=FAST)
        energies.append(result.total_energy)
    # Worst-case energy grows with tolerance -> savings decay (Fig 2a).
    assert energies[0] <= energies[1] <= energies[2]


def test_details_record_tolerance(s27_problem):
    result = optimize_with_variation(s27_problem, VariationModel(0.1),
                                     settings=FAST)
    assert result.details["strategy"] == "variation-aware"
    assert result.details["vth_tolerance"] == 0.1
