"""Tests for static timing analysis."""

import math

import pytest

from repro.errors import TimingError
from repro.timing.sta import analyze_timing
from repro.units import NS


def test_inputs_have_zero_delay_and_arrival(s27_ctx):
    report = analyze_timing(s27_ctx, 2.0, 0.3, s27_ctx.uniform_widths(4.0))
    for name in s27_ctx.network.inputs:
        assert report.delay(name) == 0.0
        assert report.arrival(name) == 0.0


def test_arrival_is_max_fanin_plus_own_delay(s27_ctx):
    report = analyze_timing(s27_ctx, 2.0, 0.3, s27_ctx.uniform_widths(4.0))
    network = s27_ctx.network
    for name in network.logic_gates:
        gate = network.gate(name)
        expected = max(report.arrival(f) for f in gate.fanins) \
            + report.delay(name)
        assert report.arrival(name) == pytest.approx(expected)


def test_critical_delay_is_worst_output(s27_ctx):
    report = analyze_timing(s27_ctx, 2.0, 0.3, s27_ctx.uniform_widths(4.0))
    worst = max(report.arrival(o) for o in s27_ctx.network.outputs)
    assert report.critical_delay == pytest.approx(worst)


def test_critical_path_is_connected_and_ends_at_endpoint(s27_ctx):
    report = analyze_timing(s27_ctx, 2.0, 0.3, s27_ctx.uniform_widths(4.0))
    path = report.critical_path
    network = s27_ctx.network
    assert network.gate(path[0]).is_input
    assert path[-1] in network.outputs
    for upstream, downstream in zip(path, path[1:]):
        assert upstream in network.gate(downstream).fanins


def test_critical_path_arrival_sums_to_critical_delay(s27_ctx):
    report = analyze_timing(s27_ctx, 2.0, 0.3, s27_ctx.uniform_widths(4.0))
    total = sum(report.delay(name) for name in report.critical_path)
    assert total == pytest.approx(report.critical_delay)


def test_meets_and_slack(s27_ctx):
    report = analyze_timing(s27_ctx, 2.0, 0.3, s27_ctx.uniform_widths(4.0))
    cycle = report.critical_delay * 1.1
    assert report.meets(cycle)
    assert report.slack(cycle) == pytest.approx(0.1 * report.critical_delay,
                                                rel=1e-6)
    tight = report.critical_delay * 0.9
    assert not report.meets(tight)
    assert report.slack(tight) < 0.0


def test_wider_gates_reduce_critical_delay(s27_ctx):
    narrow = analyze_timing(s27_ctx, 2.0, 0.3, s27_ctx.uniform_widths(2.0))
    wide = analyze_timing(s27_ctx, 2.0, 0.3, s27_ctx.uniform_widths(8.0))
    assert wide.critical_delay < narrow.critical_delay


def test_lower_vdd_increases_critical_delay(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    fast = analyze_timing(s27_ctx, 3.0, 0.3, widths)
    slow = analyze_timing(s27_ctx, 0.8, 0.3, widths)
    assert slow.critical_delay > fast.critical_delay


def test_per_gate_vth_map_supported(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    vth_map = {name: 0.3 for name in s27_ctx.network.logic_gates}
    mapped = analyze_timing(s27_ctx, 2.0, vth_map, widths)
    scalar = analyze_timing(s27_ctx, 2.0, 0.3, widths)
    assert mapped.critical_delay == pytest.approx(scalar.critical_delay)


def test_missing_vth_in_map_rejected(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    with pytest.raises(TimingError):
        analyze_timing(s27_ctx, 2.0, {"G8": 0.3}, widths)


def test_infinite_delay_reported_for_dead_corner(s27_ctx):
    report = analyze_timing(s27_ctx, 0.02, 0.6, s27_ctx.uniform_widths(4.0))
    assert math.isinf(report.critical_delay)
    assert not report.meets(1.0)
