"""Experiment runner isolation: one failure must not sink the suite."""

import io
import time

import pytest

from repro.experiments import runner
from repro.runtime.controller import current_controller
from repro.runtime.pool import multiprocessing_available


def _boom():
    raise RuntimeError("table generator exploded")


FAKES = {
    "alpha": lambda: "ALPHA TABLE",
    "bad": _boom,
    "omega": lambda: "OMEGA TABLE",
}


@pytest.fixture
def fake_experiments(monkeypatch):
    monkeypatch.setattr(runner, "_EXPERIMENTS", dict(FAKES))


class TestOutcome:
    def test_ok_property(self):
        ok = runner.ExperimentOutcome(name="x", status="ok", elapsed_s=1.0)
        bad = runner.ExperimentOutcome(name="x", status="failed",
                                       elapsed_s=1.0, error="boom")
        assert ok.ok and not bad.ok


class TestIsolation:
    def test_failure_does_not_stop_the_suite(self, fake_experiments):
        stream = io.StringIO()
        outcomes = runner.run_experiments(["alpha", "bad", "omega"],
                                          stream=stream)
        assert [outcome.status for outcome in outcomes] == \
            ["ok", "failed", "ok"]
        text = stream.getvalue()
        assert "ALPHA TABLE" in text and "OMEGA TABLE" in text
        assert "table generator exploded" in text

    def test_failure_carries_a_traceback_summary(self, fake_experiments):
        outcomes = runner.run_experiments(["bad"], stream=io.StringIO())
        (outcome,) = outcomes
        assert "_boom" in outcome.error
        assert "RuntimeError: table generator exploded" in outcome.error

    def test_fail_fast_skips_the_rest(self, fake_experiments):
        outcomes = runner.run_experiments(["bad", "alpha", "omega"],
                                          fail_fast=True,
                                          stream=io.StringIO())
        assert [outcome.status for outcome in outcomes] == \
            ["failed", "skipped", "skipped"]
        assert outcomes[1].error == "--fail-fast"

    def test_deadline_times_out_and_skips_the_rest(self, monkeypatch):
        def slow():
            time.sleep(0.02)
            current_controller().check("slow experiment")
            return "SLOW"

        monkeypatch.setattr(runner, "_EXPERIMENTS",
                            {"slow": slow, "alpha": FAKES["alpha"]})
        outcomes = runner.run_experiments(["slow", "alpha"],
                                          deadline_s=0.005,
                                          stream=io.StringIO())
        assert [outcome.status for outcome in outcomes] == \
            ["timeout", "skipped"]
        assert outcomes[1].error == "suite deadline exhausted"

    def test_ambient_controller_installed_for_experiments(self, monkeypatch):
        seen = {}

        def probe():
            seen["controller"] = current_controller()
            return "PROBE"

        monkeypatch.setattr(runner, "_EXPERIMENTS", {"probe": probe})
        runner.run_experiments(["probe"], deadline_s=60.0,
                               stream=io.StringIO())
        assert seen["controller"] is not None
        assert seen["controller"].deadline_s == 60.0


class TestObservability:
    def test_trace_dir_writes_per_experiment_artifacts(self, monkeypatch,
                                                       tmp_path):
        import json

        from repro.obs import trace
        from repro.obs.metrics import incr

        def instrumented():
            incr("objective_evaluations", 5)
            with trace.span("grid_search"):
                pass
            return "INSTRUMENTED"

        monkeypatch.setattr(runner, "_EXPERIMENTS",
                            {"alpha": instrumented, "omega": FAKES["omega"]})
        outcomes = runner.run_experiments(["alpha", "omega"],
                                          stream=io.StringIO(),
                                          trace_dir=tmp_path)
        assert all(outcome.ok for outcome in outcomes)
        for name in ("alpha", "omega"):
            assert (tmp_path / f"{name}.trace.jsonl").exists()
            assert (tmp_path / f"{name}.metrics.json").exists()
        records = [json.loads(line) for line in
                   (tmp_path / "alpha.trace.jsonl").read_text().splitlines()]
        names = {record["name"] for record in records
                 if record["type"] == "span"}
        assert names == {"alpha", "grid_search"}
        metrics = json.loads((tmp_path / "alpha.metrics.json").read_text())
        assert metrics["counters"]["objective_evaluations"] == 5
        # The second experiment gets a fresh registry.
        omega = json.loads((tmp_path / "omega.metrics.json").read_text())
        assert omega["counters"] == {}

    def test_failed_experiment_still_exports_its_trace(self, monkeypatch,
                                                       tmp_path):
        import json

        monkeypatch.setattr(runner, "_EXPERIMENTS", {"bad": FAKES["bad"]})
        outcomes = runner.run_experiments(["bad"], stream=io.StringIO(),
                                          trace_dir=tmp_path)
        assert outcomes[0].status == "failed"
        records = [json.loads(line) for line in
                   (tmp_path / "bad.trace.jsonl").read_text().splitlines()]
        (root,) = [record for record in records
                   if record["type"] == "span"]
        assert root["name"] == "bad" and root["status"] == "error"

    def test_status_lines_keep_reaching_the_stream(self, fake_experiments):
        stream = io.StringIO()
        runner.run_experiments(["alpha"], stream=stream)
        assert "[alpha regenerated in" in stream.getvalue()


class TestSummaryAndMain:
    def test_format_summary_counts(self, fake_experiments):
        outcomes = runner.run_experiments(["alpha", "bad"],
                                          stream=io.StringIO())
        summary = runner.format_summary(outcomes)
        assert "alpha" in summary and "bad" in summary
        assert "2 run, 1 ok, 1 not ok" in summary

    def test_main_exit_codes(self, fake_experiments, capsys):
        assert runner.main(["alpha", "omega"]) == 0
        assert runner.main(["alpha", "bad"]) == 1
        capsys.readouterr()

    def test_main_all_and_default_select_everything(self, fake_experiments,
                                                    capsys):
        assert runner.main(["--fail-fast", "all"]) == 1
        out = capsys.readouterr().out
        assert "ALPHA TABLE" in out
        assert "3 run" in out

    def test_main_list(self, fake_experiments, capsys):
        assert runner.main(["--list"]) == 0
        assert capsys.readouterr().out.split() == ["alpha", "bad", "omega"]

    def test_main_rejects_unknown_experiment(self, fake_experiments, capsys):
        with pytest.raises(SystemExit):
            runner.main(["nonexistent"])
        assert "unknown experiment" in capsys.readouterr().err


class TestExitCodes:
    @staticmethod
    def _outcome(status):
        return runner.ExperimentOutcome(name="x", status=status,
                                        elapsed_s=0.0)

    def test_taxonomy(self):
        assert runner.exit_code([self._outcome("ok")]) == runner.EXIT_OK
        assert runner.exit_code([self._outcome("failed")]) == \
            runner.EXIT_FAILED
        assert runner.exit_code([self._outcome("quarantined")]) == \
            runner.EXIT_FAILED
        assert runner.exit_code([self._outcome("skipped")]) == \
            runner.EXIT_FAILED
        # A suite timeout outranks ordinary failures.
        assert runner.exit_code([self._outcome("failed"),
                                 self._outcome("timeout")]) == \
            runner.EXIT_TIMEOUT

    def test_main_rejects_bad_parallel_flags(self, fake_experiments,
                                             capsys):
        for argv in (["--jobs", "0", "alpha"],
                     ["--retries", "-1", "alpha"],
                     ["--task-timeout", "0", "alpha"]):
            with pytest.raises(SystemExit):
                runner.main(argv)
        capsys.readouterr()


@pytest.mark.skipif(not multiprocessing_available(),
                    reason="multiprocessing unavailable")
class TestShardedSuite:
    def test_failure_quarantined_without_sinking_the_suite(
            self, fake_experiments):
        stream = io.StringIO()
        outcomes = runner.run_experiments(["alpha", "bad", "omega"],
                                          jobs=2, retries=0, stream=stream)
        assert [outcome.status for outcome in outcomes] == \
            ["ok", "quarantined", "ok"]
        assert runner.exit_code(outcomes) == runner.EXIT_FAILED
        text = stream.getvalue()
        assert "ALPHA TABLE" in text and "OMEGA TABLE" in text
        assert "table generator exploded" in outcomes[1].error

    def test_sharded_outcomes_in_request_order(self, fake_experiments):
        outcomes = runner.run_experiments(["omega", "alpha"], jobs=2,
                                          retries=0, stream=io.StringIO())
        assert [outcome.name for outcome in outcomes] == ["omega", "alpha"]
        assert all(outcome.ok for outcome in outcomes)

    def test_fail_fast_skips_unfinished_work(self, monkeypatch):
        def slow():
            time.sleep(5.0)
            return "SLOW"  # pragma: no cover

        monkeypatch.setattr(runner, "_EXPERIMENTS",
                            {"bad": FAKES["bad"], "slow": slow,
                             "late": FAKES["alpha"]})
        outcomes = runner.run_experiments(["bad", "slow", "late"],
                                          jobs=2, retries=0,
                                          fail_fast=True,
                                          stream=io.StringIO())
        assert outcomes[0].status == "quarantined"
        assert [outcome.status for outcome in outcomes[1:]] == \
            ["skipped", "skipped"]
        assert runner.exit_code(outcomes) == runner.EXIT_FAILED

    def test_summary_labels_quarantined_rows(self, fake_experiments):
        outcomes = runner.run_experiments(["alpha", "bad"], jobs=2,
                                          retries=0, stream=io.StringIO())
        summary = runner.format_summary(outcomes)
        assert "quarantined" in summary
        assert "1 ok, 1 not ok" in summary

    def test_main_jobs_flag(self, fake_experiments, capsys):
        assert runner.main(["--jobs", "2", "--retries", "0",
                            "alpha", "omega"]) == runner.EXIT_OK
        assert runner.main(["--jobs", "2", "--retries", "0",
                            "alpha", "bad"]) == runner.EXIT_FAILED
        capsys.readouterr()
