"""Tests for the fanout-buffering transform."""

import random

import pytest

from repro.errors import NetlistError
from repro.netlist.benchmarks import benchmark_circuit, s27
from repro.netlist.buffering import buffer_high_fanout, max_internal_fanout
from repro.netlist.gates import GateType
from repro.netlist.network import NetworkBuilder


def wide_net(fanout: int):
    builder = NetworkBuilder("wide")
    builder.add_input("a")
    builder.add_input("b")
    builder.add_gate("drv", GateType.AND, ["a", "b"])
    outputs = []
    for index in range(fanout):
        name = f"sink{index}"
        builder.add_gate(name, GateType.NOT, ["drv"])
        outputs.append(name)
    return builder.build(outputs=outputs)


def test_fanout_bounded_after_transform():
    network = wide_net(20)
    assert max_internal_fanout(network) == 20
    buffered = buffer_high_fanout(network, max_fanout=6)
    assert max_internal_fanout(buffered) <= 6
    assert buffered.name.endswith("-buffered")


def test_unchanged_network_returned_as_is():
    network = s27()
    assert max_internal_fanout(network) <= 6
    assert buffer_high_fanout(network, max_fanout=6) is network


def test_functional_equivalence():
    network = wide_net(15)
    buffered = buffer_high_fanout(network, max_fanout=4)
    rng = random.Random(0)
    for _ in range(30):
        assignment = {name: rng.random() < 0.5 for name in network.inputs}
        original = network.evaluate(assignment)
        transformed = buffered.evaluate(assignment)
        for output in network.outputs:
            assert original[output] == transformed[output]


def test_functional_equivalence_on_benchmark():
    network = benchmark_circuit("s400")  # max fanout 15 in the family
    buffered = buffer_high_fanout(network, max_fanout=5)
    assert max_internal_fanout(buffered) <= 5
    rng = random.Random(1)
    for _ in range(10):
        assignment = {name: rng.random() < 0.5 for name in network.inputs}
        original = network.evaluate(assignment)
        transformed = buffered.evaluate(assignment)
        for output in network.outputs:
            assert original[output] == transformed[output]


def test_tree_for_very_wide_net():
    network = wide_net(50)
    buffered = buffer_high_fanout(network, max_fanout=4)
    assert max_internal_fanout(buffered) <= 4
    # ceil(50/4)=13 first-level buffers, which themselves need a level.
    buffer_count = sum(1 for name in buffered.logic_gates
                      if "__buf" in name)
    assert buffer_count > 13
    assert buffered.depth > network.depth


def test_outputs_preserved():
    network = wide_net(20)
    buffered = buffer_high_fanout(network, max_fanout=6)
    assert buffered.outputs == network.outputs


def test_validation():
    with pytest.raises(NetlistError):
        buffer_high_fanout(s27(), max_fanout=1)
