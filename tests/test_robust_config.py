"""Boundary validation of the statistical-objective configuration.

Every construction site is a boundary: the dataclass itself, the CLI
argument handler, and the serve admission path all reject malformed
statistical inputs with a labeled :class:`OptimizationError` before any
search (or worker) runs.
"""

import dataclasses

import pytest

from repro.errors import OptimizationError
from repro.robust import RobustConfig
from repro.serve.jobs import JobRequest, robust_config_for, settings_for


class TestRobustConfigValidation:
    def test_defaults_are_valid(self):
        config = RobustConfig()
        assert config.measure == "p95"
        assert 0.0 < config.yield_target < 1.0

    def test_unknown_measure_rejected(self):
        with pytest.raises(OptimizationError, match="risk measure"):
            RobustConfig(measure="median")

    @pytest.mark.parametrize("target", [0.0, 1.0, -0.2, 1.5])
    def test_yield_target_must_be_open_interval(self, target):
        with pytest.raises(OptimizationError, match="yield_target"):
            RobustConfig(yield_target=target)

    def test_negative_sigmas_rejected(self):
        with pytest.raises(OptimizationError, match="sigma"):
            RobustConfig(sigma_within=-0.01)
        with pytest.raises(OptimizationError, match="sigma"):
            RobustConfig(sigma_die=-0.01)

    def test_sample_budgets_need_two_samples(self):
        with pytest.raises(OptimizationError, match="samples"):
            RobustConfig(samples=1)
        with pytest.raises(OptimizationError, match="cull_samples"):
            RobustConfig(cull_samples=1)

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.01])
    def test_failure_fraction_bounds(self, fraction):
        with pytest.raises(OptimizationError, match="max_failure_fraction"):
            RobustConfig(max_failure_fraction=fraction)

    def test_negative_guard_band_rejected(self):
        with pytest.raises(OptimizationError, match="yield_margin_z"):
            RobustConfig(yield_margin_z=-1.0)

    def test_resolved_is_json_native_and_complete(self):
        import json

        resolved = RobustConfig().resolved()
        assert json.loads(json.dumps(resolved)) == resolved
        assert set(resolved) == {
            "measure", "yield_target", "sigma_within", "sigma_die",
            "samples", "cull_samples", "seed", "max_failure_fraction",
            "yield_margin_z"}

    def test_resolved_clamps_cull_to_samples(self):
        resolved = RobustConfig(samples=10, cull_samples=99).resolved()
        assert resolved["cull_samples"] == 10

    def test_resolved_distinguishes_configs(self):
        base = RobustConfig()
        for change in ({"measure": "cvar"}, {"yield_target": 0.9},
                       {"sigma_within": 0.02}, {"sigma_die": 0.02},
                       {"samples": 80}, {"cull_samples": 4},
                       {"seed": 7}, {"yield_margin_z": 0.0}):
            other = dataclasses.replace(base, **change)
            assert other.resolved() != base.resolved(), change


class TestServeAdmission:
    """Statistical inputs are validated when the request is *built* —
    a malformed robust job never reaches the queue."""

    def test_nominal_request_has_no_robust_config(self):
        request = JobRequest(circuit="s27")
        assert request.robust is None
        assert robust_config_for(request) is None
        assert settings_for(request).robust is None

    def test_robust_request_resolves_its_config(self):
        request = JobRequest(circuit="s27", robust="cvar",
                             yield_target=0.9, robust_samples=16,
                             robust_seed=3)
        config = robust_config_for(request)
        assert config.measure == "cvar"
        assert config.yield_target == 0.9
        assert config.samples == 16
        assert config.seed == 3
        assert settings_for(request).robust == config

    def test_bad_measure_rejected_at_admission(self):
        with pytest.raises(OptimizationError, match="risk measure"):
            JobRequest(circuit="s27", robust="worst")

    def test_bad_yield_target_rejected_at_admission(self):
        with pytest.raises(OptimizationError, match="yield_target"):
            JobRequest(circuit="s27", robust="p95", yield_target=1.2)

    def test_negative_sigma_rejected_at_admission(self):
        with pytest.raises(OptimizationError, match="sigma"):
            JobRequest(circuit="s27", robust="p95", sigma_die=-0.1)

    def test_robust_multi_vth_rejected(self):
        with pytest.raises(OptimizationError, match="n_vth"):
            JobRequest(circuit="s27", robust="p95", n_vth=2)

    def test_robust_request_round_trips_through_dict(self):
        request = JobRequest(circuit="s27", robust="p95",
                             yield_target=0.9, sigma_within=0.02,
                             robust_samples=16, robust_margin_z=0.0)
        clone = JobRequest.from_dict(request.to_dict())
        assert clone == request
        assert robust_config_for(clone) == robust_config_for(request)

    def test_nominal_dict_without_robust_fields_still_loads(self):
        # Forward compatibility: pre-robust payloads (no robust keys)
        # must still be admissible.
        payload = JobRequest(circuit="s27").to_dict()
        for key in ("robust", "yield_target", "sigma_within", "sigma_die",
                    "robust_samples", "robust_cull_samples", "robust_seed",
                    "robust_margin_z"):
            payload.pop(key, None)
        request = JobRequest.from_dict(payload)
        assert request.robust is None


class TestCliBoundary:
    def test_cli_rejects_bad_statistical_inputs(self, capsys):
        from repro.cli import main

        code = main(["robust", "s27", "--yield-target", "1.5"])
        assert code == 1
        err = capsys.readouterr().err
        assert "yield_target" in err

    def test_cli_rejects_negative_sigma(self, capsys):
        from repro.cli import main

        code = main(["optimize", "s27", "--robust", "p95",
                     "--sigma-die", "-0.1"])
        assert code == 1
        assert "sigma" in capsys.readouterr().err
