"""The write-ahead journal: durability, tail repair, replay edge cases."""

import json

import pytest

from repro.errors import JobStateError, OptimizationError
from repro.obs.instrument import SERVE_JOURNAL_TRUNCATED
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.serve import journal
from repro.serve.jobs import (CANCELLED, DONE, QUEUED, RUNNING, Job,
                              JobRequest, replay, transition)
from repro.serve.journal import JobJournal


def job_record(job_id, seq=1, circuit="s27", **extra):
    record = {"type": "job", "job_id": job_id, "seq": seq,
              "request": JobRequest(circuit=circuit).to_dict(),
              "digest": "d" * 64, "priority": 0, "deadline_s": None}
    record.update(extra)
    return record


def state_record(job_id, state, detail=None):
    return {"type": "state", "job_id": job_id, "state": state,
            "detail": detail or {}}


class TestRead:
    def test_missing_journal_is_a_fresh_service(self, tmp_path):
        records, damage = journal.read(tmp_path / "journal.jsonl")
        assert records == []
        assert damage is None

    def test_empty_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("")
        records, damage = journal.read(path)
        assert records == []
        assert damage is None

    def test_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as log:
            log.append(job_record("job-1"))
            log.append(state_record("job-1", RUNNING))
        records, damage = journal.read(path)
        assert damage is None
        assert [record["type"] for record in records] == ["job", "state"]

    def test_half_written_last_line_is_damage_not_traceback(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as log:
            log.append(job_record("job-1"))
        good_size = path.stat().st_size
        with open(path, "a") as stream:
            stream.write('{"type": "state", "job_id": "job-1", "sta')
        records, damage = journal.read(path)
        assert len(records) == 1
        assert damage is not None
        assert damage.good_bytes == good_size
        assert "torn" in damage.reason

    def test_terminated_but_undecodable_line(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as log:
            log.append(job_record("job-1"))
        with open(path, "a") as stream:
            stream.write('{"type": "state", broken\n')
        records, damage = journal.read(path)
        assert len(records) == 1
        assert "undecodable" in damage.reason

    def test_non_object_line_is_damage(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('["not", "an", "object"]\n')
        records, damage = journal.read(path)
        assert records == []
        assert "object" in damage.reason

    def test_damage_mid_file_drops_the_suffix(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as log:
            log.append(job_record("job-1"))
        good_size = path.stat().st_size
        with open(path, "a") as stream:
            stream.write("garbage garbage\n")
            stream.write(json.dumps(state_record("job-1", RUNNING)) + "\n")
        records, damage = journal.read(path)
        assert len(records) == 1
        assert damage.good_bytes == good_size


class TestOpenRepair:
    def test_clean_journal_untouched(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as log:
            log.append(job_record("job-1"))
        before = path.read_bytes()
        repaired, records = JobJournal.open_repair(path)
        repaired.close()
        assert path.read_bytes() == before
        assert len(records) == 1

    def test_torn_tail_truncated_and_counted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as log:
            log.append(job_record("job-1"))
        good = path.read_bytes()
        with open(path, "a") as stream:
            stream.write('{"torn')
        registry = MetricsRegistry()
        with use_metrics(registry):
            repaired, records = JobJournal.open_repair(path)
        assert path.read_bytes() == good
        assert len(records) == 1
        assert registry.counters()[SERVE_JOURNAL_TRUNCATED] == 1
        # The repaired journal appends cleanly after the truncation.
        repaired.append(state_record("job-1", RUNNING))
        repaired.close()
        records, damage = journal.read(path)
        assert damage is None
        assert len(records) == 2

    def test_missing_journal_opens_fresh(self, tmp_path):
        repaired, records = JobJournal.open_repair(tmp_path / "j.jsonl")
        assert records == []
        repaired.append(job_record("job-1"))
        repaired.close()
        assert len(journal.read(tmp_path / "j.jsonl")[0]) == 1


class TestReplay:
    def test_lifecycle_replay(self):
        jobs = replay([
            job_record("job-1"),
            state_record("job-1", RUNNING),
            state_record("job-1", DONE, {"cached": False}),
        ])
        assert jobs["job-1"].state == DONE
        assert jobs["job-1"].detail == {"cached": False}

    def test_duplicate_job_ids_keep_the_first(self, caplog):
        with caplog.at_level("WARNING", logger="repro.serve"):
            jobs = replay([
                job_record("job-1", seq=1, circuit="s27"),
                job_record("job-1", seq=2, circuit="s298"),
            ])
        assert len(jobs) == 1
        assert jobs["job-1"].request.circuit == "s27"
        assert any("duplicate" in message for message in caplog.messages)

    def test_transition_for_unknown_job_skipped(self, caplog):
        with caplog.at_level("WARNING", logger="repro.serve"):
            jobs = replay([state_record("ghost", RUNNING)])
        assert jobs == {}
        assert any("unknown job" in message for message in caplog.messages)

    def test_illegal_transition_skipped_not_fatal(self, caplog):
        with caplog.at_level("WARNING", logger="repro.serve"):
            jobs = replay([
                job_record("job-1"),
                state_record("job-1", DONE),  # QUEUED -> DONE: illegal
            ])
        assert jobs["job-1"].state == QUEUED
        assert any("illegal transition" in message
                   for message in caplog.messages)

    def test_unparseable_request_skipped(self, caplog):
        bad = job_record("job-1")
        bad["request"] = {"circuit": "s27", "bogus_knob": 1}
        with caplog.at_level("WARNING", logger="repro.serve"):
            jobs = replay([bad])
        assert jobs == {}

    def test_unknown_record_type_skipped(self, caplog):
        with caplog.at_level("WARNING", logger="repro.serve"):
            jobs = replay([{"type": "mystery"}])
        assert jobs == {}


class TestStateMachine:
    def test_terminal_states_are_terminal(self):
        job = Job(job_id="job-1", request=JobRequest(circuit="s27"),
                  digest="d" * 64, seq=1)
        transition(job, RUNNING)
        transition(job, DONE)
        with pytest.raises(JobStateError):
            transition(job, RUNNING)

    def test_queued_can_only_run_or_cancel(self):
        job = Job(job_id="job-1", request=JobRequest(circuit="s27"),
                  digest="d" * 64, seq=1)
        with pytest.raises(JobStateError):
            transition(job, DONE)
        transition(job, CANCELLED)
        assert job.terminal

    def test_running_requeue_is_legal(self):
        job = Job(job_id="job-1", request=JobRequest(circuit="s27"),
                  digest="d" * 64, seq=1)
        transition(job, RUNNING)
        transition(job, QUEUED, {"recovered": True})
        assert job.state == QUEUED
        assert job.detail == {"recovered": True}

    def test_unknown_state_rejected(self):
        job = Job(job_id="job-1", request=JobRequest(circuit="s27"),
                  digest="d" * 64, seq=1)
        with pytest.raises(JobStateError):
            transition(job, "EXPLODED")


class TestRequestSchema:
    def test_unknown_fields_rejected(self):
        with pytest.raises(OptimizationError, match="unknown job request"):
            JobRequest.from_dict({"circuit": "s27", "prioritiy": 3})

    def test_round_trip(self):
        request = JobRequest(circuit="s298", priority=5, deadline_s=12.5,
                             fallback=True)
        assert JobRequest.from_dict(request.to_dict()) == request

    def test_missing_circuit_rejected(self):
        with pytest.raises(OptimizationError, match="circuit"):
            JobRequest.from_dict({"priority": 1})
