"""Tests for the slack reporting."""

import pytest

from repro.analysis.timing_report import slack_report
from repro.errors import ReproError
from repro.optimize.heuristic import optimize_joint


@pytest.fixture(scope="module")
def s298_report():
    from repro.experiments.common import build_problem

    problem = build_problem("s298", 0.1)
    result = optimize_joint(problem)
    return problem, result, slack_report(problem, result)


def test_gate_slacks_nonnegative(s298_report):
    _, _, report = s298_report
    assert all(slack >= 0.0 for slack in report.gate_slacks.values())


def test_every_gate_reported(s298_report):
    problem, _, report = s298_report
    assert set(report.gate_slacks) == set(problem.network.logic_gates)


def test_endpoints_sorted_worst_first(s298_report):
    _, _, report = s298_report
    slacks = [slack for _, slack in report.endpoint_slacks]
    assert slacks == sorted(slacks)
    assert report.worst_endpoint == report.endpoint_slacks[0]


def test_worst_endpoint_matches_critical_delay(s298_report):
    problem, result, report = s298_report
    _, worst_slack = report.worst_endpoint
    assert worst_slack == pytest.approx(
        problem.cycle_time - result.timing.critical_delay, rel=1e-9)
    # The optimized design meets timing: worst slack >= ~0.
    assert worst_slack >= -1e-12


def test_some_gates_are_budget_critical(s298_report):
    # Minimal-width sizing puts most gates exactly at their budget.
    _, _, report = s298_report
    assert len(report.critical_gates) > 0


def test_histogram_partitions_gates(s298_report):
    problem, _, report = s298_report
    histogram = report.histogram(bins=6)
    assert len(histogram) == 6
    assert sum(count for _, count in histogram) \
        == problem.network.gate_count
    edges = [edge for edge, _ in histogram]
    assert edges == sorted(edges)
    with pytest.raises(ReproError):
        report.histogram(bins=0)
