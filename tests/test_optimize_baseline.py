"""Tests for the fixed-Vth baseline optimizer."""

import pytest

from repro.errors import InfeasibleError
from repro.optimize.baseline import DEFAULT_FIXED_VTH, optimize_fixed_vth
from repro.optimize.problem import OptimizationProblem
from repro.units import GHZ


def test_baseline_feasible(s27_problem):
    result = optimize_fixed_vth(s27_problem)
    assert result.feasible
    assert result.design.distinct_vths() == (DEFAULT_FIXED_VTH,)


def test_baseline_leakage_negligible(s27_problem):
    # At Vth = 700 mV static energy is many orders below dynamic.
    result = optimize_fixed_vth(s27_problem)
    assert result.energy.static < 1e-4 * result.energy.dynamic


def test_baseline_prefers_lowest_feasible_vdd(s27_problem):
    # Dynamic energy dominates and scales with Vdd^2, so the chosen Vdd
    # must sit near the feasibility edge: a slightly lower Vdd fails.
    from repro.optimize.width_search import size_widths

    result = optimize_fixed_vth(s27_problem)
    budgets = s27_problem.budgets()
    probe = size_widths(s27_problem.ctx, budgets.budgets,
                        result.design.vdd * 0.80, DEFAULT_FIXED_VTH,
                        repair_ceiling=budgets.effective_cycle_time)
    if probe.feasible:
        # Feasible but must cost more energy (width blow-up).
        from repro.power.energy import total_energy

        energy = total_energy(s27_problem.ctx, result.design.vdd * 0.80,
                              DEFAULT_FIXED_VTH, probe.widths,
                              s27_problem.frequency).total
        assert energy >= result.total_energy * 0.999


def test_baseline_alternate_vth(s27_problem):
    low = optimize_fixed_vth(s27_problem, vth=0.4)
    high = optimize_fixed_vth(s27_problem, vth=0.7)
    # Lower fixed threshold unlocks lower Vdd.
    assert low.design.vdd <= high.design.vdd + 1e-9


def test_baseline_custom_range(s27_problem):
    result = optimize_fixed_vth(s27_problem, vdd_range=(2.5, 3.3))
    assert 2.5 <= result.design.vdd <= 3.3


def test_baseline_infeasible_raises(s27_problem):
    impossible = OptimizationProblem(ctx=s27_problem.ctx,
                                     frequency=100 * GHZ)
    with pytest.raises(InfeasibleError, match="no Vdd meets"):
        optimize_fixed_vth(impossible)


def test_baseline_details(s27_problem):
    result = optimize_fixed_vth(s27_problem)
    assert result.details["strategy"] == "fixed-vth"
    assert result.details["fixed_vth"] == DEFAULT_FIXED_VTH
