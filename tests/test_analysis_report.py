"""Tests for table rendering."""

import pytest

from repro.analysis.report import format_delay, format_energy, format_table


def test_format_energy_engineering_units():
    assert format_energy(1.5e-13) == "150.000 fJ"
    assert format_energy(2e-12) == "2.000 pJ"


def test_format_delay():
    assert format_delay(3.3e-9) == "3.300 ns"


def test_table_alignment():
    text = format_table(["col", "x"], [["a", 1], ["long-cell", 22]])
    lines = text.splitlines()
    assert lines[0].startswith("col")
    assert "long-cell" in lines[3]
    # Header separator matches widths.
    assert set(lines[1].replace(" ", "")) == {"-"}


def test_table_title():
    text = format_table(["a"], [["x"]], title="My Table")
    assert text.splitlines()[0] == "My Table"
    assert text.splitlines()[1] == "========"


def test_table_row_width_mismatch():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_table_empty_rows():
    text = format_table(["a", "b"], [])
    assert "a" in text and "b" in text
