"""Tests for the ROBDD engine."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.core import BDD, BDDFunction
from repro.errors import ReproError


def build_vars(count):
    manager = BDD(count)
    return manager, [manager.variable(level) for level in range(count)]


def test_terminals():
    manager = BDD(2)
    assert manager.true.is_true
    assert manager.false.is_false
    assert (~manager.true).is_false


def test_variable_bounds():
    manager = BDD(2)
    with pytest.raises(ReproError):
        manager.variable(2)
    with pytest.raises(ReproError):
        manager.variable(-1)


def test_hash_consing_gives_canonical_forms():
    manager, (a, b) = build_vars(2)
    left = (a & b) | (a & ~b)
    assert left == a  # simplifies to a structurally
    assert (a ^ a).is_false
    assert (a | ~a).is_true
    assert (a & ~a).is_false


def test_de_morgan():
    manager, (a, b) = build_vars(2)
    assert ~(a & b) == (~a | ~b)
    assert ~(a | b) == (~a & ~b)


def test_different_managers_rejected():
    first = BDD(1).variable(0)
    second = BDD(1).variable(0)
    with pytest.raises(ReproError):
        first & second


def test_evaluate_matches_truth_table():
    manager, (a, b, c) = build_vars(3)
    function = (a & b) ^ c
    for bits in itertools.product([False, True], repeat=3):
        expected = (bits[0] and bits[1]) != bits[2]
        assignment = {0: bits[0], 1: bits[1], 2: bits[2]}
        assert function.evaluate(assignment) == expected


def test_evaluate_missing_variable():
    manager, (a, b) = build_vars(2)
    with pytest.raises(ReproError, match="misses variable"):
        (a & b).evaluate({0: True})


def test_restrict():
    manager, (a, b) = build_vars(2)
    function = a & b
    assert function.restrict(0, True) == b
    assert function.restrict(0, False).is_false
    assert function.restrict(1, True) == a


def test_support():
    manager, (a, b, c) = build_vars(3)
    assert (a & c).support() == (0, 2)
    assert manager.true.support() == ()
    # Dependence that cancels drops out of the support.
    assert ((a & b) | (a & ~b)).support() == (0,)


def test_probability_independent():
    manager, (a, b) = build_vars(2)
    function = a & b
    assert function.probability([0.5, 0.5]) == pytest.approx(0.25)
    assert (a | b).probability([0.2, 0.4]) == pytest.approx(
        1 - 0.8 * 0.6)
    assert (a ^ b).probability([0.3, 0.3]) == pytest.approx(
        0.3 * 0.7 + 0.7 * 0.3)


def test_probability_validation():
    manager, (a,) = build_vars(1)
    with pytest.raises(ReproError):
        a.probability([])
    with pytest.raises(ReproError):
        a.probability([1.5])


def test_satisfying_fraction():
    manager, (a, b, c) = build_vars(3)
    # Majority function: 4 of 8 assignments.
    majority = (a & b) | (a & c) | (b & c)
    assert majority.satisfying_fraction() == pytest.approx(0.5)


def test_paired_probability_independent_pairs_reduce_to_product():
    # With a joint that factorizes, paired == plain probability.
    manager = BDD(4)
    x0 = manager.variable(0)
    y0 = manager.variable(1)
    function = x0 & y0
    p, q = 0.3, 0.6
    joints = [(1 - p, 0.0, 0.0, p), (1.0, 0.0, 0.0, 0.0)]
    # First pair perfectly correlated (x == y), second unused.
    value = function.paired_probability(joints, [p, 0.0], [p, 0.0])
    assert value == pytest.approx(p)  # x0 & y0 = "pair is 11"


def test_paired_probability_anticorrelated():
    manager = BDD(2)
    x = manager.variable(0)
    y = manager.variable(1)
    toggled = x ^ y
    # Always toggling input: P(01) = P(10) = 1/2.
    joints = [(0.0, 0.5, 0.5, 0.0)]
    assert toggled.paired_probability(joints, [0.5], [0.5]) \
        == pytest.approx(1.0)
    # Never toggling: XOR is never 1.
    joints = [(0.5, 0.0, 0.0, 0.5)]
    assert toggled.paired_probability(joints, [0.5], [0.5]) \
        == pytest.approx(0.0)


def test_paired_probability_validation():
    manager = BDD(2)
    x = manager.variable(0)
    with pytest.raises(ReproError, match="sum to 1"):
        x.paired_probability([(0.5, 0.5, 0.5, 0.5)], [0.5], [0.5])
    odd_manager = BDD(3)
    with pytest.raises(ReproError, match="even variable"):
        odd_manager.variable(0).paired_probability([], [], [])


@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=255))
@settings(max_examples=100)
def test_apply_matches_bitwise_semantics(mask_f, mask_g):
    """Treat 3-var truth tables as 8-bit masks; BDD ops == bitwise ops."""
    manager, variables = build_vars(3)

    def from_mask(mask):
        function = manager.false
        for row in range(8):
            if not (mask >> row) & 1:
                continue
            term = manager.true
            for var_index in range(3):
                literal = variables[var_index]
                if not (row >> var_index) & 1:
                    literal = ~literal
                term = term & literal
            function = function | term
        return function

    f = from_mask(mask_f)
    g = from_mask(mask_g)
    for row in range(8):
        assignment = {i: bool((row >> i) & 1) for i in range(3)}
        assert (f & g).evaluate(assignment) \
            == (f.evaluate(assignment) and g.evaluate(assignment))
        assert (f | g).evaluate(assignment) \
            == (f.evaluate(assignment) or g.evaluate(assignment))
        assert (f ^ g).evaluate(assignment) \
            == (f.evaluate(assignment) != g.evaluate(assignment))


@given(st.integers(min_value=0, max_value=255))
@settings(max_examples=60)
def test_probability_equals_weighted_truth_table(mask):
    manager, variables = build_vars(3)
    function = manager.false
    for row in range(8):
        if not (mask >> row) & 1:
            continue
        term = manager.true
        for var_index in range(3):
            literal = variables[var_index]
            if not (row >> var_index) & 1:
                literal = ~literal
            term = term & literal
        function = function | term
    probs = [0.2, 0.5, 0.8]
    expected = 0.0
    for row in range(8):
        if not (mask >> row) & 1:
            continue
        weight = 1.0
        for var_index in range(3):
            bit = (row >> var_index) & 1
            weight *= probs[var_index] if bit else 1 - probs[var_index]
        expected += weight
    assert function.probability(probs) == pytest.approx(expected)
