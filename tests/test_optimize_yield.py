"""Tests for the yield-targeted robust optimizer."""

import pytest

from repro.analysis.montecarlo import VariationStatistics
from repro.errors import InfeasibleError, OptimizationError
from repro.optimize.heuristic import HeuristicSettings
from repro.optimize.yield_opt import YieldTarget, optimize_for_yield

FAST = HeuristicSettings(grid_vdd=9, grid_vth=7, refine_iters=6,
                         refine_rounds=1)
FAST_TARGET_KWARGS = dict(samples=60, iterations=3, seed=5)


def test_target_validation():
    with pytest.raises(OptimizationError):
        YieldTarget(timing_yield=0.0)
    with pytest.raises(OptimizationError):
        YieldTarget(max_tolerance=1.0)
    with pytest.raises(OptimizationError):
        YieldTarget(iterations=0)


def test_zero_variation_accepts_nominal(s27_problem):
    target = YieldTarget(timing_yield=0.99,
                         statistics=VariationStatistics(sigma_die=0.0,
                                                        sigma_within=0.0),
                         **FAST_TARGET_KWARGS)
    result = optimize_for_yield(s27_problem, target=target, settings=FAST)
    assert result.tolerance == 0.0
    assert result.timing_yield == 1.0


def test_variation_forces_positive_tolerance(s27_problem):
    statistics = VariationStatistics(sigma_die=0.03, sigma_within=0.02)
    target = YieldTarget(timing_yield=0.95, statistics=statistics,
                         **FAST_TARGET_KWARGS)
    result = optimize_for_yield(s27_problem, target=target, settings=FAST)
    assert result.tolerance > 0.0
    assert result.timing_yield >= 0.95
    assert result.result.feasible


def test_compliant_design_costs_more_than_nominal(s27_problem):
    from repro.optimize.heuristic import optimize_joint

    statistics = VariationStatistics(sigma_die=0.03, sigma_within=0.02)
    target = YieldTarget(timing_yield=0.95, statistics=statistics,
                         **FAST_TARGET_KWARGS)
    robust = optimize_for_yield(s27_problem, target=target, settings=FAST)
    nominal = optimize_joint(s27_problem, settings=FAST)
    assert robust.result.total_energy >= nominal.total_energy * 0.999


def test_unreachable_target_raises(s27_problem):
    statistics = VariationStatistics(sigma_die=0.25, sigma_within=0.20)
    target = YieldTarget(timing_yield=0.999, statistics=statistics,
                         max_tolerance=0.05, **FAST_TARGET_KWARGS)
    with pytest.raises(InfeasibleError, match="unreachable"):
        optimize_for_yield(s27_problem, target=target, settings=FAST)


# --- fresh-seed verification -------------------------------------------------


def test_verification_uses_a_fresh_seed_and_is_recorded(s27_problem):
    statistics = VariationStatistics(sigma_die=0.03, sigma_within=0.02)
    target = YieldTarget(timing_yield=0.95, statistics=statistics,
                         **FAST_TARGET_KWARGS)
    result = optimize_for_yield(s27_problem, target=target, settings=FAST)
    assert result.verify_seed == target.seed + 1
    assert result.verification is not None
    assert result.verification.samples == target.samples
    assert result.verified_yield == result.verification.timing_yield
    recorded = result.result.details["yield_verification"]
    assert recorded["seed"] == result.verify_seed
    assert recorded["timing_yield"] == result.verified_yield
    assert recorded["samples_failed"] == 0


def test_explicit_verify_seed_is_honoured(s27_problem):
    statistics = VariationStatistics(sigma_die=0.0, sigma_within=0.0)
    target = YieldTarget(timing_yield=0.99, statistics=statistics,
                         **FAST_TARGET_KWARGS)
    result = optimize_for_yield(s27_problem, target=target, settings=FAST,
                                verify_seed=123)
    assert result.verify_seed == 123
    assert result.result.details["yield_verification"]["seed"] == 123


def test_verify_seed_equal_to_selection_seed_is_rejected(s27_problem):
    target = YieldTarget(**FAST_TARGET_KWARGS)
    with pytest.raises(OptimizationError, match="verify_seed"):
        optimize_for_yield(s27_problem, target=target, settings=FAST,
                           verify_seed=target.seed)
