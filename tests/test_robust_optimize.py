"""The robust objective threaded through the search stack.

The contracts mirror the search-parity harness: a robust search must be
byte-identical serial and under a worker pool, resume identically from
a checkpoint, refuse a checkpoint with a different statistical
identity, and label every statistical degradation — on top of actually
optimizing the configured risk measure under the yield constraint.
"""

import dataclasses
import json

import pytest

from repro.engine import use_engine
from repro.errors import CheckpointError, RunCancelled
from repro.obs.metrics import MetricsRegistry
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.robust import (RobustConfig, compare_robust, corner_key,
                          optimize_robust)
from repro.runtime.controller import RunController
from repro.runtime.fallback import DegradedResult
from repro.runtime.faults import FaultInjector, FaultSpec
from repro.runtime.pool import multiprocessing_available
from repro.runtime.supervisor import ParallelPlan
from repro.serve.jobs import JobRequest, search_fingerprint_for
from repro.serve.service import OptimizationService

needs_mp = pytest.mark.skipif(not multiprocessing_available(),
                              reason="multiprocessing unavailable")

# With the z=1 guard band a perfect n/n yield certifies a target of
# n/(n+1): 20 samples is the smallest budget that can clear 0.95.
CONFIG = RobustConfig(samples=20, cull_samples=6, seed=1)
FAST = dict(grid_vdd=9, grid_vth=7, refine_iters=4, refine_rounds=1,
            engine="fast")


def robust_settings(**overrides):
    merged = dict(FAST, robust=CONFIG)
    merged.update(overrides)
    return HeuristicSettings(**merged)


def identity(result):
    """The byte-level identity of a robust result (design + stats)."""
    return json.dumps({
        "vdd": result.design.vdd,
        "vth": result.design.vth,
        "widths": dict(result.design.widths),
        "energy": result.energy.total,
        "evaluations": result.evaluations,
        "robust": result.details["robust"],
    }, sort_keys=True)


@pytest.fixture(scope="module")
def s27_robust(s27_problem):
    return optimize_joint(s27_problem, settings=robust_settings())


class TestRobustSearch:
    def test_end_to_end_feasible_with_details(self, s27_problem,
                                              s27_robust):
        result = s27_robust
        assert result.feasible
        robust = result.details["robust"]
        assert robust["config"] == CONFIG.resolved()
        assert robust["corners"] > 0
        assert robust["samples"] > 0
        assert robust["samples_quarantined"] == 0
        assert robust["corners_degraded"] == 0
        estimate = robust["estimate"]
        assert estimate["feasible"] is True
        assert estimate["measure"] == "p95"
        assert result.details.get("degraded") is not True

    def test_best_corner_estimate_matches_the_stream(self, s27_problem,
                                                     s27_robust):
        # The recorded winning estimate must be reproducible from the
        # counter-seeded stream alone.
        from repro.robust.estimator import estimate_design

        recorded = s27_robust.details["robust"]["estimate"]
        replayed = estimate_design(s27_problem, s27_robust.design,
                                   CONFIG, engine="fast")
        assert replayed.to_dict() == recorded

    def test_robust_optimum_spends_no_less_energy_than_nominal(
            self, s27_problem, s27_robust):
        nominal = optimize_joint(s27_problem,
                                 settings=HeuristicSettings(**FAST))
        assert s27_robust.energy.total >= nominal.energy.total * 0.999

    def test_measures_change_the_objective(self, s27_problem):
        mean = optimize_joint(s27_problem, settings=robust_settings(
            robust=dataclasses.replace(CONFIG, measure="mean")))
        assert mean.details["robust"]["estimate"]["measure"] == "mean"

    def test_random_strategy_carries_the_objective(self, s27_problem):
        result = optimize_joint(s27_problem, settings=robust_settings(
            strategy="random", search_budget=8))
        assert result.details["search"]["name"] == "random"
        assert result.details["robust"]["corners"] > 0


class TestInvariance:
    @needs_mp
    def test_serial_and_pooled_byte_identical(self, s27_problem,
                                              s27_robust):
        pooled = optimize_joint(s27_problem, settings=robust_settings(
            parallel=ParallelPlan(jobs=4, heartbeat_s=0.05)))
        assert identity(pooled) == identity(s27_robust)
        assert pooled.details["parallel_jobs"] == 4

    def test_interrupted_search_resumes_identically(self, s27_problem,
                                                    s27_robust, tmp_path):
        path = tmp_path / "robust.ckpt"
        box = {}
        events = []

        def cancel_after_five(event):
            events.append(event)
            if len(events) == 5:
                box["controller"].cancel()

        controller = RunController(progress=cancel_after_five,
                                   checkpoint_path=path)
        box["controller"] = controller
        with pytest.raises(RunCancelled):
            optimize_joint(s27_problem, settings=robust_settings(
                controller=controller))
        assert path.exists()

        resumed = optimize_joint(s27_problem, settings=robust_settings(),
                                 resume_from=path)
        assert identity(resumed) == identity(s27_robust)
        assert resumed.details["resumed_corners"] > 0

    def test_nominal_checkpoint_refuses_a_robust_resume(self, s27_problem,
                                                        tmp_path):
        path = tmp_path / "nominal.ckpt"
        controller = RunController(checkpoint_path=path)
        optimize_joint(s27_problem, settings=HeuristicSettings(
            **FAST, controller=controller))
        assert path.exists()
        with pytest.raises(CheckpointError, match="different search"):
            optimize_joint(s27_problem, settings=robust_settings(),
                           resume_from=path)

    def test_fingerprint_separates_statistical_identities(self):
        nominal = search_fingerprint_for(JobRequest(circuit="s27"))
        robust = search_fingerprint_for(JobRequest(circuit="s27",
                                                   robust="p95"))
        reseeded = search_fingerprint_for(JobRequest(circuit="s27",
                                                     robust="p95",
                                                     robust_seed=3))
        assert nominal["robust"] is None
        assert robust["robust"]["measure"] == "p95"
        assert robust != nominal
        assert reseeded != robust


class TestDegradationLabeling:
    def test_transient_faults_label_the_result(self, s27_problem):
        # Faults live at the scalar model seams; a robust search over
        # them must quarantine the poisoned samples and come back as a
        # labeled DegradedResult, never crash, never silently pass.
        plan = [FaultSpec(seam="energy", kind="nan", at_call=40, count=60)]
        with use_engine("scalar"), FaultInjector(plan) as injector:
            result = optimize_joint(s27_problem, settings=robust_settings(
                engine="scalar"))
        assert injector.triggered
        assert isinstance(result, DegradedResult)
        assert result.degradation["stage"] == "robust_estimate"
        assert result.degradation["samples_quarantined"] > 0
        assert result.details["robust"]["samples_quarantined"] > 0
        assert result.feasible


class TestOptimizeRobust:
    def test_verification_uses_a_fresh_seed(self, s27_problem):
        result = optimize_robust(s27_problem, CONFIG,
                                 settings=HeuristicSettings(**FAST))
        verification = result.details["robust"]["verification"]
        assert verification["seed"] == CONFIG.seed + 1
        assert verification["samples_used"] == CONFIG.samples
        assert verification["feasible"] is True
        assert verification["timing_yield"] >= CONFIG.yield_target
        assert not isinstance(result, DegradedResult)

    def test_yield_miss_is_a_labeled_degradation(self, s27_problem):
        # The winner's curse, reproduced: two lucky samples and no
        # guard band let the search certify a boundary corner that a
        # 40-sample fresh-seed verification shows misses the target.
        # The result must come back labeled, never silently.
        config = RobustConfig(samples=2, cull_samples=2, seed=1,
                              yield_margin_z=0.0, sigma_die=0.05,
                              sigma_within=0.03)
        result = optimize_robust(s27_problem, config,
                                 settings=HeuristicSettings(
                                     grid_vdd=9, grid_vth=7,
                                     refine_iters=1, refine_rounds=1,
                                     engine="fast"),
                                 verify_samples=40)
        assert isinstance(result, DegradedResult)
        degradation = result.degradation
        assert degradation["stage"] == "robust_verification"
        miss = degradation["yield_miss"]
        assert miss["verified_yield"] < miss["target"] == 0.95
        verification = result.details["robust"]["verification"]
        assert verification["samples_used"] == 40
        assert verification["seed"] == config.seed + 1

    def test_compare_reports_all_three_legs(self, s27_problem):
        report = compare_robust(s27_problem, CONFIG,
                                settings=HeuristicSettings(**FAST))
        assert set(report["legs"]) == {"nominal", "worst_case", "robust"}
        for leg in report["legs"].values():
            assert leg["verification"]["samples_used"] \
                == report["verify_samples"]
        assert report["legs"]["robust"]["meets_yield"]
        assert report["verify_seed"] == CONFIG.seed + 1
        # Guarding the worst case costs energy; the robust optimum
        # must not be the most expensive of the three.
        worst = report["legs"]["worst_case"]["nominal_energy"]
        robust = report["legs"]["robust"]["nominal_energy"]
        assert robust <= worst * 1.001


class TestServeIntegration:
    def test_robust_job_completes_with_robust_payload(self, tmp_path):
        service = OptimizationService(tmp_path, registry=MetricsRegistry())
        job = service.submit(JobRequest(
            circuit="s27", grid_vdd=6, grid_vth=5, robust="p95",
            yield_target=0.8, robust_samples=8, robust_cull_samples=4))
        assert service.step() == 1
        payload = json.loads((tmp_path / "results"
                              / f"{job.job_id}.json").read_text())
        robust = payload["robust"]
        assert robust["corners"] > 0
        assert robust["estimate"]["measure"] == "p95"
        assert payload["summary"]["feasible"] is True

    def test_robust_and_nominal_requests_never_share_cache(self, tmp_path):
        service = OptimizationService(tmp_path, registry=MetricsRegistry())
        base = dict(circuit="s27", grid_vdd=5, grid_vth=4)
        robust_kwargs = dict(base, robust="p95", yield_target=0.8,
                             robust_samples=8, robust_cull_samples=4)
        nominal = service.submit(JobRequest(**base))
        service.step()
        robust = service.submit(JobRequest(**robust_kwargs))
        service.step()
        assert nominal.detail["cached"] is False
        assert robust.detail["cached"] is False
        # Identical resubmission of the robust request IS a cache hit.
        again = service.submit(JobRequest(**robust_kwargs))
        service.step()
        assert again.detail["cached"] is True


def test_corner_key_round_trips_floats():
    assert corner_key(0.1 + 0.2, 0.3) == corner_key(0.30000000000000004,
                                                    0.3)
    assert corner_key(0.9, 0.25) != corner_key(0.9, 0.250000001)
