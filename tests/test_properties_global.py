"""Global property tests: cross-module invariants under random inputs.

These are the "laws" of the whole system rather than of one module: the
reduced objective's monotone responses, end-to-end feasibility on random
networks, conservation-style accounting identities.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.activity.profiles import uniform_profile
from repro.netlist.generator import GeneratorSpec, generate_network
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.problem import OptimizationProblem
from repro.optimize.width_search import size_widths
from repro.power.energy import total_energy
from repro.technology.process import Technology
from repro.units import MHZ

FAST = HeuristicSettings(grid_vdd=9, grid_vth=7, refine_iters=6,
                         refine_rounds=1)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_random_networks_optimize_end_to_end(seed):
    """Any small random network optimizes to an STA-verified design."""
    spec = GeneratorSpec(name=f"r{seed}", n_inputs=6, n_outputs=5,
                         n_gates=40, depth=5, seed=seed)
    network = generate_network(spec)
    profile = uniform_profile(network, probability=0.5, density=0.1)
    problem = OptimizationProblem.build(Technology.default(), network,
                                        profile, frequency=250 * MHZ)
    result = optimize_joint(problem, settings=FAST)
    assert result.feasible
    assert result.energy.static > 0.0
    assert result.energy.dynamic > 0.0
    # Re-evaluation from the design point reproduces the reported totals.
    assert result.design.evaluate_energy(problem).total \
        == pytest.approx(result.total_energy)


@given(vdd=st.floats(min_value=1.0, max_value=3.3),
       vth=st.floats(min_value=0.1, max_value=0.4))
@settings(max_examples=25, deadline=None)
def test_sized_energy_monotone_in_cycle_time(s27_problem, vdd, vth):
    """More cycle time never costs dynamic energy at a fixed corner.

    Budgets scale with T_c, so required widths shrink; static energy per
    cycle grows with the period, but the *switched capacitance* (and so
    dynamic energy at fixed Vdd) is monotone non-increasing.
    """
    from repro.timing.budgeting import assign_delay_budgets

    network = s27_problem.network
    tight = assign_delay_budgets(network, 1.0 / (400 * MHZ))
    loose = assign_delay_budgets(network, 1.0 / (200 * MHZ))
    sized_tight = size_widths(s27_problem.ctx, tight.budgets, vdd, vth)
    sized_loose = size_widths(s27_problem.ctx, loose.budgets, vdd, vth)
    if not (sized_tight.feasible and sized_loose.feasible):
        return  # corner infeasible at the tight clock: nothing to compare
    energy_tight = total_energy(s27_problem.ctx, vdd, vth,
                                sized_tight.widths, 400 * MHZ)
    energy_loose = total_energy(s27_problem.ctx, vdd, vth,
                                sized_loose.widths, 200 * MHZ)
    assert energy_loose.dynamic <= energy_tight.dynamic * (1 + 1e-9)


@given(density=st.floats(min_value=0.01, max_value=0.5))
@settings(max_examples=15, deadline=None)
def test_dynamic_energy_linear_in_uniform_activity(tech, density):
    """Doubling every input's density doubles total dynamic energy.

    Transition-density propagation is linear in the input densities (at
    fixed probabilities) as long as no Markov clamp engages — checked by
    construction at p = 0.5, D <= 0.5.
    """
    from repro.netlist.benchmarks import s27
    from repro.context import CircuitContext

    network = s27()
    base = CircuitContext(tech, network,
                          uniform_profile(network, 0.5, density))
    double = CircuitContext(tech, network,
                            uniform_profile(network, 0.5,
                                            min(2 * density, 0.98)))
    widths = base.uniform_widths(4.0)
    energy_base = total_energy(base, 1.0, 0.2, widths, 300 * MHZ)
    energy_double = total_energy(double, 1.0, 0.2, widths, 300 * MHZ)
    scale = min(2 * density, 0.98) / density
    assert energy_double.dynamic == pytest.approx(
        scale * energy_base.dynamic, rel=1e-6)
    # Static energy is activity-independent.
    assert energy_double.static == pytest.approx(energy_base.static)


def test_energy_accounting_identity(s27_problem):
    """Per-gate energies sum exactly to the reported totals."""
    widths = s27_problem.ctx.uniform_widths(4.0)
    report = total_energy(s27_problem.ctx, 1.0, 0.2, widths,
                          s27_problem.frequency)
    assert sum(report.per_gate_static.values()) \
        == pytest.approx(report.static)
    assert sum(report.per_gate_dynamic.values()) \
        == pytest.approx(report.dynamic)
    assert report.static_fraction == pytest.approx(
        report.static / report.total)
