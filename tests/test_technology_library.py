"""Tests for deck serialization and the built-in library."""

import json

import pytest

from repro.errors import TechnologyError
from repro.technology.library import (
    builtin_decks,
    deck,
    deck_names,
    load_technology,
    save_technology,
    technology_from_dict,
    technology_to_dict,
)
from repro.technology.process import Technology


def test_roundtrip_dict():
    original = Technology.default()
    rebuilt = technology_from_dict(technology_to_dict(original))
    assert rebuilt == original


def test_roundtrip_file(tmp_path):
    original = Technology.default().with_overrides(alpha=1.35,
                                                   name="custom")
    path = tmp_path / "deck.json"
    save_technology(original, path)
    loaded = load_technology(path)
    assert loaded == original
    assert loaded.alpha == 1.35


def test_missing_format_marker():
    with pytest.raises(TechnologyError, match="format marker"):
        technology_from_dict({"alpha": 1.2})


def test_wrong_version():
    payload = technology_to_dict(Technology.default())
    payload["_version"] = 99
    with pytest.raises(TechnologyError, match="version"):
        technology_from_dict(payload)


def test_unknown_field_rejected():
    payload = technology_to_dict(Technology.default())
    payload["frobnication"] = 3
    with pytest.raises(TechnologyError, match="unknown technology field"):
        technology_from_dict(payload)


def test_missing_field_rejected():
    payload = technology_to_dict(Technology.default())
    del payload["alpha"]
    with pytest.raises(TechnologyError, match="missing field"):
        technology_from_dict(payload)


def test_invalid_values_rejected_on_load(tmp_path):
    payload = technology_to_dict(Technology.default())
    payload["alpha"] = 5.0  # outside [1, 2]
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(TechnologyError):
        load_technology(path)


def test_invalid_json(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text("{not json")
    with pytest.raises(TechnologyError, match="invalid JSON"):
        load_technology(path)
    path.write_text("[1, 2]")
    with pytest.raises(TechnologyError, match="JSON object"):
        load_technology(path)


def test_builtin_decks_all_valid():
    decks = builtin_decks()
    assert "generic-0.25um" in decks
    assert "generic-0.35um" in decks
    assert "generic-0.18um" in decks
    for name, tech in decks.items():
        tech.validate()
        assert tech.name == name


def test_deck_lookup():
    assert deck("generic-0.25um") == Technology.default()
    with pytest.raises(TechnologyError, match="unknown deck"):
        deck("tsmc-7nm")
    assert deck_names() == tuple(sorted(builtin_decks()))


def test_scaling_direction_across_library():
    old = deck("generic-0.35um")
    mid = deck("generic-0.25um")
    new = deck("generic-0.18um")
    assert old.c_gate > mid.c_gate > new.c_gate
    assert old.feature_size > mid.feature_size > new.feature_size
