"""Metrics registry: counters, gauges, histograms, thread safety."""

import json
import threading

import pytest

from repro.errors import ReproError
from repro.obs.metrics import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    current_metrics,
    incr,
    use_metrics,
)


def test_counters_and_gauges():
    registry = MetricsRegistry()
    assert registry.counter("sta_calls") == 0
    registry.incr("sta_calls")
    registry.incr("sta_calls", 4)
    assert registry.counter("sta_calls") == 5
    registry.set_gauge("fallback_stage", 1)
    registry.set_gauge("fallback_stage", 2)
    assert registry.gauge("fallback_stage") == 2.0
    assert registry.gauge("missing") is None


def test_concurrent_increments_do_not_lose_updates():
    registry = MetricsRegistry()
    threads = [
        threading.Thread(
            target=lambda: [registry.incr("objective_evaluations")
                            for _ in range(1000)])
        for _ in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.counter("objective_evaluations") == 8000


def test_histogram_percentiles_interpolate():
    histogram = Histogram()
    for value in range(1, 101):
        histogram.observe(float(value))
    assert histogram.percentile(0.0) == 1.0
    assert histogram.percentile(100.0) == 100.0
    assert histogram.percentile(50.0) == pytest.approx(50.5)
    assert histogram.percentile(95.0) == pytest.approx(95.05)
    summary = histogram.summary()
    assert summary["count"] == 100
    assert summary["mean"] == pytest.approx(50.5)
    assert summary["min"] == 1.0 and summary["max"] == 100.0


def test_histogram_percentile_errors():
    histogram = Histogram()
    with pytest.raises(ReproError):
        histogram.percentile(50.0)  # empty
    histogram.observe(1.0)
    with pytest.raises(ReproError):
        histogram.percentile(101.0)
    assert Histogram().summary() == {"count": 0}


def test_snapshot_is_strict_json_and_write_is_atomic(tmp_path):
    registry = MetricsRegistry()
    registry.incr("checkpoint_flushes")
    registry.set_gauge("weird", float("inf"))
    registry.observe("seam.sta.seconds", 0.25)
    text = json.dumps(registry.snapshot(), allow_nan=False)
    assert "Infinity" not in text
    path = tmp_path / "metrics.json"
    registry.write(path)
    payload = json.loads(path.read_text())
    assert payload["counters"]["checkpoint_flushes"] == 1
    assert payload["gauges"]["weird"] is None
    assert payload["histograms"]["seam.sta.seconds"]["count"] == 1


def test_ambient_registry_defaults_to_null_sink():
    assert current_metrics() is NULL_METRICS
    incr("objective_evaluations")  # must be a safe no-op
    assert NULL_METRICS.counter("objective_evaluations") == 0
    registry = MetricsRegistry()
    with use_metrics(registry):
        assert current_metrics() is registry
        incr("objective_evaluations", 2)
        with use_metrics(None):  # inner scope shielded from the outer
            incr("objective_evaluations", 99)
    assert current_metrics() is NULL_METRICS
    assert registry.counter("objective_evaluations") == 2


def test_null_metrics_refuses_persistence(tmp_path):
    with pytest.raises(ReproError):
        NULL_METRICS.write(tmp_path / "nope.json")
