"""Tracer: nesting, timing, error status, export, and the null path."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    span,
    use_tracer,
)
from repro.runtime.controller import FakeClock


def test_spans_nest_and_record_children_before_parents():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert tracer.depth == 2
    assert tracer.depth == 0
    assert [record.name for record in tracer.spans] == ["inner", "outer"]
    assert inner.parent_id == outer.span_id
    assert inner.depth == 1 and outer.depth == 0


def test_fake_clock_traces_are_deterministic():
    def run() -> list:
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("grid_search", vdd_points=15):
            clock.advance(2.0)
            with tracer.span("width_search"):
                clock.advance(0.5)
        return tracer.records()

    first, second = run(), run()
    assert first == second
    by_name = {record["name"]: record for record in first}
    assert by_name["grid_search"]["wall_s"] == pytest.approx(2.5)
    assert by_name["width_search"]["wall_s"] == pytest.approx(0.5)
    # cpu clock defaults to the injected clock, so it matches too.
    assert by_name["grid_search"]["cpu_s"] == pytest.approx(2.5)


def test_span_error_status_and_annotation():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("doomed") as record:
            record.annotate(best_energy=1.5)
            raise ValueError("boom")
    (finished,) = tracer.spans
    assert finished.status == "error"
    assert finished.attrs["error"] == "ValueError"
    assert finished.attrs["best_energy"] == 1.5
    assert finished.wall_s is not None  # timed despite the exception


def test_export_jsonl_is_strict_json(tmp_path):
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("root", bad=float("inf")):
        clock.advance(1.0)
    path = tracer.export_jsonl(tmp_path / "run.trace.jsonl")
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    record = json.loads(lines[0])
    assert record["type"] == "span"
    assert record["attrs"]["bad"] is None  # inf sanitized to null
    assert "Infinity" not in lines[0]


def test_export_appends_metrics_record(tmp_path):
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.incr("objective_evaluations", 3)
    tracer = Tracer(clock=FakeClock())
    with tracer.span("root"):
        pass
    path = tracer.export_jsonl(tmp_path / "t.jsonl", metrics=registry)
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert records[-1]["type"] == "metrics"
    assert records[-1]["counters"]["objective_evaluations"] == 3


def test_ambient_tracer_defaults_to_null():
    assert current_tracer() is NULL_TRACER
    with span("ignored"):  # must be a working no-op
        pass
    tracer = Tracer()
    with use_tracer(tracer):
        assert current_tracer() is tracer
        with span("seen"):
            pass
    assert current_tracer() is NULL_TRACER
    assert [record.name for record in tracer.spans] == ["seen"]


def test_null_tracer_reuses_one_span_and_refuses_export():
    null = NullTracer()
    first = null.span("a", attr=1)
    second = null.span("b")
    assert first is second  # zero allocation on the disabled path
    assert first.annotate(x=1) is first
    with pytest.raises(ReproError):
        null.export_jsonl("/tmp/never.jsonl")
    assert not null.enabled and not null.spans
