"""Tests for the Figure 1 static back-bias model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TechnologyError
from repro.technology.backbias import (
    bias_for_target_vth,
    body_effect_vth,
    max_adjustable_vth,
)
from repro.technology.process import Technology

TECH = Technology.default()


def test_zero_bias_gives_natural_threshold():
    assert body_effect_vth(TECH, 0.0) == pytest.approx(TECH.vth_natural)


def test_body_effect_monotone_increasing():
    previous = body_effect_vth(TECH, 0.0)
    for bias in (0.5, 1.0, 2.0, 4.0):
        current = body_effect_vth(TECH, bias)
        assert current > previous
        previous = current


@given(st.floats(min_value=0.0, max_value=8.0))
@settings(max_examples=100)
def test_bias_roundtrip(bias):
    vth = body_effect_vth(TECH, bias)
    recovered = bias_for_target_vth(TECH, vth)
    assert recovered == pytest.approx(bias, abs=1e-9)


def test_forward_bias_rejected():
    with pytest.raises(TechnologyError):
        body_effect_vth(TECH, -0.1)


def test_target_below_natural_rejected():
    with pytest.raises(TechnologyError, match="below the natural"):
        bias_for_target_vth(TECH, TECH.vth_natural - 0.05)


def test_absurd_target_rejected():
    with pytest.raises(TechnologyError, match="unrealistic"):
        bias_for_target_vth(TECH, 5.0)


def test_max_adjustable_vth():
    limit = max_adjustable_vth(TECH, max_bias=5.0)
    assert limit == pytest.approx(body_effect_vth(TECH, 5.0))
    with pytest.raises(TechnologyError):
        max_adjustable_vth(TECH, max_bias=-1.0)


def test_paper_vth_range_is_reachable():
    # The optimizer's 100-300 mV choices must be realizable with modest
    # substrate/n-well biases.
    for vth in (0.1, 0.2, 0.3):
        if vth >= TECH.vth_natural:
            bias = bias_for_target_vth(TECH, vth)
            assert 0.0 <= bias < 3.0
