"""Tests for the §3 stationarity/balance verification."""

import pytest

from repro.analysis.sensitivity import analyze_optimum_sensitivity
from repro.errors import OptimizationError
from repro.optimize.heuristic import optimize_joint
from repro.optimize.problem import DesignPoint


def test_optimum_is_stationary_in_vdd(s298_problem):
    result = optimize_joint(s298_problem)
    report = analyze_optimum_sensitivity(s298_problem, result)
    assert report.vdd_stationary
    # The raw slope is small compared to the energy scale.
    scale = report.energy / report.vdd
    assert abs(report.d_energy_d_vdd) < 0.25 * scale


def test_section3_balance_at_interior_optimum(s298_problem):
    # §3: at the optimum, the static increase of a downward supply step
    # equals the dynamic decrease — opposing slopes of equal magnitude.
    result = optimize_joint(s298_problem)
    report = analyze_optimum_sensitivity(s298_problem, result)
    if not report.vdd_at_boundary:
        assert report.d_static_d_vdd < 0.0 < report.d_dynamic_d_vdd
        assert report.balance_ratio == pytest.approx(1.0, abs=0.35)


def test_off_optimum_point_is_not_stationary(s298_problem):
    result = optimize_joint(s298_problem)
    vth = float(result.design.distinct_vths()[0])
    # Same widthless design point but at double the supply: strongly
    # non-stationary (energy falls steeply toward the optimum).
    shifted = DesignPoint(vdd=min(2 * result.design.vdd, 3.3), vth=vth,
                          widths=result.design.widths)
    from repro.optimize.problem import OptimizationResult

    fake = OptimizationResult(problem=s298_problem, design=shifted,
                              energy=result.energy, timing=result.timing,
                              evaluations=0)
    report = analyze_optimum_sensitivity(s298_problem, fake)
    scale = report.energy / report.vdd
    assert report.d_energy_d_vdd > 0.5 * scale


def test_vth_direction(s27_problem, fast_settings):
    result = optimize_joint(s27_problem, settings=fast_settings)
    report = analyze_optimum_sensitivity(s27_problem, result)
    # At the optimum the vth slope is either ~flat (interior) or the
    # point sits on a box face.
    assert report.vth_at_boundary or abs(report.d_energy_d_vth) \
        < report.energy / report.vth


def test_step_validation(s27_problem, fast_settings):
    result = optimize_joint(s27_problem, settings=fast_settings)
    with pytest.raises(OptimizationError):
        analyze_optimum_sensitivity(s27_problem, result, relative_step=0.9)


def test_multi_value_designs_rejected(s27_problem, fast_settings):
    result = optimize_joint(s27_problem, settings=fast_settings)
    gates = s27_problem.network.logic_gates
    mapped = DesignPoint(vdd=result.design.vdd,
                         vth={name: 0.2 + 0.01 * (index % 2)
                              for index, name in enumerate(gates)},
                         widths=result.design.widths)
    from repro.optimize.problem import OptimizationResult

    fake = OptimizationResult(problem=s27_problem, design=mapped,
                              energy=result.energy, timing=result.timing,
                              evaluations=0)
    with pytest.raises(OptimizationError, match="single-Vdd, single-Vth"):
        analyze_optimum_sensitivity(s27_problem, fake)
