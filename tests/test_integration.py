"""Cross-module integration tests: the paper's end-to-end claims.

These run the whole stack (netlist → activity → parasitics → budgets →
sizing → optimization → STA/energy) on small-to-medium circuits and
assert the invariants and result shapes the paper reports.
"""

import pytest

from repro.activity.profiles import uniform_profile
from repro.netlist.benchmarks import benchmark_circuit
from repro.optimize.baseline import optimize_fixed_vth
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.problem import OptimizationProblem
from repro.technology.process import Technology
from repro.timing.sta import analyze_timing
from repro.units import MHZ


def test_full_flow_on_generated_network(small_problem, fast_settings):
    baseline = optimize_fixed_vth(small_problem)
    joint = optimize_joint(small_problem, settings=fast_settings)

    # Feasibility verified by independent STA at both designs.
    for result in (baseline, joint):
        report = analyze_timing(small_problem.ctx, result.design.vdd,
                                result.design.vth
                                if isinstance(result.design.vth, float)
                                else dict(result.design.vth),
                                result.design.widths)
        assert report.meets(small_problem.cycle_time, tolerance=1e-6)

    # Headline claim: large savings from the joint optimization.
    assert baseline.total_energy / joint.total_energy > 3.0
    # Baseline leaks essentially nothing; joint has comparable components.
    assert baseline.energy.static < 1e-3 * baseline.energy.dynamic
    ratio = joint.energy.static / joint.energy.dynamic
    assert 0.02 < ratio < 10.0


def test_savings_increase_with_activity(tech):
    network = benchmark_circuit("s298")
    savings = []
    for density in (0.1, 0.5):
        profile = uniform_profile(network, probability=0.5, density=density)
        problem = OptimizationProblem.build(tech, network, profile,
                                            frequency=300 * MHZ)
        baseline = optimize_fixed_vth(problem)
        joint = optimize_joint(problem)
        savings.append(baseline.total_energy / joint.total_energy)
    assert savings[1] > savings[0]
    assert savings[1] > 8.0


def test_paper_voltage_bands_on_s298(s298_problem):
    joint = optimize_joint(s298_problem)
    vth = float(joint.design.distinct_vths()[0])
    # Paper: Vdd in [0.6, 1.2] V, Vth in [100, 300] mV.
    assert 0.4 <= joint.design.vdd <= 1.6
    assert 0.095 <= vth <= 0.35


def test_baseline_vdd_near_process_rail_when_tight(tech):
    # The paper: at fixed 700 mV Vth the baseline "coincidentally
    # returned Vdd values close to 3.3 V". True for the deeper circuits.
    network = benchmark_circuit("s344")
    profile = uniform_profile(network, probability=0.5, density=0.1)
    problem = OptimizationProblem.build(tech, network, profile,
                                        frequency=300 * MHZ)
    baseline = optimize_fixed_vth(problem)
    assert baseline.design.vdd > 3.0


def test_energy_delay_accounting_consistency(small_problem, fast_settings):
    joint = optimize_joint(small_problem, settings=fast_settings)
    # Energy report recomputed from the design point must match.
    recomputed = joint.design.evaluate_energy(small_problem)
    assert recomputed.total == pytest.approx(joint.total_energy)
    retimed = joint.design.evaluate_timing(small_problem)
    assert retimed.critical_delay == pytest.approx(
        joint.timing.critical_delay)


def test_skew_factor_costs_energy(s27_problem, fast_settings):
    relaxed = optimize_joint(s27_problem, settings=fast_settings)
    skewed_problem = OptimizationProblem(ctx=s27_problem.ctx,
                                         frequency=s27_problem.frequency,
                                         skew_factor=0.8)
    skewed = optimize_joint(skewed_problem, settings=fast_settings)
    # Less usable cycle -> at least as much energy.
    assert skewed.total_energy >= relaxed.total_energy * 0.999
    # And the skewed design still meets the *full* cycle with margin.
    assert skewed.timing.critical_delay \
        <= 0.8 * s27_problem.cycle_time * (1 + 1e-6)


def test_multiple_circuits_all_feasible(tech, fast_settings):
    for name in ("s27", "s382", "s526"):
        network = benchmark_circuit(name)
        profile = uniform_profile(network, probability=0.5, density=0.1)
        problem = OptimizationProblem.build(tech, network, profile,
                                            frequency=300 * MHZ)
        joint = optimize_joint(problem, settings=fast_settings)
        assert joint.feasible, name
