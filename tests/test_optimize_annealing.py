"""Tests for the simulated-annealing comparator."""

import pytest

from repro.errors import OptimizationError
from repro.optimize.annealing import AnnealingSettings, optimize_annealing
from repro.optimize.heuristic import optimize_joint

FAST = AnnealingSettings(passes=1, iterations_per_pass=250, seed=3)


def test_settings_validation():
    with pytest.raises(OptimizationError):
        AnnealingSettings(passes=0)
    with pytest.raises(OptimizationError):
        AnnealingSettings(cooling=1.0)
    with pytest.raises(OptimizationError):
        AnnealingSettings(iterations_per_pass=0)


def test_annealing_returns_feasible_design(s27_problem):
    result = optimize_annealing(s27_problem, settings=FAST)
    assert result.feasible
    assert result.details["strategy"] == "annealing"
    tech = s27_problem.tech
    assert tech.vdd_min <= result.design.vdd <= tech.vdd_max
    for width in result.design.widths.values():
        assert tech.width_min <= width <= tech.width_max


def test_annealing_deterministic_in_seed(s27_problem):
    first = optimize_annealing(s27_problem, settings=FAST)
    second = optimize_annealing(s27_problem, settings=FAST)
    assert first.total_energy == second.total_energy


def test_heuristic_beats_annealing(s27_problem, fast_settings):
    # The paper's §5 claim, at a realistic annealing budget.
    annealed = optimize_annealing(
        s27_problem, settings=AnnealingSettings(passes=2,
                                                iterations_per_pass=600,
                                                seed=1))
    heuristic = optimize_joint(s27_problem, settings=fast_settings)
    assert heuristic.total_energy < annealed.total_energy


def test_warm_start_from_design(s27_problem, fast_settings):
    heuristic = optimize_joint(s27_problem, settings=fast_settings)
    warm = optimize_annealing(s27_problem, settings=FAST,
                              initial=heuristic.design)
    # Warm-started annealing cannot end worse than ~its start.
    assert warm.total_energy <= heuristic.total_energy * 1.5
