"""The search-strategy parity harness (gates the seam refactor).

Three contracts, per adaptive strategy:

* **Quality/efficiency parity** — on s27 and s298 the strategy reaches
  the *reference grid's* refined optimum within a tight relative
  tolerance while spending at least 2x fewer model evaluations. The
  reference is a finer grid than the smoke-test grid (13x11 instead of
  9x7) so the comparison is against a realistic exhaustive scan, not a
  strawman.
* **Jobs invariance** — the result (design point, widths, energy,
  evaluation count) is byte-identical serial and under a worker pool,
  because round composition never depends on the jobs count.
* **Resume identity** — a run killed mid-search and resumed from its
  checkpoint finishes exactly like an uninterrupted run, because every
  strategy re-proposes deterministically and observed corners replay
  from the checkpoint log.

Plus unit round-trips of the ``state()``/``restore()`` half of the
seam: a restored strategy proposes the identical continuation.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.errors import RunCancelled
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.runtime.controller import RunController
from repro.runtime.supervisor import ParallelPlan
from repro.search import DEFAULT_BUDGETS, search_config
from repro.search.hyperband import HyperbandStrategy
from repro.search.randomized import RandomStrategy
from repro.search.surrogate import SurrogateStrategy

ADAPTIVE = ("random", "surrogate", "hyperband")
#: The smoke grid every adaptive run shares (sets ranges/refine knobs).
FAST = dict(grid_vdd=9, grid_vth=7, refine_iters=6, refine_rounds=1,
            engine="fast")
#: The exhaustive reference the parity bars are measured against.
REFERENCE = dict(grid_vdd=13, grid_vth=11, refine_iters=6, refine_rounds=1,
                 engine="fast")
BUDGET = 12
#: Adaptive optimum must land within 5% of the reference grid's.
RELATIVE_TOLERANCE = 0.05


def _adaptive_settings(strategy, **overrides):
    merged = dict(FAST, strategy=strategy, search_budget=BUDGET)
    merged.update(overrides)
    return HeuristicSettings(**merged)


@pytest.fixture(scope="module")
def s27_reference(s27_problem):
    return optimize_joint(s27_problem,
                          settings=HeuristicSettings(**REFERENCE))


@pytest.fixture(scope="module")
def s298_reference(s298_problem):
    return optimize_joint(s298_problem,
                          settings=HeuristicSettings(**REFERENCE))


def _assert_identical(lhs, rhs):
    assert lhs.design.vdd == rhs.design.vdd
    assert lhs.design.vth == rhs.design.vth
    assert lhs.design.widths == rhs.design.widths
    assert lhs.energy.total == rhs.energy.total
    assert lhs.evaluations == rhs.evaluations


# --- quality / efficiency parity ---------------------------------------------


@pytest.mark.parametrize("strategy", ADAPTIVE)
def test_parity_s27(s27_problem, s27_reference, strategy):
    result = optimize_joint(s27_problem,
                            settings=_adaptive_settings(strategy))
    assert result.feasible
    gap = (result.energy.total - s27_reference.energy.total) \
        / s27_reference.energy.total
    assert gap <= RELATIVE_TOLERANCE, (
        f"{strategy} landed {gap:+.2%} above the reference grid optimum")
    assert result.evaluations * 2 <= s27_reference.evaluations, (
        f"{strategy} spent {result.evaluations} evaluations; the 2x bar "
        f"is {s27_reference.evaluations / 2:.0f}")
    assert result.details["search"]["name"] == strategy


@pytest.mark.parametrize("strategy", ADAPTIVE)
def test_parity_s298(s298_problem, s298_reference, strategy):
    result = optimize_joint(s298_problem,
                            settings=_adaptive_settings(strategy))
    assert result.feasible
    gap = (result.energy.total - s298_reference.energy.total) \
        / s298_reference.energy.total
    assert gap <= RELATIVE_TOLERANCE
    assert result.evaluations * 2 <= s298_reference.evaluations


# --- jobs invariance ---------------------------------------------------------


@pytest.mark.parametrize("strategy", ADAPTIVE)
def test_serial_and_pooled_runs_identical(s27_problem, strategy):
    serial = optimize_joint(s27_problem,
                            settings=_adaptive_settings(strategy))
    pooled = optimize_joint(s27_problem, settings=_adaptive_settings(
        strategy, parallel=ParallelPlan(jobs=4, heartbeat_s=0.05)))
    _assert_identical(serial, pooled)
    assert pooled.details["parallel_jobs"] == 4


def test_seed_changes_the_sampling_but_not_feasibility(s27_problem):
    base = optimize_joint(s27_problem, settings=_adaptive_settings("random"))
    reseeded = optimize_joint(s27_problem,
                              settings=_adaptive_settings("random", seed=7))
    assert base.feasible and reseeded.feasible
    assert base.details["search"]["seed"] == 0
    assert reseeded.details["search"]["seed"] == 7


# --- resume identity ---------------------------------------------------------


@pytest.mark.parametrize("strategy,interrupt_after",
                         [("random", 5), ("surrogate", 9),
                          ("hyperband", 17)])
def test_interrupted_search_resumes_identically(
        s27_problem, strategy, interrupt_after, tmp_path):
    settings = _adaptive_settings(strategy)
    reference = optimize_joint(s27_problem, settings=settings)

    path = tmp_path / f"{strategy}.ckpt"
    box = {}
    events = []

    def cancel_after_k(event):
        events.append(event)
        if len(events) == interrupt_after:
            box["controller"].cancel()

    controller = RunController(progress=cancel_after_k,
                               checkpoint_path=path)
    box["controller"] = controller
    with pytest.raises(RunCancelled):
        optimize_joint(s27_problem, settings=dataclasses.replace(
            settings, controller=controller))
    assert path.exists()

    resumed = optimize_joint(s27_problem, settings=settings,
                             resume_from=path)
    _assert_identical(resumed, reference)
    assert 0 < resumed.details["resumed_corners"] <= interrupt_after


# --- the state()/restore() half of the seam ----------------------------------


def _drive(strategy, rounds):
    """Feed a strategy synthetic observations for ``rounds`` rounds."""
    for _ in range(rounds):
        candidates = strategy.propose(strategy.proposal_batch)
        if not candidates:
            break
        for candidate in candidates:
            # A deterministic synthetic landscape with an infeasible
            # shelf, so accept/reject and culling paths all fire.
            energy = (candidate.vdd - 0.9) ** 2 + (candidate.vth - 0.3) ** 2
            feasible = candidate.vdd > 0.4
            strategy.observe(candidate, energy if feasible else math.inf,
                             feasible)


def _proposals(strategy, rounds):
    out = []
    for _ in range(rounds):
        batch = strategy.propose(strategy.proposal_batch)
        if not batch:
            break
        out.append([(c.vdd, c.vth, c.tag) for c in batch])
        for candidate in batch:
            strategy.observe(candidate, candidate.vdd, True)
    return out


@pytest.mark.parametrize("factory", [
    lambda: RandomStrategy((0.1, 3.3), (0.1, 0.7), budget=24, seed=3),
    lambda: SurrogateStrategy((0.1, 3.3), (0.1, 0.7), budget=24, seed=3,
                              priors=[(0.5, 0.2)]),
    lambda: HyperbandStrategy((0.1, 3.3), (0.1, 0.7), budget=36, seed=3),
])
def test_restored_strategy_continues_like_the_original(factory):
    original = factory()
    _drive(original, rounds=2)
    snapshot = original.state()

    restored = factory()
    restored.restore(snapshot)
    assert restored.state() == snapshot
    assert _proposals(restored, rounds=4) == _proposals(original, rounds=4)


# --- satellite: the resolved config is the strategy's identity ---------------


def test_search_config_distinguishes_strategies():
    grid = search_config(HeuristicSettings(strategy="grid"))
    random_cfg = search_config(HeuristicSettings(strategy="random"))
    reseeded = search_config(HeuristicSettings(strategy="random", seed=5))
    assert grid == {"name": "grid"}
    assert random_cfg["name"] == "random"
    assert random_cfg["budget"] == DEFAULT_BUDGETS["random"]
    assert random_cfg != reseeded  # a cached run can't cross seeds
    budgeted = search_config(
        HeuristicSettings(strategy="random", search_budget=9))
    assert budgeted["budget"] == 9


def test_fingerprint_embeds_the_search_config(s27_problem):
    from repro.optimize.heuristic import _search_fingerprint

    ranges = ((0.5, 3.3), (0.1, 0.5))
    grid = _search_fingerprint(s27_problem, HeuristicSettings(), *ranges,
                               engine_name="fast")
    random_fp = _search_fingerprint(
        s27_problem, HeuristicSettings(strategy="random"), *ranges,
        engine_name="fast")
    reseeded = _search_fingerprint(
        s27_problem, HeuristicSettings(strategy="random", seed=5), *ranges,
        engine_name="fast")
    assert grid["search"] == {"name": "grid"}
    assert random_fp != grid
    assert reseeded != random_fp


def test_grid_strategy_unavailable_settings_rejected():
    with pytest.raises(Exception, match="strategy"):
        HeuristicSettings(strategy="simulated-annealing")
    with pytest.raises(Exception, match="search_budget"):
        HeuristicSettings(strategy="random", search_budget=0)
