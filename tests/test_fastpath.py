"""Equivalence tests: the vectorized engine vs the scalar reference."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.common import build_problem
from repro.fastpath import (
    ArrayContext,
    fast_size_widths,
    fast_sta,
    fast_total_energy,
)
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.width_search import size_widths
from repro.power.energy import total_energy
from repro.timing.sta import analyze_timing


@pytest.fixture(scope="module")
def s298_arrays():
    problem = build_problem("s298", 0.1)
    budgets = problem.budgets()
    arrays = ArrayContext(problem.ctx)
    return problem, budgets, arrays


def test_processing_order_is_reverse_topological(s298_arrays):
    problem, _, arrays = s298_arrays
    network = problem.network
    position = arrays.index
    for name in network.logic_gates:
        for sink in network.fanouts(name):
            # Fanouts are processed earlier (lower index).
            assert position[sink] < position[name]


def test_level_slices_partition_all_gates(s298_arrays):
    _, _, arrays = s298_arrays
    covered = 0
    previous_stop = 0
    for start, stop in arrays.level_slices:
        assert start == previous_stop
        covered += stop - start
        previous_stop = stop
    assert covered == arrays.n_gates


def test_widths_roundtrip(s298_arrays):
    problem, _, arrays = s298_arrays
    widths = {name: 1.0 + index * 0.01
              for index, name in enumerate(problem.ctx.gates)}
    array = arrays.widths_to_array(widths)
    assert arrays.array_to_widths(array) == pytest.approx(widths)


@given(vdd=st.floats(min_value=0.4, max_value=3.3),
       vth=st.floats(min_value=0.1, max_value=0.5))
@settings(max_examples=30, deadline=None)
def test_sizing_matches_scalar(s298_arrays, vdd, vth):
    problem, budgets, arrays = s298_arrays
    scalar = size_widths(problem.ctx, budgets.budgets, vdd, vth)
    fast = fast_size_widths(arrays, arrays.budgets_to_array(
        dict(budgets.budgets)), vdd, vth)
    assert fast.feasible == scalar.feasible
    fast_map = fast.widths_map(arrays)
    for name in problem.ctx.gates:
        assert fast_map[name] == pytest.approx(scalar.widths[name],
                                               rel=1e-9)


@given(vdd=st.floats(min_value=0.5, max_value=3.3),
       vth=st.floats(min_value=0.1, max_value=0.45),
       width=st.floats(min_value=1.0, max_value=40.0))
@settings(max_examples=30, deadline=None)
def test_sta_and_energy_match_scalar(s298_arrays, vdd, vth, width):
    problem, _, arrays = s298_arrays
    widths = {name: width for name in problem.ctx.gates}
    w = arrays.widths_to_array(widths)

    critical, delays = fast_sta(arrays, vdd, vth, w)
    reference = analyze_timing(problem.ctx, vdd, vth, widths)
    assert critical == pytest.approx(reference.critical_delay, rel=1e-9)
    for name in problem.ctx.gates:
        assert delays[arrays.index[name]] == pytest.approx(
            reference.delay(name), rel=1e-9)

    static, dynamic = fast_total_energy(arrays, vdd, vth, w,
                                        problem.frequency)
    energy = total_energy(problem.ctx, vdd, vth, widths, problem.frequency)
    assert static == pytest.approx(energy.static, rel=1e-9)
    assert dynamic == pytest.approx(energy.dynamic, rel=1e-9)


def test_fast_engine_gives_identical_optimum(s27_problem):
    scalar = optimize_joint(s27_problem)
    fast = optimize_joint(s27_problem,
                          settings=HeuristicSettings(engine="fast"))
    assert fast.total_energy == pytest.approx(scalar.total_energy,
                                              rel=1e-12)
    assert fast.design.vdd == pytest.approx(scalar.design.vdd)
    assert fast.feasible


def test_fast_engine_on_random_widths_sta_infinite_corner(s298_arrays):
    # Dead-drive corner: fast STA reports an infinite critical delay.
    problem, _, arrays = s298_arrays
    w = np.ones(arrays.n_gates) * 4.0
    critical, _ = fast_sta(arrays, 0.02, 0.6, w)
    assert critical == float("inf")


def test_unknown_engine_rejected():
    from repro.errors import OptimizationError

    with pytest.raises(OptimizationError):
        HeuristicSettings(engine="warp")


def test_multiple_circuits_agree():
    rng = random.Random(7)
    for circuit in ("s27", "c17", "s526"):
        problem = build_problem(circuit, 0.1)
        budgets = problem.budgets()
        arrays = ArrayContext(problem.ctx)
        budget_array = arrays.budgets_to_array(dict(budgets.budgets))
        for _ in range(3):
            vdd = rng.uniform(0.5, 3.3)
            vth = rng.uniform(0.1, 0.5)
            scalar = size_widths(problem.ctx, budgets.budgets, vdd, vth)
            fast = fast_size_widths(arrays, budget_array, vdd, vth)
            assert fast.feasible == scalar.feasible, circuit
