"""Equivalence tests: the vectorized engine vs the scalar reference."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.common import build_problem
from repro.fastpath import (
    ArrayContext,
    fast_size_widths,
    fast_sta,
    fast_total_energy,
)
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.width_search import size_widths
from repro.power.energy import total_energy
from repro.timing.sta import analyze_timing


@pytest.fixture(scope="module")
def s298_arrays():
    problem = build_problem("s298", 0.1)
    budgets = problem.budgets()
    arrays = ArrayContext(problem.ctx)
    return problem, budgets, arrays


def test_processing_order_is_reverse_topological(s298_arrays):
    problem, _, arrays = s298_arrays
    network = problem.network
    position = arrays.index
    for name in network.logic_gates:
        for sink in network.fanouts(name):
            # Fanouts are processed earlier (lower index).
            assert position[sink] < position[name]


def test_level_slices_partition_all_gates(s298_arrays):
    _, _, arrays = s298_arrays
    covered = 0
    previous_stop = 0
    for start, stop in arrays.level_slices:
        assert start == previous_stop
        covered += stop - start
        previous_stop = stop
    assert covered == arrays.n_gates


def test_widths_roundtrip(s298_arrays):
    problem, _, arrays = s298_arrays
    widths = {name: 1.0 + index * 0.01
              for index, name in enumerate(problem.ctx.gates)}
    array = arrays.widths_to_array(widths)
    assert arrays.array_to_widths(array) == pytest.approx(widths)


@given(vdd=st.floats(min_value=0.4, max_value=3.3),
       vth=st.floats(min_value=0.1, max_value=0.5))
@settings(max_examples=30, deadline=None)
def test_sizing_matches_scalar(s298_arrays, vdd, vth):
    problem, budgets, arrays = s298_arrays
    scalar = size_widths(problem.ctx, budgets.budgets, vdd, vth)
    fast = fast_size_widths(arrays, arrays.budgets_to_array(
        dict(budgets.budgets)), vdd, vth)
    assert fast.feasible == scalar.feasible
    fast_map = fast.widths_map(arrays)
    for name in problem.ctx.gates:
        assert fast_map[name] == pytest.approx(scalar.widths[name],
                                               rel=1e-9)


@given(vdd=st.floats(min_value=0.5, max_value=3.3),
       vth=st.floats(min_value=0.1, max_value=0.45),
       width=st.floats(min_value=1.0, max_value=40.0))
@settings(max_examples=30, deadline=None)
def test_sta_and_energy_match_scalar(s298_arrays, vdd, vth, width):
    problem, _, arrays = s298_arrays
    widths = {name: width for name in problem.ctx.gates}
    w = arrays.widths_to_array(widths)

    critical, delays = fast_sta(arrays, vdd, vth, w)
    reference = analyze_timing(problem.ctx, vdd, vth, widths)
    assert critical == pytest.approx(reference.critical_delay, rel=1e-9)
    for name in problem.ctx.gates:
        assert delays[arrays.index[name]] == pytest.approx(
            reference.delay(name), rel=1e-9)

    static, dynamic = fast_total_energy(arrays, vdd, vth, w,
                                        problem.frequency)
    energy = total_energy(problem.ctx, vdd, vth, widths, problem.frequency)
    assert static == pytest.approx(energy.static, rel=1e-9)
    assert dynamic == pytest.approx(energy.dynamic, rel=1e-9)


def test_fast_engine_gives_identical_optimum(s27_problem):
    scalar = optimize_joint(s27_problem)
    fast = optimize_joint(s27_problem,
                          settings=HeuristicSettings(engine="fast"))
    assert fast.total_energy == pytest.approx(scalar.total_energy,
                                              rel=1e-12)
    assert fast.design.vdd == pytest.approx(scalar.design.vdd)
    assert fast.feasible


def test_fast_engine_on_random_widths_sta_infinite_corner(s298_arrays):
    # Dead-drive corner: fast STA reports an infinite critical delay.
    problem, _, arrays = s298_arrays
    w = np.ones(arrays.n_gates) * 4.0
    critical, _ = fast_sta(arrays, 0.02, 0.6, w)
    assert critical == float("inf")


def test_unknown_engine_rejected():
    from repro.errors import OptimizationError

    with pytest.raises(OptimizationError):
        HeuristicSettings(engine="warp")


def test_multiple_circuits_agree():
    rng = random.Random(7)
    for circuit in ("s27", "c17", "s526"):
        problem = build_problem(circuit, 0.1)
        budgets = problem.budgets()
        arrays = ArrayContext(problem.ctx)
        budget_array = arrays.budgets_to_array(dict(budgets.budgets))
        for _ in range(3):
            vdd = rng.uniform(0.5, 3.3)
            vth = rng.uniform(0.1, 0.5)
            scalar = size_widths(problem.ctx, budgets.budgets, vdd, vth)
            fast = fast_size_widths(arrays, budget_array, vdd, vth)
            assert fast.feasible == scalar.feasible, circuit


def _custom_problem(network):
    from repro.activity.profiles import uniform_profile
    from repro.optimize.problem import OptimizationProblem
    from repro.technology.process import Technology
    from repro.units import MHZ

    profile = uniform_profile(network, probability=0.5, density=0.1)
    return OptimizationProblem.build(Technology.default(), network, profile,
                                     frequency=200 * MHZ)


def test_boundary_only_fanout_rows_use_boundary_width():
    """Regression: boundary branches must not gather a real gate's width.

    The PO gate's fanout row holds *only* the boundary branch (sentinel
    index -1). A clamped gather (``np.clip(idx, 0, None)``) would read
    the width of array row 0 — the PO gate itself, given an extreme
    width here — instead of ``BOUNDARY_WIDTH``; the masked gather keeps
    the boundary receiver at fixed unit width. Parity with the scalar
    reference pins the behavior down.
    """
    from repro.netlist.gates import GateType
    from repro.netlist.network import NetworkBuilder

    builder = NetworkBuilder("boundary_only")
    builder.add_input("a")
    builder.add_input("b")
    builder.add_gate("g1", GateType.NAND, ["a", "b"])
    builder.add_gate("g2", GateType.NOR, ["a", "b"])
    builder.add_gate("y", GateType.NAND, ["g1", "g2"])
    problem = _custom_problem(builder.build(outputs=["y"]))
    arrays = ArrayContext(problem.ctx)

    # The premise: y sits at array row 0 and its row is boundary-only.
    row = arrays.index["y"]
    assert row == 0
    lo, hi = arrays.fanout.ptr[row], arrays.fanout.ptr[row + 1]
    assert hi - lo == 1
    assert not arrays.fanout_is_gate[lo:hi].any()

    # Extreme width on row 0 so a sentinel-clamp bug cannot hide.
    widths = {"g1": 2.0, "g2": 3.0, "y": 500.0}
    w = arrays.widths_to_array(widths)
    critical, _ = fast_sta(arrays, 2.5, 0.3, w)
    reference = analyze_timing(problem.ctx, 2.5, 0.3, widths)
    assert critical == pytest.approx(reference.critical_delay, rel=1e-12)
    static, dynamic = fast_total_energy(arrays, 2.5, 0.3, w,
                                        problem.frequency)
    energy = total_energy(problem.ctx, 2.5, 0.3, widths, problem.frequency)
    assert static == pytest.approx(energy.static, rel=1e-12)
    assert dynamic == pytest.approx(energy.dynamic, rel=1e-12)


def test_output_fed_by_primary_input_matches_scalar():
    """A primary input listed as a primary output arrives at 0.0."""
    from repro.netlist.gates import GateType
    from repro.netlist.network import NetworkBuilder

    builder = NetworkBuilder("pi_output")
    builder.add_input("a")
    builder.add_input("b")
    builder.add_gate("g1", GateType.NAND, ["a", "b"])
    builder.add_gate("y", GateType.NOT, ["g1"])
    problem = _custom_problem(builder.build(outputs=["y", "b"]))
    arrays = ArrayContext(problem.ctx)
    assert "b" not in arrays.index  # an output port fed straight by a PI

    widths = {"g1": 4.0, "y": 2.0}
    w = arrays.widths_to_array(widths)
    critical, _ = fast_sta(arrays, 2.5, 0.3, w)
    reference = analyze_timing(problem.ctx, 2.5, 0.3, widths)
    assert critical == pytest.approx(reference.critical_delay, rel=1e-12)


def test_unknown_output_raises_timing_error(s27_problem):
    """An output in neither the gate index nor the PIs is a hard error."""
    from repro.errors import TimingError

    arrays = ArrayContext(s27_problem.ctx)  # local copy: we mutate index
    victim = s27_problem.network.outputs[0]
    assert victim in arrays.index
    del arrays.index[victim]
    w = np.ones(arrays.n_gates) * 4.0
    with pytest.raises(TimingError, match="neither a logic gate nor"):
        fast_sta(arrays, 2.5, 0.3, w)
