"""Tests for the stack-effect (state-dependent) leakage refinement."""

import pytest

from repro.errors import ReproError
from repro.netlist.gates import GateType
from repro.power.state_leakage import (
    DEFAULT_STACK_FACTOR,
    _off_count_distribution,
    expected_stack_factor,
    state_dependent_leakage,
)


def test_off_count_distribution_sums_to_one():
    distribution = _off_count_distribution([0.3, 0.7, 0.5],
                                           off_when_high=False)
    assert sum(distribution) == pytest.approx(1.0)
    assert len(distribution) == 4


def test_off_count_distribution_extremes():
    # All inputs surely low: every nmos device off.
    distribution = _off_count_distribution([0.0, 0.0], off_when_high=False)
    assert distribution == pytest.approx([0.0, 0.0, 1.0])
    # All inputs surely high: no nmos device off.
    distribution = _off_count_distribution([1.0, 1.0], off_when_high=False)
    assert distribution == pytest.approx([1.0, 0.0, 0.0])


def test_inverter_has_no_stack_effect():
    assert expected_stack_factor(GateType.NOT, [0.5]) == 1.0
    assert expected_stack_factor(GateType.BUF, [0.2]) == 1.0


def test_nand_all_inputs_low_gets_full_stack_effect():
    # Both nmos off with certainty: factor = stack_factor^(2-1).
    factor = expected_stack_factor(GateType.NAND, [0.0, 0.0])
    assert factor == pytest.approx(DEFAULT_STACK_FACTOR)


def test_nand_all_inputs_high_has_no_reduction():
    factor = expected_stack_factor(GateType.NAND, [1.0, 1.0])
    assert factor == pytest.approx(1.0)


def test_nor_polarity_mirrored():
    # NOR's series stack is pmos: off when inputs are HIGH.
    assert expected_stack_factor(GateType.NOR, [1.0, 1.0]) \
        == pytest.approx(DEFAULT_STACK_FACTOR)
    assert expected_stack_factor(GateType.NOR, [0.0, 0.0]) \
        == pytest.approx(1.0)


def test_factor_bounded_in_unit_interval():
    for gate_type in (GateType.AND, GateType.NAND, GateType.OR,
                      GateType.NOR, GateType.XOR):
        for probability in (0.1, 0.5, 0.9):
            factor = expected_stack_factor(gate_type,
                                           [probability] * 3
                                           if gate_type not in
                                           (GateType.XOR,) else
                                           [probability] * 2)
            assert 0.0 < factor <= 1.0


def test_deeper_stacks_leak_less():
    two = expected_stack_factor(GateType.NAND, [0.2, 0.2])
    four = expected_stack_factor(GateType.NAND, [0.2] * 4)
    assert four < two


def test_validation():
    with pytest.raises(ReproError):
        expected_stack_factor(GateType.NAND, [0.5, 0.5], stack_factor=0.0)
    with pytest.raises(ReproError):
        expected_stack_factor(GateType.NAND, [1.5, 0.5])


def test_network_report_is_a_reduction(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    report = state_dependent_leakage(s27_ctx, 1.0, 0.2, widths, 300e6)
    assert 0.0 < report.expected_static <= report.upper_bound.static
    assert report.reduction >= 1.0
    assert report.expected_total \
        <= report.upper_bound.total + 1e-30
    for factor in report.factors.values():
        assert 0.0 < factor <= 1.0


def test_eq_a1_is_conservative_at_optimum(s27_problem, fast_settings):
    # The paper's eq. A1 (full I_off per gate) upper-bounds the expected
    # stack-effect-aware leakage — the optimizer's static numbers are
    # guaranteed pessimistic, never optimistic.
    from repro.optimize.heuristic import optimize_joint

    result = optimize_joint(s27_problem, settings=fast_settings)
    report = state_dependent_leakage(
        s27_problem.ctx, result.design.vdd, result.design.vth,
        result.design.widths, s27_problem.frequency)
    assert report.expected_static <= result.energy.static
    assert report.reduction > 1.05  # the stack effect is material
    # s27 is tiny (many inverters, shallow stacks); deeper-stack circuits
    # see more — checked loosely here, quantified by the bench.
