"""Tests for the Monte-Carlo activity simulator (the HSPICE stand-in)."""

import pytest

from repro.activity.profiles import InputProfile, uniform_profile
from repro.activity.simulation import simulate_activity
from repro.activity.transition_density import estimate_activity
from repro.errors import ActivityError
from repro.netlist.benchmarks import s27
from repro.netlist.gates import GateType
from repro.netlist.network import NetworkBuilder


def test_input_statistics_match_profile():
    network = s27()
    profile = uniform_profile(network, probability=0.3, density=0.2)
    measured = simulate_activity(network, profile, cycles=20000, seed=5)
    for name in network.inputs:
        assert measured.probability(name) == pytest.approx(0.3, abs=0.03)
        assert measured.density(name) == pytest.approx(0.2, abs=0.03)


def test_propagation_matches_simulation_at_low_activity():
    # Najm's density neglects simultaneous input toggles (an O(D^2)
    # effect in synchronous simulation), so exactness on trees holds in
    # the low-activity limit.
    builder = NetworkBuilder("tree")
    for name in ("a", "b", "c"):
        builder.add_input(name)
    builder.add_gate("n1", GateType.AND, ["a", "b"])
    builder.add_gate("y", GateType.OR, ["n1", "c"])
    network = builder.build(outputs=["y"])
    profile = uniform_profile(network, probability=0.5, density=0.05)
    estimate = estimate_activity(network, profile)
    measured = simulate_activity(network, profile, cycles=60000, seed=9)
    for name in ("n1", "y"):
        assert measured.density(name) == pytest.approx(
            estimate.density(name), abs=0.01)
        assert measured.probability(name) == pytest.approx(
            estimate.probability(name), abs=0.02)


def test_propagation_overestimates_at_high_activity():
    # The documented bias direction: with heavy simultaneous switching
    # the first-order density sits above the synchronous measurement.
    builder = NetworkBuilder("and2")
    builder.add_input("a")
    builder.add_input("b")
    builder.add_gate("y", GateType.AND, ["a", "b"])
    network = builder.build(outputs=["y"])
    profile = uniform_profile(network, probability=0.5, density=0.5)
    estimate = estimate_activity(network, profile)
    measured = simulate_activity(network, profile, cycles=30000, seed=2)
    assert estimate.density("y") >= measured.density("y") - 0.01


def test_estimate_reasonable_on_reconvergent_s27():
    # First-order propagation is approximate with reconvergence; require
    # agreement within a factor, not equality.
    network = s27()
    profile = uniform_profile(network, probability=0.5, density=0.3)
    estimate = estimate_activity(network, profile)
    measured = simulate_activity(network, profile, cycles=20000, seed=3)
    for name in network.logic_gates:
        measured_density = measured.density(name)
        estimated_density = estimate.density(name)
        if measured_density > 0.02:
            assert estimated_density / measured_density < 4.0
            assert estimated_density / measured_density > 0.25


def test_constant_input_allowed():
    builder = NetworkBuilder("const")
    builder.add_input("a")
    builder.add_input("one")
    builder.add_gate("y", GateType.AND, ["a", "one"])
    network = builder.build(outputs=["y"])
    profile = InputProfile(probabilities={"a": 0.5, "one": 1.0},
                           densities={"a": 0.5, "one": 0.0})
    measured = simulate_activity(network, profile, cycles=2000, seed=1)
    assert measured.probability("one") == 1.0
    assert measured.density("one") == 0.0


def test_constant_input_with_density_rejected():
    builder = NetworkBuilder("const")
    builder.add_input("one")
    builder.add_gate("y", GateType.NOT, ["one"])
    network = builder.build(outputs=["y"])
    profile = InputProfile(probabilities={"one": 1.0}, densities={"one": 0.0})
    simulate_activity(network, profile, cycles=10, seed=0)  # fine
    with pytest.raises(ActivityError):
        # Build the inconsistent profile bypassing InputProfile validation
        # is impossible; check the simulator's own guard via p=1, D>0
        # which InputProfile rejects first.
        InputProfile(probabilities={"one": 1.0}, densities={"one": 0.1})


def test_cycles_must_be_positive():
    network = s27()
    profile = uniform_profile(network, 0.5, 0.1)
    with pytest.raises(ActivityError):
        simulate_activity(network, profile, cycles=0)


def test_determinism_in_seed():
    network = s27()
    profile = uniform_profile(network, 0.5, 0.2)
    first = simulate_activity(network, profile, cycles=500, seed=42)
    second = simulate_activity(network, profile, cycles=500, seed=42)
    assert first.densities == second.densities
    third = simulate_activity(network, profile, cycles=500, seed=43)
    assert first.densities != third.densities
