"""Tests for the energy-delay frontier."""

import pytest

from repro.analysis.pareto import (
    energy_delay_tradeoff,
    minimum_energy_delay_product,
)
from repro.errors import OptimizationError
from repro.optimize.heuristic import HeuristicSettings

FAST = HeuristicSettings(grid_vdd=9, grid_vth=7, refine_iters=8,
                         refine_rounds=1)


def test_frontier_energy_decreases_with_cycle_time(s27_problem):
    points = energy_delay_tradeoff(s27_problem, (1.0, 1.5, 2.5),
                                   settings=FAST)
    assert len(points) == 3
    energies = [point.energy for point in points]
    # Warm-started relaxations: energy non-increasing up to tiny leakage
    # effects (see the Figure 2b saturation note).
    assert energies[1] <= energies[0] * 1.02
    assert energies[2] <= energies[1] * 1.05
    cycle_times = [point.cycle_time for point in points]
    assert cycle_times == sorted(cycle_times)


def test_minimum_energy_delay_product_interior(s298_problem):
    points = energy_delay_tradeoff(s298_problem,
                                   (1.0, 1.5, 2.0, 3.0, 4.0),
                                   settings=FAST)
    best = minimum_energy_delay_product(points)
    products = [point.energy_delay_product for point in points]
    assert best.energy_delay_product == min(products)
    # The ET-optimal point is a *relaxed* clock (Burr-Shott's speed
    # trade), not the tightest constraint.
    assert best.cycle_time > points[0].cycle_time


def test_point_accessors(s27_problem):
    points = energy_delay_tradeoff(s27_problem, (1.0,), settings=FAST)
    point = points[0]
    assert point.energy_delay_product == pytest.approx(
        point.energy * point.cycle_time)
    assert point.power == pytest.approx(point.energy / point.cycle_time)


def test_validation(s27_problem):
    with pytest.raises(OptimizationError):
        energy_delay_tradeoff(s27_problem, ())
    with pytest.raises(OptimizationError):
        energy_delay_tradeoff(s27_problem, (0.0,))
    with pytest.raises(OptimizationError):
        minimum_energy_delay_product(())
