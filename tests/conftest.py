"""Shared fixtures for the test suite.

Heavy objects (contexts, optimization problems) are session-scoped; tests
never mutate them. Optimizer tests use ``s27`` or small generated
networks with reduced search settings so the full suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.activity.profiles import uniform_profile
from repro.context import CircuitContext
from repro.netlist.benchmarks import benchmark_circuit, s27
from repro.netlist.generator import GeneratorSpec, generate_network
from repro.optimize.heuristic import HeuristicSettings
from repro.optimize.problem import OptimizationProblem
from repro.technology.process import Technology
from repro.units import MHZ


@pytest.fixture(scope="session")
def tech() -> Technology:
    return Technology.default()


@pytest.fixture(scope="session")
def s27_network():
    return s27()


@pytest.fixture(scope="session")
def s27_profile(s27_network):
    return uniform_profile(s27_network, probability=0.5, density=0.1)


@pytest.fixture(scope="session")
def s27_ctx(tech, s27_network, s27_profile) -> CircuitContext:
    return CircuitContext(tech, s27_network, s27_profile)


@pytest.fixture(scope="session")
def s27_problem(s27_ctx) -> OptimizationProblem:
    return OptimizationProblem(ctx=s27_ctx, frequency=300 * MHZ)


@pytest.fixture(scope="session")
def small_network():
    """A ~60-gate generated network for integration tests."""
    spec = GeneratorSpec(name="small60", n_inputs=8, n_outputs=6,
                         n_gates=60, depth=7, seed=11)
    return generate_network(spec)


@pytest.fixture(scope="session")
def small_problem(tech, small_network) -> OptimizationProblem:
    profile = uniform_profile(small_network, probability=0.5, density=0.1)
    return OptimizationProblem.build(tech, small_network, profile,
                                     frequency=300 * MHZ)


@pytest.fixture(scope="session")
def s298_problem(tech) -> OptimizationProblem:
    network = benchmark_circuit("s298")
    profile = uniform_profile(network, probability=0.5, density=0.1)
    return OptimizationProblem.build(tech, network, profile,
                                     frequency=300 * MHZ)


@pytest.fixture(scope="session")
def fast_settings() -> HeuristicSettings:
    """Reduced Procedure 2 settings for quick optimizer tests."""
    return HeuristicSettings(grid_vdd=9, grid_vth=7, refine_iters=8,
                             refine_rounds=1)
