"""Tests for the exact (BDD-based, ref. [11]) activity estimator."""

import pytest

from repro.activity.exact import (
    correlation_error,
    estimate_activity_exact,
)
from repro.activity.profiles import uniform_profile
from repro.activity.simulation import simulate_activity
from repro.activity.transition_density import estimate_activity
from repro.errors import ActivityError
from repro.netlist.benchmarks import s27
from repro.netlist.gates import GateType
from repro.netlist.network import NetworkBuilder


def reconvergent_pair():
    """y = AND(a, NOT(a)) == 0: the classic correlation killer."""
    builder = NetworkBuilder("rec")
    builder.add_input("a")
    builder.add_gate("na", GateType.NOT, ["a"])
    builder.add_gate("y", GateType.AND, ["a", "na"])
    return builder.build(outputs=["y"])


def test_reconvergence_handled_exactly():
    network = reconvergent_pair()
    profile = uniform_profile(network, probability=0.5, density=0.4)
    exact = estimate_activity_exact(network, profile)
    # y is constant 0: probability and density exactly zero.
    assert exact.probability("y") == 0.0
    assert exact.density("y") == 0.0
    # Najm's first-order estimate cannot see this.
    najm = estimate_activity(network, profile)
    assert najm.density("y") > 0.0


def test_exact_matches_monte_carlo_on_s27():
    network = s27()
    profile = uniform_profile(network, probability=0.5, density=0.3)
    exact = estimate_activity_exact(network, profile)
    assert exact.approximate_nodes == ()
    measured = simulate_activity(network, profile, cycles=60000, seed=11)
    for name in network.logic_gates:
        assert exact.density(name) == pytest.approx(
            measured.density(name), abs=0.01)
        assert exact.probability(name) == pytest.approx(
            measured.probability(name), abs=0.01)


def test_exact_agrees_with_najm_on_trees():
    # Without reconvergence and at low activity they coincide closely;
    # probabilities coincide exactly.
    builder = NetworkBuilder("tree")
    for name in ("a", "b", "c", "d"):
        builder.add_input(name)
    builder.add_gate("n1", GateType.AND, ["a", "b"])
    builder.add_gate("n2", GateType.OR, ["c", "d"])
    builder.add_gate("y", GateType.XOR, ["n1", "n2"])
    network = builder.build(outputs=["y"])
    profile = uniform_profile(network, probability=0.4, density=0.02)
    exact = estimate_activity_exact(network, profile)
    najm = estimate_activity(network, profile)
    for name in network.logic_gates:
        assert exact.probability(name) == pytest.approx(
            najm.probability(name), abs=1e-12)
        assert exact.density(name) == pytest.approx(
            najm.density(name), rel=0.05)


def test_najm_is_upper_bound_in_practice():
    # Documented direction on reconvergent logic at moderate activity.
    network = s27()
    profile = uniform_profile(network, probability=0.5, density=0.3)
    ratios = correlation_error(network, profile)
    assert ratios  # non-empty
    assert all(ratio >= 0.99 for ratio in ratios.values())
    assert max(ratios.values()) > 1.1  # the error is real


def test_support_cap_falls_back_downstream():
    network = s27()
    profile = uniform_profile(network, probability=0.5, density=0.3)
    capped = estimate_activity_exact(network, profile, max_support=2)
    assert capped.approximate_nodes  # most cones exceed 2 inputs
    najm = estimate_activity(network, profile)
    for name in capped.approximate_nodes:
        assert capped.density(name) == pytest.approx(najm.density(name))


def test_extreme_profiles():
    network = reconvergent_pair()
    # Constant-1 input: no switching anywhere.
    from repro.activity.profiles import InputProfile

    profile = InputProfile(probabilities={"a": 1.0}, densities={"a": 0.0})
    exact = estimate_activity_exact(network, profile)
    assert exact.density("na") == 0.0
    assert exact.probability("na") == 0.0


def test_as_estimate_view():
    network = s27()
    profile = uniform_profile(network, 0.5, 0.2)
    exact = estimate_activity_exact(network, profile)
    view = exact.as_estimate()
    assert view.density("G9") == exact.density("G9")
    assert view.activity("G9") == exact.activity("G9")


def test_validation():
    network = s27()
    profile = uniform_profile(network, 0.5, 0.2)
    with pytest.raises(ActivityError):
        estimate_activity_exact(network, profile, max_support=0)


def test_xor_xnor_gates_supported():
    builder = NetworkBuilder("x")
    builder.add_input("a")
    builder.add_input("b")
    builder.add_gate("p", GateType.XOR, ["a", "b"])
    builder.add_gate("q", GateType.XNOR, ["a", "b"])
    network = builder.build(outputs=["p", "q"])
    profile = uniform_profile(network, probability=0.5, density=0.5)
    exact = estimate_activity_exact(network, profile)
    assert exact.probability("p") == pytest.approx(0.5)
    assert exact.probability("q") == pytest.approx(0.5)
    # p and q are complements: identical densities.
    assert exact.density("p") == pytest.approx(exact.density("q"))
