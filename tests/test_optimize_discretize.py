"""Tests for discrete width snapping."""

import math

import pytest

from repro.errors import OptimizationError
from repro.optimize.discretize import (
    DiscretizationOutcome,
    discretize_result,
    geometric_grid,
    snap_widths,
)
from repro.optimize.heuristic import optimize_joint


def test_geometric_grid_shape():
    grid = geometric_grid(1.0, 100.0)
    assert grid[0] == 1.0
    assert grid[-1] == 100.0
    for small, large in zip(grid, grid[1:]):
        assert large > small
        assert large / small <= math.sqrt(2.0) * (1 + 1e-9)


def test_geometric_grid_validation():
    with pytest.raises(OptimizationError):
        geometric_grid(0.0, 10.0)
    with pytest.raises(OptimizationError):
        geometric_grid(10.0, 1.0)
    with pytest.raises(OptimizationError):
        geometric_grid(1.0, 10.0, ratio=1.0)


def test_snap_is_on_grid_and_never_below(s27_problem, fast_settings):
    result = optimize_joint(s27_problem, settings=fast_settings)
    grid = geometric_grid(1.0, 100.0)
    snapped = snap_widths(s27_problem, result.design, grid=grid)
    for name, width in snapped.items():
        assert any(abs(width - size) < 1e-9 for size in grid)
        assert width >= result.design.widths[name] - 1e-9 \
            or width == grid[-1]


def test_discrete_design_still_meets_timing(s298_problem):
    result = optimize_joint(s298_problem)
    outcome = discretize_result(s298_problem, result)
    assert outcome.discrete.feasible
    assert outcome.discrete.timing.critical_delay \
        <= s298_problem.cycle_time * (1 + 1e-9)


def test_energy_penalty_is_small(s298_problem):
    # A sqrt(2) ladder costs percents, not factors.
    result = optimize_joint(s298_problem)
    outcome = discretize_result(s298_problem, result)
    assert 1.0 <= outcome.energy_penalty < 1.30


def test_coarser_grid_costs_more(s298_problem):
    result = optimize_joint(s298_problem)
    fine = discretize_result(s298_problem, result,
                             grid=geometric_grid(1.0, 100.0, ratio=1.2))
    coarse = discretize_result(s298_problem, result,
                               grid=geometric_grid(1.0, 100.0, ratio=2.0))
    assert coarse.energy_penalty >= fine.energy_penalty * 0.999
