"""Physical-constant helper tests."""

import math

import pytest

from repro.constants import (
    ideality_to_subthreshold_slope,
    subthreshold_slope_to_ideality,
    thermal_voltage,
)


def test_thermal_voltage_at_room_temperature():
    assert thermal_voltage(300.0) == pytest.approx(0.025852, rel=1e-3)


def test_thermal_voltage_scales_linearly():
    assert thermal_voltage(600.0) == pytest.approx(2 * thermal_voltage(300.0))


def test_thermal_voltage_rejects_nonpositive_temperature():
    with pytest.raises(ValueError):
        thermal_voltage(0.0)
    with pytest.raises(ValueError):
        thermal_voltage(-10.0)


def test_ideal_60mv_per_decade_slope():
    # n = 1 gives the textbook ~59.6 mV/decade at 300 K.
    slope = ideality_to_subthreshold_slope(1.0, 300.0)
    assert slope == pytest.approx(0.0595, rel=1e-2)


def test_slope_ideality_roundtrip():
    for slope in (0.06, 0.085, 0.1):
        n = subthreshold_slope_to_ideality(slope)
        assert ideality_to_subthreshold_slope(n) == pytest.approx(slope)


def test_slope_must_be_positive():
    with pytest.raises(ValueError):
        subthreshold_slope_to_ideality(0.0)


def test_ideality_must_be_at_least_one():
    with pytest.raises(ValueError):
        ideality_to_subthreshold_slope(0.9)
