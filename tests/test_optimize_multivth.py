"""Tests for the multi-Vth optimizer."""

import pytest

from repro.errors import OptimizationError
from repro.optimize.heuristic import HeuristicSettings
from repro.optimize.multivth import (
    MultiVthSettings,
    group_gates_by_budget,
    optimize_multi_vth,
)
from repro.optimize.problem import OptimizationProblem
from repro.units import MHZ

FAST = MultiVthSettings(refine_iters=8, rounds=2,
                        single=HeuristicSettings(grid_vdd=9, grid_vth=7,
                                                 refine_iters=8,
                                                 refine_rounds=1))


def multi_problem(base_problem, n_vth):
    return OptimizationProblem(ctx=base_problem.ctx,
                               frequency=base_problem.frequency,
                               n_vth=n_vth)


def test_settings_validation():
    with pytest.raises(OptimizationError):
        MultiVthSettings(refine_iters=1)
    with pytest.raises(OptimizationError):
        MultiVthSettings(rounds=0)


def test_grouping_partitions_all_gates(s27_problem):
    budgets = s27_problem.budgets()
    groups = group_gates_by_budget(s27_problem, budgets, 3)
    flattened = [name for group in groups for name in group]
    assert sorted(flattened) == sorted(s27_problem.network.logic_gates)
    assert len(groups) <= 3


def test_grouping_orders_by_tightness(s27_problem):
    from repro.timing.paths import node_weight

    budgets = s27_problem.budgets()
    groups = group_gates_by_budget(s27_problem, budgets, 2)
    network = s27_problem.network

    def tightness(name):
        return budgets.budgets[name] / max(node_weight(network, name), 1)

    tight_max = max(tightness(name) for name in groups[0])
    loose_min = min(tightness(name) for name in groups[-1])
    assert tight_max <= loose_min + 1e-15


def test_grouping_validation(s27_problem):
    with pytest.raises(OptimizationError):
        group_gates_by_budget(s27_problem, s27_problem.budgets(), 0)


def test_n_vth_one_reduces_to_single(s27_problem):
    result = optimize_multi_vth(s27_problem, settings=FAST)
    assert len(result.design.distinct_vths()) == 1


def test_multi_vth_never_worse_than_single(s27_problem):
    problem = multi_problem(s27_problem, 2)
    result = optimize_multi_vth(problem, settings=FAST)
    single_energy = result.details["single_vth_energy"]
    assert result.feasible
    assert result.total_energy <= single_energy * (1 + 1e-9)


def test_multi_vth_uses_at_most_n_values(s298_problem):
    problem = multi_problem(s298_problem, 2)
    result = optimize_multi_vth(problem, settings=FAST)
    assert len(result.design.distinct_vths()) <= 2
    assert result.feasible
    # Vth map covers every gate.
    assert set(result.design.vth) == set(problem.network.logic_gates)


def test_multi_vth_slack_group_not_meaningfully_faster(s298_problem):
    # Coordinate descent gives no hard ordering guarantee, but the
    # slack-rich group should never end up with a *meaningfully lower*
    # (leakier) threshold than the speed-critical group.
    problem = multi_problem(s298_problem, 2)
    result = optimize_multi_vth(problem, settings=FAST)
    vths = result.details["group_vths"]
    assert vths[-1] >= vths[0] - 0.05
