"""Tests for the minimum-width sizing pass."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OptimizationError
from repro.optimize.width_search import size_widths
from repro.timing.budgeting import assign_delay_budgets
from repro.timing.sta import analyze_timing

CYCLE = 1.0 / 300e6


@pytest.fixture(scope="module")
def s27_budgets(s27_ctx):
    return assign_delay_budgets(s27_ctx.network, CYCLE)


def test_feasible_at_nominal_corner(s27_ctx, s27_budgets):
    assignment = size_widths(s27_ctx, s27_budgets.budgets, 3.3, 0.7)
    assert assignment.feasible
    assert not assignment.infeasible_gates
    for name in s27_ctx.gates:
        width = assignment.widths[name]
        assert s27_ctx.tech.width_min <= width <= s27_ctx.tech.width_max


def test_sized_design_meets_cycle_time(s27_ctx, s27_budgets):
    assignment = size_widths(s27_ctx, s27_budgets.budgets, 3.3, 0.7)
    report = analyze_timing(s27_ctx, 3.3, 0.7, assignment.widths)
    assert report.meets(CYCLE)


def test_every_gate_meets_its_own_budget(s27_ctx, s27_budgets):
    assignment = size_widths(s27_ctx, s27_budgets.budgets, 3.3, 0.7)
    report = analyze_timing(s27_ctx, 3.3, 0.7, assignment.widths)
    for name in s27_ctx.gates:
        assert report.delay(name) \
            <= s27_budgets.budgets[name] * (1 + 1e-9)


def test_bisect_agrees_with_closed_form(s27_ctx, s27_budgets):
    closed = size_widths(s27_ctx, s27_budgets.budgets, 3.3, 0.7,
                         method="closed_form")
    bisect = size_widths(s27_ctx, s27_budgets.budgets, 3.3, 0.7,
                         method="bisect", bisect_steps=40)
    assert bisect.feasible
    for name in s27_ctx.gates:
        assert bisect.widths[name] == pytest.approx(
            closed.widths[name], rel=1e-3, abs=1e-3)


def test_unknown_method_rejected(s27_ctx, s27_budgets):
    with pytest.raises(OptimizationError, match="unknown width-search"):
        size_widths(s27_ctx, s27_budgets.budgets, 3.3, 0.7, method="magic")


def test_missing_budget_rejected(s27_ctx, s27_budgets):
    budgets = dict(s27_budgets.budgets)
    del budgets["G8"]
    with pytest.raises(OptimizationError, match="no delay budget"):
        size_widths(s27_ctx, budgets, 3.3, 0.7)


def test_infeasible_corner_reported(s27_ctx, s27_budgets):
    assignment = size_widths(s27_ctx, s27_budgets.budgets, 0.12, 0.7)
    assert not assignment.feasible
    assert assignment.infeasible_gates


def test_tighter_budgets_need_wider_gates(s27_ctx):
    loose = assign_delay_budgets(s27_ctx.network, 2 * CYCLE)
    tight = assign_delay_budgets(s27_ctx.network, CYCLE)
    wide = size_widths(s27_ctx, tight.budgets, 3.3, 0.7)
    narrow = size_widths(s27_ctx, loose.budgets, 3.3, 0.7)
    assert sum(wide.widths.values()) >= sum(narrow.widths.values())


def test_vth_map_supported(s27_ctx, s27_budgets):
    vth_map = {name: 0.7 for name in s27_ctx.gates}
    mapped = size_widths(s27_ctx, s27_budgets.budgets, 3.3, vth_map)
    scalar = size_widths(s27_ctx, s27_budgets.budgets, 3.3, 0.7)
    for name in s27_ctx.gates:
        assert mapped.widths[name] == pytest.approx(scalar.widths[name])


def test_repair_recovers_marginal_budgets(s27_ctx, s27_budgets):
    # Shrink one gate's budget below its floor: repair must rescue it.
    budgets = dict(s27_budgets.budgets)
    victim = "G9"
    budgets[victim] *= 0.02
    bare = size_widths(s27_ctx, budgets, 3.3, 0.7)
    assert not bare.feasible and victim in bare.infeasible_gates
    repaired = size_widths(s27_ctx, budgets, 3.3, 0.7,
                           repair_ceiling=CYCLE)
    assert repaired.feasible
    assert victim in repaired.repaired_gates
    report = analyze_timing(s27_ctx, 3.3, 0.7, repaired.widths)
    assert report.meets(CYCLE)


@given(vdd=st.floats(min_value=0.5, max_value=3.3),
       vth=st.floats(min_value=0.1, max_value=0.5))
@settings(max_examples=40, deadline=None)
def test_feasible_assignments_always_meet_cycle(s27_ctx, vdd, vth):
    budgets = assign_delay_budgets(s27_ctx.network, CYCLE)
    assignment = size_widths(s27_ctx, budgets.budgets, vdd, vth,
                             repair_ceiling=CYCLE)
    if assignment.feasible:
        report = analyze_timing(s27_ctx, vdd, vth, assignment.widths)
        assert report.meets(CYCLE, tolerance=1e-6)
