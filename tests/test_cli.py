"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.netlist.benchmarks import S27_BENCH


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_decks_command(capsys):
    assert main(["decks"]) == 0
    out = capsys.readouterr().out
    assert "generic-0.25um" in out
    assert "mV/dec" in out


def test_info_command(capsys):
    assert main(["info", "s27"]) == 0
    out = capsys.readouterr().out
    assert "gates        10" in out
    assert "lint: clean" in out


def test_info_from_bench_file(tmp_path, capsys):
    path = tmp_path / "mini.bench"
    path.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
    assert main(["info", str(path)]) == 0
    out = capsys.readouterr().out
    assert "gates        1" in out


def test_optimize_command(capsys):
    assert main(["optimize", "s27", "--baseline"]) == 0
    out = capsys.readouterr().out
    assert "savings:" in out
    assert "joint" in out


def test_optimize_json(capsys):
    assert main(["optimize", "s27", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["joint"]["network"] == "s27"
    assert payload["joint"]["feasible"] == "True" \
        or payload["joint"]["feasible"] is True


def test_optimize_bench_file_with_register_margin(tmp_path, capsys):
    path = tmp_path / "s27.bench"
    path.write_text(S27_BENCH)
    assert main(["optimize", str(path), "--register-margin", "200"]) == 0
    out = capsys.readouterr().out
    assert "joint" in out


def test_activity_command(capsys):
    assert main(["activity", "s27", "--compare", "--cycles", "2000"]) == 0
    out = capsys.readouterr().out
    assert "Najm D" in out
    assert "exact D" in out
    assert "MC D" in out


def test_error_path(capsys):
    assert main(["info", "not-a-circuit"]) == 1
    err = capsys.readouterr().err
    assert "error:" in err


def test_infeasible_clock_reports_error(capsys):
    assert main(["optimize", "s27", "--frequency", "100000"]) == 1
    err = capsys.readouterr().err
    assert "error:" in err


def test_optimize_save_design(tmp_path, capsys):
    out = tmp_path / "design.json"
    assert main(["optimize", "s27", "--save-design", str(out)]) == 0
    capsys.readouterr()
    assert out.exists()
    import json as json_module

    payload = json_module.loads(out.read_text())
    assert payload["network"] == "s27"
    assert payload["widths"]


def test_optimize_writes_trace_and_metrics(tmp_path, capsys):
    trace_path = tmp_path / "run.trace.jsonl"
    metrics_path = tmp_path / "run.metrics.json"
    assert main(["optimize", "s27",
                 "--trace", str(trace_path),
                 "--metrics", str(metrics_path),
                 "--profile"]) == 0
    capsys.readouterr()
    records = [json.loads(line)
               for line in trace_path.read_text().splitlines()]
    names = {record["name"] for record in records
             if record["type"] == "span"}
    assert {"optimize_joint", "grid_search", "refine",
            "width_search"} <= names
    # Spans nest: the grid search is a child of the optimize root.
    by_name = {record["name"]: record for record in records
               if record["type"] == "span"}
    roots = [r for r in records if r.get("type") == "span"
             and r["parent_id"] is None]
    assert by_name["grid_search"]["parent_id"] == roots[0]["span_id"]
    metrics = json.loads(metrics_path.read_text())
    assert metrics["counters"]["objective_evaluations"] > 0
    assert metrics["counters"]["sta_calls"] > 0
    assert metrics["histograms"]["seam.sta.seconds"]["count"] > 0


def test_optimize_bisect_width_method_traces_width_bisect(tmp_path, capsys):
    trace_path = tmp_path / "run.trace.jsonl"
    assert main(["optimize", "s27", "--width-method", "bisect",
                 "--trace", str(trace_path)]) == 0
    capsys.readouterr()
    names = {json.loads(line)["name"]
             for line in trace_path.read_text().splitlines()
             if json.loads(line).get("type") == "span"}
    assert "width_bisect" in names


def test_trace_report_command(tmp_path, capsys):
    trace_path = tmp_path / "run.trace.jsonl"
    assert main(["optimize", "s27", "--trace", str(trace_path),
                 "--metrics", str(tmp_path / "m.json")]) == 0
    capsys.readouterr()
    assert main(["trace-report", str(trace_path), "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "top spans by self time" in out
    assert "hot counters" in out
    assert "objective_evaluations" in out


def test_trace_report_missing_file_errors(capsys):
    assert main(["trace-report", "/nonexistent/trace.jsonl"]) == 1
    assert "error:" in capsys.readouterr().err
