"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.netlist.benchmarks import S27_BENCH


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_decks_command(capsys):
    assert main(["decks"]) == 0
    out = capsys.readouterr().out
    assert "generic-0.25um" in out
    assert "mV/dec" in out


def test_info_command(capsys):
    assert main(["info", "s27"]) == 0
    out = capsys.readouterr().out
    assert "gates        10" in out
    assert "lint: clean" in out


def test_info_from_bench_file(tmp_path, capsys):
    path = tmp_path / "mini.bench"
    path.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
    assert main(["info", str(path)]) == 0
    out = capsys.readouterr().out
    assert "gates        1" in out


def test_optimize_command(capsys):
    assert main(["optimize", "s27", "--baseline"]) == 0
    out = capsys.readouterr().out
    assert "savings:" in out
    assert "joint" in out


def test_optimize_json(capsys):
    assert main(["optimize", "s27", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["joint"]["network"] == "s27"
    assert payload["joint"]["feasible"] == "True" \
        or payload["joint"]["feasible"] is True


def test_optimize_bench_file_with_register_margin(tmp_path, capsys):
    path = tmp_path / "s27.bench"
    path.write_text(S27_BENCH)
    assert main(["optimize", str(path), "--register-margin", "200"]) == 0
    out = capsys.readouterr().out
    assert "joint" in out


def test_activity_command(capsys):
    assert main(["activity", "s27", "--compare", "--cycles", "2000"]) == 0
    out = capsys.readouterr().out
    assert "Najm D" in out
    assert "exact D" in out
    assert "MC D" in out


def test_error_path(capsys):
    assert main(["info", "not-a-circuit"]) == 1
    err = capsys.readouterr().err
    assert "error:" in err


def test_infeasible_clock_reports_error(capsys):
    assert main(["optimize", "s27", "--frequency", "100000"]) == 1
    err = capsys.readouterr().err
    assert "error:" in err


def test_optimize_save_design(tmp_path, capsys):
    out = tmp_path / "design.json"
    assert main(["optimize", "s27", "--save-design", str(out)]) == 0
    capsys.readouterr()
    assert out.exists()
    import json as json_module

    payload = json_module.loads(out.read_text())
    assert payload["network"] == "s27"
    assert payload["widths"]
