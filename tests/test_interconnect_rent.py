"""Tests for Rent's-rule parameters."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.interconnect.rent import RentParameters, fit_rent_exponent
from repro.netlist.benchmarks import benchmark_circuit, s27


def test_terminals_power_law():
    rent = RentParameters(terminals_per_gate=4.0, exponent=0.6)
    assert rent.terminals(1) == pytest.approx(4.0)
    assert rent.terminals(100) == pytest.approx(4.0 * 100 ** 0.6)


def test_random_logic_defaults():
    rent = RentParameters.random_logic()
    assert rent.exponent == pytest.approx(0.6)
    assert rent.terminals_per_gate == pytest.approx(4.0)


@pytest.mark.parametrize("kwargs", [
    dict(terminals_per_gate=0.0),
    dict(terminals_per_gate=-1.0),
    dict(exponent=0.0),
    dict(exponent=1.0),
    dict(exponent=1.5),
])
def test_invalid_parameters(kwargs):
    with pytest.raises(ReproError):
        RentParameters(**{**dict(terminals_per_gate=4.0, exponent=0.6),
                          **kwargs})


def test_terminals_requires_positive_block():
    with pytest.raises(ReproError):
        RentParameters().terminals(0)


def test_fit_on_benchmark_is_in_physical_band():
    for name in ("s27", "s298", "s526"):
        rent = fit_rent_exponent(benchmark_circuit(name))
        assert 0.1 <= rent.exponent <= 0.9
        assert rent.terminals_per_gate > 1.0


def test_fit_uses_observed_pin_count():
    network = s27()
    rent = fit_rent_exponent(network)
    total_pins = sum(network.gate(g).fanin_count + 1
                     for g in network.logic_gates)
    assert rent.terminals_per_gate == pytest.approx(
        total_pins / network.gate_count)


def test_fit_with_explicit_t():
    rent = fit_rent_exponent(s27(), terminals_per_gate=3.0)
    assert rent.terminals_per_gate == 3.0


@given(st.integers(min_value=2, max_value=10**6))
@settings(max_examples=50)
def test_terminals_monotone_in_block_size(n):
    rent = RentParameters()
    assert rent.terminals(n) >= rent.terminals(n - 1)
