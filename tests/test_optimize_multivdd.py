"""Tests for the clustered-voltage-scaling (dual-Vdd) extension."""

import pytest

from repro.errors import OptimizationError
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.multivdd import (
    MultiVddSettings,
    grow_low_cluster,
    optimize_multi_vdd,
)

FAST = MultiVddSettings(refine_iters=6,
                        single=HeuristicSettings(grid_vdd=9, grid_vth=7,
                                                 refine_iters=8,
                                                 refine_rounds=1))


def test_settings_validation():
    with pytest.raises(OptimizationError):
        MultiVddSettings(cluster_fraction=0.0)
    with pytest.raises(OptimizationError):
        MultiVddSettings(cluster_fraction=1.0)
    with pytest.raises(OptimizationError):
        MultiVddSettings(refine_iters=1)


def test_cluster_is_fanout_closed(s298_problem):
    budgets = s298_problem.budgets()
    single = optimize_joint(s298_problem, settings=FAST.single,
                            budgets=budgets)
    slacks = {name: budgets.budgets[name] - single.timing.delay(name)
              for name in s298_problem.network.logic_gates}
    cluster = set(grow_low_cluster(s298_problem, budgets, slacks, 0.5))
    assert cluster
    for name in cluster:
        for sink in s298_problem.network.fanouts(name):
            assert sink in cluster, (name, sink)


def test_result_never_worse_than_single(s298_problem):
    result = optimize_multi_vdd(s298_problem, settings=FAST)
    assert result.feasible
    # Either the dual rail won, or the fallback returned the single-rail
    # design unchanged.
    strategy = result.details["strategy"]
    assert strategy in ("multi-vdd", "multi-vdd-fallback")
    if strategy == "multi-vdd":
        assert result.total_energy < result.details["single_vdd_energy"]
        assert len(result.design.distinct_vdds()) == 2
    else:
        assert len(result.design.distinct_vdds()) == 1


def test_per_gate_vdd_models_work(s27_ctx):
    """The multi-rail plumbing: mapping Vdd through STA and energy."""
    from repro.power.energy import total_energy
    from repro.timing.sta import analyze_timing

    widths = s27_ctx.uniform_widths(4.0)
    gates = s27_ctx.network.logic_gates
    mapping = {name: (1.0 if index % 2 else 2.0)
               for index, name in enumerate(gates)}
    scalar_high = analyze_timing(s27_ctx, 2.0, 0.3, widths)
    mixed = analyze_timing(s27_ctx, mapping, 0.3, widths)
    scalar_low = analyze_timing(s27_ctx, 1.0, 0.3, widths)
    assert scalar_high.critical_delay <= mixed.critical_delay
    # Mixed rails cannot be slower than the all-low design either way
    # around is not guaranteed, but energy ordering is:
    e_high = total_energy(s27_ctx, 2.0, 0.3, widths, 300e6).total
    e_mixed = total_energy(s27_ctx, mapping, 0.3, widths, 300e6).total
    e_low = total_energy(s27_ctx, 1.0, 0.3, widths, 300e6).total
    assert e_low < e_mixed < e_high


def test_missing_vdd_in_map_rejected(s27_ctx):
    from repro.errors import TimingError
    from repro.timing.sta import analyze_timing

    widths = s27_ctx.uniform_widths(4.0)
    with pytest.raises(TimingError):
        analyze_timing(s27_ctx, {"G8": 1.0}, 0.3, widths)
