"""Cross-engine equivalence: ScalarEngine vs ArrayEngine, randomized.

The parity contract (:mod:`repro.engine.base`): for any (budgets, Vdd,
Vth) point the engines agree on the feasibility verdict and, on feasible
points, on energies, critical delays and widths to float round-off. This
module exercises the contract through the public :class:`Engine` API —
seeded randomized points on generated circuits (so the topology itself
is randomized), every benchmark circuit, per-gate voltage maps, and
corners chosen to force budget repair.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.activity.profiles import uniform_profile
from repro.engine import make_engine
from repro.experiments.common import build_problem
from repro.netlist.generator import GeneratorSpec, generate_network
from repro.optimize.problem import OptimizationProblem
from repro.technology.process import Technology
from repro.units import MHZ

#: Both-engines agreement tolerance (they sum identical terms in
#: different associations, so only round-off separates them).
REL = 1e-9


def _generated_problem(seed: int) -> OptimizationProblem:
    spec = GeneratorSpec(name=f"parity{seed}", n_inputs=6, n_outputs=5,
                         n_gates=40 + 7 * (seed % 5), depth=6, seed=seed)
    network = generate_network(spec)
    profile = uniform_profile(network, probability=0.5, density=0.1)
    return OptimizationProblem.build(Technology.default(), network, profile,
                                     frequency=250 * MHZ)


def _assert_point_parity(problem, scalar, fast, budgets, vdd, vth):
    lhs = scalar.evaluate(budgets, vdd, vth)
    rhs = fast.evaluate(budgets, vdd, vth)
    assert lhs.feasible == rhs.feasible, (vdd, vth)
    if not lhs.feasible:
        assert lhs.energy == rhs.energy == math.inf
        return
    assert rhs.energy == pytest.approx(lhs.energy, rel=REL)
    assert rhs.static == pytest.approx(lhs.static, rel=REL)
    assert rhs.dynamic == pytest.approx(lhs.dynamic, rel=REL)
    assert rhs.sizing.repaired == lhs.sizing.repaired
    left_widths = lhs.widths_map()
    right_widths = rhs.widths_map()
    for name in problem.ctx.gates:
        assert right_widths[name] == pytest.approx(left_widths[name],
                                                   rel=REL), name


@pytest.mark.parametrize("seed", [3, 4, 5, 6])
def test_random_points_on_generated_circuits(seed):
    """Seeded random (Vdd, Vth, width-method) sweep, random topology."""
    problem = _generated_problem(seed)
    budgets = problem.budgets()
    rng = random.Random(1000 + seed)
    for _ in range(6):
        method = rng.choice(("closed_form", "bisect"))
        scalar = make_engine(problem, "scalar", width_method=method)
        fast = make_engine(problem, "fast", width_method=method)
        vdd = rng.uniform(0.45, 3.3)
        vth = rng.uniform(0.1, 0.55)
        _assert_point_parity(problem, scalar, fast, budgets, vdd, vth)


@pytest.mark.parametrize("circuit", ["s27", "c17", "s298", "s526"])
def test_benchmark_circuits_agree(circuit):
    problem = build_problem(circuit, 0.1)
    budgets = problem.budgets()
    scalar = make_engine(problem, "scalar")
    fast = make_engine(problem, "fast")
    rng = random.Random(17)
    for _ in range(4):
        vdd = rng.uniform(0.5, 3.3)
        vth = rng.uniform(0.1, 0.5)
        _assert_point_parity(problem, scalar, fast, budgets, vdd, vth)


def test_repair_corner_is_exercised_and_agrees():
    """A low-rail / high-Vth corner that forces budget repair on s298."""
    problem = build_problem("s298", 0.1)
    budgets = problem.budgets()
    scalar = make_engine(problem, "scalar")
    fast = make_engine(problem, "fast")
    lhs = scalar.size_widths(budgets, 0.7, 0.45)
    rhs = fast.size_widths(budgets, 0.7, 0.45)
    # The corner must actually trigger repair, or this test tests nothing.
    assert lhs.repaired, "corner no longer exercises budget repair"
    assert rhs.repaired == lhs.repaired
    assert rhs.feasible == lhs.feasible
    left = lhs.widths_map()
    right = rhs.widths_map()
    for name in problem.ctx.gates:
        assert right[name] == pytest.approx(left[name], rel=REL), name


def test_repair_corners_on_generated_circuits():
    """Walk the rail down until repair fires; parity must hold there."""
    problem = _generated_problem(9)
    budgets = problem.budgets()
    scalar = make_engine(problem, "scalar")
    fast = make_engine(problem, "fast")
    exercised = False
    for vdd in (1.2, 1.0, 0.85, 0.7, 0.6):
        lhs = scalar.size_widths(budgets, vdd, 0.45)
        rhs = fast.size_widths(budgets, vdd, 0.45)
        assert rhs.feasible == lhs.feasible, vdd
        assert rhs.repaired == lhs.repaired, vdd
        exercised = exercised or bool(lhs.repaired)
        _assert_point_parity(problem, scalar, fast, budgets, vdd, 0.45)
    assert exercised, "no corner exercised budget repair"


def test_per_gate_vth_maps_agree():
    """Multi-Vth form: a {name: vth} map through measure() and sta()."""
    problem = build_problem("s298", 0.1)
    scalar = make_engine(problem, "scalar")
    fast = make_engine(problem, "fast")
    rng = random.Random(23)
    gates = problem.ctx.gates
    vth_map = {name: rng.choice((0.2, 0.3, 0.42)) for name in gates}
    widths = {name: rng.uniform(1.0, 20.0) for name in gates}
    lhs = scalar.measure(2.0, vth_map, widths)
    rhs = fast.measure(2.0, vth_map, widths)
    assert rhs.static == pytest.approx(lhs.static, rel=REL)
    assert rhs.dynamic == pytest.approx(lhs.dynamic, rel=REL)
    assert rhs.critical_delay == pytest.approx(lhs.critical_delay, rel=REL)


def test_per_gate_vdd_and_vth_maps_agree():
    """Multi-Vdd + multi-Vth simultaneously (rails and thresholds mixed)."""
    problem = _generated_problem(12)
    scalar = make_engine(problem, "scalar")
    fast = make_engine(problem, "fast")
    rng = random.Random(31)
    gates = problem.ctx.gates
    vdd_map = {name: rng.choice((1.8, 2.5)) for name in gates}
    vth_map = {name: rng.choice((0.25, 0.35)) for name in gates}
    widths = {name: rng.uniform(1.0, 12.0) for name in gates}
    lhs = scalar.measure(vdd_map, vth_map, widths)
    rhs = fast.measure(vdd_map, vth_map, widths)
    assert rhs.static == pytest.approx(lhs.static, rel=REL)
    assert rhs.dynamic == pytest.approx(lhs.dynamic, rel=REL)
    assert rhs.critical_delay == pytest.approx(lhs.critical_delay, rel=REL)


def test_canonical_vector_voltages_agree():
    """Vector (canonical ctx.gates order) voltages through the seam."""
    import numpy as np

    problem = build_problem("c17", 0.1)
    scalar = make_engine(problem, "scalar")
    fast = make_engine(problem, "fast")
    gates = problem.ctx.gates
    rng = random.Random(41)
    vth_vec = np.asarray([rng.uniform(0.2, 0.4) for _ in gates])
    widths = {name: rng.uniform(1.0, 8.0) for name in gates}
    vth_map = {name: float(v) for name, v in zip(gates, vth_vec)}
    lhs = scalar.measure(2.2, vth_map, widths)
    rhs = fast.measure(2.2, vth_vec, widths)
    assert rhs.critical_delay == pytest.approx(lhs.critical_delay, rel=REL)
    assert rhs.static == pytest.approx(lhs.static, rel=REL)
    assert rhs.dynamic == pytest.approx(lhs.dynamic, rel=REL)
