"""Unit-helper tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_frequency_constants():
    assert units.MHZ == 1e6
    assert units.GHZ == 1e9


def test_time_constants():
    assert units.NS == 1e-9
    assert units.PS == 1e-12


def test_to_unit_roundtrip():
    assert units.to_unit(3.3e-9, units.NS) == pytest.approx(3.3)
    assert units.from_unit(300, units.MHZ) == pytest.approx(3e8)


@given(st.floats(min_value=1e-18, max_value=1e9, allow_nan=False),
       st.sampled_from([units.NS, units.FF, units.MHZ, units.UM]))
def test_to_from_unit_inverse(value, unit):
    assert units.from_unit(units.to_unit(value, unit), unit) \
        == pytest.approx(value, rel=1e-12)


@pytest.mark.parametrize("value, expected", [
    (3.3e-9, "3.300 ns"),
    (2.5e-13, "250.000 fs"),
    (0.0, "0.000 s"),
    (1.5, "1.500 s"),
    (2.2e6, "2.200 Ms"),
    (4.4e3, "4.400 ks"),
])
def test_format_si(value, expected):
    assert units.format_si(value, "s") == expected


def test_format_si_tiny_value_falls_back_to_exponent():
    text = units.format_si(1e-21, "J")
    assert "e-" in text


def test_format_si_negative():
    assert units.format_si(-3.3e-9, "s") == "-3.300 ns"
