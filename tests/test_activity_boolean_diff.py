"""Tests for Boolean-difference probabilities."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.activity.boolean_diff import (
    boolean_difference_probabilities,
    boolean_difference_probabilities_exact,
    output_probability,
)
from repro.errors import ActivityError
from repro.netlist.gates import GateType

MULTI_GATES = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
               GateType.XOR, GateType.XNOR]


@pytest.mark.parametrize("gate_type, probs, expected", [
    (GateType.AND, [0.5, 0.5], 0.25),
    (GateType.NAND, [0.5, 0.5], 0.75),
    (GateType.OR, [0.5, 0.5], 0.75),
    (GateType.NOR, [0.5, 0.5], 0.25),
    (GateType.XOR, [0.5, 0.5], 0.5),
    (GateType.XNOR, [0.5, 0.5], 0.5),
    (GateType.NOT, [0.3], 0.7),
    (GateType.BUF, [0.3], 0.3),
    (GateType.AND, [0.2, 0.4, 0.5], 0.04),
])
def test_output_probability(gate_type, probs, expected):
    assert output_probability(gate_type, probs) == pytest.approx(expected)


def test_boolean_difference_closed_forms():
    probs = [0.2, 0.6, 0.9]
    and_sens = boolean_difference_probabilities(GateType.AND, probs)
    assert and_sens[0] == pytest.approx(0.6 * 0.9)
    assert and_sens[2] == pytest.approx(0.2 * 0.6)
    or_sens = boolean_difference_probabilities(GateType.OR, probs)
    assert or_sens[0] == pytest.approx(0.4 * 0.1)
    xor_sens = boolean_difference_probabilities(GateType.XOR, probs)
    assert xor_sens == (1.0, 1.0, 1.0)
    not_sens = boolean_difference_probabilities(GateType.NOT, [0.4])
    assert not_sens == (1.0,)


@given(st.sampled_from(MULTI_GATES),
       st.lists(st.floats(min_value=0.0, max_value=1.0),
                min_size=2, max_size=5))
@settings(max_examples=150)
def test_closed_form_matches_truth_table(gate_type, probs):
    closed = boolean_difference_probabilities(gate_type, probs)
    exact = boolean_difference_probabilities_exact(gate_type, probs)
    for a, b in zip(closed, exact):
        assert a == pytest.approx(b, abs=1e-12)


@given(st.sampled_from(MULTI_GATES),
       st.lists(st.floats(min_value=0.0, max_value=1.0),
                min_size=2, max_size=5))
@settings(max_examples=150)
def test_output_probability_matches_truth_table(gate_type, probs):
    table_prob = 0.0
    from repro.netlist.gates import truth_table
    table = truth_table(gate_type, len(probs))
    for assignment, value in enumerate(table):
        if not value:
            continue
        weight = 1.0
        for position, probability in enumerate(probs):
            bit = (assignment >> position) & 1
            weight *= probability if bit else 1.0 - probability
        table_prob += weight
    assert output_probability(gate_type, probs) \
        == pytest.approx(table_prob, abs=1e-12)


def test_inverting_pair_probabilities_complement():
    probs = [0.3, 0.8]
    assert output_probability(GateType.NAND, probs) \
        == pytest.approx(1.0 - output_probability(GateType.AND, probs))


def test_invalid_probability_rejected():
    with pytest.raises(ActivityError):
        output_probability(GateType.AND, [0.5, 1.5])
    with pytest.raises(ActivityError):
        boolean_difference_probabilities(GateType.AND, [-0.1, 0.5])


def test_input_gate_rejected():
    with pytest.raises(ActivityError):
        output_probability(GateType.INPUT, [])
    with pytest.raises(ActivityError):
        boolean_difference_probabilities(GateType.INPUT, [])
