"""Tests for input activity profiles."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.activity.profiles import InputProfile, max_density, uniform_profile
from repro.errors import ActivityError
from repro.netlist.benchmarks import s27


def test_uniform_profile_covers_all_inputs():
    network = s27()
    profile = uniform_profile(network, probability=0.5, density=0.1)
    assert profile.covers(network)
    profile.require_covers(network)
    for name in network.inputs:
        assert profile.probability(name) == 0.5
        assert profile.density(name) == 0.1


def test_uniform_profile_default_density_is_random_data():
    network = s27()
    profile = uniform_profile(network, probability=0.3)
    assert profile.density(network.inputs[0]) == pytest.approx(2 * 0.3 * 0.7)


def test_max_density():
    assert max_density(0.5) == 1.0
    assert max_density(0.1) == pytest.approx(0.2)
    assert max_density(0.9) == pytest.approx(0.2)


def test_probability_out_of_range_rejected():
    with pytest.raises(ActivityError, match="not in"):
        InputProfile(probabilities={"a": 1.5}, densities={"a": 0.1})


def test_density_above_markov_limit_rejected():
    with pytest.raises(ActivityError, match="Markov limit"):
        InputProfile(probabilities={"a": 0.05}, densities={"a": 0.5})


def test_negative_density_rejected():
    with pytest.raises(ActivityError, match="negative"):
        InputProfile(probabilities={"a": 0.5}, densities={"a": -0.1})


def test_mismatched_maps_rejected():
    with pytest.raises(ActivityError, match="same inputs"):
        InputProfile(probabilities={"a": 0.5}, densities={"b": 0.1})


def test_missing_input_detected():
    network = s27()
    profile = InputProfile(probabilities={"G0": 0.5}, densities={"G0": 0.1})
    assert not profile.covers(network)
    with pytest.raises(ActivityError, match="misses"):
        profile.require_covers(network)
    with pytest.raises(ActivityError, match="no profile"):
        profile.probability("G1")


@given(probability=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=50)
def test_uniform_profile_always_valid(probability):
    # Default density is 2p(1-p) <= 2*min(p, 1-p): always feasible.
    uniform_profile(s27(), probability=probability)
