"""Batched multi-design evaluation parity: BatchEngine vs loop.

The batch contract (:mod:`repro.engine.batch`): evaluating B designs
with one ``measure_batch`` / ``evaluate_batch`` call is **bit-identical
per row** (``==``, not approx) to looping the single-design ArrayEngine
calls — batching is a pure execution detail. Against the ScalarEngine
the usual round-off tolerance applies (the fast kernels re-associate
sums). This module mirrors :mod:`tests.test_engine_parity`: randomized
design batches on generated circuits, per-gate voltage rows, budget-
repair corners, the B=1 degenerate batch, fallback accounting, and the
batched consumers (robust estimator, Monte-Carlo, population
annealing).
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.activity.profiles import uniform_profile
from repro.engine import fingerprint_engine_name, make_engine
from repro.engine.base import Evaluator
from repro.experiments.common import build_problem
from repro.netlist.generator import GeneratorSpec, generate_network
from repro.obs.instrument import BATCH_CALLS, BATCH_FALLBACK, BATCH_ROWS
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.optimize.problem import OptimizationProblem
from repro.technology.process import Technology
from repro.units import MHZ

#: Scalar-engine agreement tolerance (round-off only).
REL = 1e-9


def _generated_problem(seed: int) -> OptimizationProblem:
    spec = GeneratorSpec(name=f"batchpar{seed}", n_inputs=6, n_outputs=5,
                         n_gates=40 + 7 * (seed % 5), depth=6, seed=seed)
    network = generate_network(spec)
    profile = uniform_profile(network, probability=0.5, density=0.1)
    return OptimizationProblem.build(Technology.default(), network, profile,
                                     frequency=250 * MHZ)


def _assert_rows_identical(batched, looped):
    """Batched row == looped single-design evaluation, bitwise."""
    assert len(batched) == len(looped)
    for row, (lhs, rhs) in enumerate(zip(batched, looped)):
        assert lhs.feasible == rhs.feasible, row
        if not lhs.feasible:
            assert lhs.energy == rhs.energy == math.inf
            continue
        assert lhs.energy == rhs.energy, row
        assert lhs.static == rhs.static, row
        assert lhs.dynamic == rhs.dynamic, row
        assert lhs.sizing.repaired == rhs.sizing.repaired, row
        assert lhs.widths_map() == rhs.widths_map(), row


@pytest.mark.parametrize("seed", [3, 5, 8])
def test_evaluate_batch_identical_to_loop(seed):
    """Random corner batches: one batched call == the row loop (==)."""
    problem = _generated_problem(seed)
    budgets = problem.budgets()
    rng = random.Random(2000 + seed)
    method = rng.choice(("closed_form", "bisect"))
    batch = make_engine(problem, "batch", width_method=method)
    fast = make_engine(problem, "fast", width_method=method)
    corners = [(rng.uniform(0.45, 3.3), rng.uniform(0.1, 0.55))
               for _ in range(9)]
    batched = batch.evaluate_batch(budgets, [c[0] for c in corners],
                                   [c[1] for c in corners])
    looped = [fast.evaluate(budgets, vdd, vth) for vdd, vth in corners]
    _assert_rows_identical(batched, looped)


@pytest.mark.parametrize("seed", [4, 7])
def test_evaluate_batch_tracks_scalar_engine(seed):
    """And the batched rows stay within round-off of the ScalarEngine."""
    problem = _generated_problem(seed)
    budgets = problem.budgets()
    rng = random.Random(3000 + seed)
    batch = make_engine(problem, "batch")
    scalar = make_engine(problem, "scalar")
    corners = [(rng.uniform(0.6, 3.3), rng.uniform(0.1, 0.5))
               for _ in range(5)]
    batched = batch.evaluate_batch(budgets, [c[0] for c in corners],
                                   [c[1] for c in corners])
    for row, (vdd, vth) in enumerate(corners):
        reference = scalar.evaluate(budgets, vdd, vth)
        assert batched[row].feasible == reference.feasible, (vdd, vth)
        if not reference.feasible:
            continue
        assert batched[row].energy == pytest.approx(reference.energy,
                                                    rel=REL)
        left = reference.widths_map()
        right = batched[row].widths_map()
        for name in problem.ctx.gates:
            assert right[name] == pytest.approx(left[name], rel=REL), name


def test_measure_batch_per_gate_rows_identical():
    """Per-gate Vth maps (multi-Vth dies), shared width handle."""
    problem = build_problem("s298", 0.1)
    batch = make_engine(problem, "batch")
    fast = make_engine(problem, "fast")
    rng = random.Random(23)
    gates = problem.ctx.gates
    widths = {name: rng.uniform(1.0, 20.0) for name in gates}
    rows = [{name: rng.uniform(0.2, 0.42) for name in gates}
            for _ in range(7)]
    batched = batch.measure_batch([2.0] * len(rows), rows,
                                  [widths] * len(rows))
    for row, vth_map in enumerate(rows):
        reference = fast.measure(2.0, vth_map, widths)
        assert batched[row].static == reference.static
        assert batched[row].dynamic == reference.dynamic
        assert batched[row].critical_delay == reference.critical_delay


def test_measure_batch_distinct_width_rows_identical():
    """Distinct per-row widths (the annealing-population shape)."""
    problem = _generated_problem(11)
    batch = make_engine(problem, "batch")
    fast = make_engine(problem, "fast")
    rng = random.Random(29)
    gates = problem.ctx.gates
    rows = [({name: rng.uniform(1.0, 15.0) for name in gates},
             rng.uniform(0.9, 3.0), rng.uniform(0.15, 0.45))
            for _ in range(6)]
    batched = batch.measure_batch([vdd for _, vdd, _ in rows],
                                  [vth for _, _, vth in rows],
                                  [w for w, _, _ in rows])
    for row, (widths, vdd, vth) in enumerate(rows):
        reference = fast.measure(vdd, vth, widths)
        assert batched[row].static == reference.static
        assert batched[row].dynamic == reference.dynamic
        assert batched[row].critical_delay == reference.critical_delay


def test_repair_corner_batch_identical():
    """The s298 budget-repair corner, batched with benign corners."""
    problem = build_problem("s298", 0.1)
    budgets = problem.budgets()
    batch = make_engine(problem, "batch")
    fast = make_engine(problem, "fast")
    corners = [(0.7, 0.45), (2.5, 0.25), (0.6, 0.5), (3.3, 0.1),
               (0.85, 0.45)]
    looped = [fast.evaluate(budgets, vdd, vth) for vdd, vth in corners]
    # The corner must actually trigger repair, or this test tests nothing.
    repaired = fast.size_widths(budgets, 0.7, 0.45).repaired
    assert repaired, "corner no longer exercises budget repair"
    batched = batch.evaluate_batch(budgets, [c[0] for c in corners],
                                   [c[1] for c in corners])
    _assert_rows_identical(batched, looped)


def test_single_row_batch_degenerate():
    """B=1 must behave exactly like the plain single-design call."""
    problem = build_problem("c17", 0.1)
    budgets = problem.budgets()
    batch = make_engine(problem, "batch")
    fast = make_engine(problem, "fast")
    _assert_rows_identical(batch.evaluate_batch(budgets, [2.2], [0.3]),
                           [fast.evaluate(budgets, 2.2, 0.3)])
    lhs = batch.measure_batch([2.2], [0.3],
                              [{name: 4.0 for name in problem.ctx.gates}])[0]
    rhs = fast.measure(2.2, 0.3, {name: 4.0 for name in problem.ctx.gates})
    assert (lhs.static, lhs.dynamic, lhs.critical_delay) == \
        (rhs.static, rhs.dynamic, rhs.critical_delay)


def test_canonical_vector_rows_identical():
    """Vector (canonical order) voltage rows through measure_batch."""
    problem = build_problem("c17", 0.1)
    batch = make_engine(problem, "batch")
    fast = make_engine(problem, "fast")
    gates = problem.ctx.gates
    rng = random.Random(41)
    widths = {name: rng.uniform(1.0, 8.0) for name in gates}
    rows = [np.asarray([rng.uniform(0.2, 0.4) for _ in gates])
            for _ in range(4)]
    batched = batch.measure_batch([2.2] * len(rows), rows,
                                  [widths] * len(rows))
    for row, vth_vec in enumerate(rows):
        reference = fast.measure(2.2, vth_vec, widths)
        assert batched[row].static == reference.static
        assert batched[row].dynamic == reference.dynamic
        assert batched[row].critical_delay == reference.critical_delay


def test_mixed_rows_fall_back_and_count():
    """Mixed scalar/per-gate rows take the loop; counters say so."""
    problem = build_problem("c17", 0.1)
    batch = make_engine(problem, "batch")
    fast = make_engine(problem, "fast")
    gates = problem.ctx.gates
    widths = {name: 4.0 for name in gates}
    mixed_vth = [0.3, {name: 0.3 for name in gates}]
    registry = MetricsRegistry()
    with use_metrics(registry):
        batched = batch.measure_batch([2.2, 2.2], mixed_vth, [widths] * 2)
    assert registry.counter(BATCH_FALLBACK) == 1
    assert registry.counter(BATCH_CALLS) == 0
    for row, vth in enumerate(mixed_vth):
        reference = fast.measure(2.2, vth, widths)
        assert batched[row].critical_delay == reference.critical_delay


def test_batch_counters_observe_rows():
    """A served batch books one call and a B-row histogram sample."""
    problem = build_problem("c17", 0.1)
    budgets = problem.budgets()
    batch = make_engine(problem, "batch")
    registry = MetricsRegistry()
    with use_metrics(registry):
        batch.evaluate_batch(budgets, [2.0, 2.4, 2.8], [0.3, 0.3, 0.25])
    assert registry.counter(BATCH_CALLS) == 1
    histogram = registry.histogram(BATCH_ROWS)
    assert histogram is not None and histogram.total == 3.0


def test_scalar_engine_fallback_loop_matches():
    """Engines without supports_batch serve the same API via the loop."""
    problem = build_problem("c17", 0.1)
    budgets = problem.budgets()
    scalar = make_engine(problem, "scalar")
    assert not scalar.supports_batch
    batched = scalar.evaluate_batch(budgets, [2.2, 0.7], [0.3, 0.45])
    looped = [scalar.evaluate(budgets, 2.2, 0.3),
              scalar.evaluate(budgets, 0.7, 0.45)]
    _assert_rows_identical(batched, looped)


def test_evaluator_prefetch_identity_and_counters():
    """prefetch() + consumption == plain calls, counters included."""
    problem = build_problem("s27", 0.1)
    budgets = problem.budgets()
    corners = [(2.0, 0.3), (2.4, 0.28), (0.9, 0.42), (3.1, 0.18)]

    def run(prefetched: bool):
        registry = MetricsRegistry()
        with use_metrics(registry):
            evaluator = Evaluator(problem, make_engine(problem, "batch"),
                                  budgets)
            if prefetched:
                assert evaluator.prefetch(corners) == len(corners)
            results = [evaluator(vdd, vth) for vdd, vth in corners]
        return results, registry.counters(), evaluator.evaluations

    plain, plain_counters, plain_evals = run(False)
    fetched, fetched_counters, fetched_evals = run(True)
    _assert_rows_identical(fetched, plain)
    assert fetched_evals == plain_evals
    for name in ("sta_calls", "energy_evaluations", "width_sizings",
                 "objective_evaluations"):
        assert fetched_counters.get(name) == plain_counters.get(name), name


def test_fingerprint_canonicalizes_batch_to_fast():
    assert fingerprint_engine_name("batch") == "fast"
    assert fingerprint_engine_name("fast") == "fast"
    assert fingerprint_engine_name("scalar") == "scalar"


def test_robust_estimator_batched_matches_looped():
    """All dies of a stage in one call == the per-die loop, exactly."""
    from repro.robust.config import RobustConfig
    from repro.robust.estimator import RobustEstimator

    problem = build_problem("s27", 0.1)
    config = RobustConfig(samples=12, cull_samples=5, seed=7)
    widths = {name: 6.0 for name in problem.ctx.gates}
    batched = RobustEstimator(problem, config,
                              make_engine(problem, "batch"))
    looped = RobustEstimator(problem, config, make_engine(problem, "fast"))
    lhs = batched.estimate(2.0, 0.3, widths)
    rhs = looped.estimate(2.0, 0.3, widths)
    assert lhs.to_dict() == rhs.to_dict()


def test_montecarlo_engine_path_matches_fast_loop():
    """engine="batch" MC == engine="fast" MC (same CRN draws)."""
    from repro.analysis.montecarlo import monte_carlo_variation
    from repro.optimize.problem import DesignPoint

    problem = build_problem("s27", 0.1)
    design = DesignPoint(vdd=2.2, vth=0.3,
                         widths={name: 6.0
                                 for name in problem.ctx.gates})
    batched = monte_carlo_variation(problem, design, samples=16, seed=3,
                                    engine="batch")
    looped = monte_carlo_variation(problem, design, samples=16, seed=3,
                                   engine="fast")
    assert batched.energies == looped.energies
    assert batched.delays == looped.delays
    assert batched.timing_yield == looped.timing_yield
    # ... and the legacy reference path agrees to round-off.
    legacy = monte_carlo_variation(problem, design, samples=16, seed=3)
    assert batched.timing_yield == legacy.timing_yield
    for lhs, rhs in zip(batched.energies, legacy.energies):
        assert lhs == pytest.approx(rhs, rel=REL)


def test_population_annealing_chains_match_sequential():
    """Chain k of a population run == the sequential run with seed+k."""
    from repro.optimize.annealing import (AnnealingSettings,
                                          optimize_annealing)

    problem = build_problem("s27", 0.1)
    base = dict(passes=1, iterations_per_pass=60, engine="batch")
    population = optimize_annealing(
        problem, AnnealingSettings(seed=5, population=3, **base))
    assert population.details["population"] == 3
    digests = population.details["trajectories"]
    sequential = [optimize_annealing(
        problem, AnnealingSettings(seed=5 + k, **base)).details["trajectory"]
        for k in range(3)]
    assert digests == sequential
    winner = population.details["chain"]
    assert population.details["trajectory"] == sequential[winner]
