"""Tests for the embedded benchmark suite."""

import pytest

from repro.errors import NetlistError
from repro.netlist.benchmarks import (
    ISCAS_LIKE_SPECS,
    PAPER_CIRCUITS,
    benchmark_circuit,
    benchmark_names,
    s27,
)
from repro.netlist.stats import network_stats
from repro.netlist.validate import lint


def test_paper_suite_order():
    assert PAPER_CIRCUITS[0] == "s298"
    assert "s526" in PAPER_CIRCUITS
    assert benchmark_names()[0] == "s27"
    assert benchmark_names(include_s27=False) == PAPER_CIRCUITS


def test_unknown_benchmark():
    with pytest.raises(NetlistError, match="unknown benchmark"):
        benchmark_circuit("c6288")


def test_s27_is_genuine():
    network = s27()
    # Spot-check the published structure.
    assert network.gate("G8").fanins == ("G14", "G6")
    assert network.gate("G9").fanins == ("G16", "G15")
    # Functional check: with G0=1, G14=0 so G8=0, G10=NOR(0, G11).
    values = network.evaluate({"G0": True, "G1": False, "G2": False,
                               "G3": False, "G5": False, "G6": True,
                               "G7": False})
    assert values["G14"] is False
    assert values["G8"] is False


@pytest.mark.parametrize("name", PAPER_CIRCUITS)
def test_iscas_like_matches_published_stats(name):
    inputs, outputs, gates, depth, _ = ISCAS_LIKE_SPECS[name]
    network = benchmark_circuit(name)
    stats = network_stats(network)
    assert stats.n_gates == gates
    assert stats.depth == depth
    assert stats.n_inputs == inputs


@pytest.mark.parametrize("name", PAPER_CIRCUITS)
def test_iscas_like_structurally_clean(name):
    network = benchmark_circuit(name)
    bad = [issue for issue in lint(network)
           if issue.kind in ("dangling-gate", "dead-logic")]
    assert bad == []


def test_benchmark_circuit_is_cached():
    assert benchmark_circuit("s298") is benchmark_circuit("s298")


def test_c17_is_genuine():
    from repro.netlist.benchmarks import c17
    from repro.netlist.gates import GateType

    network = c17()
    assert network.gate_count == 6
    assert network.depth == 3
    assert all(network.gate(name).gate_type is GateType.NAND
               for name in network.logic_gates)
    # Truth spot-checks against the published function.
    values = network.evaluate({"N1": True, "N2": True, "N3": True,
                               "N6": True, "N7": False})
    assert values["N22"] is True
    assert values["N23"] is False
    values = network.evaluate({"N1": False, "N2": False, "N3": False,
                               "N6": False, "N7": False})
    # All-zero inputs: N10=N11=1, N16=NAND(0,1)=1, N19=NAND(1,0)=1,
    # so both outputs NAND(1,1) = 0.
    assert values["N22"] is False
    assert values["N23"] is False


def test_c_suite_matches_specs():
    from repro.netlist.benchmarks import ISCAS85_LIKE_SPECS

    for name, (inputs, _, gates, depth, _) in ISCAS85_LIKE_SPECS.items():
        network = benchmark_circuit(name)
        assert network.gate_count == gates, name
        assert network.depth == depth, name
        assert len(network.inputs) == inputs, name


def test_benchmark_names_with_c_suite():
    names = benchmark_names(include_c_suite=True)
    assert "c432" in names and "s298" in names
    assert names.index("s526") < names.index("c432")
