"""Tests for network statistics and lint."""

import pytest

from repro.netlist.benchmarks import s27
from repro.netlist.gates import GateType
from repro.netlist.network import NetworkBuilder
from repro.netlist.stats import network_stats
from repro.netlist.validate import assert_clean, lint


def test_stats_s27():
    stats = network_stats(s27())
    assert stats.n_gates == 10
    assert stats.n_inputs == 7
    assert stats.depth == 6
    assert dict(stats.gate_type_counts)["nor"] == 4
    assert stats.mean_fanin == pytest.approx(1.8)
    assert stats.as_dict()["gates"] == 10


def test_stats_fanout_histogram_covers_all_nodes():
    stats = network_stats(s27())
    total = sum(count for _, count in stats.fanout_histogram)
    assert total == 17  # 7 inputs + 10 gates


def test_lint_clean_network():
    builder = NetworkBuilder("clean")
    builder.add_input("a")
    builder.add_gate("x", GateType.NOT, ["a"])
    network = builder.build(outputs=["x"])
    assert lint(network) == ()
    assert_clean(network)


def test_lint_unused_input():
    builder = NetworkBuilder("n")
    builder.add_input("a")
    builder.add_input("unused")
    builder.add_gate("x", GateType.NOT, ["a"])
    network = builder.build(outputs=["x"])
    kinds = {issue.kind for issue in lint(network)}
    assert "unused-input" in kinds


def test_lint_dangling_and_dead():
    builder = NetworkBuilder("n")
    builder.add_input("a")
    builder.add_gate("x", GateType.NOT, ["a"])
    builder.add_gate("hang", GateType.NOT, ["a"])
    network = builder.build(outputs=["x"])
    kinds = {issue.kind for issue in lint(network)}
    assert "dangling-gate" in kinds
    assert "dead-logic" in kinds


def test_lint_buffer_chain():
    builder = NetworkBuilder("n")
    builder.add_input("a")
    builder.add_gate("b1", GateType.BUF, ["a"])
    builder.add_gate("b2", GateType.BUF, ["b1"])
    network = builder.build(outputs=["b2"])
    kinds = {issue.kind for issue in lint(network)}
    assert "buffer-chain" in kinds


def test_assert_clean_raises_with_summary():
    builder = NetworkBuilder("n")
    builder.add_input("a")
    builder.add_gate("x", GateType.NOT, ["a"])
    builder.add_gate("hang", GateType.NOT, ["a"])
    network = builder.build(outputs=["x"])
    with pytest.raises(AssertionError, match="dangling-gate"):
        assert_clean(network)
    # Allow-list suppresses the failure.
    assert_clean(network, allow_kinds=("dangling-gate", "dead-logic"))


def test_issue_str():
    builder = NetworkBuilder("n")
    builder.add_input("a")
    builder.add_input("unused")
    builder.add_gate("x", GateType.NOT, ["a"])
    network = builder.build(outputs=["x"])
    issue = [i for i in lint(network) if i.kind == "unused-input"][0]
    assert "unused" in str(issue)
