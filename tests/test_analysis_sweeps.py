"""Tests for the Figure 2 sweeps and surface scans."""

import math

import pytest

from repro.analysis.sweeps import (
    scan_energy_surface,
    sweep_cycle_slack,
    sweep_vth_tolerance,
)
from repro.errors import InfeasibleError
from repro.optimize.heuristic import HeuristicSettings
from repro.runtime.pool import multiprocessing_available
from repro.runtime.supervisor import ParallelPlan, use_parallel

FAST = HeuristicSettings(grid_vdd=9, grid_vth=7, refine_iters=6,
                         refine_rounds=1)


def test_vth_tolerance_sweep_monotone_decay(s27_problem):
    points = sweep_vth_tolerance(s27_problem, (0.0, 0.15, 0.3),
                                 settings=FAST)
    savings = [point.savings for point in points]
    assert len(points) == 3
    assert savings[0] >= savings[1] >= savings[2]
    assert all(point.savings > 1.0 for point in points)


def test_vth_tolerance_baseline_is_shared(s27_problem):
    points = sweep_vth_tolerance(s27_problem, (0.0, 0.2), settings=FAST)
    assert points[0].baseline_energy == points[1].baseline_energy


def test_cycle_slack_sweep_grows_then_saturates(s27_problem):
    points = sweep_cycle_slack(s27_problem, (1.0, 1.5, 2.5),
                               settings=FAST)
    savings = [point.savings for point in points]
    assert savings[-1] > savings[0]
    best = savings[0]
    for value in savings[1:]:
        assert value >= 0.95 * best
        best = max(best, value)
    # Relaxing the clock lowers the chosen Vdd (or keeps it, roughly).
    assert points[-1].vdd <= points[0].vdd + 0.05


def test_cycle_slack_rebaseline_mode(s27_problem):
    pinned = sweep_cycle_slack(s27_problem, (2.0,), settings=FAST)
    refreshed = sweep_cycle_slack(s27_problem, (2.0,), settings=FAST,
                                  rebaseline=True)
    # Re-running the baseline at the relaxed clock lowers the numerator.
    assert refreshed[0].baseline_energy <= pinned[0].baseline_energy


def test_cycle_slack_rejects_nonpositive(s27_problem):
    with pytest.raises(InfeasibleError):
        sweep_cycle_slack(s27_problem, (0.0,), settings=FAST)


def test_energy_surface_shape(s27_problem):
    surface = scan_energy_surface(s27_problem,
                                  vdd_values=(0.1, 1.0, 3.3),
                                  vth_values=(0.1, 0.7))
    assert len(surface) == 6
    # Vdd = 0.1 V cannot possibly make 300 MHz: infeasible.
    assert math.isinf(surface[(0.1, 0.1)])
    # The nominal-ish corner is feasible.
    assert math.isfinite(surface[(3.3, 0.1)])
    # High Vdd with low Vth costs more than moderate Vdd with low Vth.
    if math.isfinite(surface[(1.0, 0.1)]):
        assert surface[(1.0, 0.1)] < surface[(3.3, 0.1)]


@pytest.mark.skipif(not multiprocessing_available(),
                    reason="multiprocessing unavailable")
def test_surface_and_tolerance_sweep_jobs_invariant(s27_problem):
    tolerances = (0.0, 0.1)
    vdds, vths = (2.0, 3.0), (0.4, 0.6)
    serial_points = sweep_vth_tolerance(s27_problem, tolerances)
    serial_surface = scan_energy_surface(s27_problem, vdds, vths)
    with use_parallel(ParallelPlan(jobs=2, heartbeat_s=0.05)):
        pooled_points = sweep_vth_tolerance(s27_problem, tolerances)
        pooled_surface = scan_energy_surface(s27_problem, vdds, vths)
    assert pooled_points == serial_points
    assert pooled_surface == serial_surface
