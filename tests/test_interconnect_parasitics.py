"""Tests for net parasitics assembly."""

import pytest

from repro.errors import ReproError
from repro.interconnect.parasitics import (
    NetParasitics,
    WireModel,
    net_parasitics,
    network_parasitics,
)
from repro.netlist.benchmarks import s27
from repro.technology.process import Technology

TECH = Technology.default()


def test_net_parasitics_unit_conversions():
    parasitic = net_parasitics(TECH, "n", (2.0, 3.0))
    length0 = 2.0 * TECH.gate_pitch
    assert parasitic.branch_lengths[0] == pytest.approx(length0)
    assert parasitic.branch_caps[0] == pytest.approx(
        length0 * TECH.wire_cap_per_meter)
    assert parasitic.branch_resistances[0] == pytest.approx(
        length0 * TECH.wire_res_per_meter)
    assert parasitic.branch_flight_times[0] == pytest.approx(
        length0 / TECH.wire_velocity)
    assert parasitic.total_cap == pytest.approx(
        sum(parasitic.branch_caps))
    assert parasitic.branch_count == 2


def test_empty_branches_rejected():
    with pytest.raises(ReproError):
        net_parasitics(TECH, "n", ())


def test_network_parasitics_covers_every_node():
    network = s27()
    parasitics = network_parasitics(TECH, network)
    assert set(parasitics) == set(network.topological_order())


def test_branch_count_matches_fanout():
    network = s27()
    parasitics = network_parasitics(TECH, network)
    for name in network.topological_order():
        fanout = len(network.fanouts(name))
        expected = max(fanout, 1)
        assert parasitics[name].branch_count == expected


def test_fixed_model_one_pitch_per_branch():
    network = s27()
    parasitics = network_parasitics(TECH, network, model=WireModel.FIXED)
    for parasitic in parasitics.values():
        for length in parasitic.branch_lengths:
            assert length == pytest.approx(TECH.gate_pitch)


def test_sampled_model_deterministic_in_seed():
    network = s27()
    first = network_parasitics(TECH, network,
                               model=WireModel.STOCHASTIC_SAMPLED, seed=3)
    second = network_parasitics(TECH, network,
                                model=WireModel.STOCHASTIC_SAMPLED, seed=3)
    third = network_parasitics(TECH, network,
                               model=WireModel.STOCHASTIC_SAMPLED, seed=4)
    assert all(first[n].branch_lengths == second[n].branch_lengths
               for n in first)
    assert any(first[n].branch_lengths != third[n].branch_lengths
               for n in first)


def test_mean_model_splits_net_length_evenly():
    network = s27()
    parasitics = network_parasitics(TECH, network,
                                    model=WireModel.STOCHASTIC_MEAN)
    for parasitic in parasitics.values():
        lengths = parasitic.branch_lengths
        assert max(lengths) == pytest.approx(min(lengths))


def test_stochastic_mean_total_grows_with_fanout():
    network = s27()
    parasitics = network_parasitics(TECH, network)
    by_fanout = {}
    for name in network.topological_order():
        fanout = max(len(network.fanouts(name)), 1)
        by_fanout.setdefault(fanout, parasitics[name].total_length)
    fanouts = sorted(by_fanout)
    for small, large in zip(fanouts, fanouts[1:]):
        assert by_fanout[large] >= by_fanout[small]
