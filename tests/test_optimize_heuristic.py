"""Tests for Procedure 2 (the joint heuristic)."""

import pytest

from repro.errors import InfeasibleError, OptimizationError
from repro.optimize.baseline import optimize_fixed_vth
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.problem import OptimizationProblem
from repro.units import GHZ


def test_settings_validation():
    with pytest.raises(OptimizationError):
        HeuristicSettings(strategy="magic")
    with pytest.raises(OptimizationError):
        HeuristicSettings(m_steps=1)
    with pytest.raises(OptimizationError):
        HeuristicSettings(grid_vdd=1)


def test_joint_result_feasible_and_in_ranges(s27_problem, fast_settings):
    result = optimize_joint(s27_problem, settings=fast_settings)
    tech = s27_problem.tech
    assert result.feasible
    assert tech.vdd_min <= result.design.vdd <= tech.vdd_max
    vth = result.design.distinct_vths()[0]
    assert tech.vth_min <= vth <= tech.vth_max
    for width in result.design.widths.values():
        assert tech.width_min <= width <= tech.width_max


def test_joint_beats_fixed_vth_baseline(s27_problem, fast_settings):
    baseline = optimize_fixed_vth(s27_problem)
    joint = optimize_joint(s27_problem, settings=fast_settings)
    assert joint.total_energy < baseline.total_energy
    # The headline shape: a large factor, not a shave.
    assert baseline.total_energy / joint.total_energy > 3.0


def test_joint_optimum_has_low_vdd_low_vth(s298_problem):
    result = optimize_joint(s298_problem)
    vth = result.design.distinct_vths()[0]
    # Paper: Vdd in [0.6, 1.2] V (wider here for deck differences),
    # Vth in [100, 300] mV.
    assert result.design.vdd < 1.6
    assert vth <= 0.30


def test_joint_static_dynamic_comparable(s298_problem):
    result = optimize_joint(s298_problem)
    ratio = result.energy.static / result.energy.dynamic
    assert 0.05 < ratio < 5.0


def test_paper_strategy_runs_and_is_feasible(s27_problem):
    settings = HeuristicSettings(strategy="paper", m_steps=8)
    result = optimize_joint(s27_problem, settings=settings)
    assert result.feasible
    assert result.details["strategy"] == "paper"


def test_grid_not_much_worse_than_anything(s27_problem, fast_settings):
    # The grid+refine strategy should be at least as good as the paper's
    # steered bisection (which can get stuck on feasibility boundaries).
    grid = optimize_joint(s27_problem, settings=fast_settings)
    paper = optimize_joint(s27_problem,
                           settings=HeuristicSettings(strategy="paper",
                                                      m_steps=10))
    assert grid.total_energy <= paper.total_energy * 1.10


def test_infeasible_clock_raises(s27_problem):
    impossible = OptimizationProblem(ctx=s27_problem.ctx,
                                     frequency=100 * GHZ)
    with pytest.raises(InfeasibleError, match="no .*point meets"):
        optimize_joint(impossible)


def test_custom_search_ranges_respected(s27_problem):
    settings = HeuristicSettings(grid_vdd=7, grid_vth=5, refine_iters=6,
                                 refine_rounds=1,
                                 vdd_range=(2.0, 3.3),
                                 vth_range=(0.3, 0.5))
    result = optimize_joint(s27_problem, settings=settings)
    assert 2.0 <= result.design.vdd <= 3.3
    assert 0.3 <= result.design.distinct_vths()[0] <= 0.5


def test_bad_range_rejected(s27_problem):
    settings = HeuristicSettings(vdd_range=(3.0, 1.0))
    with pytest.raises(OptimizationError, match="bad search ranges"):
        optimize_joint(s27_problem, settings=settings)


def test_bisect_width_method_supported(s27_problem):
    settings = HeuristicSettings(grid_vdd=6, grid_vth=5, refine_iters=4,
                                 refine_rounds=1, width_method="bisect")
    result = optimize_joint(s27_problem, settings=settings)
    assert result.feasible


def test_details_populated(s27_problem, fast_settings):
    result = optimize_joint(s27_problem, settings=fast_settings)
    assert result.details["strategy"] == "grid"
    assert result.details["feasible_points"] > 0
    assert result.evaluations > 0


def test_deterministic(s27_problem, fast_settings):
    first = optimize_joint(s27_problem, settings=fast_settings)
    second = optimize_joint(s27_problem, settings=fast_settings)
    assert first.design.vdd == second.design.vdd
    assert first.total_energy == second.total_energy
