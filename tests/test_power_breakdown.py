"""Tests for energy breakdowns."""

import pytest

from repro.power.breakdown import energy_breakdown


def test_breakdown_partitions_dynamic(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    breakdown = energy_breakdown(s27_ctx, 1.0, 0.2, widths, 300e6)
    assert breakdown.wire_dynamic + breakdown.device_dynamic \
        == pytest.approx(breakdown.report.dynamic)
    assert 0.0 < breakdown.wire_fraction < 1.0


def test_ratio_and_hottest(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    breakdown = energy_breakdown(s27_ctx, 1.0, 0.2, widths, 300e6, top=3)
    assert len(breakdown.hottest_gates) == 3
    energies = [value for _, value in breakdown.hottest_gates]
    assert energies == sorted(energies, reverse=True)
    assert breakdown.static_to_dynamic_ratio == pytest.approx(
        breakdown.report.static / breakdown.report.dynamic)


def test_hottest_top_caps_at_gate_count(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    breakdown = energy_breakdown(s27_ctx, 1.0, 0.2, widths, 300e6, top=99)
    assert len(breakdown.hottest_gates) == s27_ctx.network.gate_count
