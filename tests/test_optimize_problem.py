"""Tests for problem/design-point/result types."""

import pytest

from repro.errors import OptimizationError
from repro.optimize.problem import DesignPoint, OptimizationProblem
from repro.units import MHZ


def test_problem_properties(s27_problem):
    assert s27_problem.cycle_time == pytest.approx(1.0 / (300 * MHZ))
    assert s27_problem.tech is s27_problem.ctx.tech
    assert s27_problem.network is s27_problem.ctx.network


def test_problem_validation(s27_ctx):
    with pytest.raises(OptimizationError):
        OptimizationProblem(ctx=s27_ctx, frequency=0.0)
    with pytest.raises(OptimizationError):
        OptimizationProblem(ctx=s27_ctx, frequency=1e8, skew_factor=0.0)
    with pytest.raises(OptimizationError):
        OptimizationProblem(ctx=s27_ctx, frequency=1e8, n_vth=0)


def test_problem_budgets_shortcut(s27_problem):
    budgets = s27_problem.budgets()
    assert budgets.cycle_time == pytest.approx(s27_problem.cycle_time)
    assert set(budgets.budgets) == set(s27_problem.network.logic_gates)


def test_design_point_scalar_vth(s27_problem):
    widths = s27_problem.ctx.uniform_widths(4.0)
    design = DesignPoint(vdd=2.0, vth=0.3, widths=widths)
    assert design.vth_of("G8") == 0.3
    assert design.distinct_vths() == (0.3,)
    assert design.width_of("G8") == 4.0


def test_design_point_vth_map(s27_problem):
    widths = s27_problem.ctx.uniform_widths(4.0)
    vth = {name: (0.2 if name == "G8" else 0.4)
           for name in s27_problem.network.logic_gates}
    design = DesignPoint(vdd=2.0, vth=vth, widths=widths)
    assert design.vth_of("G8") == 0.2
    assert design.distinct_vths() == (0.2, 0.4)


def test_design_point_evaluation(s27_problem):
    widths = s27_problem.ctx.uniform_widths(8.0)
    design = DesignPoint(vdd=3.3, vth=0.3, widths=widths)
    energy = design.evaluate_energy(s27_problem)
    timing = design.evaluate_timing(s27_problem)
    assert energy.total > 0.0
    assert timing.critical_delay > 0.0
    assert design.is_feasible(s27_problem) \
        == timing.meets(s27_problem.cycle_time)


def test_result_summary(s27_problem, fast_settings):
    from repro.optimize.heuristic import optimize_joint

    result = optimize_joint(s27_problem, settings=fast_settings)
    summary = result.summary()
    assert summary["network"] == "s27"
    assert summary["feasible"] is True
    assert summary["total_energy"] == pytest.approx(result.total_energy)
    assert result.total_power == pytest.approx(
        result.total_energy * s27_problem.frequency)
