"""Tests for the leakage models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TechnologyError
from repro.technology.leakage import (
    junction_leakage_per_width,
    leakage_decades_saved,
    off_current_per_width,
    subthreshold_off_current_per_width,
)
from repro.technology.process import Technology

TECH = Technology.default()


def test_one_slope_of_vth_is_one_decade():
    slope = TECH.subthreshold_slope
    low = subthreshold_off_current_per_width(TECH, 0.3)
    high = subthreshold_off_current_per_width(TECH, 0.3 + slope)
    assert low / high == pytest.approx(10.0, rel=1e-9)


def test_off_current_includes_junction_leakage():
    # At very high Vth the subthreshold part is negligible and the floor
    # is the junction leakage.
    total = off_current_per_width(TECH.with_overrides(vth_max=3.0), 2.5)
    assert total == pytest.approx(junction_leakage_per_width(TECH), rel=1e-3)


def test_off_current_at_anchor():
    # I_off(Vth) = i0 * 10^(-Vth/S): check one decade below the anchor.
    value = subthreshold_off_current_per_width(TECH, TECH.subthreshold_slope)
    assert value == pytest.approx(TECH.subthreshold_i0 / 10.0)


@given(st.floats(min_value=0.05, max_value=1.5))
@settings(max_examples=100)
def test_off_current_positive(vth):
    assert off_current_per_width(TECH, vth) > 0.0


@given(lo=st.floats(min_value=0.05, max_value=1.5),
       hi=st.floats(min_value=0.05, max_value=1.5))
@settings(max_examples=100)
def test_off_current_monotone_decreasing_in_vth(lo, hi):
    lo, hi = sorted((lo, hi))
    assert off_current_per_width(TECH, lo) >= off_current_per_width(TECH, hi)


def test_vds_factor_reduces_leakage_at_low_drain_bias():
    full = subthreshold_off_current_per_width(TECH, 0.3)
    throttled = subthreshold_off_current_per_width(TECH, 0.3, vds=0.01)
    assert throttled < full


def test_decades_saved():
    assert leakage_decades_saved(TECH, 0.1, 0.1 + 2 * TECH.subthreshold_slope) \
        == pytest.approx(2.0)
    assert leakage_decades_saved(TECH, 0.3, 0.2) < 0.0


def test_invalid_inputs():
    with pytest.raises(TechnologyError):
        subthreshold_off_current_per_width(TECH, 0.0)
    with pytest.raises(TechnologyError):
        subthreshold_off_current_per_width(TECH, 0.3, vds=-1.0)
    with pytest.raises(TechnologyError):
        leakage_decades_saved(TECH, -0.1, 0.3)
