"""Tests for the statistical variation analysis."""

import pytest

from repro.analysis.montecarlo import (
    MonteCarloOutcome,
    VariationStatistics,
    monte_carlo_variation,
    worst_case_pessimism,
)
from repro.errors import OptimizationError
from repro.optimize.heuristic import optimize_joint
from repro.optimize.variation import VariationModel, optimize_with_variation
from repro.runtime.pool import multiprocessing_available
from repro.runtime.supervisor import ParallelPlan, use_parallel


@pytest.fixture(scope="module")
def s27_joint(s27_problem, fast_settings_module):
    return optimize_joint(s27_problem, settings=fast_settings_module)


@pytest.fixture(scope="module")
def fast_settings_module():
    from repro.optimize.heuristic import HeuristicSettings

    return HeuristicSettings(grid_vdd=9, grid_vth=7, refine_iters=8,
                             refine_rounds=1)


def test_statistics_validation():
    with pytest.raises(OptimizationError):
        VariationStatistics(sigma_die=-0.01)


def test_zero_sigma_reproduces_nominal(s27_problem, s27_joint):
    outcome = monte_carlo_variation(
        s27_problem, s27_joint.design,
        statistics=VariationStatistics(sigma_die=0.0, sigma_within=0.0),
        samples=5, seed=1)
    assert outcome.timing_yield == 1.0
    for energy in outcome.energies:
        assert energy == pytest.approx(outcome.nominal_energy, rel=1e-9)
    for delay in outcome.delays:
        assert delay == pytest.approx(outcome.nominal_delay, rel=1e-9)


def test_deterministic_in_seed(s27_problem, s27_joint):
    first = monte_carlo_variation(s27_problem, s27_joint.design,
                                  samples=20, seed=3)
    second = monte_carlo_variation(s27_problem, s27_joint.design,
                                   samples=20, seed=3)
    assert first.energies == second.energies
    assert first.timing_yield == second.timing_yield


def test_percentiles_and_validation(s27_problem, s27_joint):
    outcome = monte_carlo_variation(s27_problem, s27_joint.design,
                                    samples=50, seed=5)
    assert outcome.energy_percentile(0.0) == outcome.energies[0]
    assert outcome.energy_percentile(1.0) == outcome.energies[-1]
    assert outcome.energy_percentile(0.5) <= outcome.energies[-1]
    assert outcome.delay_percentile(0.95) >= outcome.delays[0]
    with pytest.raises(OptimizationError):
        outcome.energy_percentile(1.5)
    with pytest.raises(OptimizationError):
        monte_carlo_variation(s27_problem, s27_joint.design, samples=0)


def test_nominal_design_loses_yield_under_variation(s27_problem, s27_joint):
    # The nominal optimum sits exactly on the timing constraint; random
    # slow-Vth draws push some samples over.
    outcome = monte_carlo_variation(
        s27_problem, s27_joint.design,
        statistics=VariationStatistics(sigma_die=0.03, sigma_within=0.02),
        samples=120, seed=7)
    assert outcome.timing_yield < 1.0


def test_robust_design_restores_yield(s27_problem, fast_settings_module,
                                      s27_joint):
    robust = optimize_with_variation(s27_problem, VariationModel(0.30),
                                     settings=fast_settings_module)
    statistics = VariationStatistics(sigma_die=0.012, sigma_within=0.008)
    nominal_outcome, robust_outcome = worst_case_pessimism(
        s27_problem, s27_joint.design, robust.design,
        statistics=statistics, samples=120, seed=11)
    assert robust_outcome.timing_yield >= nominal_outcome.timing_yield
    assert robust_outcome.timing_yield > 0.95
    # Figure 2a's pessimism: the statistical (median) energy of the
    # robust design sits below its worst-case guaranteed energy.
    assert robust_outcome.energy_percentile(0.5) <= robust.total_energy


@pytest.mark.skipif(not multiprocessing_available(),
                    reason="multiprocessing unavailable")
def test_sharded_run_is_jobs_invariant(s27_problem, s27_joint):
    serial = monte_carlo_variation(s27_problem, s27_joint.design,
                                   samples=16, seed=3)
    with use_parallel(ParallelPlan(jobs=3, heartbeat_s=0.05)):
        pooled = monte_carlo_variation(s27_problem, s27_joint.design,
                                       samples=16, seed=3)
    assert pooled == serial


def test_explicit_single_job_plan_matches_ambient_none(s27_problem,
                                                       s27_joint):
    plain = monte_carlo_variation(s27_problem, s27_joint.design,
                                  samples=6, seed=5)
    planned = monte_carlo_variation(s27_problem, s27_joint.design,
                                    samples=6, seed=5,
                                    parallel=ParallelPlan(jobs=1))
    assert planned == plain


# --- per-sample fault quarantine ---------------------------------------------


def test_clean_run_reports_zero_failed_samples(s27_problem, s27_joint):
    outcome = monte_carlo_variation(s27_problem, s27_joint.design,
                                    samples=10, seed=3)
    assert outcome.samples_failed == 0
    assert len(outcome.energies) == 10


def test_faulted_samples_are_quarantined_not_fatal(s27_problem, s27_joint):
    from repro.runtime.faults import FaultInjector, FaultSpec

    # Call 1 is the nominal evaluation; samples occupy calls 2..N+1.
    plan = [FaultSpec(seam="energy", kind="nan", at_call=3, count=4)]
    with FaultInjector(plan) as injector:
        outcome = monte_carlo_variation(s27_problem, s27_joint.design,
                                        samples=20, seed=3)
    assert injector.triggered
    assert outcome.samples_failed == 4
    assert len(outcome.energies) == 16
    assert 0.0 <= outcome.timing_yield <= 1.0


def test_failure_threshold_raises_a_labeled_error(s27_problem, s27_joint):
    from repro.runtime.faults import FaultInjector, FaultSpec

    plan = [FaultSpec(seam="energy", kind="nan", at_call=2, count=10)]
    with FaultInjector(plan):
        with pytest.raises(OptimizationError, match="samples failed"):
            monte_carlo_variation(s27_problem, s27_joint.design,
                                  samples=20, seed=3,
                                  max_failure_fraction=0.25)


def test_all_samples_failing_raises_even_at_full_tolerance(
        s27_problem, s27_joint):
    from repro.runtime.faults import FaultInjector, FaultSpec

    plan = [FaultSpec(seam="energy", kind="nan", at_call=2, count=10 ** 6)]
    with FaultInjector(plan):
        with pytest.raises(OptimizationError, match="samples failed"):
            monte_carlo_variation(s27_problem, s27_joint.design,
                                  samples=10, seed=3,
                                  max_failure_fraction=1.0)


def test_failure_fraction_validation(s27_problem, s27_joint):
    with pytest.raises(OptimizationError, match="max_failure_fraction"):
        monte_carlo_variation(s27_problem, s27_joint.design,
                              samples=5, max_failure_fraction=0.0)


def test_failed_counter_is_incremented(s27_problem, s27_joint):
    from repro.obs.instrument import MC_SAMPLES_FAILED
    from repro.obs.metrics import MetricsRegistry, use_metrics
    from repro.runtime.faults import FaultInjector, FaultSpec

    registry = MetricsRegistry()
    plan = [FaultSpec(seam="energy", kind="nan", at_call=3, count=2)]
    with use_metrics(registry), FaultInjector(plan):
        monte_carlo_variation(s27_problem, s27_joint.design,
                              samples=10, seed=3)
    assert registry.counters()[MC_SAMPLES_FAILED] == 2
