"""Tests for the Technology deck."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import TechnologyError
from repro.technology.process import Technology


def test_default_deck_is_valid():
    tech = Technology.default()
    assert tech.feature_size == pytest.approx(0.25e-6)
    assert tech.vdd_max == pytest.approx(3.3)


def test_current_factor_reproduces_reference_asymptote():
    tech = Technology.default()
    overdrive = tech.vdd_reference - tech.vth_reference
    assert tech.current_factor * overdrive ** tech.alpha \
        == pytest.approx(tech.idsat_reference)


def test_ideality_consistent_with_slope():
    tech = Technology.default()
    assert tech.ideality * tech.thermal_voltage * math.log(10.0) \
        == pytest.approx(tech.subthreshold_slope)


def test_with_overrides_replaces_fields():
    tech = Technology.default().with_overrides(alpha=1.5, name="custom")
    assert tech.alpha == 1.5
    assert tech.name == "custom"
    # Original is untouched (frozen value object).
    assert Technology.default().alpha != 1.5


def test_with_overrides_rejects_unknown_field():
    with pytest.raises(TechnologyError, match="unknown technology field"):
        Technology.default().with_overrides(not_a_field=1.0)


@pytest.mark.parametrize("field, value", [
    ("feature_size", -1.0),
    ("feature_size", 0.0),
    ("alpha", 0.5),
    ("alpha", 2.5),
    ("subthreshold_slope", 0.0),
    ("c_gate", -1e-15),
    ("stack_derating", 1.5),
    ("velocity_saturation_coeff", 0.1),
    ("junction_leakage", -1e-18),
])
def test_invalid_fields_rejected(field, value):
    with pytest.raises(TechnologyError):
        Technology.default().with_overrides(**{field: value})


def test_reference_corner_must_have_positive_overdrive():
    with pytest.raises(TechnologyError):
        Technology.default().with_overrides(vdd_reference=0.5,
                                            vth_reference=0.7)


def test_bad_ranges_rejected():
    with pytest.raises(TechnologyError):
        Technology.default().with_overrides(vdd_min=2.0, vdd_max=1.0)
    with pytest.raises(TechnologyError):
        Technology.default().with_overrides(width_min=10.0, width_max=5.0)


def test_scaled_deck_scales_capacitance_and_drive():
    base = Technology.default()
    scaled = Technology.scaled(0.18e-6)
    ratio = 0.18e-6 / base.feature_size
    assert scaled.c_gate == pytest.approx(base.c_gate * ratio)
    assert scaled.idsat_reference == pytest.approx(
        base.idsat_reference * ratio)
    assert scaled.wire_res_per_meter == pytest.approx(
        base.wire_res_per_meter / ratio)
    scaled.validate()


def test_scaled_rejects_nonpositive_feature_size():
    with pytest.raises(TechnologyError):
        Technology.scaled(0.0)


def test_technology_is_hashable_and_equal_by_value():
    assert Technology.default() == Technology.default()
    assert hash(Technology.default()) == hash(Technology.default())


@given(st.floats(min_value=0.05e-6, max_value=1.0e-6))
def test_scaled_decks_always_validate(feature_size):
    Technology.scaled(feature_size).validate()
