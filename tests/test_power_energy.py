"""Tests for the energy models (eqs. A1, A2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.power.energy import (
    dynamic_energy_of_gate,
    static_energy_of_gate,
    total_energy,
)
from repro.technology import leakage
from repro.technology.process import Technology

TECH = Technology.default()
FC = 300e6


def test_static_energy_formula(s27_ctx):
    # E_si = Vdd * w * I_off / f_c with I_off at Vds = Vdd.
    expected = 1.0 * 4.0 * leakage.off_current_per_width(TECH, 0.2,
                                                         vds=1.0) / FC
    value = static_energy_of_gate(s27_ctx, "G8", vdd=1.0, vth=0.2,
                                  width=4.0, frequency=FC)
    assert value == pytest.approx(expected)


def test_static_energy_linear_in_width(s27_ctx):
    one = static_energy_of_gate(s27_ctx, "G8", 1.0, 0.2, 1.0, FC)
    five = static_energy_of_gate(s27_ctx, "G8", 1.0, 0.2, 5.0, FC)
    assert five == pytest.approx(5 * one)


def test_static_energy_exponential_in_vth(s27_ctx):
    slope = TECH.subthreshold_slope
    low = static_energy_of_gate(s27_ctx, "G8", 1.0, 0.2, 1.0, FC)
    high = static_energy_of_gate(s27_ctx, "G8", 1.0, 0.2 + slope, 1.0, FC)
    assert low / high == pytest.approx(10.0, rel=0.01)


def test_dynamic_energy_formula(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    info = s27_ctx.info("G8")
    load = s27_ctx.output_load("G8", widths)
    expected = 0.5 * info.activity * 1.2 ** 2 * load
    assert dynamic_energy_of_gate(s27_ctx, "G8", 1.2, widths) \
        == pytest.approx(expected)


def test_dynamic_energy_quadratic_in_vdd(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    one = dynamic_energy_of_gate(s27_ctx, "G8", 1.0, widths)
    two = dynamic_energy_of_gate(s27_ctx, "G8", 2.0, widths)
    assert two == pytest.approx(4 * one)


def test_total_energy_report(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    report = total_energy(s27_ctx, 1.0, 0.2, widths, FC)
    assert report.total == pytest.approx(report.static + report.dynamic)
    assert report.total_power == pytest.approx(report.total * FC)
    assert report.static_power == pytest.approx(report.static * FC)
    assert 0.0 < report.static_fraction < 1.0
    assert report.static == pytest.approx(
        sum(report.per_gate_static.values()))
    assert report.dynamic == pytest.approx(
        sum(report.per_gate_dynamic.values()))


def test_input_nets_carry_dynamic_energy(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    report = total_energy(s27_ctx, 1.0, 0.2, widths, FC)
    for name in s27_ctx.network.inputs:
        assert name in report.per_gate_dynamic
        assert name not in report.per_gate_static


def test_total_energy_with_vth_map(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    vth_map = {name: 0.2 for name in s27_ctx.network.logic_gates}
    mapped = total_energy(s27_ctx, 1.0, vth_map, widths, FC)
    scalar = total_energy(s27_ctx, 1.0, 0.2, widths, FC)
    assert mapped.total == pytest.approx(scalar.total)


def test_missing_width_rejected(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    del widths["G8"]
    with pytest.raises(ReproError, match="no width"):
        total_energy(s27_ctx, 1.0, 0.2, widths, FC)


def test_validation_errors(s27_ctx):
    with pytest.raises(ReproError):
        static_energy_of_gate(s27_ctx, "G8", 1.0, 0.2, 4.0, frequency=0.0)
    with pytest.raises(ReproError):
        static_energy_of_gate(s27_ctx, "G8", 1.0, 0.2, 0.0, FC)


@given(vdd=st.floats(min_value=0.1, max_value=3.3),
       vth=st.floats(min_value=0.1, max_value=0.7),
       width=st.floats(min_value=1.0, max_value=100.0))
@settings(max_examples=80, deadline=None)
def test_energies_positive(s27_ctx, vdd, vth, width):
    widths = s27_ctx.uniform_widths(width)
    report = total_energy(s27_ctx, vdd, vth, widths, FC)
    assert report.static > 0.0
    assert report.dynamic > 0.0
