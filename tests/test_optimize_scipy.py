"""Tests for the SciPy cross-check optimizers."""

import pytest

from repro.errors import InfeasibleError, OptimizationError
from repro.optimize.heuristic import optimize_joint
from repro.optimize.problem import OptimizationProblem
from repro.optimize.scipy_opt import optimize_scipy
from repro.units import GHZ


def test_unknown_method_rejected(s27_problem):
    with pytest.raises(OptimizationError):
        optimize_scipy(s27_problem, method="genetic")


def test_differential_evolution_agrees_with_heuristic(s27_problem,
                                                      fast_settings):
    scipy_result = optimize_scipy(s27_problem, maxiter=25, popsize=10,
                                  seed=11)
    heuristic = optimize_joint(s27_problem, settings=fast_settings)
    assert scipy_result.feasible
    # Independent optimizers over the same objective: within 10 %.
    ratio = scipy_result.total_energy / heuristic.total_energy
    assert 0.90 < ratio < 1.10


def test_nelder_mead_polish(s27_problem):
    result = optimize_scipy(s27_problem, method="nelder-mead", maxiter=30)
    assert result.feasible
    assert result.details["strategy"] == "scipy-nelder-mead"


def test_nelder_mead_with_explicit_start(s27_problem, fast_settings):
    heuristic = optimize_joint(s27_problem, settings=fast_settings)
    start = (heuristic.design.vdd,
             float(heuristic.design.distinct_vths()[0]))
    polished = optimize_scipy(s27_problem, method="nelder-mead",
                              maxiter=20, start=start)
    assert polished.total_energy <= heuristic.total_energy * 1.02


def test_infeasible_raises(s27_problem):
    impossible = OptimizationProblem(ctx=s27_problem.ctx,
                                     frequency=100 * GHZ)
    with pytest.raises(InfeasibleError):
        optimize_scipy(impossible, maxiter=3, popsize=4)


def test_deterministic_in_seed(s27_problem):
    first = optimize_scipy(s27_problem, maxiter=10, popsize=6, seed=5)
    second = optimize_scipy(s27_problem, maxiter=10, popsize=6, seed=5)
    assert first.total_energy == second.total_energy
