"""Tests for optimizer internals (search helpers, annealing moves)."""

import math
import random

import pytest

from repro.optimize.annealing import AnnealingSettings, _State, _clamp, _perturb
from repro.optimize.heuristic import (
    HeuristicSettings,
    _SearchState,
    _linspace,
    _ternary_min,
)
from repro.technology.process import Technology


def test_linspace_endpoints():
    values = _linspace(0.0, 1.0, 5)
    assert values[0] == 0.0
    assert values[-1] == 1.0
    assert len(values) == 5
    assert _linspace(2.0, 4.0, 1) == [3.0]


def test_ternary_min_finds_parabola_minimum():
    minimizer = _ternary_min(lambda x: (x - 0.7) ** 2, 0.0, 2.0, 40)
    assert minimizer == pytest.approx(0.7, abs=1e-4)


def test_ternary_min_monotone_function_goes_to_edge():
    minimizer = _ternary_min(lambda x: x, 0.0, 1.0, 40)
    assert minimizer == pytest.approx(0.0, abs=1e-4)


def test_search_state_defaults():
    state = _SearchState()
    assert state.best_energy == math.inf
    assert state.best_point is None
    assert state.evaluations == 0


def test_clamp():
    assert _clamp(5.0, 0.0, 1.0) == 1.0
    assert _clamp(-5.0, 0.0, 1.0) == 0.0
    assert _clamp(0.5, 0.0, 1.0) == 0.5


def test_perturb_respects_bounds():
    tech = Technology.default()
    settings = AnnealingSettings()
    rng = random.Random(0)
    gates = [f"g{i}" for i in range(10)]
    state = _State(vdd=3.3, vth=0.7, widths={name: 100.0 for name in gates})
    for _ in range(500):
        _perturb(state, rng, settings, tech, gates)
        assert tech.vdd_min <= state.vdd <= tech.vdd_max
        assert tech.vth_min <= state.vth <= tech.vth_max
        for width in state.widths.values():
            assert tech.width_min <= width <= tech.width_max


def test_perturb_eventually_touches_every_variable_class():
    tech = Technology.default()
    settings = AnnealingSettings()
    rng = random.Random(1)
    gates = ["g0", "g1"]
    state = _State(vdd=1.5, vth=0.4, widths={"g0": 10.0, "g1": 10.0})
    touched_vdd = touched_vth = touched_width = False
    for _ in range(300):
        before = (state.vdd, state.vth, dict(state.widths))
        _perturb(state, rng, settings, tech, gates)
        if state.vdd != before[0]:
            touched_vdd = True
        if state.vth != before[1]:
            touched_vth = True
        if state.widths != before[2]:
            touched_width = True
    assert touched_vdd and touched_vth and touched_width


def test_state_copy_is_deep_for_widths():
    state = _State(vdd=1.0, vth=0.2, widths={"g": 5.0})
    clone = state.copy()
    clone.widths["g"] = 7.0
    assert state.widths["g"] == 5.0


def test_heuristic_settings_defaults_stable():
    settings = HeuristicSettings()
    assert settings.strategy == "grid"
    assert settings.engine == "auto"
    assert settings.width_method == "closed_form"


def test_seeds_improve_or_match_result(s27_problem, fast_settings):
    from repro.optimize.heuristic import optimize_joint

    plain = optimize_joint(s27_problem, settings=fast_settings)
    vdd = plain.design.vdd
    vth = float(plain.design.distinct_vths()[0])
    seeded = optimize_joint(s27_problem, settings=fast_settings,
                            seeds=((vdd, vth),))
    assert seeded.total_energy <= plain.total_energy * (1 + 1e-12)
