"""The evaluation-engine seam: selection, the Evaluator, and the handles.

Parity between the two implementations on real and randomized circuits
lives in ``tests/test_engine_parity.py``; this module covers the layer
itself — name resolution precedence, validation, the shared objective
factory's counters, and the sizing/evaluation value objects.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.engine import (
    ENGINE_CHOICES,
    ENGINE_ENV_VAR,
    ENGINE_NAMES,
    Evaluator,
    make_engine,
    resolve_engine_name,
    use_engine,
)
from repro.engine.array import ArrayEngine, array_context_for
from repro.engine.base import EngineEvaluation, _INFEASIBLE
from repro.engine.scalar import ScalarEngine
from repro.errors import OptimizationError
from repro.obs.instrument import (
    FEASIBLE_POINTS,
    OBJECTIVE_EVALUATIONS,
    engine_evaluations_metric,
)
from repro.obs.metrics import MetricsRegistry, use_metrics


# --- name resolution ---------------------------------------------------------


def test_choice_vocabulary():
    assert ENGINE_NAMES == ("scalar", "fast", "incremental", "batch")
    assert ENGINE_CHOICES == ("auto", "scalar", "fast", "incremental",
                              "batch")


def test_default_resolution_is_scalar(monkeypatch):
    monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
    assert resolve_engine_name() == "scalar"
    assert resolve_engine_name("auto") == "scalar"


def test_explicit_name_passes_through(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV_VAR, "fast")
    assert resolve_engine_name("scalar") == "scalar"
    assert resolve_engine_name("fast") == "fast"


def test_env_var_steers_auto(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV_VAR, "fast")
    assert resolve_engine_name("auto") == "fast"
    # Whitespace and case are forgiven; "auto" in the env defers again.
    monkeypatch.setenv(ENGINE_ENV_VAR, "  Fast ")
    assert resolve_engine_name("auto") == "fast"
    monkeypatch.setenv(ENGINE_ENV_VAR, "auto")
    assert resolve_engine_name("auto") == "scalar"


def test_use_engine_outranks_env(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV_VAR, "fast")
    with use_engine("scalar"):
        assert resolve_engine_name("auto") == "scalar"
        # ... but an explicit setting outranks the override.
        assert resolve_engine_name("fast") == "fast"
    assert resolve_engine_name("auto") == "fast"


def test_use_engine_none_is_a_no_op(monkeypatch):
    monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
    with use_engine(None):
        assert resolve_engine_name("auto") == "scalar"


def test_use_engine_nests(monkeypatch):
    monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
    with use_engine("fast"):
        with use_engine("scalar"):
            assert resolve_engine_name("auto") == "scalar"
        assert resolve_engine_name("auto") == "fast"


@pytest.mark.parametrize("bad", ["warp", "FAST", "", "numpy"])
def test_invalid_settings_name_rejected(bad):
    with pytest.raises(OptimizationError, match="unknown engine"):
        resolve_engine_name(bad)


def test_invalid_env_name_rejected(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV_VAR, "warp")
    with pytest.raises(OptimizationError, match=ENGINE_ENV_VAR):
        resolve_engine_name("auto")


def test_invalid_override_name_rejected():
    with pytest.raises(OptimizationError, match="use_engine"):
        with use_engine("warp"):
            pass  # pragma: no cover - never entered


# --- construction ------------------------------------------------------------


def test_make_engine_dispatch(s27_problem, monkeypatch):
    monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
    assert isinstance(make_engine(s27_problem, "scalar"), ScalarEngine)
    assert isinstance(make_engine(s27_problem, "fast"), ArrayEngine)
    assert isinstance(make_engine(s27_problem, "auto"), ScalarEngine)
    with use_engine("fast"):
        assert isinstance(make_engine(s27_problem, "auto"), ArrayEngine)


def test_array_context_is_cached_per_context(s27_problem):
    first = array_context_for(s27_problem.ctx)
    second = array_context_for(s27_problem.ctx)
    assert first is second
    assert make_engine(s27_problem, "fast").arrays is first


# --- the value objects -------------------------------------------------------


def test_infeasible_evaluation_has_no_widths():
    assert _INFEASIBLE.energy == math.inf
    assert not _INFEASIBLE.feasible
    with pytest.raises(OptimizationError, match="infeasible"):
        _INFEASIBLE.widths_map()
    assert isinstance(_INFEASIBLE, EngineEvaluation)


@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
def test_sizing_handle_roundtrips(s27_problem, engine_name):
    engine = make_engine(s27_problem, engine_name)
    budgets = s27_problem.budgets()
    sizing = engine.size_widths(budgets, 2.5, 0.3)
    assert sizing.feasible
    widths = sizing.widths_map()
    assert set(widths) == set(s27_problem.ctx.gates)
    # The native handle feeds the same engine's measurement directly and
    # agrees with the materialized map.
    via_handle = engine.measure(2.5, 0.3, sizing.widths)
    via_map = engine.measure(2.5, 0.3, widths)
    assert via_handle.energy == pytest.approx(via_map.energy, rel=1e-12)
    assert via_handle.critical_delay == pytest.approx(
        via_map.critical_delay, rel=1e-12)


@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
def test_widths_vector_is_canonical_order(s27_problem, engine_name):
    engine = make_engine(s27_problem, engine_name)
    gates = s27_problem.ctx.gates
    source = {name: 1.0 + i for i, name in enumerate(gates)}
    vector = engine.widths_vector(source)
    assert vector.shape == (len(gates),)
    assert list(vector) == [source[name] for name in gates]
    uniform = engine.widths_vector(3.0)
    assert np.all(uniform == 3.0)


def test_evaluate_splits_delay_and_energy_vth(s27_problem):
    engine = make_engine(s27_problem, "scalar")
    budgets = s27_problem.budgets()
    plain = engine.evaluate(budgets, 2.5, 0.3)
    # Sizing at the same Vth but billing leakage at a higher one must
    # reduce static energy while keeping the exact same widths.
    split = engine.evaluate(budgets, 2.5, 0.3, energy_vth=0.4)
    assert split.feasible and plain.feasible
    assert split.widths_map() == pytest.approx(plain.widths_map())
    assert split.static < plain.static


# --- the Evaluator objective -------------------------------------------------


@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
def test_evaluator_counts_and_meters(s27_problem, engine_name):
    registry = MetricsRegistry()
    evaluator = s27_problem.evaluator(engine=engine_name)
    with use_metrics(registry):
        good = evaluator(2.5, 0.3)
        bad = evaluator(0.05, 0.6)  # dead drive: infeasible everywhere
    assert good.feasible and not bad.feasible
    assert bad.energy == math.inf
    assert evaluator.evaluations == 2
    assert evaluator.feasible_points == 1
    assert registry.counter(OBJECTIVE_EVALUATIONS) == 2
    assert registry.counter(FEASIBLE_POINTS) == 1
    assert registry.counter(engine_evaluations_metric(engine_name)) == 2
    other = [name for name in ENGINE_NAMES if name != engine_name][0]
    assert registry.counter(engine_evaluations_metric(other)) == 0


def test_evaluator_applies_vth_biases(s27_problem):
    evaluator = s27_problem.evaluator(
        engine="scalar", energy_vth_bias=lambda vth: vth + 0.1)
    reference = s27_problem.evaluator(engine="scalar")
    biased = evaluator(2.5, 0.3)
    plain = reference(2.5, 0.3)
    assert biased.static < plain.static
    assert biased.widths_map() == pytest.approx(plain.widths_map())


def test_evaluator_honors_ambient_override(s27_problem, monkeypatch):
    monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
    with use_engine("fast"):
        evaluator = s27_problem.evaluator()
    assert isinstance(evaluator, Evaluator)
    assert evaluator.engine.name == "fast"
    assert isinstance(evaluator.engine, ArrayEngine)


# --- checkpoint fingerprints record the resolved engine ----------------------


def test_fingerprint_records_resolved_engine(s27_problem, monkeypatch):
    from repro.optimize.heuristic import HeuristicSettings, _search_fingerprint

    settings = HeuristicSettings()
    ranges = ((0.5, 3.3), (0.1, 0.5))
    monkeypatch.setenv(ENGINE_ENV_VAR, "fast")
    resolved = resolve_engine_name(settings.engine)
    fingerprint = _search_fingerprint(s27_problem, settings, *ranges,
                                      engine_name=resolved)
    assert fingerprint["engine"] == "fast"
    monkeypatch.delenv(ENGINE_ENV_VAR)
    scalar_print = _search_fingerprint(
        s27_problem, settings, *ranges,
        engine_name=resolve_engine_name(settings.engine))
    assert scalar_print["engine"] == "scalar"
    assert fingerprint != scalar_print
