"""API hygiene: every exported symbol exists and is documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.technology",
    "repro.netlist",
    "repro.activity",
    "repro.interconnect",
    "repro.timing",
    "repro.power",
    "repro.optimize",
    "repro.analysis",
    "repro.experiments",
    "repro.runtime",
    "repro.serve",
    "repro.obs",
    "repro.bdd",
    "repro.fastpath",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_exist(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
    for symbol in package.__all__:
        assert hasattr(package, symbol), \
            f"{package_name}.__all__ exports missing symbol {symbol!r}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_exported_callables_documented(package_name):
    package = importlib.import_module(package_name)
    for symbol in package.__all__:
        value = getattr(package, symbol)
        if inspect.isclass(value) or inspect.isfunction(value):
            assert inspect.getdoc(value), \
                f"{package_name}.{symbol} has no docstring"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_docstring(package_name):
    package = importlib.import_module(package_name)
    doc = inspect.getdoc(package)
    assert doc and len(doc) > 40, \
        f"{package_name} needs a substantive package docstring"


def test_no_export_name_collisions_across_core_packages():
    """A symbol exported by two subpackages must be the same object."""
    seen = {}
    for package_name in PACKAGES[1:]:
        package = importlib.import_module(package_name)
        for symbol in package.__all__:
            value = getattr(package, symbol)
            if symbol in seen and seen[symbol][1] is not value:
                pytest.fail(
                    f"{symbol!r} exported with different meanings by "
                    f"{seen[symbol][0]} and {package_name}")
            seen.setdefault(symbol, (package_name, value))
