"""Tests for the process Vth recommendation."""

import pytest

from repro.analysis.technology_selection import recommend_threshold
from repro.errors import InfeasibleError
from repro.optimize.heuristic import HeuristicSettings
from repro.technology.process import Technology
from repro.units import GHZ, MHZ

FAST = HeuristicSettings(grid_vdd=9, grid_vth=7, refine_iters=6,
                         refine_rounds=1)


def test_recommendation_over_small_suite():
    recommendation = recommend_threshold(Technology.default(),
                                         ("s27", "s298"),
                                         frequency=300 * MHZ,
                                         settings=FAST)
    assert len(recommendation.per_circuit) == 2
    assert recommendation.infeasible == ()
    tech = Technology.default()
    assert tech.vth_min <= recommendation.recommended_vth <= tech.vth_max
    assert recommendation.vth_spread >= 0.0


def test_recommendation_is_median_of_choices():
    recommendation = recommend_threshold(Technology.default(),
                                         ("s27", "s298"),
                                         frequency=300 * MHZ,
                                         settings=FAST)
    import statistics

    vths = [vth for _, vth, _, _ in recommendation.per_circuit]
    assert recommendation.recommended_vth == statistics.median(vths)


def test_infeasible_circuits_reported():
    recommendation = recommend_threshold(Technology.default(),
                                         ("s27", "s344"),
                                         frequency=1.2 * GHZ,
                                         settings=FAST)
    # s344 (depth 20) cannot run at 1.2 GHz; s27 can.
    assert "s344" in recommendation.infeasible
    assert len(recommendation.per_circuit) >= 1


def test_all_infeasible_raises():
    with pytest.raises(InfeasibleError):
        recommend_threshold(Technology.default(), ("s344",),
                            frequency=5 * GHZ, settings=FAST)


def test_relaxed_clock_raises_recommended_vth():
    tight = recommend_threshold(Technology.default(), ("s27",),
                                frequency=500 * MHZ, settings=FAST)
    loose = recommend_threshold(Technology.default(), ("s27",),
                                frequency=50 * MHZ, settings=FAST)
    assert loose.recommended_vth >= tight.recommended_vth - 1e-9
