"""Fault injection at the model seams: recover or fail loudly.

Every scenario must end in one of two documented outcomes — the
optimizer recovers (finite, feasible result) or it raises a typed
library error. A silently wrong optimum is the one forbidden outcome.
"""

import dataclasses
import math

import pytest

import repro.optimize.baseline
import repro.power.energy
from repro.engine import use_engine
from repro.errors import (
    DeadlineExceeded,
    FaultInjectedError,
    InfeasibleError,
    OptimizationError,
    ReproError,
)
from repro.optimize.annealing import AnnealingSettings, optimize_annealing
from repro.optimize.baseline import optimize_fixed_vth
from repro.optimize.heuristic import optimize_joint
from repro.runtime.controller import FakeClock, RunController
from repro.runtime.faults import (ORIGINAL_ATTR, SEAMS, FaultInjector,
                                  FaultSpec, plan_from_json,
                                  plan_to_json)

PERSISTENT = 10 ** 9


@pytest.fixture(autouse=True)
def scalar_engine():
    """Pin the scalar engine: faults are planted at the scalar model
    seams, so per-seam call numbers are only deterministic there."""
    with use_engine("scalar"):
        yield



class TestFaultSpec:
    def test_unknown_seam_rejected(self):
        with pytest.raises(OptimizationError, match="unknown fault seam"):
            FaultSpec(seam="router", kind="nan")

    def test_unknown_kind_rejected(self):
        with pytest.raises(OptimizationError, match="unknown fault kind"):
            FaultSpec(seam="energy", kind="segfault")

    def test_counts_must_be_positive(self):
        with pytest.raises(OptimizationError, match=">= 1"):
            FaultSpec(seam="energy", kind="nan", at_call=0)

    def test_nan_on_sizing_rejected(self):
        with pytest.raises(OptimizationError, match="sizing"):
            FaultSpec(seam="sizing", kind="nan")

    def test_matches_window(self):
        spec = FaultSpec(seam="energy", kind="nan", at_call=3, count=2)
        assert [spec.matches(n) for n in (2, 3, 4, 5)] == \
            [False, True, True, False]


class TestInjectorMechanics:
    def test_seams_cover_the_model_entry_points(self):
        assert set(SEAMS) == {"energy", "delay", "sizing"}

    def test_bindings_restored_on_exit(self):
        defining = repro.power.energy.total_energy
        consumer = repro.optimize.baseline.total_energy
        assert consumer is defining
        with FaultInjector([]):
            assert repro.power.energy.total_energy is not defining
            assert repro.optimize.baseline.total_energy \
                is repro.power.energy.total_energy
        assert repro.power.energy.total_energy is defining
        assert repro.optimize.baseline.total_energy is defining

    def test_clean_plan_changes_nothing(self, s27_problem, fast_settings):
        with FaultInjector([]) as injector:
            result = optimize_joint(s27_problem, settings=fast_settings)
        assert injector.triggered == []
        assert injector.calls["energy"] > 0
        assert result.feasible

    def test_triggered_records_the_call_number(self, s27_problem,
                                               fast_settings):
        plan = [FaultSpec(seam="energy", kind="exception", at_call=2)]
        with FaultInjector(plan) as injector:
            with pytest.raises(FaultInjectedError):
                optimize_joint(s27_problem, settings=fast_settings)
        assert len(injector.triggered) == 1
        assert injector.triggered[0].call_number == 2


class TestJointOptimizer:
    def test_exception_surfaces_as_typed_error(self, s27_problem,
                                               fast_settings):
        plan = [FaultSpec(seam="energy", kind="exception", at_call=3,
                          message="model blew up")]
        with FaultInjector(plan):
            with pytest.raises(FaultInjectedError, match="model blew up"):
                optimize_joint(s27_problem, settings=fast_settings)

    def test_transient_nan_recovers(self, s27_problem, fast_settings):
        plan = [FaultSpec(seam="energy", kind="nan", at_call=2, count=3)]
        with FaultInjector(plan) as injector:
            result = optimize_joint(s27_problem, settings=fast_settings)
        assert injector.triggered
        assert math.isfinite(result.total_energy)
        assert result.feasible

    def test_persistent_energy_nan_raises_not_lies(self, s27_problem,
                                                   fast_settings):
        plan = [FaultSpec(seam="energy", kind="nan", count=PERSISTENT)]
        with FaultInjector(plan):
            with pytest.raises((InfeasibleError, OptimizationError)):
                optimize_joint(s27_problem, settings=fast_settings)

    def test_persistent_delay_nan_raises_not_lies(self, s27_problem,
                                                  fast_settings):
        plan = [FaultSpec(seam="delay", kind="nan", count=PERSISTENT)]
        with FaultInjector(plan):
            with pytest.raises((InfeasibleError, OptimizationError)):
                optimize_joint(s27_problem, settings=fast_settings)

    def test_timeout_fault_trips_the_deadline(self, s27_problem,
                                              fast_settings):
        clock = FakeClock()
        controller = RunController(deadline_s=50.0, clock=clock)
        settings = dataclasses.replace(fast_settings, controller=controller)
        plan = [FaultSpec(seam="sizing", kind="timeout", at_call=5,
                          delay_s=100.0)]
        with FaultInjector(plan, clock=clock) as injector:
            with pytest.raises(DeadlineExceeded):
                optimize_joint(s27_problem, settings=settings)
        assert injector.triggered


class TestOtherOptimizers:
    def test_baseline_sizing_exception_is_typed(self, s27_problem):
        plan = [FaultSpec(seam="sizing", kind="exception")]
        with FaultInjector(plan):
            with pytest.raises(FaultInjectedError):
                optimize_fixed_vth(s27_problem)

    def test_baseline_persistent_nan_raises_not_lies(self, s27_problem):
        plan = [FaultSpec(seam="energy", kind="nan", count=PERSISTENT)]
        with FaultInjector(plan):
            with pytest.raises((InfeasibleError, OptimizationError)):
                optimize_fixed_vth(s27_problem)

    def test_annealing_exception_is_typed(self, s27_problem):
        settings = AnnealingSettings(passes=1, iterations_per_pass=40,
                                     seed=3)
        plan = [FaultSpec(seam="energy", kind="exception", at_call=4)]
        with FaultInjector(plan):
            with pytest.raises(FaultInjectedError):
                optimize_annealing(s27_problem, settings=settings)

    def test_every_fault_outcome_is_recovery_or_typed_error(
            self, s27_problem, fast_settings):
        """The harness contract, swept across seams and kinds."""
        for seam in SEAMS:
            for kind in ("exception", "nan"):
                if kind == "nan" and seam == "sizing":
                    continue
                plan = [FaultSpec(seam=seam, kind=kind, at_call=1, count=2)]
                with FaultInjector(plan):
                    try:
                        result = optimize_joint(s27_problem,
                                                settings=fast_settings)
                    except ReproError:
                        continue  # documented typed error: acceptable
                    assert math.isfinite(result.total_energy), \
                        f"silent non-finite optimum for {seam}/{kind}"
                    assert result.feasible, \
                        f"silent infeasible optimum for {seam}/{kind}"


class TestPlanSerialization:
    def test_roundtrip(self):
        plan = (FaultSpec(seam="energy", kind="nan", at_call=3, count=2),
                FaultSpec(seam="sizing", kind="exception",
                          message="sizing boom"))
        assert plan_from_json(plan_to_json(plan)) == plan

    def test_invalid_json_is_a_typed_error(self):
        with pytest.raises(OptimizationError, match="invalid fault plan"):
            plan_from_json("{not json")

    def test_non_list_payload_rejected(self):
        with pytest.raises(OptimizationError, match="must be a list"):
            plan_from_json('{"seam": "energy"}')

    def test_unknown_field_rejected(self):
        with pytest.raises(OptimizationError, match="unknown FaultSpec"):
            plan_from_json('[{"seam": "energy", "kind": "nan", '
                           '"bogus": 1}]')


class TestWrapperRestoration:
    def test_reimported_consumer_restored_on_disarm(self):
        """A module (re)imported while a plan is armed copies the
        *wrapper* via ``from ... import``; disarm must still find and
        restore that binding."""
        import importlib

        import repro.analysis.montecarlo as montecarlo
        import repro.power.energy as energy

        original = energy.total_energy
        assert not hasattr(original, ORIGINAL_ATTR)
        injector = FaultInjector(
            [FaultSpec(seam="energy", kind="nan")]).arm()
        try:
            assert getattr(energy.total_energy, ORIGINAL_ATTR) is original
            montecarlo = importlib.reload(montecarlo)
            assert getattr(montecarlo.total_energy,
                           ORIGINAL_ATTR) is original
        finally:
            injector.disarm()
        assert energy.total_energy is original
        assert montecarlo.total_energy is original

    def test_stale_wrappers_never_stack(self):
        """Arming over a leftover wrapper (e.g. inherited across a fork)
        wraps the tagged original, not the stale wrapper — and a single
        disarm restores the true original everywhere."""
        import repro.power.energy as energy

        original = energy.total_energy
        stale = FaultInjector([FaultSpec(seam="energy", kind="nan")]).arm()
        fresh = FaultInjector(
            [FaultSpec(seam="delay", kind="exception")]).arm()
        try:
            assert getattr(energy.total_energy, ORIGINAL_ATTR) is original
        finally:
            fresh.disarm()
        assert energy.total_energy is original
        stale.disarm()  # harmless: everything is already restored
        assert energy.total_energy is original
