"""Supervised parallel execution: pool, retries, quarantine, determinism.

The load-bearing property is *jobs-invariance*: a sharded run returns
byte-identical results at any jobs count, through worker crashes,
retries, and out-of-order completion. The hypothesis test SIGKILLs a
randomly chosen worker mid-task and asserts exactly that.
"""

import os
import signal
import time

import pytest
from hypothesis import HealthCheck, given
from hypothesis import settings as hsettings
from hypothesis import strategies as st

from repro.errors import OptimizationError
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.trace import Tracer, use_tracer
from repro.runtime.faults import FaultSpec, plan_to_json
from repro.runtime.pool import in_worker, multiprocessing_available
from repro.runtime.supervisor import (ParallelPlan, current_parallel,
                                      resolve_parallel, run_sharded,
                                      use_parallel)
from repro.runtime.tasks import (Task, TaskResult, backoff_delay,
                                 chunk_ranges)

needs_mp = pytest.mark.skipif(not multiprocessing_available(),
                              reason="multiprocessing unavailable")

#: A fast-failure plan for pool tests (tight heartbeats, tiny backoff).
FAST = dict(heartbeat_s=0.05, backoff_base_s=0.001, backoff_cap_s=0.002)


# -- module-level task functions (workers pickle them by reference) --------


def _square(_state, value):
    return value * value


def _plus_state(state, value):
    return state + value


def _flaky(_state, box, fail_times):
    box["calls"] += 1
    if box["calls"] <= fail_times:
        raise RuntimeError(f"flaky call {box['calls']}")
    return "recovered"


def _fail_until_marker(_state, marker, value):
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("first attempt fails")
    return value * value


def _always_fail(_state):
    raise ValueError("poison shard")


def _sleep_long(_state):
    time.sleep(60.0)
    return "never"  # pragma: no cover


def _stop_self(_state):
    os.kill(os.getpid(), signal.SIGSTOP)
    time.sleep(60.0)
    return "never"  # pragma: no cover


def _poisoned_energy(_state):
    from repro.power import energy

    return energy.total_energy(None, 0.0, 0.0, {}, 1.0)


def _seam_is_wrapped(_state):
    from repro.power import energy
    from repro.runtime.faults import ORIGINAL_ATTR

    return hasattr(energy.total_energy, ORIGINAL_ATTR)


def _tasks(count, fn=_square):
    return [Task(key=f"t{i}", index=i, fn=fn, args=(i,))
            for i in range(count)]


# -- units: chunking and backoff -------------------------------------------


class TestChunkRanges:
    def test_partitions_exactly(self):
        for total in (0, 1, 5, 10, 97):
            for max_chunks in (1, 2, 3, 8, 200):
                ranges = chunk_ranges(total, max_chunks)
                assert len(ranges) <= max_chunks
                covered = [i for start, stop in ranges
                           for i in range(start, stop)]
                assert covered == list(range(total))

    def test_sizes_balanced_larger_first(self):
        ranges = chunk_ranges(10, 3)
        assert ranges == ((0, 4), (4, 7), (7, 10))
        sizes = [stop - start for start, stop in ranges]
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)

    def test_validation(self):
        with pytest.raises(OptimizationError):
            chunk_ranges(-1, 2)
        with pytest.raises(OptimizationError):
            chunk_ranges(5, 0)


class TestBackoff:
    def test_exponential_growth_and_cap(self):
        raw = [backoff_delay(n, jitter=0.0) for n in range(1, 8)]
        assert raw[:3] == [0.05, 0.1, 0.2]
        assert raw[-1] == 2.0  # capped

    def test_deterministic_jitter_decorrelates_keys(self):
        assert backoff_delay(2, "a") == backoff_delay(2, "a")
        assert backoff_delay(2, "a") != backoff_delay(2, "b")
        for attempt in range(1, 6):
            raw = backoff_delay(attempt, jitter=0.0)
            jittered = backoff_delay(attempt, "task", jitter=0.5)
            assert 0.75 * raw <= jittered <= 1.25 * raw

    def test_validation(self):
        with pytest.raises(OptimizationError):
            backoff_delay(0)
        with pytest.raises(OptimizationError):
            backoff_delay(1, jitter=1.5)


class TestPlanAndContext:
    def test_plan_validation(self):
        with pytest.raises(OptimizationError):
            ParallelPlan(jobs=0)
        with pytest.raises(OptimizationError):
            ParallelPlan(retries=-1)
        with pytest.raises(OptimizationError):
            ParallelPlan(task_timeout_s=0.0)

    def test_ambient_plan_resolution(self):
        assert current_parallel() is None
        plan = ParallelPlan(jobs=3)
        with use_parallel(plan):
            assert current_parallel() is plan
            assert resolve_parallel(None) is plan
            explicit = ParallelPlan(jobs=2)
            assert resolve_parallel(explicit) is explicit
        assert current_parallel() is None

    def test_workers_refuse_nested_pools(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_WORKER", "1")
        assert in_worker()
        with use_parallel(ParallelPlan(jobs=4)):
            assert current_parallel() is None
            assert resolve_parallel(ParallelPlan(jobs=4)) is None

    def test_duplicate_task_keys_rejected(self):
        tasks = [Task(key="same", index=0, fn=_square, args=(1,)),
                 Task(key="same", index=1, fn=_square, args=(2,))]
        with pytest.raises(OptimizationError, match="duplicate task key"):
            run_sharded(tasks)


# -- in-process execution (jobs=1 and the no-MP fallback) ------------------


class TestSerialExecution:
    def test_values_in_canonical_order(self):
        run = run_sharded(_tasks(5))
        assert run.ok
        assert run.values() == (0, 1, 4, 9, 16)
        assert run.stats.mode == "in-process"
        assert run.stats.completed == 5

    def test_init_state_reaches_every_task(self):
        tasks = [Task(key=f"t{i}", index=i, fn=_plus_state, args=(i,))
                 for i in range(3)]
        run = run_sharded(tasks, init_fn=lambda base: base, init_args=(100,))
        assert run.values() == (100, 101, 102)

    def test_retry_then_recover(self):
        box = {"calls": 0}
        tasks = [Task(key="flaky", index=0, fn=_flaky, args=(box, 2))]
        run = run_sharded(tasks, plan=ParallelPlan(jobs=1, retries=2,
                                                   **FAST))
        (result,) = run.results
        assert result.ok and result.value == "recovered"
        assert result.attempts == 3 and len(result.failures) == 2
        assert run.stats.retried == 2

    def test_quarantine_after_retries_exhausted(self):
        tasks = [Task(key="bad", index=0, fn=_always_fail),
                 Task(key="good", index=1, fn=_square, args=(3,))]
        run = run_sharded(tasks, plan=ParallelPlan(jobs=1, retries=1,
                                                   **FAST))
        bad, good = run.results
        assert bad.status == "quarantined" and bad.attempts == 2
        assert "poison shard" in bad.error
        assert bad.degradation["stage"] == "quarantine"
        assert bad.degradation["task"] == "bad"
        assert good.ok and good.value == 9
        assert not run.ok and run.stats.quarantined == 1
        with pytest.raises(OptimizationError, match="quarantined"):
            run.values()

    def test_stop_after_failure_skips_the_rest(self):
        tasks = [Task(key="bad", index=0, fn=_always_fail),
                 Task(key="late", index=1, fn=_square, args=(2,))]
        run = run_sharded(tasks,
                          plan=ParallelPlan(jobs=1, retries=0,
                                            stop_after_failure=True, **FAST))
        assert [result.status for result in run.results] == \
            ["quarantined", "skipped"]
        assert run.stats.skipped == 1

    def test_mp_unavailable_falls_back_with_warning(self, monkeypatch,
                                                    caplog):
        monkeypatch.setenv("REPRO_NO_MP", "1")
        assert not multiprocessing_available()
        with caplog.at_level("WARNING", logger="repro.runtime.supervisor"):
            run = run_sharded(_tasks(4), plan=ParallelPlan(jobs=4, **FAST))
        assert run.values() == (0, 1, 4, 9)
        assert run.stats.mode == "in-process"
        assert any("multiprocessing unavailable" in record.message
                   for record in caplog.records)


# -- the real pool ---------------------------------------------------------


@needs_mp
class TestPoolExecution:
    def test_pool_matches_serial(self):
        serial = run_sharded(_tasks(9))
        pooled = run_sharded(_tasks(9), plan=ParallelPlan(jobs=3, **FAST))
        assert pooled.values() == serial.values()
        assert pooled.stats.mode == "pool"
        assert pooled.stats.workers == 3

    def test_worker_crash_is_retried_transparently(self):
        plan = ParallelPlan(jobs=2, retries=1, crash_tasks=("t1",), **FAST)
        run = run_sharded(_tasks(4), plan=plan)
        assert run.values() == (0, 1, 4, 9)
        assert run.stats.worker_respawns >= 1
        assert run.stats.retried >= 1

    def test_failing_task_retries_across_processes(self, tmp_path):
        marker = str(tmp_path / "marker")
        tasks = [Task(key="once", index=0, fn=_fail_until_marker,
                      args=(marker, 7))]
        run = run_sharded(tasks, plan=ParallelPlan(jobs=2, retries=2,
                                                   **FAST))
        (result,) = run.results
        assert result.ok and result.value == 49
        assert result.attempts == 2
        assert "first attempt fails" in result.failures[0]

    def test_task_timeout_quarantines_the_hog(self):
        tasks = [Task(key="hog", index=0, fn=_sleep_long, timeout_s=0.3),
                 Task(key="ok", index=1, fn=_square, args=(5,))]
        run = run_sharded(tasks, plan=ParallelPlan(jobs=2, retries=0,
                                                   **FAST))
        hog, fine = run.results
        assert hog.status == "quarantined"
        assert "deadline" in hog.error
        assert fine.ok and fine.value == 25
        assert run.stats.worker_respawns >= 1

    def test_hung_worker_detected_by_heartbeat_loss(self):
        tasks = [Task(key="hung", index=0, fn=_stop_self)]
        plan = ParallelPlan(jobs=2, retries=0, heartbeat_s=0.05,
                            heartbeat_timeout_s=0.4,
                            backoff_base_s=0.001, backoff_cap_s=0.002)
        run = run_sharded(tasks, plan=plan)
        (result,) = run.results
        assert result.status == "quarantined"
        assert "heartbeat" in result.error
        assert run.stats.worker_respawns >= 1

    def test_pool_counters_reach_the_parent_registry(self):
        registry = MetricsRegistry()
        plan = ParallelPlan(jobs=2, retries=1, crash_tasks=("t0",), **FAST)
        with use_metrics(registry):
            run_sharded(_tasks(4), plan=plan)
        counters = registry.counters()
        assert counters["pool.tasks.completed"] == 4
        assert counters["pool.tasks.retried"] >= 1
        assert counters["pool.workers.respawned"] >= 1
        assert counters["pool.workers.started"] >= 2

    def test_worker_lifetime_spans_traced(self):
        tracer = Tracer()
        with use_tracer(tracer):
            run_sharded(_tasks(4), plan=ParallelPlan(jobs=2, **FAST))
        names = [span.name for span in tracer.spans]
        assert "pool.run" in names
        assert names.count("pool.worker") == 2
        (pool_span,) = [span for span in tracer.spans
                        if span.name == "pool.run"]
        assert pool_span.attrs["completed"] == 4

    def test_per_shard_traces_exported(self, tmp_path):
        plan = ParallelPlan(jobs=2, trace_dir=str(tmp_path), **FAST)
        run = run_sharded(_tasks(3), plan=plan)
        assert run.ok
        files = sorted(path.name for path in tmp_path.iterdir())
        assert len(files) == 3
        assert all(name.startswith("shard-") and
                   name.endswith(".trace.jsonl") for name in files)

    def test_fault_plan_armed_inside_workers_only(self):
        from repro.power import energy
        from repro.runtime.faults import ORIGINAL_ATTR

        plan_json = plan_to_json([FaultSpec(seam="energy",
                                            kind="exception",
                                            at_call=1, count=99)])
        tasks = [Task(key="probe", index=0, fn=_seam_is_wrapped),
                 Task(key="victim", index=1, fn=_poisoned_energy)]
        plan = ParallelPlan(jobs=2, retries=1, fault_plan_json=plan_json,
                            **FAST)
        run = run_sharded(tasks, plan=plan)
        probe, victim = run.results
        assert probe.ok and probe.value is True
        assert victim.status == "quarantined"
        assert "FaultInjectedError" in victim.error
        # The parent process never armed the plan.
        assert not hasattr(energy.total_energy, ORIGINAL_ATTR)

    @given(crash=st.integers(min_value=0, max_value=6),
           jobs=st.integers(min_value=2, max_value=4))
    @hsettings(max_examples=5, deadline=None,
               suppress_health_check=[HealthCheck.too_slow])
    def test_killed_worker_never_changes_results(self, crash, jobs):
        """SIGKILL a random worker mid-task: results stay byte-identical."""
        serial = run_sharded(_tasks(7)).values()
        plan = ParallelPlan(jobs=jobs, retries=2,
                            crash_tasks=(f"t{crash}",), **FAST)
        run = run_sharded(_tasks(7), plan=plan)
        assert run.values() == serial
        assert run.stats.worker_respawns >= 1


# -- end-to-end: the optimizer grid under a crashed worker ------------------


@needs_mp
class TestOptimizerIntegration:
    def test_parallel_grid_identical_through_a_crash(self, s27_problem,
                                                     monkeypatch):
        from repro.optimize.heuristic import (HeuristicSettings,
                                              optimize_joint)

        settings = HeuristicSettings(grid_vdd=7, grid_vth=5,
                                     refine_iters=6, refine_rounds=1)
        serial = optimize_joint(s27_problem, settings=settings)
        monkeypatch.setenv("REPRO_POOL_CRASH_TASKS", "first")
        plan = ParallelPlan(jobs=2, retries=2, **FAST)
        with use_parallel(plan):
            pooled = optimize_joint(s27_problem, settings=settings)
        assert pooled.design == serial.design
        assert pooled.total_energy == serial.total_energy
        assert pooled.evaluations == serial.evaluations
        assert pooled.details.get("parallel_jobs") == 2
