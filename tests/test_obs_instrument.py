"""Seam hooks: counters, profiling histograms, and the disabled path."""

import time

from repro.obs.instrument import (
    STA_CALLS,
    profiling_enabled,
    seam,
    seam_metric,
    use_profiling,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, current_metrics
from repro.obs.trace import NULL_TRACER, current_tracer, span
from repro.runtime.controller import FakeClock


def test_seam_increments_canonical_counter():
    registry = MetricsRegistry()
    from repro.obs.metrics import use_metrics

    with use_metrics(registry):
        with seam("sta", counter=STA_CALLS):
            pass
        with seam("delay_model", counter="delay_model_calls", calls=40):
            pass
    assert registry.counter(STA_CALLS) == 1
    assert registry.counter("delay_model_calls") == 40
    # No profiling scope -> no duration histogram.
    assert registry.histogram(seam_metric("sta")) is None


def test_seam_times_into_histogram_under_profiling():
    from repro.obs.metrics import use_metrics

    registry = MetricsRegistry()
    clock = FakeClock()
    assert not profiling_enabled()
    with use_metrics(registry), use_profiling(clock):
        assert profiling_enabled()
        with seam("sta", counter=STA_CALLS):
            clock.advance(0.125)
    histogram = registry.histogram(seam_metric("sta"))
    assert histogram is not None
    assert histogram.count == 1
    assert histogram.total == 0.125


def test_profiling_without_registry_is_inert():
    with use_profiling(FakeClock()):
        with seam("sta", counter=STA_CALLS):
            pass  # NULL_METRICS swallows both the counter and the timing
    assert NULL_METRICS.counter(STA_CALLS) == 0


def test_disabled_observability_allocates_nothing():
    """The off path must stay allocation-free: shared singletons only."""
    assert current_metrics() is NULL_METRICS
    assert current_tracer() is NULL_TRACER
    first = NULL_TRACER.span("grid_search", vdd_points=15)
    second = NULL_TRACER.span("refine")
    assert first is second
    assert span("via_ambient") is first


def test_noop_seam_overhead_guard():
    """20k uninstrumented seam crossings must stay clearly sub-second.

    A loose absolute bound: it only catches an accidental O(n) cost
    (span allocation, histogram writes) sneaking onto the disabled
    path, without being flaky on slow CI machines.
    """
    iterations = 20_000
    start = time.perf_counter()
    for _ in range(iterations):
        with seam("sta", counter=STA_CALLS):
            pass
    elapsed = time.perf_counter() - start
    assert elapsed < 2.0, f"no-op seam too slow: {elapsed:.3f}s"
