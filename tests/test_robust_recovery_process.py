"""Crash recovery of a robust search under a real SIGKILL.

The PR-4 property, extended to the statistical objective: SIGKILL a
process mid-robust-search; resuming from its checkpoint must finish
byte-identical to an uninterrupted run — including every per-corner
Monte-Carlo statistic, which rides in the checkpoint instead of being
re-sampled.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

import repro
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.robust import RobustConfig

CONFIG = RobustConfig(samples=40, cull_samples=8, seed=1)
#: A grid big enough that the kill lands mid-search (~200 corners).
GRID = dict(grid_vdd=15, grid_vth=13, refine_iters=4, refine_rounds=1,
            engine="fast")

WORKER = textwrap.dedent("""
    import sys

    from repro.activity.profiles import uniform_profile
    from repro.context import CircuitContext
    from repro.netlist.benchmarks import s27
    from repro.optimize.heuristic import HeuristicSettings, optimize_joint
    from repro.optimize.problem import OptimizationProblem
    from repro.robust import RobustConfig
    from repro.runtime.controller import RunController
    from repro.technology.process import Technology
    from repro.units import MHZ

    checkpoint = sys.argv[1]
    network = s27()
    profile = uniform_profile(network, probability=0.5, density=0.1)
    problem = OptimizationProblem(
        ctx=CircuitContext(Technology.default(), network, profile),
        frequency=300 * MHZ)
    settings = HeuristicSettings(
        grid_vdd=15, grid_vth=13, refine_iters=4, refine_rounds=1,
        engine="fast",
        robust=RobustConfig(samples=40, cull_samples=8, seed=1),
        controller=RunController(checkpoint_path=checkpoint))
    optimize_joint(problem, settings=settings)
""")


def identity(result):
    return json.dumps({
        "vdd": result.design.vdd,
        "vth": result.design.vth,
        "widths": dict(result.design.widths),
        "energy": result.energy.total,
        "evaluations": result.evaluations,
        "robust": result.details["robust"],
    }, sort_keys=True)


@pytest.mark.slow
def test_sigkill_mid_robust_search_resumes_identically(s27_problem,
                                                       tmp_path):
    reference = optimize_joint(s27_problem, settings=HeuristicSettings(
        **GRID, robust=CONFIG))

    checkpoint = tmp_path / "robust.ckpt"
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-c", WORKER, str(checkpoint)], env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

    # Kill as soon as the search has checkpointed at least one corner,
    # so the restart genuinely resumes mid-search.
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if checkpoint.exists() or process.poll() is not None:
            break
        time.sleep(0.01)
    assert checkpoint.exists(), "worker never wrote a checkpoint"
    if process.poll() is None:
        process.send_signal(signal.SIGKILL)
    process.wait(timeout=10)

    resumed = optimize_joint(s27_problem, settings=HeuristicSettings(
        **GRID, robust=CONFIG), resume_from=checkpoint)
    assert identity(resumed) == identity(reference)
    assert resumed.details["resumed_corners"] > 0
