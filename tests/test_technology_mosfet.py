"""Tests for the transregional MOSFET model."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TechnologyError
from repro.technology.mosfet import (
    drain_current_per_width,
    saturation_current_per_width,
    subthreshold_current_per_width,
    transconductance_per_width,
)
from repro.technology.process import Technology

TECH = Technology.default()

voltages = st.floats(min_value=0.05, max_value=3.3)
thresholds = st.floats(min_value=0.05, max_value=0.9)


def test_reference_corner_is_exact():
    current = drain_current_per_width(TECH, TECH.vdd_reference,
                                      TECH.vth_reference)
    assert current == pytest.approx(TECH.idsat_reference, rel=1e-6)


def test_deep_subthreshold_matches_exponential():
    # Far below threshold the transregional model must collapse to the
    # anchored subthreshold exponential.
    full = drain_current_per_width(TECH, 0.1, 0.7, vds=3.0)
    asymptote = subthreshold_current_per_width(TECH, 0.1, 0.7)
    assert full == pytest.approx(asymptote, rel=0.01)


def test_strong_inversion_matches_alpha_power():
    full = drain_current_per_width(TECH, 3.3, 0.3)
    alpha_law = saturation_current_per_width(TECH, 3.3, 0.3)
    # The calibrated threshold shift perturbs the pure alpha law slightly.
    assert full == pytest.approx(alpha_law, rel=0.05)


def test_saturation_current_zero_below_threshold():
    assert saturation_current_per_width(TECH, 0.3, 0.7) == 0.0


@given(vgs=voltages, vth=thresholds)
@settings(max_examples=200)
def test_current_positive_and_finite(vgs, vth):
    current = drain_current_per_width(TECH, vgs, vth)
    assert current > 0.0
    assert math.isfinite(current)


@given(vth=thresholds, lo=voltages, hi=voltages)
@settings(max_examples=200)
def test_current_monotone_in_vgs(vth, lo, hi):
    lo, hi = sorted((lo, hi))
    # Fixed drain bias isolates the gate-drive monotonicity.
    i_lo = drain_current_per_width(TECH, lo, vth, vds=1.0)
    i_hi = drain_current_per_width(TECH, hi, vth, vds=1.0)
    assert i_hi >= i_lo


@given(vgs=voltages, lo=thresholds, hi=thresholds)
@settings(max_examples=200)
def test_current_monotone_decreasing_in_vth(vgs, lo, hi):
    lo, hi = sorted((lo, hi))
    i_low_vth = drain_current_per_width(TECH, vgs, lo)
    i_high_vth = drain_current_per_width(TECH, vgs, hi)
    assert i_low_vth >= i_high_vth


def test_transregional_smoothness_across_threshold():
    # The transconductance must not jump at Vgs = Vth.
    vth = 0.4
    below = transconductance_per_width(TECH, vth - 0.01, vth)
    at = transconductance_per_width(TECH, vth, vth)
    above = transconductance_per_width(TECH, vth + 0.01, vth)
    assert below < at < above
    assert above / below < 5.0  # no orders-of-magnitude kink


def test_drain_saturation_factor_kills_current_at_zero_vds():
    assert drain_current_per_width(TECH, 1.0, 0.3, vds=0.0) == 0.0


def test_drain_saturation_factor_saturates():
    partial = drain_current_per_width(TECH, 1.0, 0.3, vds=0.5)
    full = drain_current_per_width(TECH, 1.0, 0.3, vds=3.0)
    assert partial == pytest.approx(full, rel=1e-6)


def test_invalid_inputs_rejected():
    with pytest.raises(TechnologyError):
        drain_current_per_width(TECH, -0.1, 0.3)
    with pytest.raises(TechnologyError):
        drain_current_per_width(TECH, 1.0, 0.0)


def test_calibration_is_stable_across_decks():
    # Different decks must each hit their own reference corner.
    for slope in (0.08, 0.095, 0.11):
        deck = TECH.with_overrides(subthreshold_slope=slope)
        current = drain_current_per_width(deck, deck.vdd_reference,
                                          deck.vth_reference)
        assert current == pytest.approx(deck.idsat_reference, rel=1e-5)
