"""The optimization service end to end, in process.

The load-bearing properties: a cache hit never touches the pool and
reproduces the original result byte for byte; recovery re-enqueues
every unfinished job exactly once; unusable checkpoints are discarded
and recomputed, never resumed; overload is a labeled rejection.
(Process-level SIGKILL recovery lives in test_serve_recovery_process.)
"""

import json

import pytest

from repro.errors import ServiceOverloaded
from repro.obs.instrument import (SERVE_CACHE_HITS, SERVE_CACHE_MISSES,
                                  SERVE_CHECKPOINT_DISCARDED,
                                  SERVE_JOBS_RECOVERED,
                                  SERVE_JOURNAL_TRUNCATED)
from repro.obs.metrics import MetricsRegistry
from repro.runtime.checkpoint import SearchCheckpoint
from repro.runtime.pool import multiprocessing_available
from repro.serve.client import new_ticket, submit_request
from repro.serve.jobs import (CANCELLED, DEGRADED, DONE, FAILED, QUEUED,
                              JobRequest, search_fingerprint_for)
from repro.serve.service import OptimizationService

needs_mp = pytest.mark.skipif(not multiprocessing_available(),
                              reason="multiprocessing unavailable")

#: s27 on a 4x4 grid solves in ~50 ms — fast enough to run many times.
FAST = dict(circuit="s27", frequency_mhz=1000.0, grid_vdd=4, grid_vth=4)
#: Same circuit at a frequency no grid corner can meet (calibrated).
IMPOSSIBLE = dict(circuit="s27", frequency_mhz=4000.0, grid_vdd=5,
                  grid_vth=5)


def make_service(root, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    return OptimizationService(root, **kwargs)


def result_bytes(service, job):
    return (service.root / "results" / f"{job.job_id}.json").read_bytes()


class TestHappyPath:
    def test_submit_step_done(self, tmp_path):
        service = make_service(tmp_path)
        job = service.submit(JobRequest(**FAST))
        assert job.state == QUEUED
        assert service.step() == 1
        assert job.state == DONE
        assert job.detail["cached"] is False
        payload = json.loads(result_bytes(service, job))
        assert payload["summary"]["feasible"] is True
        assert payload["degraded"] is False
        counters = service.registry.counters()
        assert counters["serve.jobs.submitted"] == 1
        assert counters["serve.jobs.done"] == 1
        assert counters[SERVE_CACHE_MISSES] == 1

    def test_status_file_tracks_the_lifecycle(self, tmp_path):
        service = make_service(tmp_path)
        job = service.submit(JobRequest(**FAST))
        status = tmp_path / "jobs" / f"{job.job_id}.json"
        assert json.loads(status.read_text())["state"] == QUEUED
        service.step()
        final = json.loads(status.read_text())
        assert final["state"] == DONE
        assert final["terminal"] is True

    def test_events_emitted_per_transition(self, tmp_path):
        service = make_service(tmp_path)
        service.submit(JobRequest(**FAST))
        service.step()
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        phases = [json.loads(line)["phase"] for line in lines]
        assert phases == ["serve.queued", "serve.running", "serve.done"]

    def test_metrics_snapshot_written(self, tmp_path):
        service = make_service(tmp_path)
        service.submit(JobRequest(**FAST))
        service.step()
        service.write_metrics()
        snapshot = json.loads((tmp_path / "metrics.json").read_text())
        assert snapshot["counters"]["serve.jobs.done"] == 1


class TestCacheHits:
    def test_hit_skips_the_pool_and_is_byte_identical(self, tmp_path):
        service = make_service(tmp_path)
        first = service.submit(JobRequest(**FAST))
        service.step()
        pool_before = {key: value
                       for key, value in service.registry.counters().items()
                       if key.startswith("pool.")}

        second = service.submit(JobRequest(**FAST))
        service.step()
        assert second.state == DONE
        assert second.detail["cached"] is True
        pool_after = {key: value
                      for key, value in service.registry.counters().items()
                      if key.startswith("pool.")}
        assert pool_after == pool_before  # the pool never saw the job
        assert service.registry.counters()[SERVE_CACHE_HITS] == 1
        assert result_bytes(service, first) == result_bytes(service, second)

    def test_distinct_requests_do_not_share_results(self, tmp_path):
        service = make_service(tmp_path)
        first = service.submit(JobRequest(**FAST))
        other = service.submit(JobRequest(**dict(FAST, grid_vdd=5)))
        service.step()
        service.step()
        assert first.digest != other.digest
        assert service.registry.counters().get(SERVE_CACHE_HITS, 0) == 0


class TestOverload:
    def test_labeled_rejection_when_full(self, tmp_path):
        service = make_service(tmp_path, capacity=1)
        service.submit(JobRequest(**FAST))
        with pytest.raises(ServiceOverloaded) as excinfo:
            service.submit(JobRequest(**dict(FAST, grid_vdd=5)))
        assert excinfo.value.capacity == 1
        assert service.registry.counters()["serve.jobs.rejected"] == 1
        assert len(service.jobs) == 1  # nothing half-admitted

    def test_spool_rejection_reply(self, tmp_path):
        service = make_service(tmp_path, capacity=1)
        service.submit(JobRequest(**FAST))
        ticket = submit_request(tmp_path, JobRequest(**dict(FAST,
                                                            grid_vdd=5)))
        service.poll_spool()
        reply = json.loads(
            (tmp_path / "replies" / f"{ticket}.json").read_text())
        assert reply["status"] == "rejected"
        assert reply["error"] == "ServiceOverloaded"
        assert reply["capacity"] == 1

    def test_capacity_frees_after_a_step(self, tmp_path):
        service = make_service(tmp_path, capacity=1)
        service.submit(JobRequest(**FAST))
        service.step()
        job = service.submit(JobRequest(**dict(FAST, grid_vdd=5)))
        assert job.state == QUEUED


class TestSpoolProtocol:
    def test_accepted_reply_and_exactly_once_replay(self, tmp_path):
        service = make_service(tmp_path)
        ticket = submit_request(tmp_path, JobRequest(**FAST))
        service.poll_spool()
        reply = json.loads(
            (tmp_path / "replies" / f"{ticket}.json").read_text())
        assert reply["status"] == "accepted"
        assert len(service.jobs) == 1

        # The same ticket replayed (crash between journal append and
        # spool unlink) re-acks the existing job — never a duplicate.
        spool_file = tmp_path / "spool" / f"{ticket}.json"
        spool_file.write_text(json.dumps(JobRequest(**FAST).to_dict()))
        service.poll_spool()
        replay_reply = json.loads(
            (tmp_path / "replies" / f"{ticket}.json").read_text())
        assert replay_reply["job_id"] == reply["job_id"]
        assert len(service.jobs) == 1

    def test_invalid_request_gets_an_invalid_reply(self, tmp_path):
        service = make_service(tmp_path)
        ticket = new_ticket()
        (tmp_path / "spool" / f"{ticket}.json").write_text(
            json.dumps({"circuit": "s27", "bogus_knob": 3}))
        service.poll_spool()
        reply = json.loads(
            (tmp_path / "replies" / f"{ticket}.json").read_text())
        assert reply["status"] == "invalid"
        assert service.jobs == {}


class TestCancellation:
    def test_cancel_a_queued_job(self, tmp_path):
        service = make_service(tmp_path)
        job = service.submit(JobRequest(**FAST))
        service.cancel(job.job_id)
        assert job.state == CANCELLED
        assert service.step() == 0  # nothing left to run

    def test_cancel_reaches_a_running_solve(self, tmp_path):
        service = make_service(tmp_path)
        job = service.submit(JobRequest(**FAST))
        # The marker pre-exists, so the solve's controller sees it on
        # its first evaluation — the in-flight path, deterministically.
        (tmp_path / "control" / f"{job.job_id}.cancel").touch()
        service.step()
        assert job.state == CANCELLED
        assert not (tmp_path / "control" / f"{job.job_id}.cancel").exists()

    def test_cancel_unknown_job_is_harmless(self, tmp_path):
        service = make_service(tmp_path)
        service.cancel("job-999999-deadbeef")
        assert not list((tmp_path / "control").glob("*.cancel"))


class TestFailureTaxonomy:
    def test_infeasible_is_failed_not_retried(self, tmp_path):
        service = make_service(tmp_path)
        job = service.submit(JobRequest(**IMPOSSIBLE))
        service.step()
        assert job.state == FAILED
        assert job.detail["error"] == "InfeasibleError"
        counters = service.registry.counters()
        assert counters.get("pool.tasks.retried", 0) == 0

    def test_expired_deadline_is_failed(self, tmp_path):
        service = make_service(tmp_path)
        job = service.submit(JobRequest(**dict(FAST, deadline_s=1e-6)))
        service.step()
        assert job.state == FAILED
        assert job.detail["error"] == "DeadlineExceeded"

    def test_fallback_degrades_instead_of_failing(self, tmp_path):
        service = make_service(tmp_path)
        job = service.submit(JobRequest(**dict(IMPOSSIBLE, fallback=True)))
        service.step()
        assert job.state == DEGRADED
        assert job.detail["degradation"]["stage"] == "relax_cycle_time"
        payload = json.loads(result_bytes(service, job))
        assert payload["degraded"] is True
        assert payload["summary"]["feasible"] is True

    def test_degraded_results_are_cacheable_too(self, tmp_path):
        service = make_service(tmp_path)
        first = service.submit(JobRequest(**dict(IMPOSSIBLE,
                                                 fallback=True)))
        service.step()
        second = service.submit(JobRequest(**dict(IMPOSSIBLE,
                                                  fallback=True)))
        service.step()
        assert second.state == DEGRADED
        assert second.detail["cached"] is True
        assert result_bytes(service, first) == result_bytes(service, second)


class TestCheckpointHygiene:
    def test_garbage_checkpoint_discarded_and_recomputed(self, tmp_path):
        service = make_service(tmp_path)
        job = service.submit(JobRequest(**FAST))
        ckpt = tmp_path / "checkpoints" / f"{job.job_id}.ckpt"
        ckpt.write_bytes(b'{"_format": "repro-checkpo')  # torn write
        service.step()
        assert job.state == DONE
        assert job.detail["checkpoint_discarded"] is True
        assert ckpt.with_suffix(".ckpt.corrupt").exists()
        counters = service.registry.counters()
        assert counters[SERVE_CHECKPOINT_DISCARDED] == 1

    def test_foreign_fingerprint_checkpoint_not_resumed(self, tmp_path):
        service = make_service(tmp_path)
        job = service.submit(JobRequest(**FAST))
        ckpt = tmp_path / "checkpoints" / f"{job.job_id}.ckpt"
        # A well-formed checkpoint for a *different* search: stale
        # state must be recomputed, never served.
        foreign = search_fingerprint_for(JobRequest(**dict(FAST,
                                                           grid_vdd=9)))
        SearchCheckpoint(foreign, path=ckpt).save()
        service.step()
        assert job.state == DONE
        assert job.detail["checkpoint_discarded"] is True
        assert "fingerprint" in job.detail["checkpoint_error"] \
            or "different search" in job.detail["checkpoint_error"]

    def test_finished_job_leaves_no_checkpoint(self, tmp_path):
        service = make_service(tmp_path)
        job = service.submit(JobRequest(**FAST))
        service.step()
        assert not (tmp_path / "checkpoints" / f"{job.job_id}.ckpt").exists()


class TestRecovery:
    def test_unfinished_jobs_recovered_exactly_once(self, tmp_path):
        first = make_service(tmp_path)
        queued = first.submit(JobRequest(**FAST))
        running = first.submit(JobRequest(**dict(FAST, grid_vdd=5)))
        first._transition(running, "RUNNING", {})
        first.close()  # the "crash": no terminal state was reached

        second = make_service(tmp_path)
        assert len(second.jobs) == 2
        recovered = second.jobs[running.job_id]
        assert recovered.state == QUEUED
        assert recovered.detail == {"recovered": True}
        assert second.jobs[queued.job_id].state == QUEUED
        counters = second.registry.counters()
        assert counters[SERVE_JOBS_RECOVERED] == 2

        while second.step():
            pass
        assert all(job.state == DONE for job in second.jobs.values())

    def test_recovered_result_matches_an_uninterrupted_run(self, tmp_path):
        reference = make_service(tmp_path / "ref")
        ref_job = reference.submit(JobRequest(**FAST))
        reference.step()

        crashed = make_service(tmp_path / "crashed")
        job = crashed.submit(JobRequest(**FAST))
        crashed._transition(job, "RUNNING", {})
        crashed.close()
        revived = make_service(tmp_path / "crashed")
        revived.step()
        survivor = revived.jobs[job.job_id]
        assert survivor.state == DONE
        assert result_bytes(revived, survivor) \
            == result_bytes(reference, ref_job)

    def test_torn_journal_tail_repaired_on_reopen(self, tmp_path):
        first = make_service(tmp_path)
        job = first.submit(JobRequest(**FAST))
        first.step()
        first.close()
        with open(tmp_path / "journal.jsonl", "a") as stream:
            stream.write('{"type": "state", "job_id"')  # torn append

        second = make_service(tmp_path)
        assert second.jobs[job.job_id].state == DONE
        assert second.registry.counters()[SERVE_JOURNAL_TRUNCATED] == 1
        # And the repaired journal accepts new work cleanly.
        new_job = second.submit(JobRequest(**dict(FAST, grid_vdd=5)))
        second.step()
        assert new_job.state == DONE

    def test_terminal_jobs_are_not_re_enqueued(self, tmp_path):
        first = make_service(tmp_path)
        first.submit(JobRequest(**FAST))
        first.step()
        first.close()
        second = make_service(tmp_path)
        assert second.registry.counters().get(SERVE_JOBS_RECOVERED, 0) == 0
        assert second.step() == 0


@needs_mp
class TestPoolExecution:
    def test_two_jobs_solve_in_one_parallel_batch(self, tmp_path):
        service = make_service(tmp_path, pool_jobs=2)
        first = service.submit(JobRequest(**FAST))
        second = service.submit(JobRequest(**dict(FAST, grid_vdd=5)))
        assert service.step() == 2
        assert first.state == DONE
        assert second.state == DONE
        counters = service.registry.counters()
        assert counters["serve.jobs.done"] == 2
        assert counters.get("pool.workers.started", 0) >= 1
