"""Tests for Najm transition-density propagation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.activity.profiles import InputProfile, max_density, uniform_profile
from repro.activity.transition_density import estimate_activity
from repro.errors import ActivityError
from repro.netlist.benchmarks import s27
from repro.netlist.gates import GateType
from repro.netlist.network import NetworkBuilder


def tree_network():
    """A fanout-free tree: the propagation is exact on it."""
    builder = NetworkBuilder("tree")
    for name in ("a", "b", "c", "d"):
        builder.add_input(name)
    builder.add_gate("n1", GateType.AND, ["a", "b"])
    builder.add_gate("n2", GateType.OR, ["c", "d"])
    builder.add_gate("y", GateType.NAND, ["n1", "n2"])
    return builder.build(outputs=["y"])


def test_inverter_passes_density_through():
    builder = NetworkBuilder("inv")
    builder.add_input("a")
    builder.add_gate("y", GateType.NOT, ["a"])
    network = builder.build(outputs=["y"])
    profile = uniform_profile(network, probability=0.3, density=0.25)
    estimate = estimate_activity(network, profile)
    assert estimate.density("y") == pytest.approx(0.25)
    assert estimate.probability("y") == pytest.approx(0.7)


def test_and_gate_density():
    network = tree_network()
    profile = uniform_profile(network, probability=0.5, density=0.2)
    estimate = estimate_activity(network, profile)
    # D(n1) = p_b * D_a + p_a * D_b = 0.5*0.2 + 0.5*0.2 = 0.2
    assert estimate.density("n1") == pytest.approx(0.2)
    # P(n1) = 0.25, P(n2) = 0.75.
    assert estimate.probability("n1") == pytest.approx(0.25)
    assert estimate.probability("n2") == pytest.approx(0.75)
    # D(y) = P(n2=1)*D(n1) + P(n1=1)*D(n2): NAND diff wrt n1 is n2.
    d_n2 = 0.5 * 0.2 + 0.5 * 0.2
    expected = 0.75 * 0.2 + 0.25 * d_n2
    assert estimate.density("y") == pytest.approx(expected)


def test_densities_respect_markov_limit():
    network = s27()
    profile = uniform_profile(network, probability=0.5, density=1.0)
    estimate = estimate_activity(network, profile)
    for name in network.topological_order():
        limit = max_density(estimate.probability(name))
        assert estimate.density(name) <= limit + 1e-12


def test_zero_input_activity_gives_zero_everywhere():
    network = s27()
    profile = uniform_profile(network, probability=0.5, density=0.0)
    estimate = estimate_activity(network, profile)
    assert estimate.total_density() == 0.0


@given(probability=st.floats(min_value=0.05, max_value=0.95),
       density_fraction=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_densities_nonnegative_and_bounded(probability, density_fraction):
    network = s27()
    density = density_fraction * 2 * probability * (1 - probability)
    profile = uniform_profile(network, probability=probability,
                              density=density)
    estimate = estimate_activity(network, profile)
    for name in network.topological_order():
        assert 0.0 <= estimate.density(name)
        assert 0.0 <= estimate.probability(name) <= 1.0


def test_density_scales_linearly_with_input_density():
    # D(y) is linear in the input densities (fixed probabilities).
    network = tree_network()
    low = estimate_activity(network,
                            uniform_profile(network, 0.5, density=0.1))
    high = estimate_activity(network,
                             uniform_profile(network, 0.5, density=0.2))
    for name in network.logic_gates:
        if high.density(name) < max_density(high.probability(name)) - 1e-9:
            assert high.density(name) == pytest.approx(
                2 * low.density(name))


def test_missing_profile_rejected():
    network = s27()
    profile = InputProfile(probabilities={"G0": 0.5}, densities={"G0": 0.1})
    with pytest.raises(ActivityError):
        estimate_activity(network, profile)


def test_activity_alias():
    network = tree_network()
    estimate = estimate_activity(network, uniform_profile(network, 0.5, 0.2))
    assert estimate.activity("n1") == estimate.density("n1")


def test_unknown_node_rejected():
    network = tree_network()
    estimate = estimate_activity(network, uniform_profile(network, 0.5, 0.2))
    with pytest.raises(ActivityError):
        estimate.density("ghost")
