"""Logging setup: hierarchy, verbosity mapping, capture-friendly stderr."""

import io
import logging

from repro.obs.logs import (
    ROOT_LOGGER_NAME,
    configure_logging,
    get_logger,
    stream_handler,
    verbosity_level,
)


def _managed_handlers():
    root = logging.getLogger(ROOT_LOGGER_NAME)
    return [handler for handler in root.handlers
            if getattr(handler, "_repro_managed", False)]


def test_get_logger_prefixes_into_the_repro_hierarchy():
    assert get_logger("cli").name == "repro.cli"
    assert get_logger("repro.experiments.runner").name == \
        "repro.experiments.runner"
    assert get_logger("repro").name == "repro"


def test_verbosity_level_maps_and_clamps():
    assert verbosity_level(-5) == logging.ERROR
    assert verbosity_level(-1) == logging.ERROR
    assert verbosity_level(0) == logging.WARNING
    assert verbosity_level(1) == logging.INFO
    assert verbosity_level(2) == logging.DEBUG
    assert verbosity_level(7) == logging.DEBUG


def test_configure_logging_is_idempotent():
    root = logging.getLogger(ROOT_LOGGER_NAME)
    before = list(root.handlers)
    try:
        configure_logging(0)
        configure_logging(2)
        configure_logging(1)
        assert len(_managed_handlers()) == 1
        assert root.level == logging.INFO
    finally:
        for handler in _managed_handlers():
            root.removeHandler(handler)
        root.handlers = before
        root.setLevel(logging.NOTSET)


def test_configured_logs_reach_the_current_stderr(capsys):
    root = logging.getLogger(ROOT_LOGGER_NAME)
    before = list(root.handlers)
    try:
        configure_logging(0)
        get_logger("cli").warning("warning: something degraded")
        assert "warning: something degraded" in capsys.readouterr().err
    finally:
        for handler in _managed_handlers():
            root.removeHandler(handler)
        root.handlers = before
        root.setLevel(logging.NOTSET)


def test_stream_handler_writes_message_only():
    buffer = io.StringIO()
    logger = logging.getLogger("repro.test_stream_handler")
    handler = stream_handler(buffer, level=logging.INFO)
    logger.addHandler(handler)
    logger.setLevel(logging.INFO)
    try:
        logger.info("[table1 regenerated in 4.2 s]")
    finally:
        logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)
    assert buffer.getvalue() == "[table1 regenerated in 4.2 s]\n"
