"""RunController: deadlines, cancellation, progress, ambient install."""

import pytest

from repro.errors import DeadlineExceeded, OptimizationError, RunCancelled
from repro.runtime.controller import (
    FakeClock,
    ProgressEvent,
    RunController,
    current_controller,
    resolve_controller,
    use_controller,
)


class TestFakeClock:
    def test_starts_at_zero_and_advances(self):
        clock = FakeClock()
        assert clock() == 0.0
        clock.advance(2.5)
        clock.advance(0.5)
        assert clock() == 3.0

    def test_custom_start(self):
        assert FakeClock(start=100.0)() == 100.0

    def test_cannot_go_backwards(self):
        with pytest.raises(OptimizationError, match="backwards"):
            FakeClock().advance(-1.0)


class TestValidation:
    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(OptimizationError, match="deadline_s"):
            RunController(deadline_s=0.0)
        with pytest.raises(OptimizationError, match="deadline_s"):
            RunController(deadline_s=-5.0)

    def test_checkpoint_every_must_be_positive(self):
        with pytest.raises(OptimizationError, match="checkpoint_every"):
            RunController(checkpoint_every=0)


class TestDeadline:
    def test_unbounded_controller_never_expires(self):
        controller = RunController(clock=FakeClock())
        assert controller.remaining() is None
        assert not controller.expired
        for _ in range(100):
            controller.check("loop")
        assert controller.checks == 100

    def test_remaining_counts_down(self):
        clock = FakeClock()
        controller = RunController(deadline_s=10.0, clock=clock)
        assert controller.remaining() == pytest.approx(10.0)
        clock.advance(4.0)
        assert controller.elapsed() == pytest.approx(4.0)
        assert controller.remaining() == pytest.approx(6.0)
        assert not controller.expired

    def test_check_raises_once_expired(self):
        clock = FakeClock()
        controller = RunController(deadline_s=1.0, clock=clock)
        controller.check("before")
        clock.advance(1.5)
        assert controller.expired
        with pytest.raises(DeadlineExceeded, match="during the sweep"):
            controller.check("the sweep")

    def test_elapsed_measured_from_construction(self):
        clock = FakeClock(start=50.0)
        controller = RunController(deadline_s=5.0, clock=clock)
        clock.advance(2.0)
        assert controller.elapsed() == pytest.approx(2.0)


class TestCancellation:
    def test_cancel_trips_next_check(self):
        controller = RunController(clock=FakeClock())
        controller.check()
        assert not controller.cancelled
        controller.cancel()
        assert controller.cancelled
        with pytest.raises(RunCancelled, match="during refine"):
            controller.check("refine")

    def test_cancel_wins_over_deadline(self):
        clock = FakeClock()
        controller = RunController(deadline_s=1.0, clock=clock)
        clock.advance(2.0)
        controller.cancel()
        with pytest.raises(RunCancelled):
            controller.check()


class TestProgress:
    def test_events_reach_the_callback(self):
        clock = FakeClock()
        events = []
        controller = RunController(clock=clock, progress=events.append)
        controller.report(phase="grid", evaluations=3, best_energy=1e-12)
        clock.advance(1.0)
        controller.report(phase="refine", evaluations=7, best_energy=9e-13)
        assert controller.events_emitted == 2
        assert [event.phase for event in events] == ["grid", "refine"]
        assert events[1] == ProgressEvent(phase="refine", evaluations=7,
                                          best_energy=9e-13, elapsed_s=1.0)

    def test_report_without_callback_only_counts(self):
        controller = RunController(clock=FakeClock())
        controller.report(phase="grid", evaluations=1, best_energy=1.0)
        assert controller.events_emitted == 1

    def test_event_serializes_infinite_energy_as_null(self):
        import json
        import math

        event = ProgressEvent(phase="grid", evaluations=0,
                              best_energy=math.inf, elapsed_s=0.5)
        payload = event.to_dict()
        assert payload["best_energy"] is None
        # json.dumps default mode would emit the non-JSON "Infinity"
        # token; the dict form must survive a strict encoder.
        text = json.dumps(payload, allow_nan=False)
        restored = ProgressEvent.from_dict(json.loads(text))
        assert restored.best_energy == math.inf
        assert restored == event

    def test_event_round_trips_finite_values_and_metrics(self):
        event = ProgressEvent(phase="refine", evaluations=7,
                              best_energy=9e-13, elapsed_s=1.0,
                              metrics={"sta_calls": 4})
        restored = ProgressEvent.from_dict(event.to_dict())
        assert restored == event

    def test_report_snapshots_ambient_metrics(self):
        from repro.obs.metrics import MetricsRegistry, use_metrics

        events = []
        controller = RunController(clock=FakeClock(),
                                   progress=events.append)
        registry = MetricsRegistry()
        registry.incr("sta_calls", 3)
        with use_metrics(registry):
            controller.report(phase="grid", evaluations=1, best_energy=1.0)
        controller.report(phase="grid", evaluations=2, best_energy=1.0)
        assert events[0].metrics == {"sta_calls": 3}
        assert events[1].metrics is None  # observability disabled


class TestAmbientController:
    def test_no_ambient_by_default(self):
        assert current_controller() is None
        assert resolve_controller(None) is None

    def test_use_controller_installs_and_restores(self):
        controller = RunController(clock=FakeClock())
        with use_controller(controller) as installed:
            assert installed is controller
            assert current_controller() is controller
            assert resolve_controller(None) is controller
        assert current_controller() is None

    def test_explicit_wins_over_ambient(self):
        ambient = RunController(clock=FakeClock())
        explicit = RunController(clock=FakeClock())
        with use_controller(ambient):
            assert resolve_controller(explicit) is explicit
            assert resolve_controller(None) is ambient

    def test_nesting_restores_the_outer_controller(self):
        outer = RunController(clock=FakeClock())
        inner = RunController(clock=FakeClock())
        with use_controller(outer):
            with use_controller(inner):
                assert current_controller() is inner
            assert current_controller() is outer

    def test_use_controller_accepts_none(self):
        ambient = RunController(clock=FakeClock())
        with use_controller(ambient):
            with use_controller(None):
                assert current_controller() is None
            assert current_controller() is ambient
