"""Tests for the shared CircuitContext."""

import pytest

from repro.context import CircuitContext
from repro.errors import ReproError
from repro.interconnect.parasitics import network_parasitics
from repro.netlist.benchmarks import s27
from repro.technology.capacitance import gate_capacitances
from repro.activity.profiles import uniform_profile
from repro.technology.process import Technology

TECH = Technology.default()


def test_info_covers_all_nodes(s27_ctx):
    for name in s27_ctx.network.topological_order():
        info = s27_ctx.info(name)
        assert info.name == name
        assert len(info.fanout_names) == len(info.fanout_input_caps)
        assert len(info.fanout_names) == len(info.branch_caps)


def test_unknown_gate_rejected(s27_ctx):
    with pytest.raises(ReproError):
        s27_ctx.info("ghost")


def test_boundary_branch_for_sinkless_output(s27_ctx):
    # G17 is a primary output with no internal sinks.
    info = s27_ctx.info("G17")
    assert info.fanout_names == ("",)
    boundary_cap = gate_capacitances(TECH, 2).input_cap
    assert info.fanout_input_caps[0] == pytest.approx(boundary_cap)


def test_output_load_matches_manual_assembly(s27_ctx):
    widths = s27_ctx.uniform_widths(2.0)
    name = "G8"  # AND gate with known fanouts G15, G16
    info = s27_ctx.info(name)
    load = s27_ctx.output_load(name, widths)
    manual = 2.0 * info.self_cap + info.wire_cap
    for sink, cap in zip(info.fanout_names, info.fanout_input_caps):
        manual += (1.0 if sink == "" else 2.0) * cap
    assert load == pytest.approx(manual)


def test_activity_is_attached(s27_ctx):
    for name in s27_ctx.network.logic_gates:
        assert s27_ctx.info(name).activity >= 0.0


def test_uniform_widths_validated(s27_ctx):
    widths = s27_ctx.uniform_widths(3.0)
    assert set(widths) == set(s27_ctx.network.logic_gates)
    with pytest.raises(ReproError):
        s27_ctx.uniform_widths(0.5)
    with pytest.raises(ReproError):
        s27_ctx.uniform_widths(200.0)


def test_gates_reversed_is_reverse(s27_ctx):
    assert s27_ctx.gates_reversed == tuple(reversed(s27_ctx.gates))


def test_explicit_parasitics_accepted():
    network = s27()
    profile = uniform_profile(network, 0.5, 0.1)
    parasitics = network_parasitics(TECH, network)
    ctx = CircuitContext(TECH, network, profile, parasitics=parasitics)
    assert ctx.info("G8").wire_cap == pytest.approx(
        parasitics["G8"].total_cap)


def test_missing_parasitics_rejected():
    network = s27()
    profile = uniform_profile(network, 0.5, 0.1)
    parasitics = dict(network_parasitics(TECH, network))
    del parasitics["G8"]
    with pytest.raises(ReproError, match="no parasitics"):
        CircuitContext(TECH, network, profile, parasitics=parasitics)


def test_fanout_count_includes_boundary(s27_ctx):
    # Primary output with no sinks: the paper's f_oi floor of 1.
    assert s27_ctx.info("G17").fanout_count == 1
