"""Admission control: bounded queue, priorities, labeled rejection."""

import pytest

from repro.errors import ServiceOverloaded
from repro.serve.admission import AdmissionQueue


class TestOrdering:
    def test_priority_order(self):
        queue = AdmissionQueue(capacity=8)
        queue.push("low", priority=0, seq=1)
        queue.push("high", priority=5, seq=2)
        queue.push("mid", priority=3, seq=3)
        assert [queue.pop(), queue.pop(), queue.pop()] \
            == ["high", "mid", "low"]

    def test_fifo_within_a_priority(self):
        queue = AdmissionQueue(capacity=8)
        for seq in range(1, 5):
            queue.push(f"job-{seq}", priority=1, seq=seq)
        assert [queue.pop() for _ in range(4)] \
            == ["job-1", "job-2", "job-3", "job-4"]

    def test_pop_empty_returns_none(self):
        assert AdmissionQueue(capacity=2).pop() is None


class TestBackpressure:
    def test_overload_rejection_is_labeled(self):
        queue = AdmissionQueue(capacity=2)
        queue.push("a", 0, 1)
        queue.push("b", 0, 2)
        with pytest.raises(ServiceOverloaded) as excinfo:
            queue.push("c", 0, 3)
        assert excinfo.value.capacity == 2
        assert excinfo.value.queued == 2
        assert len(queue) == 2  # no unbounded growth

    def test_capacity_frees_as_jobs_pop(self):
        queue = AdmissionQueue(capacity=1)
        queue.push("a", 0, 1)
        with pytest.raises(ServiceOverloaded):
            queue.push("b", 0, 2)
        assert queue.pop() == "a"
        queue.push("b", 0, 2)  # now admitted
        assert queue.pop() == "b"

    def test_force_push_bypasses_capacity_for_recovery(self):
        queue = AdmissionQueue(capacity=1)
        queue.push("a", 0, 1)
        queue.push("recovered", 0, 2, force=True)
        assert len(queue) == 2
        # New submissions stay rejected until the backlog drains.
        with pytest.raises(ServiceOverloaded):
            queue.push("c", 0, 3)

    def test_duplicate_push_is_idempotent(self):
        queue = AdmissionQueue(capacity=2)
        queue.push("a", 0, 1)
        queue.push("a", 0, 1)
        assert len(queue) == 1
        assert queue.pop() == "a"
        assert queue.pop() is None

    def test_bad_capacity_rejected(self):
        with pytest.raises(ServiceOverloaded):
            AdmissionQueue(capacity=0)


class TestCancellation:
    def test_remove_tombstones_a_queued_job(self):
        queue = AdmissionQueue(capacity=4)
        queue.push("a", 0, 1)
        queue.push("b", 0, 2)
        assert queue.remove("a") is True
        assert "a" not in queue
        assert len(queue) == 1
        assert queue.pop() == "b"
        assert queue.pop() is None

    def test_remove_unknown_is_false(self):
        queue = AdmissionQueue(capacity=4)
        assert queue.remove("ghost") is False

    def test_removed_job_can_be_repushed(self):
        queue = AdmissionQueue(capacity=4)
        queue.push("a", 0, 1)
        queue.remove("a")
        queue.push("a", 5, 2)
        assert queue.pop() == "a"
        assert queue.pop() is None
