"""Tests for per-gate continuous-Vth slack reclamation."""

import pytest

from repro.errors import OptimizationError
from repro.optimize.continuous_vth import (
    optimize_continuous_vth,
    reclaim_slack_with_vth,
)
from repro.optimize.heuristic import optimize_joint


@pytest.fixture(scope="module")
def s298_outcome():
    from repro.experiments.common import build_problem

    problem = build_problem("s298", 0.1)
    return problem, optimize_continuous_vth(problem)


def test_never_worse_than_single(s298_outcome):
    _, outcome = s298_outcome
    assert outcome.gain >= 1.0
    assert outcome.refined.total_energy <= outcome.single.total_energy


def test_widths_untouched(s298_outcome):
    _, outcome = s298_outcome
    assert outcome.refined.design.widths == outcome.single.design.widths


def test_only_reclaimed_gates_change_threshold(s298_outcome):
    problem, outcome = s298_outcome
    if not outcome.reclaimed:
        pytest.skip("no reclaimable gates on this circuit")
    base = float(outcome.single.design.distinct_vths()[0])
    reclaimed = set(outcome.reclaimed)
    for name in problem.network.logic_gates:
        vth = outcome.refined.design.vth_of(name)
        if name in reclaimed:
            assert vth > base
        else:
            assert vth == pytest.approx(base)


def test_static_energy_strictly_reduced(s298_outcome):
    _, outcome = s298_outcome
    if outcome.reclaimed:
        assert outcome.refined.energy.static < outcome.single.energy.static
        # Dynamic untouched: same widths, same Vdd.
        assert outcome.refined.energy.dynamic == pytest.approx(
            outcome.single.energy.dynamic, rel=1e-12)


def test_timing_still_met(s298_outcome):
    problem, outcome = s298_outcome
    assert outcome.refined.timing.meets(problem.cycle_time,
                                        tolerance=1e-9)


def test_reclaim_targets_minimum_width_gates(s298_outcome):
    problem, outcome = s298_outcome
    widths = outcome.single.design.widths
    for name in outcome.reclaimed:
        assert widths[name] == pytest.approx(problem.tech.width_min,
                                             rel=1e-5)


def test_validation(s27_problem, fast_settings):
    single = optimize_joint(s27_problem, settings=fast_settings)
    budgets = s27_problem.budgets()
    with pytest.raises(OptimizationError):
        reclaim_slack_with_vth(s27_problem, single, budgets,
                               refine_iters=1)
