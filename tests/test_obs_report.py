"""trace-report: self-time aggregation and the golden rendering."""

from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.obs.instrument import OBJECTIVE_EVALUATIONS, STA_CALLS
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    format_trace_report,
    load_trace,
    render_trace_report,
    summarize_trace,
)
from repro.obs.trace import Tracer
from repro.runtime.controller import FakeClock

GOLDEN = Path(__file__).parent / "data" / "trace_report.golden"


def build_trace(path) -> None:
    """A deterministic miniature optimizer trace (FakeClock-timed)."""
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    registry = MetricsRegistry()
    registry.incr(OBJECTIVE_EVALUATIONS, 61)
    registry.incr(STA_CALLS, 9)
    registry.observe("seam.sta.seconds", 0.5)
    registry.observe("seam.sta.seconds", 1.5)
    with tracer.span("optimize_joint", network="s27"):
        with tracer.span("grid_search", vdd_points=15):
            clock.advance(2.0)
            with tracer.span("width_search"):
                clock.advance(1.0)
        with tracer.span("refine"):
            clock.advance(0.5)
        try:
            with tracer.span("doomed"):
                clock.advance(0.25)
                raise ValueError("boom")
        except ValueError:
            pass
    tracer.export_jsonl(path, metrics=registry)


def test_self_time_subtracts_direct_children(tmp_path):
    path = tmp_path / "t.jsonl"
    build_trace(path)
    summary = summarize_trace(load_trace(path))
    by_name = {agg.name: agg for agg in summary.spans}
    assert by_name["grid_search"].wall_s == pytest.approx(3.0)
    assert by_name["grid_search"].self_s == pytest.approx(2.0)
    assert by_name["width_search"].self_s == pytest.approx(1.0)
    assert by_name["refine"].self_s == pytest.approx(0.5)
    assert by_name["optimize_joint"].wall_s == pytest.approx(3.75)
    assert by_name["optimize_joint"].self_s == pytest.approx(0.0)
    assert by_name["doomed"].errors == 1
    # Ordered by self time, descending.
    assert summary.spans[0].name == "grid_search"
    assert summary.counters[OBJECTIVE_EVALUATIONS] == 61
    assert summary.counters[STA_CALLS] == 9


def test_trace_report_matches_golden(tmp_path):
    path = tmp_path / "t.jsonl"
    build_trace(path)
    report = format_trace_report(summarize_trace(load_trace(path)),
                                 top=10, title="golden trace")
    assert report == GOLDEN.read_text().rstrip("\n")


def test_render_trace_report_names_the_file(tmp_path):
    path = tmp_path / "t.jsonl"
    build_trace(path)
    report = render_trace_report(path, top=2)
    assert str(path) in report
    assert "grid_search" in report
    # top=2 keeps only the two hottest span rows.
    assert "refine" not in report.splitlines()[4]


def test_load_trace_errors(tmp_path):
    with pytest.raises(ReproError, match="no such trace"):
        load_trace(tmp_path / "missing.jsonl")
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type": "span"}\n{truncated')
    with pytest.raises(ReproError, match="invalid trace line"):
        load_trace(bad)
    scalar = tmp_path / "scalar.jsonl"
    scalar.write_text("42\n")
    with pytest.raises(ReproError, match="must be JSON objects"):
        load_trace(scalar)
