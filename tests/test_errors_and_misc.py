"""Tests for the error hierarchy and miscellaneous plumbing."""

import subprocess
import sys

import pytest

from repro import __version__, benchmark_circuit, benchmark_names
from repro.errors import (
    ActivityError,
    BenchParseError,
    InfeasibleError,
    NetlistError,
    OptimizationError,
    ReproError,
    TechnologyError,
    TimingError,
)


def test_all_errors_derive_from_repro_error():
    for error_type in (NetlistError, BenchParseError, TechnologyError,
                       TimingError, InfeasibleError, OptimizationError,
                       ActivityError):
        assert issubclass(error_type, ReproError)


def test_bench_parse_error_line_prefix():
    error = BenchParseError("bad thing", line_number=7)
    assert "line 7" in str(error)
    assert error.line_number == 7
    bare = BenchParseError("bad thing")
    assert bare.line_number is None


def test_catch_all_library_errors():
    try:
        benchmark_circuit("nope")
    except ReproError:
        pass
    else:  # pragma: no cover
        pytest.fail("NetlistError should be a ReproError")


def test_package_exports():
    assert isinstance(__version__, str)
    names = benchmark_names()
    assert names[0] == "s27"
    assert benchmark_circuit("s27").name == "s27"


def test_python_dash_m_entrypoint():
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "decks"],
        capture_output=True, text=True, timeout=120)
    assert completed.returncode == 0
    assert "generic-0.25um" in completed.stdout


def test_experiment_runner_module_entrypoint():
    completed = subprocess.run(
        [sys.executable, "-c",
         "from repro.experiments import runner; print('importable')"],
        capture_output=True, text=True, timeout=60)
    assert completed.returncode == 0
    assert "importable" in completed.stdout
