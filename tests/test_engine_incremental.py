"""Bit-identity tests for the incremental delta-evaluation engine.

The incremental engine's contract is stronger than the cross-engine
parity contract: its measurements after any sequence of width/voltage
moves must be *bit-identical* (``==``, not approx) to a fresh full
evaluation by the array engine at the same design point. Every
comparison below is exact equality.
"""

from __future__ import annotations

import random

import pytest

from repro.activity.profiles import uniform_profile
from repro.engine import ENGINE_NAMES, make_engine, use_engine
from repro.engine.incremental import IncrementalEngine
from repro.errors import OptimizationError
from repro.experiments.common import build_problem
from repro.netlist.generator import GeneratorSpec, generate_network
from repro.obs.instrument import (
    INCREMENTAL_CONE_GATES,
    INCREMENTAL_FULL_REFRESHES,
    INCREMENTAL_MOVES,
)
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.optimize.annealing import AnnealingSettings, optimize_annealing
from repro.optimize.problem import OptimizationProblem
from repro.technology.process import Technology
from repro.units import MHZ


def _generated_problem(seed: int) -> OptimizationProblem:
    spec = GeneratorSpec(name=f"delta{seed}", n_inputs=6, n_outputs=5,
                         n_gates=40 + 7 * (seed % 5), depth=6, seed=seed)
    network = generate_network(spec)
    profile = uniform_profile(network, probability=0.5, density=0.1)
    return OptimizationProblem.build(Technology.default(), network, profile,
                                     frequency=250 * MHZ)


def _assert_identical(incremental, fast, vdd, vth, widths, context=""):
    """The maintained state vs a fresh full evaluation, bitwise."""
    expected = fast.measure(vdd, vth, widths)
    actual = incremental.measurement()
    assert actual.static == expected.static, context
    assert actual.dynamic == expected.dynamic, context
    assert actual.critical_delay == expected.critical_delay, context


@pytest.mark.parametrize("seed", [3, 7, 11])
def test_random_width_moves_bit_identical(seed):
    """Hundreds of random width moves; every state matches full eval."""
    problem = _generated_problem(seed)
    tech = problem.tech
    engine = IncrementalEngine(problem)
    fast = make_engine(problem, "fast")
    rng = random.Random(100 + seed)
    gates = list(problem.ctx.gates)
    widths = {name: rng.uniform(1.0, 20.0) for name in gates}
    vdd, vth = 1.8, 0.3

    engine.begin(vdd, vth, widths)
    _assert_identical(engine, fast, vdd, vth, widths, "begin")
    n = engine.arrays.n_gates
    for step in range(200):
        name = gates[rng.randrange(len(gates))]
        widths[name] = rng.uniform(tech.width_min, tech.width_max)
        engine.apply_move(name, widths[name])
        _assert_identical(engine, fast, vdd, vth, widths,
                          f"seed={seed} step={step} gate={name}")
    assert engine.moves == 200
    # Cone sanity: an N-gate circuit can never re-evaluate more than N
    # gates per move, and the early-termination cut must actually fire.
    assert engine.cone_gates <= 200 * n
    assert engine.early_stops >= 1


@pytest.mark.parametrize("seed", [4, 9])
def test_mixed_move_sequences_bit_identical(seed):
    """Interleaved width / Vdd / Vth moves stay exact."""
    problem = _generated_problem(seed)
    tech = problem.tech
    engine = IncrementalEngine(problem)
    fast = make_engine(problem, "fast")
    rng = random.Random(500 + seed)
    gates = list(problem.ctx.gates)
    widths = {name: rng.uniform(1.0, 15.0) for name in gates}
    vdd, vth = 2.5, 0.25

    engine.begin(vdd, vth, widths)
    for step in range(120):
        roll = rng.random()
        if roll < 0.2:
            vdd = rng.uniform(max(tech.vdd_min, 0.9), tech.vdd_max)
            engine.apply_voltage(vdd=vdd)
        elif roll < 0.4:
            vth = rng.uniform(tech.vth_min, tech.vth_max)
            engine.apply_voltage(vth=vth)
        else:
            name = gates[rng.randrange(len(gates))]
            widths[name] = rng.uniform(tech.width_min, tech.width_max)
            engine.apply_move(name, widths[name])
        _assert_identical(engine, fast, vdd, vth, widths,
                          f"seed={seed} step={step}")


def test_infeasible_corner_measures_inf_critical(s27_problem):
    """Subthreshold corners (drive <= 0) propagate inf, exactly as the
    fast engine reports them."""
    engine = IncrementalEngine(s27_problem)
    fast = make_engine(s27_problem, "fast")
    widths = {name: 10.0 for name in s27_problem.ctx.gates}
    engine.begin(0.5, 0.49, widths)
    _assert_identical(engine, fast, 0.5, 0.49, widths, "subthreshold")
    name = next(iter(widths))
    widths[name] = 42.0
    engine.apply_move(name, 42.0)
    _assert_identical(engine, fast, 0.5, 0.49, widths, "subthreshold move")


def test_width_revert_is_exact(s27_problem):
    """Re-applying the previous width restores the state bit-exactly."""
    engine = IncrementalEngine(s27_problem)
    widths = {name: 10.0 for name in s27_problem.ctx.gates}
    before = engine.begin(1.8, 0.3, widths)
    name = list(widths)[3]
    engine.apply_move(name, 2.5)
    after = engine.apply_move(name, 10.0)
    assert after == before


def test_snapshot_restore_roundtrip(s27_problem):
    """Voltage-move revert: snapshot, refresh at new rails, restore."""
    engine = IncrementalEngine(s27_problem)
    fast = make_engine(s27_problem, "fast")
    widths = {name: 8.0 for name in s27_problem.ctx.gates}
    before = engine.begin(2.0, 0.3, widths)
    token = engine.snapshot()
    engine.apply_voltage(vdd=1.1, vth=0.22)
    _assert_identical(engine, fast, 1.1, 0.22, widths, "after voltage")
    restored = engine.restore(token)
    assert restored == before
    _assert_identical(engine, fast, 2.0, 0.3, widths, "after restore")
    # The restored state must keep evolving correctly.
    name = list(widths)[0]
    widths[name] = 3.0
    engine.apply_move(name, 3.0)
    _assert_identical(engine, fast, 2.0, 0.3, widths, "move after restore")


def test_noop_move_early_terminates(s27_problem):
    """Re-applying the current width stops the cone at the seed rows."""
    engine = IncrementalEngine(s27_problem)
    widths = {name: 10.0 for name in s27_problem.ctx.gates}
    engine.begin(1.8, 0.3, widths)
    name = list(widths)[0]
    before = engine.early_stops
    engine.apply_move(name, 10.0)
    assert engine.early_stops > before
    # A no-op move's cone is exactly the seed rows (gate + fanins).
    assert engine.cone_gates <= 1 + len(
        s27_problem.ctx.info(name).fanin_names)


def test_move_counters_are_metered(s27_problem):
    registry = MetricsRegistry()
    with use_metrics(registry):
        engine = IncrementalEngine(s27_problem)
        widths = {name: 10.0 for name in s27_problem.ctx.gates}
        engine.begin(1.8, 0.3, widths)
        name = list(widths)[1]
        engine.apply_move(name, 4.0)
        engine.apply_voltage(vdd=2.2)
    assert registry.counter(INCREMENTAL_MOVES) == 1
    assert registry.counter(INCREMENTAL_CONE_GATES) >= 1
    assert registry.counter(INCREMENTAL_FULL_REFRESHES) == 2  # begin + vdd


def test_requires_begin(s27_problem):
    engine = IncrementalEngine(s27_problem)
    with pytest.raises(OptimizationError, match="begin"):
        engine.apply_move("any", 1.0)
    with pytest.raises(OptimizationError, match="begin"):
        engine.measurement()


def test_unknown_gate_rejected(s27_problem):
    engine = IncrementalEngine(s27_problem)
    engine.begin(1.8, 0.3, {name: 10.0 for name in s27_problem.ctx.gates})
    with pytest.raises(OptimizationError, match="unknown gate"):
        engine.apply_move("no-such-gate", 1.0)


def test_engine_selection_resolves_incremental(s27_problem, monkeypatch):
    assert "incremental" in ENGINE_NAMES
    assert isinstance(make_engine(s27_problem, "incremental"),
                      IncrementalEngine)
    with use_engine("incremental"):
        assert isinstance(make_engine(s27_problem, "auto"),
                          IncrementalEngine)
    monkeypatch.setenv("REPRO_ENGINE", "incremental")
    assert isinstance(make_engine(s27_problem, "auto"), IncrementalEngine)


def test_stateless_api_delegates_to_fast(s27_problem):
    """Outside the move API the engine behaves exactly like "fast"."""
    budgets = s27_problem.budgets()
    incremental = make_engine(s27_problem, "incremental")
    fast = make_engine(s27_problem, "fast")
    lhs = incremental.evaluate(budgets, 1.8, 0.3)
    rhs = fast.evaluate(budgets, 1.8, 0.3)
    assert lhs.feasible == rhs.feasible
    assert lhs.energy == rhs.energy
    assert lhs.static == rhs.static
    assert lhs.dynamic == rhs.dynamic


ANNEAL = AnnealingSettings(passes=2, iterations_per_pass=120, seed=7)


def test_annealing_trajectory_identical_to_fast(s27_problem):
    """The tentpole acceptance: same seed, same accepted-move trajectory
    and same final design under "fast" and "incremental"."""
    fast = optimize_annealing(
        s27_problem, settings=AnnealingSettings(
            passes=2, iterations_per_pass=120, seed=7, engine="fast"))
    delta = optimize_annealing(
        s27_problem, settings=AnnealingSettings(
            passes=2, iterations_per_pass=120, seed=7, engine="incremental"))
    assert delta.details["trajectory"] == fast.details["trajectory"]
    assert delta.details["accepts_per_pass"] == fast.details["accepts_per_pass"]
    assert delta.evaluations == fast.evaluations
    assert delta.design.vdd == fast.design.vdd
    assert delta.design.vth == fast.design.vth
    assert delta.design.widths == fast.design.widths
    assert delta.energy.total == fast.energy.total
