"""Tests for the transregional gate delay model."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TimingError
from repro.technology.process import Technology
from repro.timing.delay_model import (
    DelayBreakdown,
    effective_drive_per_width,
    fixed_delay_floor,
    gate_delay,
    gate_delay_breakdown,
    slope_coefficient,
    stack_height_factor,
)

TECH = Technology.default()

vdds = st.floats(min_value=0.3, max_value=3.3)
vths = st.floats(min_value=0.1, max_value=0.7)
widths_strategy = st.floats(min_value=1.0, max_value=100.0)


def test_slope_coefficient_limits():
    # Deep superthreshold: small; at/below threshold: clamps to 1/2.
    assert slope_coefficient(TECH, 3.3, 0.1) < 0.2
    assert slope_coefficient(TECH, 0.3, 0.5) == 0.5
    assert slope_coefficient(TECH, 1.0, 1.0) == 0.5


def test_slope_coefficient_monotone_in_vth():
    values = [slope_coefficient(TECH, 1.0, vth)
              for vth in (0.1, 0.2, 0.4, 0.6)]
    assert values == sorted(values)


def test_slope_coefficient_rejects_bad_vdd():
    with pytest.raises(TimingError):
        slope_coefficient(TECH, 0.0, 0.3)


def test_stack_height_factor():
    assert stack_height_factor(TECH, 1) == 1.0
    assert stack_height_factor(TECH, 3) == pytest.approx(
        1.0 + 2 * TECH.stack_derating)
    with pytest.raises(TimingError):
        stack_height_factor(TECH, 0)


def test_effective_drive_decreases_with_fanin():
    one = effective_drive_per_width(TECH, 1.0, 0.2, 1)
    four = effective_drive_per_width(TECH, 1.0, 0.2, 4)
    assert one > four > 0.0


def test_effective_drive_can_go_negative_in_deep_subthreshold():
    # Tiny Vdd, moderate Vth, big stack: contention can kill the drive.
    drive = effective_drive_per_width(TECH, 0.05, 0.45, 4)
    assert drive <= 0.0 or drive < effective_drive_per_width(
        TECH, 0.05, 0.45, 1)


def test_gate_delay_breakdown_components(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    breakdown = gate_delay_breakdown(s27_ctx, "G8", 1.0, 0.2, widths,
                                     max_fanin_delay=1e-10)
    assert breakdown.slope > 0.0
    assert breakdown.switching > 0.0
    assert breakdown.wire_rc >= 0.0
    assert breakdown.flight > 0.0
    assert breakdown.total == pytest.approx(
        breakdown.slope + breakdown.switching + breakdown.wire_rc
        + breakdown.flight)


def test_gate_delay_infinite_when_drive_dies(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    delay = gate_delay(s27_ctx, "G9", 0.02, 0.6, widths, 0.0)
    assert math.isinf(delay)


@given(vdd=vdds, vth=vths, w_lo=widths_strategy, w_hi=widths_strategy)
@settings(max_examples=80, deadline=None)
def test_delay_monotone_decreasing_in_own_width(s27_ctx, vdd, vth,
                                                w_lo, w_hi):
    w_lo, w_hi = sorted((w_lo, w_hi))
    widths = s27_ctx.uniform_widths(4.0)
    widths["G9"] = w_lo
    slow = gate_delay(s27_ctx, "G9", vdd, vth, widths, 0.0)
    widths["G9"] = w_hi
    fast = gate_delay(s27_ctx, "G9", vdd, vth, widths, 0.0)
    assert fast <= slow * (1 + 1e-12)


@given(vth=vths, v_lo=vdds, v_hi=vdds)
@settings(max_examples=80, deadline=None)
def test_switching_delay_improves_with_vdd(s27_ctx, vth, v_lo, v_hi):
    v_lo, v_hi = sorted((v_lo, v_hi))
    widths = s27_ctx.uniform_widths(4.0)
    slow = gate_delay_breakdown(s27_ctx, "G9", v_lo, vth, widths, 0.0)
    fast = gate_delay_breakdown(s27_ctx, "G9", v_hi, vth, widths, 0.0)
    assert fast.switching <= slow.switching * (1 + 1e-9)


@given(vdd=vdds, t_lo=vths, t_hi=vths)
@settings(max_examples=80, deadline=None)
def test_delay_monotone_increasing_in_vth(s27_ctx, vdd, t_lo, t_hi):
    t_lo, t_hi = sorted((t_lo, t_hi))
    widths = s27_ctx.uniform_widths(4.0)
    fast = gate_delay(s27_ctx, "G9", vdd, t_lo, widths, 0.0)
    slow = gate_delay(s27_ctx, "G9", vdd, t_hi, widths, 0.0)
    assert slow >= fast * (1 - 1e-12)


def test_slope_term_scales_with_fanin_delay(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    base = gate_delay(s27_ctx, "G9", 1.0, 0.2, widths, 0.0)
    with_slope = gate_delay(s27_ctx, "G9", 1.0, 0.2, widths, 1e-9)
    coefficient = slope_coefficient(TECH, 1.0, 0.2)
    assert with_slope - base == pytest.approx(coefficient * 1e-9)


def test_negative_fanin_delay_rejected(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    with pytest.raises(TimingError):
        gate_delay(s27_ctx, "G9", 1.0, 0.2, widths, -1.0)


def test_nonpositive_width_rejected(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    widths["G9"] = 0.0
    with pytest.raises(TimingError):
        gate_delay(s27_ctx, "G9", 1.0, 0.2, widths, 0.0)


def test_fixed_delay_floor_is_width_and_voltage_free(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    floor = fixed_delay_floor(s27_ctx, "G9", widths)
    breakdown = gate_delay_breakdown(s27_ctx, "G9", 2.0, 0.3, widths, 0.0)
    assert floor == pytest.approx(breakdown.wire_rc + breakdown.flight)
