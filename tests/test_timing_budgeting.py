"""Tests for Procedure 1 delay budgeting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TimingError
from repro.netlist.benchmarks import benchmark_circuit, s27
from repro.netlist.generator import GeneratorSpec, generate_network
from repro.netlist.gates import GateType
from repro.netlist.network import NetworkBuilder
from repro.timing.budgeting import BudgetResult, assign_delay_budgets
from repro.timing.paths import enumerate_critical_paths, node_weight

CYCLE = 1.0 / 300e6


def all_path_sums(network, budgets):
    sums = []
    for path in enumerate_critical_paths(network):
        sums.append(sum(budgets[name] for name in path.gates(network)))
    return sums


@pytest.mark.parametrize("method", ["through", "paths"])
def test_invariant_no_path_exceeds_cycle(method):
    network = s27()
    result = assign_delay_budgets(network, CYCLE, method=method)
    for total in all_path_sums(network, result.budgets):
        assert total <= CYCLE * (1 + 1e-9)


@pytest.mark.parametrize("method", ["through", "paths"])
def test_longest_budget_path_is_exactly_target(method):
    network = s27()
    result = assign_delay_budgets(network, CYCLE, method=method)
    assert result.longest_budget_path(network) == pytest.approx(CYCLE)


def test_every_gate_budgeted_positive():
    network = benchmark_circuit("s298")
    result = assign_delay_budgets(network, CYCLE)
    assert set(result.budgets) == set(network.logic_gates)
    assert all(budget > 0.0 for budget in result.budgets.values())


def test_skew_factor_shrinks_target():
    network = s27()
    full = assign_delay_budgets(network, CYCLE, skew_factor=1.0)
    skewed = assign_delay_budgets(network, CYCLE, skew_factor=0.8)
    assert skewed.effective_cycle_time == pytest.approx(0.8 * CYCLE)
    assert skewed.longest_budget_path(network) \
        == pytest.approx(0.8 * CYCLE)
    assert full.budgets != skewed.budgets


def test_budgets_scale_linearly_with_cycle_time():
    network = s27()
    one = assign_delay_budgets(network, CYCLE)
    two = assign_delay_budgets(network, 2 * CYCLE)
    for name in network.logic_gates:
        assert two.budgets[name] == pytest.approx(2 * one.budgets[name])


def test_through_budgets_proportional_to_fanout_on_critical_path():
    # Along the most critical path, budget / fanout is constant before
    # the slope post-processing; disable it to observe the pure rate.
    network = s27()
    result = assign_delay_budgets(network, CYCLE, method="through",
                                  slope_max=0.0)
    from repro.timing.paths import most_critical_path

    path = most_critical_path(network)
    rates = [result.budgets[name] / node_weight(network, name)
             for name in path.gates(network)]
    for rate in rates:
        assert rate == pytest.approx(rates[0], rel=1e-6)


def test_slope_post_processing_limits_driver_budgets():
    network = benchmark_circuit("s298")
    result = assign_delay_budgets(network, CYCLE, slope_max=0.25,
                                  slope_share=0.6)
    ceiling_ratio = 0.6 / 0.25
    for name in network.logic_gates:
        own = result.budgets[name]
        for fanin in network.gate(name).fanins:
            if fanin in result.budgets:
                assert result.budgets[fanin] \
                    <= ceiling_ratio * own * (1 + 1e-9)


def test_paths_method_reports_enumeration():
    network = s27()
    result = assign_delay_budgets(network, CYCLE, method="paths")
    assert result.paths_processed > 0
    assert result.method == "paths"


def test_paths_method_fallback_on_tiny_cap():
    network = benchmark_circuit("s298")
    result = assign_delay_budgets(network, CYCLE, method="paths",
                                  max_paths=5)
    assert result.fallback_gates  # most gates via the through rate
    for total in all_path_sums(network, result.budgets):
        assert total <= CYCLE * (1 + 1e-9)


def test_dead_gates_get_loose_budgets():
    builder = NetworkBuilder("dead")
    builder.add_input("a")
    builder.add_gate("live1", GateType.NOT, ["a"])
    builder.add_gate("live2", GateType.NOT, ["live1"])
    builder.add_gate("dead", GateType.NOT, ["a"])
    network = builder.build(outputs=["live2"])
    result = assign_delay_budgets(network, CYCLE, slope_max=0.0)
    assert result.budgets["dead"] >= max(result.budgets["live1"],
                                         result.budgets["live2"])


@pytest.mark.parametrize("kwargs", [
    dict(cycle_time=0.0),
    dict(cycle_time=-1.0),
    dict(cycle_time=CYCLE, skew_factor=0.0),
    dict(cycle_time=CYCLE, skew_factor=1.5),
    dict(cycle_time=CYCLE, slope_max=0.9),
    dict(cycle_time=CYCLE, slope_share=1.0),
    dict(cycle_time=CYCLE, method="bogus"),
])
def test_parameter_validation(kwargs):
    with pytest.raises(TimingError):
        assign_delay_budgets(s27(), **kwargs)


@given(seed=st.integers(min_value=0, max_value=300),
       method=st.sampled_from(["through", "paths"]))
@settings(max_examples=20, deadline=None)
def test_invariant_on_random_networks(seed, method):
    spec = GeneratorSpec(name="r", n_inputs=5, n_outputs=4, n_gates=30,
                         depth=5, seed=seed)
    network = generate_network(spec)
    result = assign_delay_budgets(network, CYCLE, method=method)
    for total in all_path_sums(network, result.budgets):
        assert total <= CYCLE * (1 + 1e-9)
    assert result.longest_budget_path(network) == pytest.approx(CYCLE)


def test_unit_criticality_scheme():
    network = s27()
    result = assign_delay_budgets(network, CYCLE, criticality="unit",
                                  slope_max=0.0)
    # With unit weights the most critical path is the deepest one and
    # each of its gates gets an equal share of the cycle.
    for total in all_path_sums(network, result.budgets):
        assert total <= CYCLE * (1 + 1e-9)
    deepest_share = CYCLE / network.depth
    budgets = sorted(result.budgets.values())
    assert budgets[0] == pytest.approx(deepest_share, rel=1e-6)


def test_unknown_criticality_scheme_rejected():
    with pytest.raises(TimingError):
        assign_delay_budgets(s27(), CYCLE, criticality="bogus")
