"""Crash recovery under a real SIGKILL, across daemon processes.

The property, in PR-4 style: SIGKILL the serve daemon mid-solve, at a
seed-varied moment; a restarted daemon must bring every accepted job
to a terminal state, never lose or duplicate one, and produce a
result byte-identical to an uninterrupted run. A resubmission of the
finished request must then be a cache hit that never touches the pool.
"""

import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.obs.metrics import MetricsRegistry
from repro.serve.client import (read_job_status, submit_request,
                                wait_for_reply, wait_for_terminal)
from repro.serve.jobs import TERMINAL_STATES, JobRequest
from repro.serve.service import OptimizationService

#: s298 on a 25x20 grid runs for seconds — a SIGKILL lands mid-solve.
SLOW = dict(circuit="s298", frequency_mhz=100.0, grid_vdd=25, grid_vth=20)


def daemon_env():
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def start_daemon(root, *extra):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(root), *extra],
        env=daemon_env(), start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 30
    daemon_file = Path(root) / "daemon.json"
    while time.monotonic() < deadline:
        if daemon_file.exists() or process.poll() is not None:
            break
        time.sleep(0.05)
    assert process.poll() is None, "serve daemon died during startup"
    return process

def kill_daemon(process):
    """SIGKILL the daemon's whole process group — no cleanup handlers."""
    if process.poll() is None:
        try:
            os.killpg(os.getpgid(process.pid), signal.SIGKILL)
        except ProcessLookupError:
            pass
    process.wait(timeout=10)


def wait_for(predicate, timeout_s=60, what="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out waiting for {what}")


@pytest.mark.slow
def test_sigkill_mid_solve_recovers_and_then_caches(tmp_path):
    root = tmp_path / "serve"
    root.mkdir()

    # The uninterrupted reference, in process: the recovered result
    # must be byte-identical to this one.
    reference = OptimizationService(tmp_path / "ref",
                                    registry=MetricsRegistry())
    ref_job = reference.submit(JobRequest(**SLOW))
    reference.step()
    reference.close()
    ref_bytes = (tmp_path / "ref" / "results"
                 / f"{ref_job.job_id}.json").read_bytes()

    daemon = start_daemon(root)
    try:
        ticket = submit_request(root, JobRequest(**SLOW))
        reply = wait_for_reply(root, ticket, timeout_s=60)
        assert reply["status"] == "accepted"
        job_id = reply["job_id"]

        # Kill only once the solve has both started *and* checkpointed,
        # so the restart genuinely resumes mid-search. The extra delay
        # is seed-varied so reruns kill at different corners.
        checkpoint = root / "checkpoints" / f"{job_id}.ckpt"
        wait_for(lambda: read_job_status(root, job_id) is not None
                 and read_job_status(root, job_id)["state"] == "RUNNING"
                 and checkpoint.exists(),
                 what="job running with a checkpoint")
        time.sleep(random.Random(0).uniform(0.1, 0.6))
        kill_daemon(daemon)

        status = read_job_status(root, job_id)
        assert status["state"] not in TERMINAL_STATES  # died mid-flight
    finally:
        kill_daemon(daemon)

    # Restart: recovery replays the journal, re-enqueues, resumes.
    daemon = start_daemon(root, "--max-jobs", "1", "--max-idle", "30")
    try:
        status = wait_for_terminal(root, job_id, timeout_s=120)
    finally:
        daemon.wait(timeout=60)
        kill_daemon(daemon)
    assert status["state"] == "DONE"
    assert status["detail"]["cached"] is False
    metrics = json.loads((root / "metrics.json").read_text())
    assert metrics["counters"]["serve.jobs.recovered"] >= 1

    # No job lost, none duplicated: exactly one job, terminal.
    statuses = [json.loads(path.read_text())
                for path in (root / "jobs").glob("*.json")]
    assert [s["job_id"] for s in statuses] == [job_id]

    # The resumed result is byte-identical to the uninterrupted run
    # (job ids differ; the payload bytes must not).
    recovered_bytes = (root / "results" / f"{job_id}.json").read_bytes()
    assert recovered_bytes == ref_bytes

    # Resubmission of the identical request: served from the cache,
    # without a solve.
    daemon = start_daemon(root, "--max-jobs", "1", "--max-idle", "30")
    try:
        ticket = submit_request(root, JobRequest(**SLOW))
        reply = wait_for_reply(root, ticket, timeout_s=60)
        resubmitted = wait_for_terminal(root, reply["job_id"],
                                        timeout_s=60)
    finally:
        daemon.wait(timeout=60)
        kill_daemon(daemon)
    assert resubmitted["state"] == "DONE"
    assert resubmitted["detail"]["cached"] is True
    metrics = json.loads((root / "metrics.json").read_text())
    assert metrics["counters"]["serve.cache.hits"] >= 1
    hit_bytes = (root / "results"
                 / f"{reply['job_id']}.json").read_bytes()
    assert hit_bytes == ref_bytes


@pytest.mark.slow
def test_repeated_kills_never_lose_a_job(tmp_path):
    """Two kill/restart rounds at seed-varied delays, then converge."""
    root = tmp_path / "serve"
    root.mkdir()
    rng = random.Random(1)

    daemon = start_daemon(root)
    try:
        ticket = submit_request(root, JobRequest(**SLOW))
        reply = wait_for_reply(root, ticket, timeout_s=60)
        job_id = reply["job_id"]
        wait_for(lambda: (root / "checkpoints"
                          / f"{job_id}.ckpt").exists(),
                 what="first checkpoint flush")
    finally:
        kill_daemon(daemon)

    for _round in range(2):
        daemon = start_daemon(root)
        try:
            time.sleep(rng.uniform(0.2, 1.0))
        finally:
            kill_daemon(daemon)
        status = read_job_status(root, job_id)
        assert status is not None, "job vanished across a crash"

    # ``--max-idle 5``: if a kill landed *after* the solve finished,
    # there is nothing left to run and the daemon must exit on idle.
    daemon = start_daemon(root, "--max-jobs", "1", "--max-idle", "5")
    try:
        status = wait_for_terminal(root, job_id, timeout_s=120)
    finally:
        daemon.wait(timeout=60)
        kill_daemon(daemon)
    assert status["state"] == "DONE"
    statuses = [json.loads(path.read_text())
                for path in (root / "jobs").glob("*.json")]
    assert [s["job_id"] for s in statuses] == [job_id]
