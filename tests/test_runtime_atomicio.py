"""Atomic writes and corruption-detecting JSON reads."""

import json
import os

import pytest

from repro.errors import CheckpointError, OptimizationError
from repro.runtime.atomicio import (
    atomic_write_json,
    atomic_write_text,
    read_json_object,
)


def _tmp_droppings(directory):
    return [name for name in os.listdir(directory) if name.endswith(".tmp")]


class TestAtomicWrite:
    def test_writes_content_and_returns_path(self, tmp_path):
        target = tmp_path / "out.txt"
        returned = atomic_write_text(target, "hello\n")
        assert returned == target
        assert target.read_text() == "hello\n"
        assert _tmp_droppings(tmp_path) == []

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(target, "deep")
        assert target.read_text() == "deep"

    def test_overwrites_existing_file(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_failed_replace_preserves_original(self, tmp_path, monkeypatch):
        target = tmp_path / "out.txt"
        target.write_text("precious")

        def broken_replace(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError, match="disk on fire"):
            atomic_write_text(target, "lost")
        monkeypatch.undo()
        assert target.read_text() == "precious"
        assert _tmp_droppings(tmp_path) == []

    def test_json_roundtrip(self, tmp_path):
        target = tmp_path / "data.json"
        payload = {"b": [1, 2], "a": {"nested": True}}
        atomic_write_json(target, payload)
        assert json.loads(target.read_text()) == payload
        assert target.read_text().endswith("\n")


class TestReadJsonObject:
    def test_reads_an_object(self, tmp_path):
        target = tmp_path / "data.json"
        target.write_text('{"x": 1}')
        assert read_json_object(target) == {"x": 1}

    def test_missing_file(self, tmp_path):
        with pytest.raises(OptimizationError, match="no such file"):
            read_json_object(tmp_path / "absent.json")

    def test_empty_file(self, tmp_path):
        target = tmp_path / "empty.json"
        target.write_text("   \n")
        with pytest.raises(OptimizationError, match="empty file"):
            read_json_object(target)

    def test_truncated_json(self, tmp_path):
        target = tmp_path / "torn.json"
        target.write_text('{"x": 1, "y": [2,')
        with pytest.raises(OptimizationError,
                           match="invalid JSON.*truncated or corrupt"):
            read_json_object(target)

    def test_non_object_payload(self, tmp_path):
        target = tmp_path / "list.json"
        target.write_text("[1, 2, 3]")
        with pytest.raises(OptimizationError, match="expected a JSON object"):
            read_json_object(target)

    def test_custom_error_type(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text("{broken")
        with pytest.raises(CheckpointError, match="invalid JSON"):
            read_json_object(target, error=CheckpointError)
