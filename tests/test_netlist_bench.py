"""Tests for the ISCAS .bench reader/writer."""

import pytest

from repro.errors import BenchParseError
from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.benchmarks import S27_BENCH, s27
from repro.netlist.gates import GateType

SIMPLE = """
# a comment
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
"""


def test_parse_simple():
    network = parse_bench(SIMPLE, name="simple")
    assert network.inputs == ("a", "b")
    assert network.outputs == ("y",)
    assert network.gate("y").gate_type is GateType.NAND


def test_parse_s27_shape():
    network = s27()
    # 3 flip-flops cut -> 4 PIs + 3 pseudo PIs; 1 PO + 3 pseudo POs.
    assert len(network.inputs) == 7
    assert len(network.outputs) == 4
    assert network.gate_count == 10
    assert network.gate("G11").gate_type is GateType.NOR


def test_flipflop_cutting():
    text = """
    INPUT(a)
    OUTPUT(q)
    q = DFF(d)
    d = NOT(a)
    """
    network = parse_bench(text)
    assert "q" in set(network.inputs)  # Q pin became a pseudo input
    assert "d" in set(network.outputs)  # D pin became a pseudo output


def test_duplicate_fanin_collapse():
    text = """
    INPUT(a)
    OUTPUT(x)
    OUTPUT(y)
    x = AND(a, a)
    y = NAND(a, a)
    """
    network = parse_bench(text)
    assert network.gate("x").gate_type is GateType.BUF
    assert network.gate("y").gate_type is GateType.NOT


def test_comments_and_blank_lines_ignored():
    text = "# hi\n\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)  # trailing\n"
    network = parse_bench(text)
    assert network.gate_count == 1


@pytest.mark.parametrize("bad, fragment", [
    ("INPUT(a)\nOUTPUT(y)\ny = NOT()", "no fanins"),
    ("INPUT(a)\nOUTPUT(y)\ny = FROB(a)", "unknown gate"),
    ("INPUT(a)\nwhat is this line", "unrecognized syntax"),
    ("INPUT(a)\nINPUT(a)\nOUTPUT(a)", "declared twice"),
    ("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = NOT(a)", "defined twice"),
    ("INPUT(a)\nOUTPUT(ghost)\nx = NOT(a)", "unknown primary output"),
])
def test_parse_errors(bad, fragment):
    with pytest.raises(BenchParseError, match=fragment):
        parse_bench(bad)


def test_error_carries_line_number():
    try:
        parse_bench("INPUT(a)\nbogus line here\n")
    except BenchParseError as error:
        assert error.line_number == 2
    else:  # pragma: no cover
        pytest.fail("expected BenchParseError")


def test_roundtrip_s27():
    original = s27()
    text = write_bench(original)
    reparsed = parse_bench(text, name="s27rt")
    assert set(reparsed.inputs) == set(original.inputs)
    assert set(reparsed.outputs) == set(original.outputs)
    assert reparsed.gate_count == original.gate_count
    for name in original.logic_gates:
        assert reparsed.gate(name).gate_type is original.gate(name).gate_type
        assert reparsed.gate(name).fanins == original.gate(name).fanins


def test_roundtrip_preserves_evaluation():
    original = parse_bench(SIMPLE, name="simple")
    reparsed = parse_bench(write_bench(original), name="simple2")
    for a in (False, True):
        for b in (False, True):
            assignment = {"a": a, "b": b}
            assert original.evaluate(assignment)["y"] \
                == reparsed.evaluate(assignment)["y"]
