"""Property test: .bench serialization round-trips any generated network."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.benchmarks import benchmark_circuit
from repro.netlist.generator import GeneratorSpec, generate_network


def assert_isomorphic(original, reparsed):
    assert set(reparsed.inputs) == set(original.inputs)
    assert list(reparsed.outputs) == list(original.outputs)
    assert reparsed.gate_count == original.gate_count
    for name in original.logic_gates:
        assert reparsed.gate(name).gate_type is original.gate(name).gate_type
        assert reparsed.gate(name).fanins == original.gate(name).fanins


def assert_functionally_equal(original, reparsed, seed: int,
                              vectors: int = 12):
    rng = random.Random(seed)
    for _ in range(vectors):
        assignment = {name: rng.random() < 0.5 for name in original.inputs}
        expected = original.evaluate(assignment)
        actual = reparsed.evaluate(assignment)
        for output in original.outputs:
            assert actual[output] == expected[output]


@given(seed=st.integers(min_value=0, max_value=5000),
       gates=st.integers(min_value=5, max_value=80),
       depth=st.integers(min_value=2, max_value=7))
@settings(max_examples=20, deadline=None)
def test_generated_networks_roundtrip(seed, gates, depth):
    gates = max(gates, depth)
    spec = GeneratorSpec(name="rt", n_inputs=5, n_outputs=4,
                         n_gates=gates, depth=depth, seed=seed)
    original = generate_network(spec)
    reparsed = parse_bench(write_bench(original), name="rt")
    assert_isomorphic(original, reparsed)
    assert_functionally_equal(original, reparsed, seed)


@pytest.mark.parametrize("circuit", ["s27", "c17", "s298", "s444"])
def test_benchmark_suite_roundtrips(circuit):
    original = benchmark_circuit(circuit)
    reparsed = parse_bench(write_bench(original), name=circuit)
    assert_isomorphic(original, reparsed)
    assert_functionally_equal(original, reparsed, seed=1)
