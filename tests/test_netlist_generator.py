"""Tests for the random-logic generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.netlist.generator import (
    DEFAULT_FANIN_PROBS,
    GeneratorSpec,
    generate_network,
)
from repro.netlist.stats import network_stats
from repro.netlist.validate import lint


def test_exact_gate_count_and_depth():
    spec = GeneratorSpec(name="g", n_inputs=6, n_outputs=4, n_gates=50,
                         depth=6, seed=3)
    network = generate_network(spec)
    assert network.gate_count == 50
    assert network.depth == 6
    assert len(network.inputs) == 6


def test_deterministic_in_seed():
    spec = GeneratorSpec(name="g", n_inputs=6, n_outputs=4, n_gates=40,
                         depth=5, seed=7)
    first = generate_network(spec)
    second = generate_network(spec)
    assert first.topological_order() == second.topological_order()
    for name in first.logic_gates:
        assert first.gate(name).fanins == second.gate(name).fanins


def test_different_seeds_differ():
    base = dict(name="g", n_inputs=6, n_outputs=4, n_gates=40, depth=5)
    first = generate_network(GeneratorSpec(seed=1, **base))
    second = generate_network(GeneratorSpec(seed=2, **base))
    fanins_first = [first.gate(name).fanins for name in first.logic_gates]
    fanins_second = [second.gate(name).fanins for name in second.logic_gates]
    assert fanins_first != fanins_second


def test_no_dangling_logic():
    spec = GeneratorSpec(name="g", n_inputs=8, n_outputs=6, n_gates=80,
                         depth=8, seed=5)
    network = generate_network(spec)
    issues = [issue for issue in lint(network)
              if issue.kind == "dangling-gate"]
    assert issues == []


def test_fanout_skew_increases_max_fanout():
    base = dict(name="g", n_inputs=10, n_outputs=8, n_gates=150, depth=8)
    flat = network_stats(generate_network(
        GeneratorSpec(seed=9, fanout_skew=0.0, **base)))
    skewed = network_stats(generate_network(
        GeneratorSpec(seed=9, fanout_skew=1.5, **base)))
    assert skewed.max_fanout >= flat.max_fanout


@pytest.mark.parametrize("kwargs, fragment", [
    (dict(n_inputs=0, n_outputs=1, n_gates=5, depth=2), "n_inputs"),
    (dict(n_inputs=1, n_outputs=0, n_gates=5, depth=2), "n_outputs"),
    (dict(n_inputs=1, n_outputs=1, n_gates=5, depth=0), "depth"),
    (dict(n_inputs=1, n_outputs=1, n_gates=2, depth=5), "n_gates"),
    (dict(n_inputs=1, n_outputs=1, n_gates=5, depth=2, fanout_skew=-1.0),
     "fanout_skew"),
    (dict(n_inputs=1, n_outputs=1, n_gates=5, depth=2,
          fanin_probs=((2, 0.5),)), "sum to 1"),
])
def test_spec_validation(kwargs, fragment):
    with pytest.raises(NetlistError, match=fragment):
        GeneratorSpec(name="bad", **kwargs)


def test_fanin_distribution_roughly_respected():
    spec = GeneratorSpec(name="g", n_inputs=12, n_outputs=8, n_gates=400,
                         depth=10, seed=13)
    network = generate_network(spec)
    stats = network_stats(network)
    histogram = dict(stats.fanin_histogram)
    # 2-input gates dominate, as specified by DEFAULT_FANIN_PROBS.
    assert histogram.get(2, 0) > histogram.get(4, 0)
    expected_mean = sum(fanin * prob for fanin, prob in DEFAULT_FANIN_PROBS)
    assert stats.mean_fanin == pytest.approx(expected_mean, rel=0.25)


@given(seed=st.integers(min_value=0, max_value=2**31),
       gates=st.integers(min_value=10, max_value=120),
       depth=st.integers(min_value=2, max_value=8))
@settings(max_examples=25, deadline=None)
def test_generated_networks_always_valid(seed, gates, depth):
    if gates < depth:
        gates = depth
    spec = GeneratorSpec(name="h", n_inputs=5, n_outputs=4, n_gates=gates,
                         depth=depth, seed=seed)
    network = generate_network(spec)
    # Construction itself validates acyclicity; check the hard promises.
    assert network.gate_count == gates
    assert network.depth == depth
    assert not [issue for issue in lint(network)
                if issue.kind == "dangling-gate"]
