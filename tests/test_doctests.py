"""Run the doctest examples embedded in docstrings."""

import doctest

import pytest

import repro.analysis.report
import repro.constants
import repro.netlist.gates
import repro.netlist.network
import repro.units

MODULES = [
    repro.units,
    repro.constants,
    repro.netlist.gates,
    repro.netlist.network,
    repro.analysis.report,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[module.__name__ for module in MODULES])
def test_module_doctests(module):
    results = doctest.testmod(module)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0
