"""Tests for CSV export."""

import pytest

from repro.analysis.export import (
    figure_points_to_csv,
    render_csv,
    table1_rows_to_csv,
    table2_rows_to_csv,
    write_csv,
)
from repro.errors import ReproError
from repro.experiments.common import ExperimentConfig
from repro.experiments.figure2a import Figure2aPoint
from repro.experiments.table1 import Table1Row


def test_render_csv_basic():
    text = render_csv(["a", "b"], [[1, "x"], [2, "y"]])
    lines = text.strip().splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == "1,x"


def test_render_csv_provenance():
    text = render_csv(["a"], [[1]], provenance="demo")
    assert text.startswith("# demo (repro ")


def test_render_csv_validates_row_width():
    with pytest.raises(ReproError):
        render_csv(["a", "b"], [[1]])


def test_write_csv_creates_parents(tmp_path):
    path = write_csv(tmp_path / "deep" / "series.csv", ["x"], [[1], [2]])
    assert path.exists()
    assert path.read_text().splitlines()[0] == "x"


def test_table1_csv_shape():
    row = Table1Row(circuit="s298", gates=119, depth=9, activity=0.1,
                    static_energy=1e-19, dynamic_energy=3e-13,
                    critical_delay=3e-9, vdd=2.5)
    text = table1_rows_to_csv([row])
    assert "circuit,gates,depth" in text
    assert "s298,119,9,0.1" in text


def test_table2_csv_shape():
    from repro.experiments.table2 import Table2Row

    row = Table2Row(circuit="s298", activity=0.1, static_energy=1e-14,
                    dynamic_energy=3e-14, critical_delay=3e-9, vdd=0.7,
                    vth=0.14, baseline_total=4e-13)
    text = table2_rows_to_csv([row])
    assert "savings" in text
    assert "s298,0.1" in text


def test_figure_points_csv():
    points = [Figure2aPoint(tolerance=0.0, savings=8.0, vdd=0.7,
                            vth_nominal=0.14),
              Figure2aPoint(tolerance=0.1, savings=6.5, vdd=0.75,
                            vth_nominal=0.145)]
    text = figure_points_to_csv(points, "tolerance", "Figure 2a")
    lines = text.strip().splitlines()
    assert lines[1].startswith("tolerance,")
    assert lines[2].startswith("0.0,")


def test_figure_points_csv_validation():
    with pytest.raises(ReproError):
        figure_points_to_csv([], "x", "p")
    points = [Figure2aPoint(tolerance=0.0, savings=8.0, vdd=0.7,
                            vth_nominal=0.14)]
    with pytest.raises(ReproError, match="unknown x field"):
        figure_points_to_csv(points, "bogus", "p")
