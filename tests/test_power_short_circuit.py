"""Tests for the short-circuit dissipation extension."""

import pytest

from repro.errors import ReproError
from repro.power.energy import total_energy
from repro.power.short_circuit import (
    short_circuit_energy_of_gate,
    total_short_circuit_energy,
    transition_times_from_budgets,
)
from repro.timing.budgeting import assign_delay_budgets

CYCLE = 1.0 / 300e6


def test_zero_below_conduction_window(s27_ctx):
    # Vdd <= 2*Vth: the pull-up and pull-down never conduct together.
    value = short_circuit_energy_of_gate(s27_ctx, "G8", vdd=0.5, vth=0.3,
                                         width=4.0,
                                         input_transition_time=1e-9)
    assert value == 0.0


def test_positive_above_window(s27_ctx):
    value = short_circuit_energy_of_gate(s27_ctx, "G8", vdd=2.0, vth=0.3,
                                         width=4.0,
                                         input_transition_time=1e-9)
    assert value > 0.0


def test_scales_with_transition_time_and_width(s27_ctx):
    base = short_circuit_energy_of_gate(s27_ctx, "G8", 2.0, 0.3, 4.0, 1e-9)
    slower = short_circuit_energy_of_gate(s27_ctx, "G8", 2.0, 0.3, 4.0,
                                          2e-9)
    wider = short_circuit_energy_of_gate(s27_ctx, "G8", 2.0, 0.3, 8.0, 1e-9)
    assert slower == pytest.approx(2 * base)
    assert wider == pytest.approx(2 * base)


def test_zero_transition_time_means_zero(s27_ctx):
    assert short_circuit_energy_of_gate(s27_ctx, "G8", 2.0, 0.3, 4.0,
                                        0.0) == 0.0


def test_validation(s27_ctx):
    with pytest.raises(ReproError):
        short_circuit_energy_of_gate(s27_ctx, "G8", 2.0, 0.3, 4.0, -1.0)
    with pytest.raises(ReproError):
        short_circuit_energy_of_gate(s27_ctx, "G8", 2.0, 0.3, 0.0, 1e-9)


def test_transition_times_from_budgets(s27_ctx):
    budgets = assign_delay_budgets(s27_ctx.network, CYCLE)
    times = transition_times_from_budgets(s27_ctx, budgets.budgets)
    assert set(times) == set(s27_ctx.gates)
    for name, tau in times.items():
        info = s27_ctx.info(name)
        driver_budgets = [budgets.budgets[f] for f in info.fanin_names
                          if f in budgets.budgets]
        if driver_budgets:
            assert tau == pytest.approx(max(driver_budgets))
        else:
            assert tau == 0.0  # fed only by primary inputs


def test_paper_claim_order_of_magnitude_below_switching(s27_ctx):
    # Veendrick [12]: under typical conditions E_sc is an order of
    # magnitude below the switching energy. Check at a conventional
    # corner with budget-bounded transition times.
    budgets = assign_delay_budgets(s27_ctx.network, CYCLE)
    widths = s27_ctx.uniform_widths(4.0)
    times = transition_times_from_budgets(s27_ctx, budgets.budgets)
    sc = total_short_circuit_energy(s27_ctx, 3.3, 0.7, widths, times)
    switching = total_energy(s27_ctx, 3.3, 0.7, widths, 1 / CYCLE).dynamic
    assert 0.0 < sc.total < 0.3 * switching


def test_small_at_joint_optimum(s27_problem, fast_settings):
    # The joint optimum sits near Vdd ~ 2*Vth, where the neglected term
    # nearly vanishes — quantifying why the paper's approximation is safe
    # precisely where it operates.
    from repro.optimize.heuristic import optimize_joint

    result = optimize_joint(s27_problem, settings=fast_settings)
    budgets = s27_problem.budgets()
    times = transition_times_from_budgets(s27_problem.ctx, budgets.budgets)
    sc = total_short_circuit_energy(
        s27_problem.ctx, result.design.vdd, result.design.vth,
        result.design.widths, times)
    assert sc.total < 0.25 * result.energy.dynamic
    assert sc.fraction_of(result.energy.dynamic) == pytest.approx(
        sc.total / result.energy.dynamic)


def test_missing_width_rejected(s27_ctx):
    widths = s27_ctx.uniform_widths(4.0)
    del widths["G8"]
    with pytest.raises(ReproError, match="no width"):
        total_short_circuit_energy(s27_ctx, 2.0, 0.3, widths, {})
