"""Tests for gate semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.netlist.gates import (
    GateType,
    evaluate,
    gate_type_from_name,
    truth_table,
)


@pytest.mark.parametrize("name, expected", [
    ("NAND", GateType.NAND),
    ("nand", GateType.NAND),
    ("Not", GateType.NOT),
    ("INV", GateType.NOT),
    ("BUFF", GateType.BUF),
    ("xnor", GateType.XNOR),
])
def test_gate_type_from_name(name, expected):
    assert gate_type_from_name(name) is expected


def test_unknown_gate_name_rejected():
    with pytest.raises(NetlistError, match="unknown gate function"):
        gate_type_from_name("FROB")


@pytest.mark.parametrize("gate_type, inputs, expected", [
    (GateType.AND, (True, True), True),
    (GateType.AND, (True, False), False),
    (GateType.NAND, (True, True), False),
    (GateType.OR, (False, False), False),
    (GateType.NOR, (False, False), True),
    (GateType.XOR, (True, False, True), False),
    (GateType.XOR, (True, False, False), True),
    (GateType.XNOR, (True, True), True),
    (GateType.NOT, (True,), False),
    (GateType.BUF, (False,), False),
])
def test_evaluate(gate_type, inputs, expected):
    assert evaluate(gate_type, inputs) is expected


def test_evaluate_arity_checks():
    with pytest.raises(NetlistError):
        evaluate(GateType.AND, (True,))
    with pytest.raises(NetlistError):
        evaluate(GateType.NOT, (True, False))
    with pytest.raises(NetlistError):
        evaluate(GateType.INPUT, ())


def test_inverting_property():
    assert GateType.NAND.inverting
    assert GateType.NOR.inverting
    assert GateType.NOT.inverting
    assert not GateType.AND.inverting
    assert not GateType.XOR.inverting


def test_truth_table_nand2():
    table = truth_table(GateType.NAND, 2)
    # index bit i = input i; NAND is False only at (1, 1) = index 3.
    assert table == (True, True, True, False)


def test_truth_table_size():
    assert len(truth_table(GateType.OR, 5)) == 32


def test_truth_table_fanin_cap():
    with pytest.raises(NetlistError):
        truth_table(GateType.AND, 17)


@given(st.sampled_from([GateType.AND, GateType.OR, GateType.NAND,
                        GateType.NOR, GateType.XOR, GateType.XNOR]),
       st.lists(st.booleans(), min_size=2, max_size=6))
@settings(max_examples=200)
def test_demorgan_dualities(gate_type, inputs):
    """NAND = NOT(AND), NOR = NOT(OR), XNOR = NOT(XOR)."""
    duals = {GateType.NAND: GateType.AND, GateType.NOR: GateType.OR,
             GateType.XNOR: GateType.XOR}
    if gate_type in duals:
        assert evaluate(gate_type, inputs) is not evaluate(duals[gate_type],
                                                           inputs)
    else:
        assert evaluate(gate_type, inputs) in (True, False)
