"""Tests for the LogicNetwork DAG."""

import pytest

from repro.errors import NetlistError
from repro.netlist.gates import GateType
from repro.netlist.network import Gate, LogicNetwork, NetworkBuilder


def build_demo() -> LogicNetwork:
    builder = NetworkBuilder("demo")
    builder.add_input("a")
    builder.add_input("b")
    builder.add_input("c")
    builder.add_gate("n1", GateType.NAND, ["a", "b"])
    builder.add_gate("n2", GateType.NOR, ["n1", "c"])
    builder.add_gate("n3", GateType.NOT, ["n1"])
    return builder.build(outputs=["n2", "n3"])


def test_basic_queries():
    network = build_demo()
    assert len(network) == 6
    assert network.gate_count == 3
    assert network.inputs == ("a", "b", "c")
    assert network.outputs == ("n2", "n3")
    assert network.depth == 2
    assert "n1" in network
    assert "zz" not in network


def test_fanouts_and_fanout_count():
    network = build_demo()
    assert set(network.fanouts("n1")) == {"n2", "n3"}
    assert network.fanout_count("n1") == 2
    # Sink-less primary output still counts one boundary load.
    assert network.fanouts("n2") == ()
    assert network.fanout_count("n2") == 1


def test_levels():
    network = build_demo()
    assert network.level("a") == 0
    assert network.level("n1") == 1
    assert network.level("n2") == 2
    levels = network.levels()
    assert set(levels[0]) == {"a", "b", "c"}
    assert set(levels[2]) == {"n2", "n3"}


def test_topological_order_respects_dependencies():
    network = build_demo()
    order = network.topological_order()
    for name in network.logic_gates:
        gate = network.gate(name)
        for fanin in gate.fanins:
            assert order.index(fanin) < order.index(name)


def test_cones():
    network = build_demo()
    assert network.fanin_cone("n2") == {"a", "b", "c", "n1", "n2"}
    assert network.fanout_cone("a") == {"a", "n1", "n2", "n3"}
    assert network.dead_nodes() == ()


def test_evaluate():
    network = build_demo()
    values = network.evaluate({"a": True, "b": True, "c": False})
    assert values["n1"] is False  # NAND(1,1)
    assert values["n2"] is True   # NOR(0,0)
    assert values["n3"] is True   # NOT(0)


def test_evaluate_missing_input():
    with pytest.raises(NetlistError, match="missing value"):
        build_demo().evaluate({"a": True, "b": False})


def test_cycle_detection():
    gates = [
        Gate("a", GateType.INPUT),
        Gate("x", GateType.AND, ("a", "y")),
        Gate("y", GateType.NOT, ("x",)),
    ]
    with pytest.raises(NetlistError, match="cycle"):
        LogicNetwork("cyclic", gates, outputs=["y"])


def test_unknown_fanin_rejected():
    gates = [Gate("a", GateType.INPUT), Gate("x", GateType.NOT, ("ghost",))]
    with pytest.raises(NetlistError, match="unknown net"):
        LogicNetwork("bad", gates, outputs=["x"])


def test_unknown_output_rejected():
    gates = [Gate("a", GateType.INPUT)]
    with pytest.raises(NetlistError, match="unknown primary output"):
        LogicNetwork("bad", gates, outputs=["ghost"])


def test_duplicate_gate_name_rejected():
    builder = NetworkBuilder("dup")
    builder.add_input("a")
    with pytest.raises(NetlistError, match="duplicate"):
        builder.add_input("a")


def test_duplicate_outputs_rejected():
    gates = [Gate("a", GateType.INPUT), Gate("x", GateType.NOT, ("a",))]
    with pytest.raises(NetlistError, match="duplicate primary outputs"):
        LogicNetwork("bad", gates, outputs=["x", "x"])


def test_empty_network_rejected():
    gates = [Gate("x", GateType.INPUT)]
    network = LogicNetwork("ok", gates, outputs=["x"])  # input as output: fine
    assert network.gate_count == 0
    with pytest.raises(NetlistError, match="no nodes"):
        LogicNetwork("bad", [], outputs=[])


def test_no_outputs_rejected():
    gates = [Gate("a", GateType.INPUT), Gate("x", GateType.NOT, ("a",))]
    with pytest.raises(NetlistError, match="no primary outputs"):
        LogicNetwork("bad", gates, outputs=[])


def test_gate_arity_validation():
    with pytest.raises(NetlistError):
        Gate("x", GateType.NOT, ("a", "b"))
    with pytest.raises(NetlistError):
        Gate("x", GateType.AND, ("a",))
    with pytest.raises(NetlistError):
        Gate("x", GateType.AND, ("a", "a"))


def test_dead_node_detection():
    builder = NetworkBuilder("dead")
    builder.add_input("a")
    builder.add_gate("live", GateType.NOT, ["a"])
    builder.add_gate("dead", GateType.NOT, ["a"])
    network = builder.build(outputs=["live"])
    assert network.dead_nodes() == ("dead",)


def test_repr_mentions_shape():
    text = repr(build_demo())
    assert "gates=3" in text and "depth=2" in text
