"""The content-addressed result cache: integrity, quarantine, LRU."""

import os

import pytest

from repro.errors import ReproError
from repro.obs.instrument import (SERVE_CACHE_CORRUPT, SERVE_CACHE_EVICTIONS,
                                  SERVE_CACHE_HITS, SERVE_CACHE_MISSES)
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.serve.cache import ResultCache, corrupt_entry_for_test
from repro.serve.jobs import JobRequest, request_fingerprint


@pytest.fixture()
def registry():
    return MetricsRegistry()


def make_payload(tag="a"):
    return {"summary": {"network": "s27", "total_energy": 1.5e-12},
            "design": {"vdd": 1.1, "tag": tag}, "degraded": False,
            "degradation": None}


class TestHitMiss:
    def test_miss_then_hit(self, tmp_path, registry):
        cache = ResultCache(tmp_path, max_entries=8)
        with use_metrics(registry):
            assert cache.get("0" * 64) is None
            cache.put("0" * 64, {"k": "v"}, make_payload())
            assert cache.get("0" * 64) == make_payload()
        counters = registry.counters()
        assert counters[SERVE_CACHE_MISSES] == 1
        assert counters[SERVE_CACHE_HITS] == 1

    def test_hit_is_value_identical(self, tmp_path, registry):
        cache = ResultCache(tmp_path, max_entries=8)
        payload = make_payload()
        with use_metrics(registry):
            cache.put("1" * 64, {}, payload)
            first = cache.get("1" * 64)
            second = cache.get("1" * 64)
        assert first == second == payload

    def test_real_fingerprint_round_trip(self, tmp_path, registry):
        fingerprint, digest = request_fingerprint(
            JobRequest(circuit="s27", grid_vdd=4, grid_vth=4))
        cache = ResultCache(tmp_path, max_entries=8)
        with use_metrics(registry):
            cache.put(digest, fingerprint, make_payload())
            assert cache.get(digest) == make_payload()


class TestIntegrity:
    def test_tampered_entry_quarantined_never_served(self, tmp_path,
                                                     registry):
        cache = ResultCache(tmp_path, max_entries=8)
        digest = "2" * 64
        with use_metrics(registry):
            cache.put(digest, {}, make_payload())
            corrupt_entry_for_test(tmp_path, digest)
            assert cache.get(digest) is None  # never served
        assert registry.counters()[SERVE_CACHE_CORRUPT] == 1
        assert not (tmp_path / f"{digest}.json").exists()
        assert list((tmp_path / "quarantine").iterdir())

    def test_truncated_entry_quarantined(self, tmp_path, registry):
        cache = ResultCache(tmp_path, max_entries=8)
        digest = "3" * 64
        with use_metrics(registry):
            cache.put(digest, {}, make_payload())
            path = tmp_path / f"{digest}.json"
            path.write_text(path.read_text()[:40])  # torn write
            assert cache.get(digest) is None
        assert registry.counters()[SERVE_CACHE_CORRUPT] == 1

    def test_entry_under_wrong_address_quarantined(self, tmp_path,
                                                   registry):
        cache = ResultCache(tmp_path, max_entries=8)
        with use_metrics(registry):
            cache.put("4" * 64, {}, make_payload())
            os.replace(tmp_path / ("4" * 64 + ".json"),
                       tmp_path / ("5" * 64 + ".json"))
            assert cache.get("5" * 64) is None
        assert registry.counters()[SERVE_CACHE_CORRUPT] == 1

    def test_recompute_after_quarantine_recovers(self, tmp_path, registry):
        cache = ResultCache(tmp_path, max_entries=8)
        digest = "6" * 64
        with use_metrics(registry):
            cache.put(digest, {}, make_payload())
            corrupt_entry_for_test(tmp_path, digest)
            assert cache.get(digest) is None
            cache.put(digest, {}, make_payload())  # the recompute
            assert cache.get(digest) == make_payload()


class TestEviction:
    def test_lru_eviction_respects_cap(self, tmp_path, registry):
        cache = ResultCache(tmp_path, max_entries=3)
        with use_metrics(registry):
            for index in range(5):
                digest = f"{index}" * 64
                cache.put(digest, {}, make_payload(tag=str(index)))
                os.utime(tmp_path / f"{digest}.json",
                         (index, index))  # deterministic LRU order
        assert len(cache) == 3
        assert registry.counters()[SERVE_CACHE_EVICTIONS] == 2

    def test_oldest_entries_evicted_first(self, tmp_path, registry):
        cache = ResultCache(tmp_path, max_entries=2)
        with use_metrics(registry):
            for index in range(3):
                digest = f"{index}" * 64
                cache.put(digest, {}, make_payload(tag=str(index)))
                os.utime(tmp_path / f"{digest}.json", (index, index))
            cache.put("3" * 64, {}, make_payload(tag="3"))
        assert cache.get("0" * 64) is None or True  # "0" was oldest
        surviving = sorted(path.name for path in tmp_path.glob("*.json"))
        assert ("0" * 64 + ".json") not in surviving

    def test_bad_cap_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            ResultCache(tmp_path, max_entries=0)


class TestDigestStability:
    def test_equal_requests_share_an_address(self):
        _fp_a, digest_a = request_fingerprint(
            JobRequest(circuit="s27", grid_vdd=4, grid_vth=4))
        _fp_b, digest_b = request_fingerprint(
            JobRequest(circuit="s27", grid_vdd=4, grid_vth=4))
        assert digest_a == digest_b

    def test_different_knobs_different_address(self):
        base = JobRequest(circuit="s27", grid_vdd=4, grid_vth=4)
        for other in (
            JobRequest(circuit="s298", grid_vdd=4, grid_vth=4),
            JobRequest(circuit="s27", grid_vdd=5, grid_vth=4),
            JobRequest(circuit="s27", grid_vdd=4, grid_vth=4,
                       activity=0.5),
            JobRequest(circuit="s27", grid_vdd=4, grid_vth=4,
                       fallback=True),
            JobRequest(circuit="s27", grid_vdd=4, grid_vth=4, n_vth=2),
        ):
            assert request_fingerprint(base)[1] \
                != request_fingerprint(other)[1]

    def test_strategy_and_seed_change_the_address(self):
        # A cached grid scan must never satisfy an adaptive-sampler
        # request, and seeds/budgets never cross cache slots either.
        grid = JobRequest(circuit="s27", grid_vdd=4, grid_vth=4)
        sampled = JobRequest(circuit="s27", grid_vdd=4, grid_vth=4,
                             strategy="random")
        reseeded = JobRequest(circuit="s27", grid_vdd=4, grid_vth=4,
                              strategy="random", seed=5)
        budgeted = JobRequest(circuit="s27", grid_vdd=4, grid_vth=4,
                              strategy="random", search_budget=8)
        digests = [request_fingerprint(request)[1]
                   for request in (grid, sampled, reseeded, budgeted)]
        assert len(set(digests)) == 4

    def test_seed_is_inert_for_the_exhaustive_grid(self):
        # The grid visits every cell regardless of seed, so equal scans
        # keep sharing a slot across client-side seed defaults.
        assert request_fingerprint(
            JobRequest(circuit="s27", grid_vdd=4, grid_vth=4))[1] \
            == request_fingerprint(
                JobRequest(circuit="s27", grid_vdd=4, grid_vth=4,
                           seed=9))[1]

    def test_priority_and_deadline_do_not_change_the_address(self):
        # Scheduling knobs shape *when* a job runs, never its result.
        plain = JobRequest(circuit="s27", grid_vdd=4, grid_vth=4)
        urgent = JobRequest(circuit="s27", grid_vdd=4, grid_vth=4,
                            priority=9, deadline_s=60.0)
        assert request_fingerprint(plain)[1] \
            == request_fingerprint(urgent)[1]
