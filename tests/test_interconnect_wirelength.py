"""Tests for the Davis wire-length distribution."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.interconnect.rent import RentParameters
from repro.interconnect.wirelength import (
    WireLengthDistribution,
    distribution_for,
)


def test_pmf_normalized():
    distribution = WireLengthDistribution(200)
    assert sum(distribution.pmf) == pytest.approx(1.0)
    assert all(p >= 0.0 for p in distribution.pmf)


def test_support_spans_to_twice_side():
    distribution = WireLengthDistribution(100)
    assert distribution.lengths[0] == 1
    assert distribution.lengths[-1] == 20  # 2 * sqrt(100)


def test_short_wires_dominate():
    # The Davis distribution is heavily weighted toward short wires.
    distribution = WireLengthDistribution(400)
    assert distribution.probability(1) > distribution.probability(10)
    assert distribution.probability(10) > distribution.probability(35)


def test_probability_outside_support_is_zero():
    distribution = WireLengthDistribution(100)
    assert distribution.probability(0) == 0.0
    assert distribution.probability(21) == 0.0


def test_mean_length_reasonable():
    distribution = WireLengthDistribution(150)
    mean = distribution.mean_length()
    assert 1.0 < mean < 15.0


def test_mean_grows_with_rent_exponent():
    low = WireLengthDistribution(400, RentParameters(exponent=0.4))
    high = WireLengthDistribution(400, RentParameters(exponent=0.8))
    assert high.mean_length() > low.mean_length()


def test_quantiles_monotone():
    distribution = WireLengthDistribution(256)
    q25 = distribution.quantile(0.25)
    q50 = distribution.quantile(0.5)
    q99 = distribution.quantile(0.99)
    assert q25 <= q50 <= q99
    with pytest.raises(ReproError):
        distribution.quantile(1.5)


def test_sampling_matches_pmf():
    distribution = WireLengthDistribution(100)
    rng = random.Random(0)
    samples = [distribution.sample(rng) for _ in range(20000)]
    empirical_mean = sum(samples) / len(samples)
    assert empirical_mean == pytest.approx(distribution.mean_length(),
                                           rel=0.05)
    assert min(samples) >= 1
    assert max(samples) <= distribution.lengths[-1]


def test_net_length_sublinear_in_fanout():
    distribution = WireLengthDistribution(150)
    one = distribution.net_length(1)
    four = distribution.net_length(4)
    assert four > one
    assert four < 4 * one  # trunk sharing


def test_net_length_zero_fanout_boundary():
    distribution = WireLengthDistribution(150)
    assert distribution.net_length(0) == pytest.approx(
        distribution.mean_length())


def test_net_length_validation():
    distribution = WireLengthDistribution(150)
    with pytest.raises(ReproError):
        distribution.net_length(-1)
    with pytest.raises(ReproError):
        distribution.net_length(2, sharing=0.0)


def test_degenerate_single_gate():
    distribution = WireLengthDistribution(1)
    assert sum(distribution.pmf) == pytest.approx(1.0)
    assert distribution.mean_length() >= 1.0


def test_distribution_for_is_cached():
    first = distribution_for(100, 4.0, 0.6)
    second = distribution_for(100, 4.0, 0.6)
    assert first is second


@given(st.integers(min_value=1, max_value=5000),
       st.floats(min_value=0.2, max_value=0.85))
@settings(max_examples=60, deadline=None)
def test_pmf_always_normalized(n_gates, exponent):
    distribution = WireLengthDistribution(
        n_gates, RentParameters(exponent=exponent))
    assert sum(distribution.pmf) == pytest.approx(1.0)
    assert distribution.mean_length() >= 1.0
