"""Tests for K-most-critical path enumeration."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TimingError
from repro.netlist.benchmarks import s27
from repro.netlist.gates import GateType
from repro.netlist.generator import GeneratorSpec, generate_network
from repro.netlist.network import NetworkBuilder
from repro.timing.paths import (
    criticality_suffixes,
    criticality_through,
    enumerate_critical_paths,
    most_critical_path,
    node_weight,
)


def diamond():
    builder = NetworkBuilder("diamond")
    builder.add_input("a")
    builder.add_gate("top", GateType.NOT, ["a"])
    builder.add_gate("left", GateType.NOT, ["top"])
    builder.add_gate("right", GateType.NOT, ["top"])
    builder.add_gate("join", GateType.AND, ["left", "right"])
    return builder.build(outputs=["join"])


def brute_force_paths(network):
    """All input→output paths by DFS, with their criticalities."""
    paths = []

    def walk(node, acc_nodes, acc_crit):
        if node in set(network.outputs):
            paths.append((tuple(acc_nodes), acc_crit))
        for sink in network.fanouts(node):
            walk(sink, acc_nodes + [sink],
                 acc_crit + node_weight(network, sink))

    for source in network.inputs:
        walk(source, [source], node_weight(network, source))
    return paths


def test_node_weight():
    network = diamond()
    assert node_weight(network, "a") == 0  # primary input
    assert node_weight(network, "top") == 2
    assert node_weight(network, "join") == 1  # boundary load


def test_diamond_paths():
    network = diamond()
    paths = list(enumerate_critical_paths(network))
    assert len(paths) == 2
    # Both paths have identical criticality 2 + 1 + 1 = 4.
    assert all(path.criticality == 4 for path in paths)
    assert {path.nodes[2] for path in paths} == {"left", "right"}


def test_most_critical_path_s27():
    path = most_critical_path(s27())
    assert path.criticality >= 1
    network = s27()
    assert network.gate(path.source).is_input
    assert path.sink in network.outputs


def test_emission_order_nonincreasing_s27():
    criticalities = [path.criticality
                     for path in enumerate_critical_paths(s27())]
    assert criticalities == sorted(criticalities, reverse=True)


def test_enumeration_matches_brute_force_s27():
    network = s27()
    expected = brute_force_paths(network)
    produced = list(enumerate_critical_paths(network))
    assert len(produced) == len(expected)
    assert {nodes for nodes, _ in expected} \
        == {path.nodes for path in produced}
    expected_crits = sorted((crit for _, crit in expected), reverse=True)
    assert [path.criticality for path in produced] == expected_crits


def test_max_paths_limits_emission():
    network = s27()
    produced = list(enumerate_critical_paths(network, max_paths=3))
    assert len(produced) == 3
    with pytest.raises(TimingError):
        list(enumerate_critical_paths(network, max_paths=-1))


def test_path_gates_drop_inputs():
    network = s27()
    path = most_critical_path(network)
    gates = path.gates(network)
    assert all(not network.gate(name).is_input for name in gates)
    assert len(gates) == len(path) - 1  # exactly one input at the front


def test_suffixes_consistent_with_most_critical_path():
    network = s27()
    suffixes = criticality_suffixes(network)
    best = max(suffixes.get(source, -1) for source in network.inputs)
    assert best == most_critical_path(network).criticality


def test_criticality_through_bounds():
    network = s27()
    through = criticality_through(network)
    best = most_critical_path(network).criticality
    assert max(through.values()) == best
    for name in network.logic_gates:
        assert through[name] >= node_weight(network, name)


def test_dead_gate_excluded_from_paths():
    builder = NetworkBuilder("dead")
    builder.add_input("a")
    builder.add_gate("live", GateType.NOT, ["a"])
    builder.add_gate("dead", GateType.NOT, ["a"])
    network = builder.build(outputs=["live"])
    for path in enumerate_critical_paths(network):
        assert "dead" not in path.nodes
    assert criticality_through(network)["dead"] == -1


def test_output_with_fanout_still_terminates_path():
    builder = NetworkBuilder("tap")
    builder.add_input("a")
    builder.add_gate("mid", GateType.NOT, ["a"])  # also a primary output
    builder.add_gate("end", GateType.NOT, ["mid"])
    network = builder.build(outputs=["mid", "end"])
    paths = {path.nodes for path in enumerate_critical_paths(network)}
    assert ("a", "mid") in paths
    assert ("a", "mid", "end") in paths


@given(st.integers(min_value=0, max_value=100))
@settings(max_examples=15, deadline=None)
def test_enumeration_matches_brute_force_random(seed):
    spec = GeneratorSpec(name="r", n_inputs=4, n_outputs=3, n_gates=18,
                         depth=4, seed=seed)
    network = generate_network(spec)
    expected = brute_force_paths(network)
    produced = list(enumerate_critical_paths(network))
    assert len(produced) == len(expected)
    expected_crits = sorted((crit for _, crit in expected), reverse=True)
    assert [path.criticality for path in produced] == expected_crits


def test_unit_scheme_counts_gates():
    network = s27()
    path = most_critical_path(network, scheme="unit")
    assert path.criticality == len(path.gates(network))
    assert path.criticality == network.depth


def test_unknown_scheme_rejected():
    with pytest.raises(TimingError):
        node_weight(s27(), "G8", scheme="bogus")
