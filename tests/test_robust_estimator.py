"""The counter-seeded Monte-Carlo estimator: determinism, CRN,
quarantine, culling, and deadline behaviour.

The estimator is the statistical core of the robust objective; the
properties here are the ones the search-level invariance tests lean on
(a deterministic, design-independent sample stream) plus the
fault-tolerance contract (quarantine + labeling, never a crash).
"""

import dataclasses
import math

import pytest

from repro.engine import make_engine, use_engine
from repro.errors import DeadlineExceeded, RunCancelled
from repro.optimize.heuristic import optimize_joint
from repro.robust import RobustConfig
from repro.robust.estimator import (MIN_VTH, RobustEstimator,
                                    estimate_design, wilson_interval)
from repro.runtime.controller import RunController
from repro.runtime.faults import FaultInjector, FaultSpec

CONFIG = RobustConfig(samples=20, cull_samples=6, seed=1)


@pytest.fixture(scope="module")
def s27_design(s27_problem, fast_settings):
    return optimize_joint(s27_problem, settings=fast_settings).design


@pytest.fixture(scope="module")
def estimator(s27_problem):
    return RobustEstimator(s27_problem, CONFIG,
                           make_engine(s27_problem, "fast"))


class TestWilsonInterval:
    def test_contains_the_proportion(self):
        for successes, trials in [(0, 8), (4, 8), (8, 8), (37, 40)]:
            low, high = wilson_interval(successes, trials)
            assert 0.0 <= low <= successes / trials <= high <= 1.0

    def test_nonzero_width_at_the_extremes(self):
        # The property the cull stage needs: 8/8 met does not read as
        # a certain 100% yield.
        low, high = wilson_interval(8, 8)
        assert low < 1.0
        low, high = wilson_interval(0, 8)
        assert high > 0.0

    def test_zero_z_degenerates_to_the_proportion(self):
        low, high = wilson_interval(3, 4, z=0.0)
        assert low == high == pytest.approx(0.75)

    def test_no_trials_is_total_ignorance(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_narrows_with_more_trials(self):
        _, high_small = wilson_interval(19, 20)
        _, high_large = wilson_interval(190, 200)
        assert high_large - 0.95 < high_small - 0.95


class TestSampleStream:
    def test_vth_map_is_deterministic(self, estimator):
        assert estimator._vth_map(0.3, 4) == estimator._vth_map(0.3, 4)
        assert estimator._vth_map(0.3, 4) != estimator._vth_map(0.3, 5)

    def test_offsets_are_common_across_designs(self, estimator):
        # Common random numbers: the drawn offsets depend only on
        # (seed, index), never on the design being scored.
        low = estimator._vth_map(0.3, 7)
        high = estimator._vth_map(0.5, 7)
        for gate in estimator.gates:
            assert low[gate] - 0.3 == pytest.approx(high[gate] - 0.5,
                                                    abs=1e-15)

    def test_thresholds_are_clamped(self, estimator):
        clamped = estimator._vth_map(-5.0, 0)
        assert all(value == MIN_VTH for value in clamped.values())

    def test_estimate_is_a_pure_function_of_design_and_config(
            self, s27_problem, s27_design):
        first = estimate_design(s27_problem, s27_design, CONFIG,
                                engine="fast")
        second = estimate_design(s27_problem, s27_design, CONFIG,
                                 engine="fast")
        assert first.to_dict() == second.to_dict()

    def test_seed_changes_the_samples(self, s27_problem, s27_design):
        base = estimate_design(s27_problem, s27_design, CONFIG,
                               engine="fast")
        reseeded = estimate_design(s27_problem, s27_design,
                                   dataclasses.replace(CONFIG, seed=99),
                                   engine="fast")
        assert base.mean != reseeded.mean


class TestEstimates:
    def test_good_design_is_feasible_with_ordered_measures(
            self, s27_problem, s27_design):
        estimate = estimate_design(s27_problem, s27_design, CONFIG,
                                   engine="fast")
        assert estimate.samples_used == CONFIG.samples
        assert estimate.samples_quarantined == 0
        assert not estimate.degraded
        assert estimate.mean <= estimate.p95 <= estimate.cvar
        assert estimate.yield_low <= estimate.timing_yield \
            <= estimate.yield_high
        if estimate.feasible:
            assert estimate.objective == estimate.p95

    def test_hopeless_corner_is_culled_early(self, s27_problem, s27_design):
        # Minimum supply + maximum threshold cannot meet 300 MHz; the
        # two-stage schedule must notice within the cull budget.
        tech = s27_problem.tech
        slow = dataclasses.replace(s27_design, vdd=tech.vdd_min,
                                   vth=tech.vth_max)
        estimate = estimate_design(s27_problem, slow, CONFIG,
                                   engine="fast")
        assert estimate.culled
        assert not estimate.feasible
        assert estimate.objective == math.inf
        assert estimate.samples_used <= CONFIG.cull_samples

    def test_disabling_the_cull_spends_the_full_budget(
            self, s27_problem, s27_design):
        tech = s27_problem.tech
        slow = dataclasses.replace(s27_design, vdd=tech.vdd_min,
                                   vth=tech.vth_max)
        no_cull = dataclasses.replace(CONFIG,
                                      cull_samples=CONFIG.samples)
        estimate = estimate_design(s27_problem, slow, no_cull,
                                   engine="fast")
        assert not estimate.culled
        assert estimate.samples_used == no_cull.samples
        assert estimate.timing_yield < no_cull.yield_target

    def test_guard_band_is_stricter_than_raw_yield(self, s27_problem,
                                                   s27_design):
        # At n=20 with z=1 the Wilson lower bound of 19/20 is ~0.88 —
        # a corner at exactly the raw target must NOT be feasible.
        guarded = estimate_design(s27_problem, s27_design, CONFIG,
                                  engine="fast")
        unguarded = estimate_design(
            s27_problem, s27_design,
            dataclasses.replace(CONFIG, yield_margin_z=0.0),
            engine="fast")
        assert guarded.timing_yield == unguarded.timing_yield
        if guarded.feasible:
            assert unguarded.feasible

    def test_to_dict_is_json_round_trippable(self, s27_problem,
                                             s27_design):
        import json

        estimate = estimate_design(s27_problem, s27_design, CONFIG,
                                   engine="fast")
        payload = estimate.to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestFaultQuarantine:
    """Faults are planted at the scalar model seams, so these tests pin
    the scalar engine (fault call numbers are deterministic there)."""

    def test_transient_fault_quarantines_and_labels(self, s27_problem,
                                                    s27_design):
        config = dataclasses.replace(CONFIG, samples=8, cull_samples=8)
        plan = [FaultSpec(seam="energy", kind="nan", at_call=2, count=3)]
        with use_engine("scalar"), FaultInjector(plan) as injector:
            estimate = estimate_design(s27_problem, s27_design, config,
                                       engine="scalar")
        assert injector.triggered
        assert estimate.samples_quarantined == 3
        assert estimate.samples_used == 5
        assert estimate.degraded
        assert estimate.degradation["samples_quarantined"] == 3

    def test_persistent_fault_is_unusable_but_never_raises(
            self, s27_problem, s27_design):
        config = dataclasses.replace(CONFIG, samples=8, cull_samples=8,
                                     max_failure_fraction=1.0)
        plan = [FaultSpec(seam="energy", kind="nan", count=10 ** 9)]
        with use_engine("scalar"), FaultInjector(plan):
            estimate = estimate_design(s27_problem, s27_design, config,
                                       engine="scalar")
        assert estimate.samples_quarantined == config.samples
        assert estimate.samples_used == 0
        assert not estimate.feasible
        assert estimate.objective == math.inf
        assert estimate.degradation["too_few_samples"] == 0

    def test_failure_fraction_threshold_declares_unusable(
            self, s27_problem, s27_design):
        config = dataclasses.replace(CONFIG, samples=10, cull_samples=10,
                                     max_failure_fraction=0.2)
        plan = [FaultSpec(seam="energy", kind="nan", at_call=1, count=4)]
        with use_engine("scalar"), FaultInjector(plan):
            estimate = estimate_design(s27_problem, s27_design, config,
                                       engine="scalar")
        assert estimate.samples_quarantined == 4
        assert not estimate.feasible
        assert estimate.degradation["failure_fraction"] \
            == pytest.approx(0.4)


class _TickingClock:
    """A clock that advances one second per read: sample ``k``'s
    deadline check sees ``t ~= k``."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestDeadlineAndCancellation:
    def test_partial_on_deadline_returns_labeled_partial(
            self, s27_problem, s27_design):
        controller = RunController(deadline_s=5.0, clock=_TickingClock())
        estimate = estimate_design(s27_problem, s27_design, CONFIG,
                                   engine="fast", controller=controller,
                                   partial_on_deadline=True)
        assert estimate.degraded
        assert estimate.degradation["deadline"] is True
        assert 2 <= estimate.samples_used < CONFIG.samples
        assert estimate.degradation["samples_missing"] > 0

    def test_hot_path_propagates_the_deadline(self, s27_problem,
                                              s27_design):
        controller = RunController(deadline_s=5.0, clock=_TickingClock())
        with pytest.raises(DeadlineExceeded):
            estimate_design(s27_problem, s27_design, CONFIG,
                            engine="fast", controller=controller,
                            partial_on_deadline=False)

    def test_cancellation_always_propagates(self, s27_problem,
                                            s27_design):
        controller = RunController()
        controller.cancel()
        with pytest.raises(RunCancelled):
            estimate_design(s27_problem, s27_design, CONFIG,
                            engine="fast", controller=controller,
                            partial_on_deadline=True)
