"""Strategy fallback: degraded-but-labeled results, never silent ones."""

import dataclasses

import pytest

from repro.errors import (
    DeadlineExceeded,
    FallbackExhaustedError,
    OptimizationError,
)
from repro.optimize.problem import OptimizationProblem, OptimizationResult
from repro.runtime.controller import FakeClock, RunController
from repro.runtime.fallback import (
    RELAX_STAGE,
    DegradedResult,
    FallbackPolicy,
    optimize_with_fallback,
)
from repro.runtime.faults import FaultInjector, FaultSpec
from repro.units import MHZ


class TestFallbackPolicy:
    def test_default_chain(self):
        policy = FallbackPolicy()
        assert policy.chain == ("grid", "paper", RELAX_STAGE)

    def test_empty_chain_rejected(self):
        with pytest.raises(OptimizationError, match="empty"):
            FallbackPolicy(chain=())

    def test_unknown_stage_rejected(self):
        with pytest.raises(OptimizationError, match="unknown fallback"):
            FallbackPolicy(chain=("grid", "prayer"))

    def test_relax_budget_validated(self):
        with pytest.raises(OptimizationError, match="relax_max"):
            FallbackPolicy(relax_max=1.0)
        with pytest.raises(OptimizationError, match="relax_steps"):
            FallbackPolicy(relax_steps=0)


class TestFallbackOutcomes:
    def test_clean_first_stage_returns_plain_result(self, s27_problem,
                                                    fast_settings):
        result = optimize_with_fallback(s27_problem, settings=fast_settings)
        assert isinstance(result, OptimizationResult)
        assert not isinstance(result, DegradedResult)
        assert "degraded" not in result.details

    def test_transient_fault_recovers_via_next_stage(self, s27_problem,
                                                     fast_settings):
        plan = [FaultSpec(seam="energy", kind="exception", at_call=1)]
        with FaultInjector(plan):
            result = optimize_with_fallback(s27_problem,
                                            settings=fast_settings)
        assert isinstance(result, DegradedResult)
        assert result.details["degraded"] is True
        assert result.degradation["stage"] == "paper"
        assert result.degradation["requested_strategy"] == "grid"
        (attempt,) = result.degradation["attempts"]
        assert attempt["stage"] == "grid"
        assert attempt["error"] == "FaultInjectedError"
        assert result.feasible

    def test_infeasible_clock_relaxes_to_nearest_feasible(self, s27_ctx,
                                                          fast_settings):
        # 4000 MHz is just past s27's feasible boundary: the strategies
        # fail with InfeasibleError and the relax stage finds a small
        # cycle-time stretch that works.
        problem = OptimizationProblem(ctx=s27_ctx, frequency=4000 * MHZ)
        result = optimize_with_fallback(problem, settings=fast_settings)
        assert isinstance(result, DegradedResult)
        assert result.degradation["stage"] == RELAX_STAGE
        assert 1.0 < result.degradation["relax_factor"] <= 4.0
        assert result.degradation["relaxed_cycle_time"] == pytest.approx(
            result.degradation["requested_cycle_time"]
            * result.degradation["relax_factor"])
        stages = [attempt["stage"]
                  for attempt in result.degradation["attempts"]]
        assert stages == ["grid", "paper"]
        assert result.feasible  # for the relaxed problem it solved

    def test_exhaustion_raises_with_per_stage_diagnostics(self, s27_ctx,
                                                          fast_settings):
        # 100x past feasible: even a 4x relaxation cannot save it.
        problem = OptimizationProblem(ctx=s27_ctx, frequency=30000 * MHZ)
        with pytest.raises(FallbackExhaustedError) as excinfo:
            optimize_with_fallback(problem, settings=fast_settings)
        stages = [attempt["stage"] for attempt in excinfo.value.attempts]
        assert stages == ["grid", "paper", RELAX_STAGE]
        for attempt in excinfo.value.attempts:
            assert attempt["error"]
            assert attempt["message"]

    def test_persistent_nan_exhausts_with_typed_attempts(self, s27_problem,
                                                         fast_settings):
        policy = FallbackPolicy(chain=("grid", "paper"))
        plan = [FaultSpec(seam="energy", kind="nan", count=10 ** 9)]
        with FaultInjector(plan):
            with pytest.raises(FallbackExhaustedError) as excinfo:
                optimize_with_fallback(s27_problem, settings=fast_settings,
                                       policy=policy)
        assert len(excinfo.value.attempts) == 2

    def test_deadline_is_never_swallowed(self, s27_problem, fast_settings):
        clock = FakeClock()
        controller = RunController(deadline_s=1.0, clock=clock)
        clock.advance(2.0)
        settings = dataclasses.replace(fast_settings, controller=controller)
        with pytest.raises(DeadlineExceeded):
            optimize_with_fallback(s27_problem, settings=settings)

    def test_single_stage_policy_failure_exhausts(self, s27_ctx,
                                                  fast_settings):
        problem = OptimizationProblem(ctx=s27_ctx, frequency=30000 * MHZ)
        policy = FallbackPolicy(chain=("grid",))
        with pytest.raises(FallbackExhaustedError):
            optimize_with_fallback(problem, settings=fast_settings,
                                   policy=policy)
