"""Tests for the experiment drivers (fast subsets of each table/figure)."""

import pytest

from repro.experiments.annealing_compare import (
    format_annealing_comparison,
    run_annealing_comparison,
)
from repro.experiments.common import ExperimentConfig, build_problem
from repro.experiments.figure2a import format_figure2a, run_figure2a
from repro.experiments.figure2b import format_figure2b, run_figure2b
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.optimize.annealing import AnnealingSettings
from repro.optimize.heuristic import HeuristicSettings
from repro.units import MHZ

FAST_CONFIG = ExperimentConfig().with_circuits(("s298",))
FAST_SETTINGS = HeuristicSettings(grid_vdd=9, grid_vth=7, refine_iters=8,
                                  refine_rounds=1)


def test_experiment_config_defaults():
    config = ExperimentConfig()
    assert config.frequency == pytest.approx(300 * MHZ)
    assert config.activities == (0.1, 0.5)
    assert config.baseline_vth == 0.7
    assert "s298" in config.circuits


def test_build_problem_cached():
    first = build_problem("s27", 0.1)
    second = build_problem("s27", 0.1)
    assert first is second


def test_table1_rows_shape():
    rows = run_table1(FAST_CONFIG)
    assert len(rows) == 2  # one circuit x two activities
    for row in rows:
        assert row.circuit == "s298"
        assert row.total_energy == pytest.approx(
            row.static_energy + row.dynamic_energy)
        assert row.critical_delay <= (1.0 / FAST_CONFIG.frequency) * (1 + 1e-9)
        # Fixed 700 mV threshold: leakage is negligible.
        assert row.static_energy < 1e-3 * row.dynamic_energy
    # Higher activity -> more dynamic energy.
    assert rows[1].dynamic_energy > rows[0].dynamic_energy
    text = format_table1(rows)
    assert "s298" in text and "Table 1" in text


def test_table2_savings_shape():
    baseline = run_table1(FAST_CONFIG)
    rows = run_table2(FAST_CONFIG, settings=FAST_SETTINGS,
                      baseline_rows=baseline)
    assert len(rows) == 2
    for row in rows:
        assert row.savings > 3.0          # order-of-magnitude class
        assert row.vdd < 1.6              # low supply at the optimum
        assert row.vth <= 0.30            # 100-300 mV threshold band
        assert 0.03 < row.static_to_dynamic < 10.0
        assert row.critical_delay <= (1.0 / FAST_CONFIG.frequency) * (1 + 1e-9)
    # Paper: savings increase with activity.
    assert rows[1].savings > rows[0].savings
    text = format_table2(rows)
    assert "Savings" in text


def test_figure2a_monotone_decay():
    points = run_figure2a(circuit="s27", tolerances=(0.0, 0.15, 0.3),
                          settings=FAST_SETTINGS)
    savings = [point.savings for point in points]
    assert savings == sorted(savings, reverse=True)
    text = format_figure2a(points, circuit="s27")
    assert "Vth variation" in text


def test_figure2b_savings_grow_then_saturate():
    points = run_figure2b(circuit="s27", slack_factors=(1.0, 2.0, 3.0),
                          settings=FAST_SETTINGS)
    savings = [point.savings for point in points]
    # Growth from the pinned clock, with saturation allowed (leakage
    # integrates over the longer cycle): no point dips below 95 % of the
    # best seen so far, and the relaxed end beats the pinned start.
    assert savings[-1] > savings[0]
    best = savings[0]
    for value in savings[1:]:
        assert value >= 0.95 * best
        best = max(best, value)
    text = format_figure2b(points, circuit="s27")
    assert "slack" in text


def test_annealing_comparison_heuristic_wins():
    rows = run_annealing_comparison(
        circuits=("s27",), heuristic_settings=FAST_SETTINGS,
        annealing_settings=AnnealingSettings(passes=1,
                                             iterations_per_pass=400,
                                             seed=2))
    assert len(rows) == 1
    row = rows[0]
    assert row.annealing_energy is None \
        or row.annealing_energy > row.heuristic_energy
    text = format_annealing_comparison(rows)
    assert "annealing" in text.lower()


def test_runner_main(capsys):
    from repro.experiments import runner

    # Patch in a fast experiment table to exercise the CLI path.
    original = dict(runner._EXPERIMENTS)
    runner._EXPERIMENTS.clear()
    runner._EXPERIMENTS["demo"] = lambda: "DEMO-OUTPUT"
    try:
        assert runner.main(["demo"]) == 0
        captured = capsys.readouterr()
        assert "DEMO-OUTPUT" in captured.out
        assert "regenerated" in captured.out
    finally:
        runner._EXPERIMENTS.clear()
        runner._EXPERIMENTS.update(original)
