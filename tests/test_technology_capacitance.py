"""Tests for the gate capacitance models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TechnologyError
from repro.technology.capacitance import (
    GateCapacitances,
    gate_capacitances,
    output_load,
)
from repro.technology.process import Technology

TECH = Technology.default()


def test_input_cap_includes_complementary_pair():
    caps = gate_capacitances(TECH, 2)
    assert caps.input_cap == pytest.approx(
        (1.0 + TECH.beta_ratio) * TECH.c_gate)


def test_self_cap_grows_with_fanin():
    two = gate_capacitances(TECH, 2).self_cap
    four = gate_capacitances(TECH, 4).self_cap
    assert four - two == pytest.approx(2 * TECH.c_intermediate)


def test_inverter_has_no_intermediate_nodes():
    inv = gate_capacitances(TECH, 1)
    assert inv.self_cap == pytest.approx(
        (1.0 + TECH.beta_ratio) * TECH.c_parasitic)


def test_fanin_must_be_positive():
    with pytest.raises(TechnologyError):
        gate_capacitances(TECH, 0)


def test_output_load_assembly():
    load = output_load(TECH, fanin=2, width=4.0,
                       fanout_widths=[2.0, 3.0], fanout_fanins=[2, 3],
                       wire_cap=5e-15)
    expected = (4.0 * gate_capacitances(TECH, 2).self_cap
                + 5e-15
                + 2.0 * gate_capacitances(TECH, 2).input_cap
                + 3.0 * gate_capacitances(TECH, 3).input_cap)
    assert load == pytest.approx(expected)


def test_output_load_validates_inputs():
    with pytest.raises(TechnologyError):
        output_load(TECH, 2, 1.0, [1.0], [2, 3], 0.0)
    with pytest.raises(TechnologyError):
        output_load(TECH, 2, 1.0, [1.0], [2], -1e-15)


@given(width=st.floats(min_value=1.0, max_value=100.0),
       wire=st.floats(min_value=0.0, max_value=1e-12))
@settings(max_examples=100)
def test_output_load_monotone_in_width_and_wire(width, wire):
    small = output_load(TECH, 2, width, [1.0], [2], wire)
    bigger_width = output_load(TECH, 2, width + 1.0, [1.0], [2], wire)
    bigger_wire = output_load(TECH, 2, width, [1.0], [2], wire + 1e-15)
    assert bigger_width > small
    assert bigger_wire > small
