"""Ablation: stochastic (Davis) wire loads vs a fixed per-fanout load.

DESIGN.md §5: the paper insists on "a complete stochastic wire-length
distribution model" for the interconnect load. This bench re-optimizes
with the naive one-pitch-per-branch model and archives the difference in
the chosen design point and energy — quantifying how much the wire model
matters for the headline numbers.
"""

from repro.activity.profiles import uniform_profile
from repro.analysis.report import format_table
from repro.interconnect.parasitics import WireModel
from repro.netlist.benchmarks import benchmark_circuit
from repro.optimize.heuristic import optimize_joint
from repro.optimize.problem import OptimizationProblem
from repro.technology.process import Technology
from repro.units import MHZ


def optimize_with_model(circuit: str, model: WireModel):
    tech = Technology.default()
    network = benchmark_circuit(circuit)
    profile = uniform_profile(network, probability=0.5, density=0.1)
    problem = OptimizationProblem.build(tech, network, profile,
                                        frequency=300 * MHZ,
                                        wire_model=model)
    return optimize_joint(problem)


def test_wireload_ablation(benchmark, record_artifact):
    rows = []
    for circuit in ("s298", "s444"):
        stochastic = optimize_with_model(circuit, WireModel.STOCHASTIC_MEAN)
        fixed = optimize_with_model(circuit, WireModel.FIXED)
        # Fixed one-pitch loads understate wiring: the optimizer sees a
        # lighter circuit and reports less energy.
        assert fixed.total_energy < stochastic.total_energy
        rows.append([circuit,
                     f"{stochastic.total_energy:.3e}",
                     f"{stochastic.design.vdd:.2f}",
                     f"{fixed.total_energy:.3e}",
                     f"{fixed.design.vdd:.2f}",
                     f"{stochastic.total_energy / fixed.total_energy:.2f}x"])

    benchmark.pedantic(
        lambda: optimize_with_model("s298", WireModel.STOCHASTIC_MEAN),
        rounds=2, iterations=1)
    record_artifact("ablation_wireload", format_table(
        headers=["circuit", "Davis E (J)", "Davis Vdd", "fixed E (J)",
                 "fixed Vdd", "Davis/fixed"],
        rows=rows,
        title="Ablation — stochastic vs fixed wire-load model"))
