"""Bench: search strategies — evaluations and wall time to the optimum.

Runs the exhaustive reference grid (13x11 plus refinement) and the
three adaptive strategies (random, surrogate, hyperband) on s27 and
archives, per strategy, how many model evaluations and how much wall
time it took to reach the optimum, and how far above the reference
grid's energy it landed. This is the evaluations-saved table behind
the 2x parity bar in ``tests/test_search_parity.py`` and the CI
``search-parity`` gate. Results land in ``benchmarks/results/`` and
``BENCH_search.json`` at the repo root.
"""

import shutil
import time
from pathlib import Path

from repro.activity.profiles import uniform_profile
from repro.analysis.report import format_table
from repro.netlist.benchmarks import benchmark_circuit
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.problem import OptimizationProblem
from repro.technology.process import Technology
from repro.units import MHZ

REPO_ROOT = Path(__file__).resolve().parents[1]

CIRCUIT = "s27"
REFERENCE = dict(grid_vdd=13, grid_vth=11, refine_iters=6,
                 refine_rounds=1, engine="fast")
ADAPTIVE = ("random", "surrogate", "hyperband")
BUDGET = 12


def _problem():
    network = benchmark_circuit(CIRCUIT)
    profile = uniform_profile(network, probability=0.5, density=0.1)
    return OptimizationProblem.build(Technology.default(), network,
                                     profile, frequency=300 * MHZ)


def _timed(problem, settings):
    start = time.perf_counter()
    result = optimize_joint(problem, settings=settings)
    return result, time.perf_counter() - start


def test_search_strategies(benchmark, record_artifact, record_json):
    problem = _problem()
    grid, grid_s = _timed(problem, HeuristicSettings(**REFERENCE))

    runs = [("grid", grid, grid_s)]
    for strategy in ADAPTIVE:
        settings = HeuristicSettings(strategy=strategy,
                                     search_budget=BUDGET, **REFERENCE)
        result, wall_s = _timed(problem, settings)
        runs.append((strategy, result, wall_s))

    # The timed unit: one adaptive search end to end.
    benchmark.pedantic(
        lambda: optimize_joint(problem, settings=HeuristicSettings(
            strategy="random", search_budget=BUDGET, **REFERENCE)),
        rounds=1, iterations=1)

    rows = []
    for name, result, wall_s in runs:
        gap = (result.energy.total - grid.energy.total) / grid.energy.total
        saved = grid.evaluations / result.evaluations
        rows.append([name, f"{result.evaluations}", f"{saved:.2f}x",
                     f"{result.energy.total:.4e}", f"{gap:+.2%}",
                     f"{wall_s * 1e3:.0f}"])
    record_artifact("search", format_table(
        headers=["strategy", "evaluations", "saved", "energy (J)",
                 "vs grid", "wall (ms)"],
        rows=rows,
        title=f"Search strategies on {CIRCUIT} "
              f"(reference: {REFERENCE['grid_vdd']}x"
              f"{REFERENCE['grid_vth']} grid)"))
    path = record_json(
        "search",
        results=[
            {"unit": name, "evaluations": result.evaluations,
             "wall_s": wall_s, "best_energy": result.energy.total}
            for name, result, wall_s in runs
        ],
        circuit=CIRCUIT, budget=BUDGET,
        reference_grid=[REFERENCE["grid_vdd"], REFERENCE["grid_vth"]])
    shutil.copyfile(path, REPO_ROOT / "BENCH_search.json")
