"""Ablation: the paper's criticality metric vs Ju–Saleh's original.

DESIGN.md §5: the paper redefines path criticality from Ju–Saleh's gate
count ("unit") to the sum of gate fanouts ("fanout"), so delay budgets
follow the load each gate drives. This bench runs Procedure 1 + 2 under
both metrics and archives the comparison.

**Finding (recorded in EXPERIMENTS.md):** under our transregional delay
model the *unit* metric consistently yields lower energy — uniform
budgets avoid the short-budget physical floors that fanout-proportional
assignment puts on fanout-1 gates sharing paths with high-fanout gates,
letting the supply drop further. We keep the paper's metric as the
default for fidelity; both assignments are STA-verified feasible, so the
gap is a genuine property of the budgeting heuristic, not a modelling
artefact.
"""

from repro.analysis.report import format_table
from repro.experiments.common import build_problem
from repro.optimize.heuristic import optimize_joint


def run_with_criticality(problem, scheme):
    budgets = problem.budgets(criticality=scheme)
    return optimize_joint(problem, budgets=budgets)


def test_criticality_ablation(benchmark, record_artifact):
    rows = []
    for circuit in ("s298", "s444"):
        problem = build_problem(circuit, 0.1)
        fanout = run_with_criticality(problem, "fanout")
        unit = run_with_criticality(problem, "unit")
        assert fanout.feasible and unit.feasible
        ratio = fanout.total_energy / unit.total_energy
        # Sanity band: the two heuristics describe the same physics and
        # must land within a small factor of each other.
        assert 0.2 < ratio < 5.0
        rows.append([circuit, f"{fanout.total_energy:.3e}",
                     f"{fanout.design.vdd:.2f}",
                     f"{unit.total_energy:.3e}",
                     f"{unit.design.vdd:.2f}",
                     f"{ratio:.2f}x"])

    problem = build_problem("s298", 0.1)
    benchmark.pedantic(lambda: run_with_criticality(problem, "fanout"),
                       rounds=2, iterations=1)
    record_artifact("ablation_criticality", format_table(
        headers=["circuit", "fanout-crit E (J)", "fanout Vdd",
                 "unit-crit E (J)", "unit Vdd", "fanout/unit"],
        rows=rows,
        title="Ablation — criticality metric (paper's fanout sum vs "
              "Ju-Saleh gate count; <1x would favour the paper's)"))
