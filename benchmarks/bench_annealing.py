"""Bench: §5 heuristic-vs-annealing comparison.

Timed units: the heuristic and the annealer on the same problem. The
paper's claim — annealing "does not perform as well as the proposed
heuristic" despite a much larger time budget — is asserted on the
regenerated comparison rows.
"""

from repro.experiments.annealing_compare import (
    format_annealing_comparison,
    run_annealing_comparison,
)
from repro.experiments.common import build_problem
from repro.optimize.annealing import AnnealingSettings, optimize_annealing
from repro.optimize.heuristic import optimize_joint

FAST_ANNEAL = AnnealingSettings(passes=1, iterations_per_pass=500, seed=1)


def test_heuristic_runtime(benchmark):
    problem = build_problem("s298", 0.1)
    result = benchmark.pedantic(
        lambda: optimize_joint(problem), rounds=3, iterations=1)
    assert result.feasible


def test_annealing_runtime(benchmark):
    problem = build_problem("s298", 0.1)
    result = benchmark.pedantic(
        lambda: optimize_annealing(problem, settings=FAST_ANNEAL),
        rounds=1, iterations=1)
    assert result.feasible


def test_annealing_comparison_rows(benchmark, record_artifact):
    rows = benchmark.pedantic(
        lambda: run_annealing_comparison(circuits=("s298", "s386")),
        rounds=1, iterations=1)
    for row in rows:
        excess = row.annealing_excess
        assert excess is None or excess > 1.0  # heuristic wins everywhere
    record_artifact("annealing", format_annealing_comparison(rows))
