"""Bench: regenerate Figure 2(a) — savings vs worst-case Vth tolerance.

Timed unit: one variation-aware optimization of s298. The full tolerance
series (0–30 %) is regenerated once and asserted to decay monotonically,
the paper's reported shape.
"""

from repro.experiments.common import build_problem
from repro.experiments.figure2a import (
    DEFAULT_TOLERANCES,
    format_figure2a,
    run_figure2a,
)
from repro.optimize.variation import VariationModel, optimize_with_variation


def test_fig2a_single_point(benchmark):
    problem = build_problem("s298", 0.1)

    result = benchmark.pedantic(
        lambda: optimize_with_variation(problem, VariationModel(0.15)),
        rounds=3, iterations=1)
    assert result.feasible


def test_fig2a_full_series(benchmark, record_artifact):
    points = benchmark.pedantic(
        lambda: run_figure2a(tolerances=DEFAULT_TOLERANCES),
        rounds=1, iterations=1)
    savings = [point.savings for point in points]
    assert savings == sorted(savings, reverse=True)
    assert savings[0] > 5.0          # zero-tolerance savings stay large
    assert savings[-1] > 1.0         # still a win at 30 % tolerance
    record_artifact("figure2a", format_figure2a(points))
