"""Ablation: first-order (Najm) vs exact (ref. [11]) activity estimation.

§4.1 accepts Najm's first-order transition densities, "a first order
approximation to more complex transition density computation algorithms
[11]". This bench quantifies what that approximation costs the headline
numbers: the joint optimization is run with both activity estimators and
the energies compared. Expected shape: Najm's densities are upper bounds
on reconvergent logic, so the first-order optimum reports slightly
*more* energy (both designs are timing-identical — activities do not
enter the delay model).
"""

from repro.activity.profiles import uniform_profile
from repro.analysis.report import format_table
from repro.netlist.benchmarks import benchmark_circuit
from repro.optimize.heuristic import optimize_joint
from repro.optimize.problem import OptimizationProblem
from repro.technology.process import Technology
from repro.units import MHZ


def optimize_with_activity(circuit: str, method: str):
    network = benchmark_circuit(circuit)
    profile = uniform_profile(network, probability=0.5, density=0.1)
    problem = OptimizationProblem.build(Technology.default(), network,
                                        profile, frequency=300 * MHZ,
                                        activity_method=method)
    return optimize_joint(problem)


def test_activity_ablation(benchmark, record_artifact):
    rows = []
    for circuit in ("s27", "s298", "s386"):
        najm = optimize_with_activity(circuit, "najm")
        exact = optimize_with_activity(circuit, "exact")
        ratio = najm.total_energy / exact.total_energy
        # Najm overestimates switching on reconvergent logic; the exact
        # evaluation can only lower (or match) the reported energy.
        assert ratio >= 0.99
        assert ratio < 1.5  # the approximation is mild, as §4.1 assumes
        rows.append([circuit, f"{najm.total_energy:.3e}",
                     f"{exact.total_energy:.3e}", f"{ratio:.3f}x"])

    benchmark.pedantic(lambda: optimize_with_activity("s298", "exact"),
                       rounds=2, iterations=1)
    record_artifact("ablation_activity", format_table(
        headers=["circuit", "Najm E (J)", "exact E (J)", "Najm/exact"],
        rows=rows,
        title="Ablation — first-order vs exact (BDD) activity estimation"))
