"""Bench: n_v > 1 distinct threshold voltages (§2/§4.3 extension).

The paper permits multiple threshold voltages at extra process cost. This
bench regenerates the payoff table for n_v = 1, 2, 3 on s298: energy must
never increase with n_v (more freedom), and the rows are archived.
"""

from repro.analysis.report import format_table
from repro.experiments.common import build_problem
from repro.optimize.continuous_vth import optimize_continuous_vth
from repro.optimize.multivth import optimize_multi_vth
from repro.optimize.problem import OptimizationProblem


def test_multivth_payoff(benchmark, record_artifact):
    base = build_problem("s298", 0.1)

    def sweep():
        results = []
        for n_vth in (1, 2, 3):
            problem = OptimizationProblem(ctx=base.ctx,
                                          frequency=base.frequency,
                                          n_vth=n_vth)
            results.append((n_vth, optimize_multi_vth(problem)))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    energies = [result.total_energy for _, result in results]
    assert energies[1] <= energies[0] * (1 + 1e-9)
    assert energies[2] <= energies[1] * (1 + 1e-6)
    for n_vth, result in results:
        assert result.feasible
        assert len(result.design.distinct_vths()) <= n_vth

    rows = []
    for n_vth, result in results:
        vths = "/".join(f"{vth * 1000:.0f}"
                        for vth in result.design.distinct_vths())
        rows.append([n_vth, f"{result.design.vdd:.2f}", vths,
                     f"{result.total_energy:.3e}",
                     f"{energies[0] / result.total_energy:.3f}x"])
    # The n_v -> infinity bound via per-gate slack reclamation.
    unconstrained = optimize_continuous_vth(base)
    assert unconstrained.gain >= 1.0
    rows.append(["inf (slack reclamation)",
                 f"{float(unconstrained.refined.design.distinct_vdds()[0]):.2f}",
                 f"{len(unconstrained.reclaimed)} gates raised",
                 f"{unconstrained.refined.total_energy:.3e}",
                 f"{energies[0] / unconstrained.refined.total_energy:.3f}x"])
    record_artifact("multivth", format_table(
        headers=["n_vth", "Vdd (V)", "Vth values (mV)", "energy (J)",
                 "gain vs n_vth=1"],
        rows=rows,
        title="Multi-threshold payoff on s298 (300 MHz, a = 0.1)"))
