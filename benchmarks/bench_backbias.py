"""Bench: Figure 1 — static back-bias realization of the chosen Vth.

Figure 1 is a schematic (device cross-section), not a data plot; the
reproducible content is the mapping it implies: natural low-Vth devices
plus a static substrate/n-well reverse bias realize the optimizer's
threshold. This bench regenerates the bias→Vth curve and the biases
needed for the Table 2 optima.
"""

from repro.analysis.report import format_table
from repro.experiments.common import build_problem
from repro.optimize.heuristic import optimize_joint
from repro.technology.backbias import bias_for_target_vth, body_effect_vth
from repro.technology.process import Technology


def test_backbias_curve(benchmark, record_artifact):
    tech = Technology.default()

    def build_curve():
        rows = []
        for tenths in range(0, 31, 3):
            bias = tenths / 10.0
            rows.append([f"{bias:.1f}",
                         f"{body_effect_vth(tech, bias) * 1000:.0f}"])
        return rows

    rows = benchmark.pedantic(build_curve, rounds=5, iterations=10)
    vths = [float(row[1]) for row in rows]
    assert vths == sorted(vths)  # body effect is monotone
    record_artifact("figure1_backbias", format_table(
        headers=["reverse bias (V)", "effective Vth (mV)"],
        rows=rows,
        title="Figure 1 — static back-bias threshold adjustment"))


def test_backbias_realizes_optimizer_choice(benchmark, record_artifact):
    tech = Technology.default()
    rows = []
    results = {}
    results["s298"] = benchmark.pedantic(
        lambda: optimize_joint(build_problem("s298", 0.1)),
        rounds=1, iterations=1)
    results["s386"] = optimize_joint(build_problem("s386", 0.1))
    for circuit in ("s298", "s386"):
        result = results[circuit]
        vth = float(result.design.distinct_vths()[0])
        bias = bias_for_target_vth(tech, vth)
        assert 0.0 <= bias < 3.0  # modest, practical bias
        realized = body_effect_vth(tech, bias)
        assert abs(realized - vth) < 1e-9
        rows.append([circuit, f"{vth * 1000:.0f}", f"{bias:.2f}",
                     f"Vdd + {bias:.2f}"])
    record_artifact("figure1_realization", format_table(
        headers=["circuit", "optimizer Vth (mV)", "V_SUBSTRATE (-V)",
                 "V_NWELL (V)"],
        rows=rows,
        title="Figure 1 — biases realizing the Table 2 thresholds"))
