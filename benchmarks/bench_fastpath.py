"""Bench: the vectorized evaluation engine vs the scalar reference.

Times the full Procedure 2 run under both engines on a mid-size and a
large circuit, asserting identical optima (budget repair runs inside the
vectorized kernel, so the two engines visit the same surface with no
scalar fallback) and archives the speedup. A second bench A/Bs the
engines through the multi-Vth optimizer and the annealing comparator —
the searches that stress per-gate voltage vectors and per-move
measurement — and proves via the ``engine.<name>.evaluations`` counters
that the fast legs never touch the scalar engine.
"""

import time

from repro.activity.profiles import uniform_profile
from repro.analysis.report import format_table
from repro.experiments.common import build_problem
from repro.netlist.benchmarks import benchmark_circuit
from repro.obs.instrument import engine_evaluations_metric
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.optimize.annealing import AnnealingSettings, optimize_annealing
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.multivth import MultiVthSettings, optimize_multi_vth
from repro.optimize.problem import OptimizationProblem
from repro.technology.process import Technology
from repro.units import MHZ

FAST = HeuristicSettings(engine="fast")


def problem_for(circuit: str) -> OptimizationProblem:
    network = benchmark_circuit(circuit)
    profile = uniform_profile(network, probability=0.5, density=0.1)
    frequency = (300 * MHZ) * 11 / max(network.depth, 11)
    return OptimizationProblem.build(Technology.default(), network,
                                     profile, frequency=frequency)


def test_fast_engine_speedup(benchmark, record_artifact, record_json):
    rows = []
    results = []
    for circuit in ("s298", "c1355", "c2670"):
        problem = problem_for(circuit)
        start = time.perf_counter()
        scalar = optimize_joint(problem)
        scalar_seconds = time.perf_counter() - start
        start = time.perf_counter()
        fast = optimize_joint(problem, settings=FAST)
        fast_seconds = time.perf_counter() - start
        assert fast.feasible
        assert abs(fast.total_energy - scalar.total_energy) \
            <= 1e-9 * scalar.total_energy
        rows.append([circuit, problem.network.gate_count,
                     f"{scalar_seconds:.2f}", f"{fast_seconds:.2f}",
                     f"{scalar_seconds / fast_seconds:.2f}x"])
        results.append({"unit": f"{circuit} scalar",
                        "evaluations": scalar.evaluations,
                        "wall_s": scalar_seconds,
                        "best_energy": scalar.total_energy})
        results.append({"unit": f"{circuit} fast",
                        "evaluations": fast.evaluations,
                        "wall_s": fast_seconds,
                        "best_energy": fast.total_energy})

    problem = problem_for("s298")
    benchmark.pedantic(lambda: optimize_joint(problem, settings=FAST),
                       rounds=3, iterations=1)
    record_artifact("fastpath", format_table(
        headers=["circuit", "gates", "scalar (s)", "fast (s)", "speedup"],
        rows=rows,
        title="Vectorized engine vs scalar reference "
              "(identical optima asserted)"))
    record_json("fastpath", results=results)


def _timed(run):
    """(result, wall seconds, engine-evaluation counters) of one leg."""
    registry = MetricsRegistry()
    with use_metrics(registry):
        start = time.perf_counter()
        result = run()
        seconds = time.perf_counter() - start
    counters = {name: registry.counter(engine_evaluations_metric(name))
                for name in ("scalar", "fast")}
    return result, seconds, counters


def test_engine_ab_multivth_and_annealing(benchmark, record_artifact,
                                          record_json):
    """A/B the engines through multivth (c2670) and annealing (s298).

    The fast legs must run end-to-end on the array engine: the
    ``engine.scalar.evaluations`` counter stays at zero (no fallback
    anywhere), and multi-Vth on the largest benchmark must come out
    >= 3x faster at an identical optimum.
    """
    rows = []
    results = []

    base = problem_for("c2670")
    problem = OptimizationProblem(ctx=base.ctx, frequency=base.frequency,
                                  n_vth=2)
    legs = {}
    for engine in ("scalar", "fast"):
        settings = MultiVthSettings(
            single=HeuristicSettings(engine=engine))
        result, seconds, counters = _timed(
            lambda: optimize_multi_vth(problem, settings=settings))
        assert result.feasible
        assert result.details["engine"] == engine
        assert counters[engine] > 0
        other = "fast" if engine == "scalar" else "scalar"
        assert counters[other] == 0, f"{engine} leg leaked {other} evals"
        legs[engine] = (result, seconds)
        results.append({"unit": f"c2670 multivth {engine}",
                        "evaluations": result.evaluations,
                        "wall_s": seconds,
                        "best_energy": result.total_energy,
                        "engine_evaluations": counters})
    scalar_result, scalar_seconds = legs["scalar"]
    fast_result, fast_seconds = legs["fast"]
    assert abs(fast_result.total_energy - scalar_result.total_energy) \
        <= 1e-6 * scalar_result.total_energy
    multivth_speedup = scalar_seconds / fast_seconds
    assert multivth_speedup >= 3.0, (
        f"multi-Vth speedup regressed to {multivth_speedup:.2f}x")
    rows.append(["c2670 multivth", problem.network.gate_count,
                 f"{scalar_seconds:.2f}", f"{fast_seconds:.2f}",
                 f"{multivth_speedup:.2f}x"])

    anneal_problem = problem_for("s298")
    anneal_legs = {}
    for engine in ("scalar", "fast"):
        settings = AnnealingSettings(passes=2, iterations_per_pass=500,
                                     engine=engine, seed=5)
        result, seconds, counters = _timed(
            lambda: optimize_annealing(anneal_problem, settings=settings))
        assert result.feasible
        assert result.details["engine"] == engine
        assert counters[engine] == 2 * 500
        other = "fast" if engine == "scalar" else "scalar"
        assert counters[other] == 0, f"{engine} leg leaked {other} evals"
        anneal_legs[engine] = seconds
        results.append({"unit": f"s298 annealing {engine}",
                        "evaluations": result.evaluations,
                        "wall_s": seconds,
                        "best_energy": result.total_energy,
                        "engine_evaluations": counters})
    rows.append(["s298 annealing", anneal_problem.network.gate_count,
                 f"{anneal_legs['scalar']:.2f}",
                 f"{anneal_legs['fast']:.2f}",
                 f"{anneal_legs['scalar'] / anneal_legs['fast']:.2f}x"])

    benchmark.pedantic(
        lambda: optimize_multi_vth(
            problem, settings=MultiVthSettings(
                single=HeuristicSettings(engine="fast"))),
        rounds=1, iterations=1)
    record_artifact("fastpath_engines", format_table(
        headers=["search", "gates", "scalar (s)", "fast (s)", "speedup"],
        rows=rows,
        title="Engine A/B through multi-Vth and annealing "
              "(zero scalar fallbacks asserted via metrics)"))
    record_json("fastpath_engines", results=results,
                multivth_speedup=multivth_speedup)
