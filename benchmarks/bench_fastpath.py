"""Bench: the vectorized evaluation engine vs the scalar reference.

Times the full Procedure 2 run under both engines on a mid-size and a
large circuit, asserting identical optima (the fast path falls back to
the scalar path only where budget repair is needed, so the search visits
the same surface) and archives the speedup.
"""

import time

from repro.activity.profiles import uniform_profile
from repro.analysis.report import format_table
from repro.experiments.common import build_problem
from repro.netlist.benchmarks import benchmark_circuit
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.problem import OptimizationProblem
from repro.technology.process import Technology
from repro.units import MHZ

FAST = HeuristicSettings(engine="fast")


def problem_for(circuit: str) -> OptimizationProblem:
    network = benchmark_circuit(circuit)
    profile = uniform_profile(network, probability=0.5, density=0.1)
    frequency = (300 * MHZ) * 11 / max(network.depth, 11)
    return OptimizationProblem.build(Technology.default(), network,
                                     profile, frequency=frequency)


def test_fast_engine_speedup(benchmark, record_artifact, record_json):
    rows = []
    results = []
    for circuit in ("s298", "c1355", "c2670"):
        problem = problem_for(circuit)
        start = time.perf_counter()
        scalar = optimize_joint(problem)
        scalar_seconds = time.perf_counter() - start
        start = time.perf_counter()
        fast = optimize_joint(problem, settings=FAST)
        fast_seconds = time.perf_counter() - start
        assert fast.feasible
        assert abs(fast.total_energy - scalar.total_energy) \
            <= 1e-9 * scalar.total_energy
        rows.append([circuit, problem.network.gate_count,
                     f"{scalar_seconds:.2f}", f"{fast_seconds:.2f}",
                     f"{scalar_seconds / fast_seconds:.2f}x"])
        results.append({"unit": f"{circuit} scalar",
                        "evaluations": scalar.evaluations,
                        "wall_s": scalar_seconds,
                        "best_energy": scalar.total_energy})
        results.append({"unit": f"{circuit} fast",
                        "evaluations": fast.evaluations,
                        "wall_s": fast_seconds,
                        "best_energy": fast.total_energy})

    problem = problem_for("s298")
    benchmark.pedantic(lambda: optimize_joint(problem, settings=FAST),
                       rounds=3, iterations=1)
    record_artifact("fastpath", format_table(
        headers=["circuit", "gates", "scalar (s)", "fast (s)", "speedup"],
        rows=rows,
        title="Vectorized engine vs scalar reference "
              "(identical optima asserted)"))
    record_json("fastpath", results=results)
