"""Bench: robust vs nominal vs worst-case under statistical variation.

Regenerates the statistical counterpart of Figure 2(a) on s27 and s298:
for each circuit, the nominal optimum, the worst-case (tolerance-
guarded) optimum and the yield-constrained robust optimum (p95 energy,
see ``repro.robust``), all re-scored under the same fresh-seed
Monte-Carlo sample set. Archives, per leg, the design point, nominal
and p95 energy, the fresh-seed timing yield, and whether the yield
target was met — the acceptance evidence behind the ``robust-
invariance`` CI gate. Results land in ``benchmarks/results/`` and
``BENCH_robust.json`` at the repo root.
"""

import shutil
import time
from pathlib import Path

from repro.experiments.robust_compare import (DEFAULT_CIRCUITS,
                                              format_robust_compare,
                                              run_robust_compare)
from repro.optimize.heuristic import HeuristicSettings
from repro.robust import RobustConfig

REPO_ROOT = Path(__file__).resolve().parents[1]

CONFIG = RobustConfig()  # p95, 95% yield target, 40 samples, z=1 guard
SETTINGS = HeuristicSettings(engine="fast")


def test_robust_compare(benchmark, record_artifact, record_json):
    start = time.perf_counter()
    reports = run_robust_compare(config=None, robust=CONFIG,
                                 settings=SETTINGS)
    wall_s = time.perf_counter() - start

    # The timed unit: one full three-way comparison on s27.
    benchmark.pedantic(
        lambda: run_robust_compare(circuits=("s27",), robust=CONFIG,
                                   settings=SETTINGS),
        rounds=1, iterations=1)

    record_artifact("robust", format_robust_compare(reports))

    results = []
    for report in reports:
        for name, leg in report["legs"].items():
            verification = leg["verification"]
            results.append({
                "unit": f"{report['circuit']}:{name}",
                "evaluations": leg["evaluations"],
                "wall_s": wall_s / (3 * len(reports)),
                "best_energy": leg["nominal_energy"],
                "vdd": leg["vdd"],
                "vth": leg["vth"],
                "p95_energy": verification["p95"],
                "cvar_energy": verification["cvar"],
                "timing_yield": verification["timing_yield"],
                "yield_low": verification["yield_low"],
                "yield_high": verification["yield_high"],
                "meets_yield": leg["meets_yield"],
                "degraded": leg["degraded"],
            })
    path = record_json(
        "robust", results=results,
        circuits=list(DEFAULT_CIRCUITS),
        config=CONFIG.resolved(),
        verify_samples=reports[0]["verify_samples"],
        verify_seed=reports[0]["verify_seed"],
        worst_tolerance=[report["worst_tolerance"] for report in reports],
        wall_s=wall_s)
    shutil.copyfile(path, REPO_ROOT / "BENCH_robust.json")

    # The acceptance bar: the robust design must meet the target yield
    # under fresh-seed verification on every benchmarked circuit.
    for report in reports:
        assert report["legs"]["robust"]["meets_yield"], report["circuit"]
