"""Bench: statistical variation vs Figure 2a's worst case.

Monte-Carlo samples per-gate Gaussian Vth variation around both the
nominal Table 2 optimum and the Figure 2a worst-case-robust design:
the nominal design loses timing yield, the robust design holds ~100 %,
and the robust design's *statistical* energy sits below its worst-case
guarantee — quantifying the pessimism of corner-based design.
"""

from repro.analysis.montecarlo import (
    VariationStatistics,
    worst_case_pessimism,
)
from repro.analysis.report import format_table
from repro.experiments.common import build_problem
from repro.optimize.heuristic import optimize_joint
from repro.optimize.variation import VariationModel, optimize_with_variation

STATS = VariationStatistics(sigma_die=0.012, sigma_within=0.008)


def test_statistical_variation(benchmark, record_artifact):
    problem = build_problem("s298", 0.1)
    nominal = optimize_joint(problem)
    robust = optimize_with_variation(problem, VariationModel(0.20))

    nominal_mc, robust_mc = benchmark.pedantic(
        lambda: worst_case_pessimism(problem, nominal.design,
                                     robust.design, statistics=STATS,
                                     samples=100, seed=3),
        rounds=1, iterations=1)

    assert robust_mc.timing_yield >= nominal_mc.timing_yield
    assert robust_mc.timing_yield > 0.95
    assert robust_mc.energy_percentile(0.5) <= robust.total_energy

    record_artifact("montecarlo_variation", format_table(
        headers=["design", "timing yield", "median E (J)",
                 "p95 E (J)", "worst-case guarantee (J)"],
        rows=[
            ["nominal optimum", f"{nominal_mc.timing_yield * 100:.0f} %",
             f"{nominal_mc.energy_percentile(0.5):.3e}",
             f"{nominal_mc.energy_percentile(0.95):.3e}", "-"],
            ["Fig2a-robust (20%)", f"{robust_mc.timing_yield * 100:.0f} %",
             f"{robust_mc.energy_percentile(0.5):.3e}",
             f"{robust_mc.energy_percentile(0.95):.3e}",
             f"{robust.total_energy:.3e}"],
        ],
        title="Statistical Vth variation on s298 (sigma_die=12mV, "
              "sigma_within=8mV, 100 samples)"))
