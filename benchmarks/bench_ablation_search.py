"""Ablation: grid+refine search vs the paper's steered nested bisection.

DESIGN.md §5: Procedure 2's published search halves the (Vdd, Vth)
ranges based on feasibility/improvement predicates; our default replaces
it with an exhaustive coarse grid plus ternary refinement. This bench
times both and archives the energy gap — the grid must never lose, and
the paper variant must stay within a modest factor (it is a heuristic,
not a global search).
"""

from repro.analysis.report import format_table
from repro.experiments.common import build_problem
from repro.optimize.heuristic import HeuristicSettings, optimize_joint

PAPER = HeuristicSettings(strategy="paper", m_steps=12)


def test_search_strategy_ablation(benchmark, record_artifact):
    rows = []
    for circuit in ("s298", "s386", "s526"):
        problem = build_problem(circuit, 0.1)
        grid = optimize_joint(problem)
        paper = optimize_joint(problem, settings=PAPER)
        assert grid.total_energy <= paper.total_energy * 1.001
        rows.append([circuit,
                     f"{grid.total_energy:.3e}", f"{grid.evaluations}",
                     f"{paper.total_energy:.3e}", f"{paper.evaluations}",
                     f"{paper.total_energy / grid.total_energy:.2f}x"])

    problem = build_problem("s298", 0.1)
    benchmark.pedantic(lambda: optimize_joint(problem, settings=PAPER),
                       rounds=2, iterations=1)
    record_artifact("ablation_search", format_table(
        headers=["circuit", "grid E (J)", "grid evals", "paper E (J)",
                 "paper evals", "paper/grid"],
        rows=rows,
        title="Ablation — Procedure 2 search strategy"))
