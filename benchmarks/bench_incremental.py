"""Bench: the incremental delta-evaluation engine vs full re-evaluation.

Three claims are measured and archived to
``benchmarks/results/incremental.json``:

* A width move (delta re-evaluation: parasitics of the mutated gate and
  its drivers, the downstream arrival cone, the touched energy terms)
  beats a full ``ArrayEngine`` evaluation by at least ``DELTA_FLOOR``x
  on c2670 — that is the evaluation the move replaces.
* Annealing under the incremental engine produces the *identical*
  accepted-move trajectory and final design as under ``"fast"`` (same
  seed), while running faster end to end. The end-to-end ratio is below
  the per-move one because ~30% of proposals are voltage moves, which
  legitimately fall back to a vectorized full refresh.
* The hoisted-parasitics bisection (satellite of the same change) —
  per-cell sizing cost plus the estimated cost the per-step parasitic
  recomputation used to add.

Floors are only asserted on hosts with enough cores to time reliably;
the identity contracts are asserted everywhere.
"""

import os
import random
import time

from repro.engine import make_engine
from repro.engine.incremental import IncrementalEngine
from repro.experiments.common import build_problem
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.optimize.annealing import AnnealingSettings, optimize_annealing
from repro.optimize.width_search import _fixed_and_external
from repro.units import MHZ

#: Floor on (full evaluation time) / (width-move delta time) on c2670.
DELTA_FLOOR = 3.0
#: Floor on the end-to-end annealing speedup (mixed move types).
ANNEAL_FLOOR = 1.5
MOVES = 400
PASSES = 2
ITERATIONS = 300

#: (circuit, activity, frequency) — c2670 needs a relaxed clock to give
#: the annealer a feasible starting region.
CIRCUITS = (("s298", 0.1, 300 * MHZ), ("c2670", 0.1, 60 * MHZ))


def _cores() -> int:
    return os.cpu_count() or 1


def _timed(run):
    start = time.perf_counter()
    result = run()
    return result, time.perf_counter() - start


def test_delta_move_vs_full_eval(benchmark, record_artifact, record_json):
    results = []
    lines = [f"Incremental delta evaluation on {_cores()} core(s); "
             f"identical trajectories asserted", ""]

    # --- per-move microbenchmark (c2670) ---------------------------------
    problem = build_problem("c2670", 0.1, frequency=60 * MHZ)
    engine = IncrementalEngine(problem)
    fast = make_engine(problem, "fast")
    gates = list(problem.ctx.gates)
    rng = random.Random(1)
    widths = {name: 10.0 for name in gates}
    engine.begin(1.8, 0.3, widths)
    tech = problem.tech

    def width_moves():
        for _ in range(MOVES):
            name = gates[rng.randrange(len(gates))]
            engine.apply_move(
                name, rng.uniform(tech.width_min, tech.width_max))

    _, moves_s = _timed(width_moves)
    vector = engine.widths_vector(widths)
    _, full_s = _timed(lambda: [fast.measure(1.8, 0.3, vector)
                                for _ in range(100)])
    move_ms = moves_s / MOVES * 1e3
    full_ms = full_s / 100 * 1e3
    delta_speedup = full_ms / move_ms
    mean_cone = engine.cone_gates / engine.moves
    n = engine.arrays.n_gates
    lines.append(
        f"c2670 ({n} gates): width move {move_ms:.3f} ms "
        f"(mean cone {mean_cone:.0f} gates) vs full eval {full_ms:.3f} ms "
        f"= {delta_speedup:.2f}x")
    results.append({"unit": "c2670 width move", "evaluations": MOVES,
                    "wall_s": moves_s, "best_energy": None,
                    "per_move_ms": move_ms, "mean_cone_gates": mean_cone})
    results.append({"unit": "c2670 full eval", "evaluations": 100,
                    "wall_s": full_s, "best_energy": None,
                    "per_move_ms": full_ms})
    if _cores() >= 2:
        assert delta_speedup >= DELTA_FLOOR, \
            f"delta move only {delta_speedup:.2f}x faster than full eval"

    # --- end-to-end annealing: identity + speedup ------------------------
    anneal_speedups = {}
    for circuit, activity, frequency in CIRCUITS:
        problem = build_problem(circuit, activity, frequency=frequency)
        runs = {}
        for engine_name in ("fast", "incremental"):
            settings = AnnealingSettings(
                passes=PASSES, iterations_per_pass=ITERATIONS, seed=3,
                engine=engine_name)
            registry = MetricsRegistry()
            with use_metrics(registry):
                result, wall_s = _timed(
                    lambda: optimize_annealing(problem, settings=settings))
            runs[engine_name] = (result, wall_s, registry)

        fast_result, fast_s, _ = runs["fast"]
        delta_result, delta_s, registry = runs["incremental"]
        assert delta_result.details["trajectory"] \
            == fast_result.details["trajectory"]
        assert delta_result.details["accepts_per_pass"] \
            == fast_result.details["accepts_per_pass"]
        assert delta_result.design.vdd == fast_result.design.vdd
        assert delta_result.design.vth == fast_result.design.vth
        assert delta_result.design.widths == fast_result.design.widths
        assert delta_result.energy.total == fast_result.energy.total

        total_moves = PASSES * ITERATIONS
        cone = registry.counter("engine.incremental.cone_gates")
        applied = max(registry.counter("engine.incremental.moves"), 1)
        speedup = fast_s / delta_s
        anneal_speedups[circuit] = speedup
        lines.append(
            f"{circuit} annealing ({total_moves} moves): fast "
            f"{fast_s / total_moves * 1e3:.3f} ms/move, incremental "
            f"{delta_s / total_moves * 1e3:.3f} ms/move = {speedup:.2f}x "
            f"(mean cone {cone / applied:.0f} gates, trajectory identical)")
        for engine_name, (result, wall_s, _) in runs.items():
            results.append({
                "unit": f"{circuit} annealing {engine_name}",
                "evaluations": result.evaluations, "wall_s": wall_s,
                "best_energy": result.energy.total,
                "per_move_ms": wall_s / total_moves * 1e3,
                "trajectory": result.details["trajectory"],
                "mean_cone_gates": (cone / applied
                                    if engine_name == "incremental"
                                    else None)})
    if _cores() >= 2:
        assert anneal_speedups["c2670"] >= ANNEAL_FLOOR

    # --- hoisted-parasitics bisection (satellite) ------------------------
    problem = build_problem("s298", 0.1)
    evaluator = problem.evaluator(engine="scalar", width_method="bisect",
                                  bisect_steps=24)
    cells = [(2.5, 0.3), (2.0, 0.25), (1.6, 0.2), (2.8, 0.35)]
    _, bisect_s = _timed(lambda: [evaluator(vdd, vth) for vdd, vth in cells])
    per_cell_ms = bisect_s / len(cells) * 1e3
    ctx = problem.ctx
    names = list(ctx.gates)
    flat = {name: 10.0 for name in names}
    _, pass_s = _timed(lambda: [_fixed_and_external(ctx, name, flat)
                                for name in names])
    # The pre-hoist solver recomputed the parasitics inside every
    # bisection step (~steps + 2 delay evaluations per gate) instead of
    # once per gate; that recomputation alone cost about:
    saved_ms = pass_s * (24 + 1) * 1e3
    lines.append(
        f"s298 bisect sizing: {per_cell_ms:.1f} ms/cell with hoisted "
        f"parasitics (per-step recomputation would add "
        f"~{saved_ms:.1f} ms/cell)")
    results.append({"unit": "s298 bisect cell", "evaluations": len(cells),
                    "wall_s": bisect_s, "best_energy": None,
                    "per_cell_ms": per_cell_ms,
                    "estimated_unhoisted_extra_ms": saved_ms})

    benchmark.pedantic(
        lambda: engine.apply_move(gates[0], 9.0), rounds=1, iterations=1)
    record_artifact("incremental", "\n".join(lines))
    record_json("incremental", results=results, cores=_cores(),
                delta_speedup=delta_speedup,
                anneal_speedups=anneal_speedups,
                delta_floor=DELTA_FLOOR, anneal_floor=ANNEAL_FLOOR)
