"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures, prints it (run
with ``-s`` to see it live) and archives the text under
``benchmarks/results/`` so EXPERIMENTS.md can reference concrete runs.
Benches use ``benchmark.pedantic(..., rounds=1)``: the interesting number
is the one-shot wall time of regenerating the artifact (the paper quotes
5–20 s per circuit), not a statistical distribution.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.serialize import json_sanitize

RESULTS_DIR = Path(__file__).parent / "results"

#: Schema marker of the machine-readable bench results.
RESULT_SCHEMA = "repro-bench-result/1"


@pytest.fixture(scope="session")
def record_artifact():
    """Print a regenerated artifact and archive it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


@pytest.fixture(scope="session")
def record_json():
    """Archive a machine-readable bench result under results/.

    Stable schema (``repro-bench-result/1``): a ``results`` list whose
    entries carry at least ``evaluations``, ``wall_s`` and
    ``best_energy`` per timed unit, sanitized to strict JSON so
    downstream tooling can diff runs across commits.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, results: list, **extra) -> Path:
        document = {"schema": RESULT_SCHEMA, "bench": name,
                    "results": json_sanitize(results),
                    **json_sanitize(extra)}
        path = RESULTS_DIR / f"{name}.json"
        path.write_text(json.dumps(document, sort_keys=True,
                                   allow_nan=False, indent=2) + "\n")
        return path

    return _record
