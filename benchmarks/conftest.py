"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures, prints it (run
with ``-s`` to see it live) and archives the text under
``benchmarks/results/`` so EXPERIMENTS.md can reference concrete runs.
Benches use ``benchmark.pedantic(..., rounds=1)``: the interesting number
is the one-shot wall time of regenerating the artifact (the paper quotes
5–20 s per circuit), not a statistical distribution.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_artifact():
    """Print a regenerated artifact and archive it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record
