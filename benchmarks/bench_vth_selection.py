"""Bench: §1 use case — selecting the process threshold voltage.

"In determining the threshold voltage for a process being developed for
future applications, one may use the algorithms on existing benchmarks
... to find the most desirable threshold voltage."

Timed unit: the recommendation over a 4-circuit suite on the default and
a scaled deck; the recommendation must fall in the paper's 100–300 mV
band and the per-circuit spread must be small (the choice is robust).
"""

from repro.analysis.report import format_table
from repro.analysis.technology_selection import recommend_threshold
from repro.technology.process import Technology
from repro.units import MHZ

SUITE = ("s27", "s298", "s386", "s526")


def test_vth_recommendation(benchmark, record_artifact):
    tech = Technology.default()

    recommendation = benchmark.pedantic(
        lambda: recommend_threshold(tech, SUITE, frequency=300 * MHZ),
        rounds=1, iterations=1)

    assert 0.095 <= recommendation.recommended_vth <= 0.30
    assert recommendation.vth_spread < 0.10
    assert recommendation.infeasible == ()

    rows = [[name, f"{vth * 1000:.0f}", f"{vdd:.2f}", f"{energy:.3e}"]
            for name, vth, vdd, energy in recommendation.per_circuit]
    rows.append(["RECOMMENDED",
                 f"{recommendation.recommended_vth * 1000:.0f}", "-", "-"])
    record_artifact("vth_selection", format_table(
        headers=["circuit", "Vth (mV)", "Vdd (V)", "energy (J)"],
        rows=rows,
        title="§1 — process Vth selection over the benchmark suite"))
