"""Bench: regenerate Figure 2(b) — savings vs cycle-time slack.

Timed unit: the joint optimization of s298 at one relaxed clock. The full
slack series (1x–3x) is regenerated once; the paper's shape — savings
rising from the pinned clock toward the ~25x headline, saturating as
leakage integrates over the longer cycle — is asserted.
"""

from repro.experiments.common import build_problem
from repro.experiments.figure2b import (
    DEFAULT_SLACKS,
    format_figure2b,
    run_figure2b,
)
from repro.optimize.heuristic import optimize_joint
from repro.optimize.problem import OptimizationProblem


def test_fig2b_single_point(benchmark):
    problem = build_problem("s298", 0.1)
    relaxed = OptimizationProblem(ctx=problem.ctx,
                                  frequency=problem.frequency / 2.0)

    result = benchmark.pedantic(
        lambda: optimize_joint(relaxed), rounds=3, iterations=1)
    assert result.feasible


def test_fig2b_full_series(benchmark, record_artifact):
    points = benchmark.pedantic(
        lambda: run_figure2b(slack_factors=DEFAULT_SLACKS),
        rounds=1, iterations=1)
    savings = [point.savings for point in points]
    assert savings[-1] > savings[0]
    assert max(savings) > 15.0  # toward the paper's "typically 25x"
    best = savings[0]
    for value in savings[1:]:
        assert value >= 0.95 * best  # saturation allowed, collapse is not
        best = max(best, value)
    record_artifact("figure2b", format_figure2b(points))
