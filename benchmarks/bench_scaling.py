"""Bench: optimizer runtime scaling (the paper's "the algorithm is fast").

§4.3 argues the nested search costs ``O(M^3)`` circuit evaluations —
"many orders of magnitude lower than the complexity of any direct or
random search" — and §5 reports 5–20 s per circuit on 1997 hardware.
This bench measures the wall time of the full Procedure 1 + 2 flow over
the ISCAS'85-like suite (160 → 2307 gates) and asserts near-linear
growth in the gate count (each objective evaluation is O(N); the number
of evaluations is size-independent).
"""

import time

from repro.activity.profiles import uniform_profile
from repro.analysis.report import format_table
from repro.netlist.benchmarks import benchmark_circuit
from repro.optimize.heuristic import optimize_joint
from repro.optimize.problem import OptimizationProblem
from repro.technology.process import Technology
from repro.units import MHZ

#: Deep circuits cannot make 300 MHz; scale the clock with the depth so
#: the whole suite optimizes at a feasible (depth-proportional) period.
CIRCUITS = ("c432", "c499", "c880", "c1355", "c2670", "c5315")


def run_circuit(name: str):
    network = benchmark_circuit(name)
    profile = uniform_profile(network, probability=0.5, density=0.1)
    frequency = (300 * MHZ) * 11 / max(network.depth, 11)
    problem = OptimizationProblem.build(Technology.default(), network,
                                        profile, frequency=frequency)
    return network, optimize_joint(problem)


def test_runtime_scaling(benchmark, record_artifact):
    rows = []
    samples = []
    for name in CIRCUITS:
        start = time.perf_counter()
        network, result = run_circuit(name)
        elapsed = time.perf_counter() - start
        assert result.feasible, name
        samples.append((network.gate_count, elapsed))
        rows.append([name, network.gate_count, network.depth,
                     f"{elapsed:.2f}",
                     f"{1e6 * elapsed / network.gate_count:.0f}"])

    # Near-linear scaling: time-per-gate of the largest circuit within
    # 6x of the smallest (allows cache effects and depth differences).
    per_gate = [elapsed / gates for gates, elapsed in samples]
    assert max(per_gate) < 6.0 * min(per_gate)

    benchmark.pedantic(lambda: run_circuit("c880"), rounds=1, iterations=1)
    record_artifact("runtime_scaling", format_table(
        headers=["circuit", "gates", "depth", "wall time (s)",
                 "us per gate"],
        rows=rows,
        title="Optimizer runtime scaling (full Procedure 1 + 2 per "
              "circuit; paper reports 5-20 s on 1997 hardware)"))
