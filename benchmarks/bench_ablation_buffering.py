"""Ablation: does fanout buffering help the paper's flow?

High-fanout nets stress the fanout-proportional budgeting and the
input-slope coupling; a buffer tree trades extra gates (more leakage,
more switched capacitance) for decoupled, lighter nets. This bench
re-runs the joint optimization on buffered variants of the widest-net
circuits and archives the verdict — **negative on this deck**: wire loads
are light enough that the added buffers cost more than they decouple.
"""

from repro.activity.profiles import uniform_profile
from repro.analysis.report import format_table
from repro.netlist.benchmarks import benchmark_circuit
from repro.netlist.buffering import buffer_high_fanout, max_internal_fanout
from repro.optimize.heuristic import optimize_joint
from repro.optimize.problem import OptimizationProblem
from repro.technology.process import Technology
from repro.units import MHZ


def optimize_network(network):
    profile = uniform_profile(network, probability=0.5, density=0.1)
    problem = OptimizationProblem.build(Technology.default(), network,
                                        profile, frequency=300 * MHZ)
    return optimize_joint(problem)


def test_buffering_ablation(benchmark, record_artifact):
    rows = []
    for circuit in ("s400", "s298"):
        original = benchmark_circuit(circuit)
        buffered = buffer_high_fanout(original, max_fanout=5)
        base = optimize_network(original)
        transformed = optimize_network(buffered)
        assert base.feasible and transformed.feasible
        ratio = transformed.total_energy / base.total_energy
        # The transform is a trade, not a free lunch — and in this
        # light-wire deck it loses (~1.8-2x): the added buffers' switched
        # capacitance and leakage outweigh the decoupling. Negative
        # result, recorded. Sanity band only:
        assert 0.4 < ratio < 2.5
        rows.append([circuit,
                     str(max_internal_fanout(original)),
                     f"{base.total_energy:.3e}",
                     str(buffered.gate_count - original.gate_count),
                     f"{transformed.total_energy:.3e}",
                     f"{ratio:.2f}x"])

    original = benchmark_circuit("s400")
    benchmark.pedantic(lambda: buffer_high_fanout(original, max_fanout=5),
                       rounds=5, iterations=2)
    record_artifact("ablation_buffering", format_table(
        headers=["circuit", "max fanout", "original E (J)",
                 "buffers added", "buffered E (J)", "buffered/original"],
        rows=rows,
        title="Ablation — fanout buffering before the joint optimization"))
