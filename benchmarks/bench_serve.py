"""Bench: serving latency — cold solve vs cache hit vs crash recovery.

Times the three paths a job can take through the optimization service:
a cold solve (queue → pool → result), a content-addressed cache hit
for the identical request (which must skip the pool entirely and be
far cheaper than the solve), and a crash recovery (journal replay plus
a checkpoint-resumed solve). Archives the numbers to
``benchmarks/results/serve.json`` and ``BENCH_serve.json`` at the
repo root.
"""

import json
import shutil
import time
from pathlib import Path

from repro.analysis.report import format_table
from repro.errors import DeadlineExceeded
from repro.obs.metrics import MetricsRegistry
from repro.optimize.heuristic import optimize_joint
from repro.runtime.controller import RunController, use_controller
from repro.serve.jobs import JobRequest, problem_for, settings_for
from repro.serve.service import OptimizationService

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The served request: s27 on the default 15x13 grid with refinement —
#: a few hundred milliseconds of genuine solve to amortize against.
REQUEST = dict(circuit="s27", frequency_mhz=1000.0)


def _timed(run):
    start = time.perf_counter()
    result = run()
    return result, time.perf_counter() - start


def test_serve_latency(benchmark, tmp_path, record_artifact, record_json):
    request = JobRequest(**REQUEST)
    service = OptimizationService(tmp_path / "serve",
                                  registry=MetricsRegistry())

    cold_job = service.submit(request)
    _, cold_s = _timed(service.step)
    assert cold_job.state == "DONE"
    payload = json.loads(
        (service.root / "results"
         / f"{cold_job.job_id}.json").read_text())
    evaluations = payload["summary"]["evaluations"]
    energy = payload["summary"]["total_energy"]

    hit_job = service.submit(request)
    _, hit_s = _timed(service.step)
    assert hit_job.detail["cached"] is True
    assert hit_s < cold_s, \
        f"cache hit ({hit_s:.3f}s) not cheaper than the solve " \
        f"({cold_s:.3f}s)"
    service.close()

    # Crash recovery: a half-finished solve (deadline-bounded so it
    # flushes a partial checkpoint), a job stuck RUNNING in the
    # journal, then replay + checkpoint-resumed completion.
    crash_root = tmp_path / "crash"
    crashed = OptimizationService(crash_root, registry=MetricsRegistry())
    crash_job = crashed.submit(request)
    checkpoint = crash_root / "checkpoints" / f"{crash_job.job_id}.ckpt"
    with use_controller(RunController(deadline_s=max(0.05,
                                                     0.4 * cold_s))):
        try:
            optimize_joint(problem_for(request), settings_for(request),
                           resume_from=checkpoint)
        except DeadlineExceeded:
            pass
    assert checkpoint.exists(), "no checkpoint flushed before the crash"
    crashed._transition(crash_job, "RUNNING", {})
    crashed.close()

    revived, replay_s = _timed(
        lambda: OptimizationService(crash_root,
                                    registry=MetricsRegistry()))
    _, resume_s = _timed(revived.step)
    survivor = revived.jobs[crash_job.job_id]
    assert survivor.state == "DONE"
    assert (crash_root / "results"
            / f"{crash_job.job_id}.json").read_bytes() \
        == (service.root / "results"
            / f"{cold_job.job_id}.json").read_bytes()
    revived.close()

    # The timed unit: one cache-hit round trip, submit to terminal.
    with OptimizationService(tmp_path / "serve",
                             registry=MetricsRegistry()) as again:
        benchmark.pedantic(
            lambda: (again.submit(request), again.step()),
            rounds=1, iterations=1)

    rows = [["cold solve", f"{cold_s * 1e3:.1f}"],
            ["cache hit", f"{hit_s * 1e3:.1f}"],
            ["recovery: journal replay", f"{replay_s * 1e3:.1f}"],
            ["recovery: resumed solve", f"{resume_s * 1e3:.1f}"]]
    record_artifact("serve", format_table(
        headers=["path", "latency (ms)"], rows=rows,
        title=f"Serving latency for {request.circuit} "
              f"({evaluations} evaluations when solving)"))
    path = record_json(
        "serve",
        results=[
            {"unit": "cold", "evaluations": evaluations,
             "wall_s": cold_s, "best_energy": energy},
            {"unit": "cache_hit", "evaluations": 0, "wall_s": hit_s,
             "best_energy": energy},
            {"unit": "recovery_replay", "evaluations": 0,
             "wall_s": replay_s, "best_energy": energy},
            {"unit": "recovery_resume", "evaluations": evaluations,
             "wall_s": resume_s, "best_energy": energy},
        ],
        circuit=request.circuit)
    shutil.copyfile(path, REPO_ROOT / "BENCH_serve.json")
