"""Bench: the short-circuit extension (the paper's "next version").

Quantifies the term Appendix A.1 neglects: at each Table 2 optimum, how
large is the short-circuit energy relative to the optimized switching
energy? The paper's justification (Veendrick: order of magnitude below
switching) should hold both at the conventional corner and — even more
strongly — near the joint optimum, which sits close to the
``Vdd = 2*Vth`` no-conduction boundary.
"""

from repro.analysis.report import format_table
from repro.experiments.common import build_problem
from repro.optimize.baseline import optimize_fixed_vth
from repro.optimize.heuristic import optimize_joint
from repro.power.short_circuit import (
    total_short_circuit_energy,
    transition_times_from_budgets,
)


def test_short_circuit_magnitude(benchmark, record_artifact):
    rows = []
    for circuit in ("s298", "s386"):
        problem = build_problem(circuit, 0.1)
        budgets = problem.budgets()
        times = transition_times_from_budgets(problem.ctx, budgets.budgets)

        baseline = optimize_fixed_vth(problem, budgets=budgets)
        joint = optimize_joint(problem, budgets=budgets)

        sc_base = total_short_circuit_energy(
            problem.ctx, baseline.design.vdd, baseline.design.vth,
            baseline.design.widths, times)
        sc_joint = total_short_circuit_energy(
            problem.ctx, joint.design.vdd, joint.design.vth,
            joint.design.widths, times)

        base_fraction = sc_base.fraction_of(baseline.energy.dynamic)
        joint_fraction = sc_joint.fraction_of(joint.energy.dynamic)
        # Veendrick's order-of-magnitude claim at the conventional corner;
        # even smaller near the joint optimum's Vdd ~ 2*Vth boundary.
        assert base_fraction < 0.35
        assert joint_fraction < 0.35
        rows.append([circuit,
                     f"{base_fraction * 100:.1f} %",
                     f"{joint_fraction * 100:.1f} %",
                     f"{joint.design.vdd:.2f}",
                     f"{2 * float(joint.design.distinct_vths()[0]):.2f}"])

    problem = build_problem("s298", 0.1)
    budgets = problem.budgets()
    times = transition_times_from_budgets(problem.ctx, budgets.budgets)
    joint = optimize_joint(problem, budgets=budgets)
    benchmark.pedantic(
        lambda: total_short_circuit_energy(
            problem.ctx, joint.design.vdd, joint.design.vth,
            joint.design.widths, times),
        rounds=5, iterations=2)

    record_artifact("short_circuit", format_table(
        headers=["circuit", "E_sc/E_dyn (baseline)", "E_sc/E_dyn (joint)",
                 "joint Vdd (V)", "2*Vth (V)"],
        rows=rows,
        title="Extension — short-circuit energy the paper's A.1 neglects"))
