"""Bench: the stack effect eq. A1 leaves on the table.

Eq. A1 charges every gate the full single-device off current; real
series stacks with multiple off devices leak roughly an order of
magnitude less. This bench quantifies, at each Table 2 optimum, how much
the expected (state-aware) static energy sits below the paper's upper
bound — i.e. how conservative the reproduced static numbers are.
"""

from repro.analysis.report import format_table
from repro.experiments.common import build_problem
from repro.optimize.heuristic import optimize_joint
from repro.power.state_leakage import state_dependent_leakage


def test_stack_effect_quantified(benchmark, record_artifact):
    rows = []
    for circuit in ("s298", "s386", "s526"):
        problem = build_problem(circuit, 0.1)
        result = optimize_joint(problem)
        report = state_dependent_leakage(
            problem.ctx, result.design.vdd, result.design.vth,
            result.design.widths, problem.frequency)
        # Eq. A1 is a strict upper bound; the stack effect is material.
        assert report.expected_static <= report.upper_bound.static
        assert report.reduction > 1.05
        rows.append([circuit,
                     f"{report.upper_bound.static:.3e}",
                     f"{report.expected_static:.3e}",
                     f"{report.reduction:.2f}x",
                     f"{report.expected_total:.3e}"])

    problem = build_problem("s298", 0.1)
    result = optimize_joint(problem)
    benchmark.pedantic(
        lambda: state_dependent_leakage(
            problem.ctx, result.design.vdd, result.design.vth,
            result.design.widths, problem.frequency),
        rounds=5, iterations=2)
    record_artifact("state_leakage", format_table(
        headers=["circuit", "eq. A1 static (J)", "expected static (J)",
                 "A1 conservatism", "expected total (J)"],
        rows=rows,
        title="Stack-effect refinement — eq. A1's static energy is a "
              "conservative upper bound"))
