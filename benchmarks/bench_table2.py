"""Bench: regenerate Table 2 (joint Vdd/Vth/width optimization).

Timed unit: Procedure 1 + Procedure 2 on one circuit. The full table is
regenerated once with its Table 1 baselines and archived; the savings
column is asserted to reproduce the paper's shape (large factors, larger
at higher activity, comparable static/dynamic components).
"""

from repro.experiments.common import ExperimentConfig, build_problem
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.optimize.heuristic import optimize_joint


def test_table2_single_circuit_joint(benchmark):
    problem = build_problem("s298", 0.1)

    result = benchmark.pedantic(
        lambda: optimize_joint(problem), rounds=3, iterations=1)
    assert result.feasible
    assert result.design.vdd < 1.6


def test_table2_full_regeneration(benchmark, record_artifact):
    config = ExperimentConfig()
    baseline = run_table1(config)

    rows = benchmark.pedantic(
        lambda: run_table2(config, baseline_rows=baseline),
        rounds=1, iterations=1)
    assert len(rows) == 16
    by_circuit = {}
    for row in rows:
        assert row.savings > 3.0
        assert row.vth <= 0.30
        assert 0.03 < row.static_to_dynamic < 10.0
        by_circuit.setdefault(row.circuit, []).append(row)
    # Savings grow with activity on every circuit (paper §5).
    for circuit_rows in by_circuit.values():
        ordered = sorted(circuit_rows, key=lambda row: row.activity)
        assert ordered[-1].savings > ordered[0].savings
    record_artifact("table2", format_table2(rows))
