"""Bench: dual-Vdd clustered voltage scaling (extension, negative result).

The paper keeps one global supply, calling more "impractical", while
retaining the flexibility in its formulation. This bench runs the CVS
dual-rail optimizer and archives the outcome — measured across the
benchmark circuits, the dual rail never beats the single-rail optimum
under the budget-then-size flow (Procedure 1 has already converted all
path slack into loose budgets), quantitatively supporting the paper's
choice. The optimizer's graceful fallback is asserted.
"""

from repro.analysis.report import format_table
from repro.experiments.common import build_problem
from repro.optimize.multivdd import optimize_multi_vdd


def test_multivdd_negative_result(benchmark, record_artifact):
    rows = []
    results = {}
    results["s298"] = benchmark.pedantic(
        lambda: optimize_multi_vdd(build_problem("s298", 0.1)),
        rounds=1, iterations=1)
    results["s526"] = optimize_multi_vdd(build_problem("s526", 0.1))

    for circuit, result in results.items():
        assert result.feasible
        strategy = result.details["strategy"]
        rails = "/".join(f"{rail:.2f}"
                         for rail in result.design.distinct_vdds())
        rows.append([circuit, strategy, rails,
                     str(result.details.get("cluster_size", "-")),
                     f"{result.total_energy:.3e}"])
        if strategy == "multi-vdd":
            assert result.total_energy \
                < result.details["single_vdd_energy"]

    record_artifact("multivdd", format_table(
        headers=["circuit", "outcome", "rails (V)", "cluster size",
                 "energy (J)"],
        rows=rows,
        title="Extension — dual-Vdd CVS (fallback = single rail wins, "
              "supporting the paper's single-supply stance)"))
