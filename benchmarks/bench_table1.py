"""Bench: regenerate Table 1 (fixed-Vth baseline, all circuits).

Timed unit: the baseline optimization of one circuit (the paper reports
5–20 s per circuit for the whole flow on 1997 hardware). The full table
over all 8 circuits × 2 activities is regenerated once and archived.
"""

from repro.experiments.common import ExperimentConfig, build_problem
from repro.experiments.table1 import format_table1, run_table1
from repro.optimize.baseline import optimize_fixed_vth


def test_table1_single_circuit_baseline(benchmark):
    problem = build_problem("s298", 0.1)

    result = benchmark.pedantic(
        lambda: optimize_fixed_vth(problem), rounds=3, iterations=1)
    assert result.feasible
    assert result.energy.static < 1e-3 * result.energy.dynamic


def test_table1_full_regeneration(benchmark, record_artifact):
    rows = benchmark.pedantic(
        lambda: run_table1(ExperimentConfig()), rounds=1, iterations=1)
    assert len(rows) == 16  # 8 circuits x 2 activities
    for row in rows:
        assert row.critical_delay <= (1.0 / 300e6) * (1 + 1e-9)
    record_artifact("table1", format_table1(rows))
