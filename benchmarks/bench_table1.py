"""Bench: regenerate Table 1 (fixed-Vth baseline, all circuits).

Timed unit: the baseline optimization of one circuit (the paper reports
5–20 s per circuit for the whole flow on 1997 hardware). The full table
over all 8 circuits × 2 activities is regenerated once and archived —
as text for EXPERIMENTS.md and as a ``repro-bench-result/1`` JSON
document (per-row best energy plus suite-level evaluation counters).
"""

import time

from repro.experiments.common import ExperimentConfig, build_problem
from repro.experiments.table1 import format_table1, run_table1
from repro.obs.instrument import OBJECTIVE_EVALUATIONS, STA_CALLS
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.optimize.baseline import optimize_fixed_vth


def test_table1_single_circuit_baseline(benchmark, record_json):
    problem = build_problem("s298", 0.1)

    start = time.perf_counter()
    result = benchmark.pedantic(
        lambda: optimize_fixed_vth(problem), rounds=3, iterations=1)
    elapsed = time.perf_counter() - start
    assert result.feasible
    assert result.energy.static < 1e-3 * result.energy.dynamic
    record_json("table1_baseline", results=[{
        "unit": "s298@0.1 baseline",
        "evaluations": result.evaluations,
        "wall_s": elapsed / 3,
        "best_energy": result.total_energy,
    }])


def test_table1_full_regeneration(benchmark, record_artifact, record_json):
    registry = MetricsRegistry()
    timing = {}

    def regenerate():
        start = time.perf_counter()
        with use_metrics(registry):
            rows = run_table1(ExperimentConfig())
        timing["wall_s"] = time.perf_counter() - start
        return rows

    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert len(rows) == 16  # 8 circuits x 2 activities
    for row in rows:
        assert row.critical_delay <= (1.0 / 300e6) * (1 + 1e-9)
    record_artifact("table1", format_table1(rows))
    record_json("table1", results=[{
        "unit": f"{row.circuit}@{row.activity:g}",
        "evaluations": None,  # counted suite-wide, see totals
        "wall_s": None,
        "best_energy": row.total_energy,
        "vdd": row.vdd,
    } for row in rows], totals={
        "evaluations": registry.counter(OBJECTIVE_EVALUATIONS),
        "sta_calls": registry.counter(STA_CALLS),
        "wall_s": timing["wall_s"],
    })
