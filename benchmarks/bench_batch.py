"""Bench: batched multi-design evaluation vs the single-design loop.

Times the two workloads the batch axis was built for, on s298:

* **full-grid evaluation** — every corner of a Vdd x Vth grid sized and
  scored via one ``evaluate_batch`` call vs the looped ArrayEngine,
  asserting bit-identical energies/feasibility per corner and a >= 3x
  speedup;
* **robust die stage** — all 40 Monte-Carlo dies of one robust estimate
  measured via ``measure_batch`` vs the per-die loop, identical
  estimates asserted, >= 2x speedup.

Also records the satellite ``_external_caps`` gather note: the
boundary-fanout gather is now a precomputed clamped index array
(``ArrayContext.fanout_safe_idx``) instead of a fill + boolean-mask
double gather per call; the microbenchmark below times the gather-heavy
STA inner loop to document the effect in this bench's artifact.

Speedup floors are asserted only on hosts with >= 2 cores (mirroring
``bench_parallel.py``: a loaded single-core runner times nothing
honestly); the equality contract is asserted everywhere. Results land
in ``benchmarks/results/`` and ``BENCH_batch.json`` at the repo root.
"""

import math
import os
import shutil
import time
from pathlib import Path

import numpy as np

from repro.analysis.report import format_table
from repro.engine import make_engine
from repro.experiments.common import build_problem
from repro.robust.config import RobustConfig
from repro.robust.estimator import RobustEstimator

REPO_ROOT = Path(__file__).resolve().parents[1]

CIRCUIT = "s298"
GRID = 12  # 12 x 12 = 144 corners
DIES = 40

#: CI-gated speedup floors (see ci/check_batch_parity.py).
GRID_SPEEDUP_FLOOR = 3.0
ROBUST_SPEEDUP_FLOOR = 2.0


def _cores() -> int:
    return os.cpu_count() or 1


def _timed(run):
    start = time.perf_counter()
    result = run()
    return result, time.perf_counter() - start


def _grid_corners(problem):
    tech = problem.tech
    vdds = np.linspace(tech.vdd_min, tech.vdd_max, GRID)
    vths = np.linspace(tech.vth_min, tech.vth_max, GRID)
    return [(float(vdd), float(vth)) for vdd in vdds for vth in vths]


def test_batched_evaluation_speedup(benchmark, record_artifact, record_json):
    problem = build_problem(CIRCUIT, 0.1)
    budgets = problem.budgets()
    corners = _grid_corners(problem)

    fast = make_engine(problem, "fast")
    batch = make_engine(problem, "batch")

    # Full grid: one batched kernel invocation vs the corner loop.
    looped, looped_s = _timed(
        lambda: [fast.evaluate(budgets, vdd, vth) for vdd, vth in corners])
    batched, batched_s = _timed(
        lambda: batch.evaluate_batch(budgets, [c[0] for c in corners],
                                     [c[1] for c in corners]))
    assert len(batched) == len(looped)
    for row, (lhs, rhs) in enumerate(zip(batched, looped)):
        assert lhs.feasible == rhs.feasible, corners[row]
        assert lhs.energy == rhs.energy or (math.isinf(lhs.energy)
                                            and math.isinf(rhs.energy))
    feasible = [row for row in looped if row.feasible]
    assert feasible, "grid produced no feasible corner"
    best_energy = min(row.energy for row in feasible)
    grid_speedup = looped_s / batched_s

    # Robust die stage: all 40 dies of one estimate per kernel call.
    config = RobustConfig(samples=DIES, cull_samples=DIES)
    nominal = min((row for row in looped if row.feasible),
                  key=lambda row: row.energy)
    corner = corners[looped.index(nominal)]
    widths = nominal.widths_map()
    looped_estimate, robust_loop_s = _timed(
        lambda: RobustEstimator(problem, config, fast).estimate(
            corner[0], corner[1], widths))
    batched_estimate, robust_batch_s = _timed(
        lambda: RobustEstimator(problem, config, batch).estimate(
            corner[0], corner[1], widths))
    assert batched_estimate.to_dict() == looped_estimate.to_dict()
    robust_speedup = robust_loop_s / robust_batch_s

    # Satellite note: the _external_caps boundary gather. Time the
    # gather-heavy STA at fixed widths — the hot path the precomputed
    # fanout_safe_idx clamp serves — and archive the per-call cost.
    gates = problem.ctx.gates
    sta_widths = {name: 8.0 for name in gates}
    calls = 200
    _, sta_s = _timed(lambda: [fast.sta(2.0, 0.3, sta_widths)
                               for _ in range(calls)])
    gather_note = (f"_external_caps gather: precomputed fanout_safe_idx "
                   f"clamp (was fill + boolean-mask double gather); "
                   f"STA now {1e6 * sta_s / calls:.0f} us/call on "
                   f"{CIRCUIT}")

    benchmark.pedantic(
        lambda: batch.evaluate_batch(budgets, [c[0] for c in corners],
                                     [c[1] for c in corners]),
        rounds=1, iterations=1)

    gated = _cores() >= 2
    if gated:
        assert grid_speedup >= GRID_SPEEDUP_FLOOR, \
            f"grid batch delivered only {grid_speedup:.2f}x"
        assert robust_speedup >= ROBUST_SPEEDUP_FLOOR, \
            f"robust batch delivered only {robust_speedup:.2f}x"

    rows = [[f"grid {GRID}x{GRID} ({len(corners)} corners)",
             f"{looped_s:.2f}", f"{batched_s:.2f}",
             f"{grid_speedup:.2f}x"],
            [f"robust stage ({DIES} dies)", f"{robust_loop_s:.3f}",
             f"{robust_batch_s:.3f}", f"{robust_speedup:.2f}x"]]
    record_artifact("batch", format_table(
        headers=["workload", "looped (s)", "batched (s)", "speedup"],
        rows=rows,
        title=f"Batched multi-design evaluation on {CIRCUIT} "
              f"(bit-identical results asserted)") + "\n" + gather_note)
    path = record_json(
        "batch",
        results=[
            {"unit": "grid looped", "evaluations": len(corners),
             "wall_s": looped_s, "best_energy": best_energy},
            {"unit": "grid batched", "evaluations": len(corners),
             "wall_s": batched_s, "best_energy": best_energy},
            {"unit": "robust looped", "evaluations": DIES,
             "wall_s": robust_loop_s,
             "best_energy": looped_estimate.mean},
            {"unit": "robust batched", "evaluations": DIES,
             "wall_s": robust_batch_s,
             "best_energy": batched_estimate.mean},
        ],
        circuit=CIRCUIT, grid=GRID, dies=DIES,
        grid_speedup=grid_speedup, robust_speedup=robust_speedup,
        grid_speedup_floor=GRID_SPEEDUP_FLOOR,
        robust_speedup_floor=ROBUST_SPEEDUP_FLOOR,
        cores=_cores(), floors_gated=gated,
        gather_note=gather_note,
        sta_us_per_call=1e6 * sta_s / calls)
    shutil.copyfile(path, REPO_ROOT / "BENCH_batch.json")
