"""Bench: the §3 physics — stationarity and balance at the optimum.

§3 states the optimum is the unique point where the static-energy growth
of a supply step cancels the dynamic-energy reduction. This bench
regenerates that balance numerically for each Table 2 circuit: the
reduced objective's Vdd slope decomposes into opposing static and
dynamic components of near-equal magnitude.

Also regenerates the Burr–Shott-style energy-delay frontier ([2]'s
min-E*t philosophy the paper's intro discusses): the ET-optimal clock is
a relaxed one, quantifying what a hard 300 MHz constraint costs in ET
terms.
"""

from repro.analysis.pareto import (
    energy_delay_tradeoff,
    minimum_energy_delay_product,
)
from repro.analysis.report import format_table
from repro.analysis.sensitivity import analyze_optimum_sensitivity
from repro.experiments.common import build_problem
from repro.optimize.heuristic import optimize_joint
from repro.units import NS


def test_balance_at_optimum(benchmark, record_artifact):
    rows = []
    for circuit in ("s298", "s382", "s526"):
        problem = build_problem(circuit, 0.1)
        result = optimize_joint(problem)
        report = analyze_optimum_sensitivity(problem, result)
        assert report.vdd_stationary
        if not report.vdd_at_boundary:
            assert report.d_static_d_vdd < 0.0 < report.d_dynamic_d_vdd
            assert 0.6 < report.balance_ratio < 1.6
        rows.append([circuit, f"{report.vdd:.2f}",
                     f"{report.vth * 1000:.0f}",
                     f"{report.d_static_d_vdd:.2e}",
                     f"{report.d_dynamic_d_vdd:.2e}",
                     f"{report.balance_ratio:.3f}"])

    problem = build_problem("s298", 0.1)
    result = optimize_joint(problem)
    benchmark.pedantic(
        lambda: analyze_optimum_sensitivity(problem, result),
        rounds=3, iterations=1)
    record_artifact("section3_balance", format_table(
        headers=["circuit", "Vdd (V)", "Vth (mV)", "dE_s/dVdd",
                 "dE_d/dVdd", "|balance|"],
        rows=rows,
        title="§3 physics — static/dynamic slope balance at the optimum "
              "(1.0 = exact cancellation)"))


def test_energy_delay_frontier(benchmark, record_artifact):
    problem = build_problem("s298", 0.1)
    points = benchmark.pedantic(
        lambda: energy_delay_tradeoff(problem, (1.0, 1.5, 2.0, 3.0, 4.0)),
        rounds=1, iterations=1)
    best = minimum_energy_delay_product(points)
    assert best.cycle_time > points[0].cycle_time  # relaxed clock wins ET
    record_artifact("energy_delay_frontier", format_table(
        headers=["cycle (ns)", "energy (J)", "E*T (Js)", "Vdd (V)",
                 "Vth (mV)"],
        rows=[[f"{point.cycle_time / NS:.1f}", f"{point.energy:.3e}",
               f"{point.energy_delay_product:.3e}", f"{point.vdd:.2f}",
               f"{point.vth * 1000:.0f}"]
              for point in points],
        title="Energy-delay frontier for s298 (min E*T marked by the "
              f"{best.cycle_time / NS:.1f} ns row)"))
