"""Bench: the supervised worker pool vs serial execution.

Times Table 1 and a Monte-Carlo variation sweep serially and on the
pool, asserting identical artifacts (the pool's whole point is that
parallelism never changes results) and archiving the wall times to
``benchmarks/results/parallel.json``. The speedup floor is only
asserted on machines with enough cores — on a single-core runner the
pool is legitimately no faster, but the equality contract must hold
everywhere.
"""

import os
import time

import pytest

from repro.analysis.montecarlo import monte_carlo_variation
from repro.analysis.report import format_table
from repro.experiments.common import build_problem
from repro.experiments.table1 import run_table1
from repro.optimize.baseline import optimize_fixed_vth
from repro.runtime.pool import multiprocessing_available
from repro.runtime.supervisor import ParallelPlan, use_parallel

JOBS = 4
MC_SAMPLES = 96

#: Speedup floors asserted only when the host can plausibly deliver
#: them (the pool cannot beat serial on a single busy core).
SPEEDUP_FLOOR = 2.0


def _cores() -> int:
    return os.cpu_count() or 1


def _timed(run):
    start = time.perf_counter()
    result = run()
    return result, time.perf_counter() - start


@pytest.mark.skipif(not multiprocessing_available(),
                    reason="multiprocessing unavailable")
def test_pool_speedup(benchmark, record_artifact, record_json):
    plan = ParallelPlan(jobs=JOBS, heartbeat_s=0.1)
    problem = build_problem("s298", 0.1)
    design = optimize_fixed_vth(problem).design

    serial_rows, serial_table_s = _timed(run_table1)
    with use_parallel(plan):
        pooled_rows, pooled_table_s = _timed(run_table1)
    assert pooled_rows == serial_rows

    serial_mc, serial_mc_s = _timed(
        lambda: monte_carlo_variation(problem, design,
                                      samples=MC_SAMPLES, seed=0))
    with use_parallel(plan):
        pooled_mc, pooled_mc_s = _timed(
            lambda: monte_carlo_variation(problem, design,
                                          samples=MC_SAMPLES, seed=0))
    assert pooled_mc == serial_mc

    if _cores() >= JOBS:
        assert serial_mc_s / pooled_mc_s >= SPEEDUP_FLOOR, \
            f"pool delivered only {serial_mc_s / pooled_mc_s:.2f}x on " \
            f"{_cores()} cores"

    with use_parallel(plan):
        benchmark.pedantic(
            lambda: monte_carlo_variation(problem, design,
                                          samples=MC_SAMPLES, seed=0),
            rounds=1, iterations=1)

    rows = [["table1 (16 rows)", f"{serial_table_s:.2f}",
             f"{pooled_table_s:.2f}",
             f"{serial_table_s / pooled_table_s:.2f}x"],
            [f"monte-carlo ({MC_SAMPLES} samples)", f"{serial_mc_s:.2f}",
             f"{pooled_mc_s:.2f}", f"{serial_mc_s / pooled_mc_s:.2f}x"]]
    record_artifact("parallel", format_table(
        headers=["workload", "serial (s)", f"pool jobs={JOBS} (s)",
                 "speedup"],
        rows=rows,
        title=f"Supervised pool vs serial on {_cores()} core(s) "
              f"(identical artifacts asserted)"))
    record_json(
        "parallel",
        results=[
            {"unit": "table1 serial", "evaluations": len(serial_rows),
             "wall_s": serial_table_s,
             "best_energy": min(row.total_energy for row in serial_rows)},
            {"unit": f"table1 jobs={JOBS}",
             "evaluations": len(pooled_rows), "wall_s": pooled_table_s,
             "best_energy": min(row.total_energy for row in pooled_rows)},
            {"unit": "montecarlo serial", "evaluations": MC_SAMPLES,
             "wall_s": serial_mc_s,
             "best_energy": serial_mc.energies[0]},
            {"unit": f"montecarlo jobs={JOBS}", "evaluations": MC_SAMPLES,
             "wall_s": pooled_mc_s,
             "best_energy": pooled_mc.energies[0]},
        ],
        jobs=JOBS, cores=_cores())
