"""Crash-isolated worker processes for the supervised pool.

This module owns the *mechanics* of parallel execution — worker process
lifecycles, the message protocol, heartbeats — while
:mod:`repro.runtime.supervisor` owns the *policy* (retries, quarantine,
deadlines, merge order).

Each worker is one OS process with its own task queue; the supervisor
assigns tasks explicitly, so it always knows exactly which task died
with a crashed worker. Workers report on a shared result queue:

``("ready", worker_id, pid)``
    Init finished; the worker is accepting tasks.
``("started", worker_id, key, attempt)``
    A task began executing (arms the per-task deadline).
``("heartbeat", worker_id, key)``
    Emitted by a worker-side daemon thread every ``heartbeat_s`` while
    a task runs — silence longer than the heartbeat timeout means the
    worker is wedged (stopped, swapping, stuck in C) and gets killed.
``("done", worker_id, key, attempt, value, counters, elapsed_s)``
``("error", worker_id, key, attempt, summary, counters, elapsed_s)``
    Task outcomes. ``counters`` is the worker-side metrics snapshot of
    the attempt, merged into the parent registry so counter totals are
    jobs-invariant.

Workers reset inherited ambient parallelism (no nested pools), arm the
fault-injection plan shipped in :class:`WorkerOptions` (so recovery
paths are testable *inside* subprocesses), and honour the deterministic
crash injection used by the property tests and the CI smoke: a task key
listed in ``crash_tasks`` SIGKILLs the worker on the task's first
attempt — the supervisor must retry it elsewhere and still merge the
exact serial result.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.errors import OptimizationError
from repro.runtime.tasks import failure_summary

#: Environment flag set inside pool workers (blocks nested pools).
IN_WORKER_ENV = "REPRO_POOL_WORKER"

#: Env var: comma-separated task keys whose first attempt SIGKILLs the
#: worker (deterministic crash injection; ``first`` = the run's task 0).
CRASH_TASKS_ENV = "REPRO_POOL_CRASH_TASKS"

#: Env var carrying a JSON fault plan armed inside every worker.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

MSG_READY = "ready"
MSG_STARTED = "started"
MSG_HEARTBEAT = "heartbeat"
MSG_DONE = "done"
MSG_ERROR = "error"


@dataclass(frozen=True)
class WorkerOptions:
    """Per-run knobs shipped to every worker at spawn."""

    heartbeat_s: float = 1.0
    #: Mirror worker-side metrics back to the parent registry.
    metrics_enabled: bool = False
    #: Directory for per-shard trace files (None = no shard traces).
    trace_dir: Optional[str] = None
    #: JSON fault plan armed inside the worker (see runtime.faults).
    fault_plan_json: Optional[str] = None
    #: Task keys whose first attempt crashes the worker (tests/CI only).
    crash_tasks: Tuple[str, ...] = ()


def in_worker() -> bool:
    """True inside a pool worker process (nested pools are refused)."""
    return os.environ.get(IN_WORKER_ENV) == "1"


def multiprocessing_available(start_method: Optional[str] = None) -> bool:
    """Can this interpreter actually run a process pool?

    Restricted sandboxes commonly fail at semaphore or pipe creation,
    not at import — so probe by building the primitives a pool needs.
    """
    if os.environ.get("REPRO_NO_MP") == "1":
        return False
    try:
        context = _pool_context(start_method)
        queue = context.SimpleQueue()
        queue.close()
    except Exception:  # noqa: BLE001 - any failure means "unavailable"
        return False
    return True


def _pool_context(start_method: Optional[str] = None):
    """The multiprocessing context the pool runs on.

    ``fork`` is preferred where offered: workers inherit the parent's
    loaded modules (and test monkeypatches) and start in milliseconds.
    Elsewhere the platform default applies; everything crossing the
    queues is picklable either way.
    """
    import multiprocessing

    if start_method is not None:
        return multiprocessing.get_context(start_method)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# -- worker side -----------------------------------------------------------


def _heartbeat_loop(result_queue, worker_id: int, key: str,
                    interval_s: float, stop: threading.Event) -> None:
    while not stop.wait(interval_s):
        try:
            result_queue.put((MSG_HEARTBEAT, worker_id, key))
        except Exception:  # pragma: no cover - queue torn down mid-put
            return


def _run_attempt(state, fn, args, options: WorkerOptions, key: str,
                 attempt: int):
    """Execute one task attempt under its own observability scope.

    Returns ``(value, counters)``; the per-attempt metrics registry and
    (optional) per-shard tracer keep worker-side instrumentation from
    interleaving between concurrent shards.
    """
    from repro.obs.metrics import MetricsRegistry, use_metrics
    from repro.obs.trace import Tracer, use_tracer

    registry = MetricsRegistry() if options.metrics_enabled else None
    tracer = Tracer() if options.trace_dir is not None else None
    try:
        with ExitStack() as stack:
            if registry is not None:
                stack.enter_context(use_metrics(registry))
            if tracer is not None:
                stack.enter_context(use_tracer(tracer))
                stack.enter_context(
                    tracer.span("shard", key=key, attempt=attempt,
                                pid=os.getpid()))
            value = fn(state, *args)
    finally:
        if tracer is not None:
            from pathlib import Path

            safe = "".join(c if c.isalnum() or c in "-_." else "_"
                           for c in key)
            tracer.export_jsonl(
                Path(options.trace_dir)
                / f"shard-{safe}.attempt{attempt}.trace.jsonl",
                metrics=registry)
    counters = registry.counters() if registry is not None else {}
    return value, counters


def worker_main(worker_id: int, init_fn, init_args,
                task_queue, result_queue,
                options: WorkerOptions) -> None:
    """Entry point of one pool worker process."""
    os.environ[IN_WORKER_ENV] = "1"
    injector = None
    try:
        if options.fault_plan_json:
            from repro.runtime.faults import FaultInjector, plan_from_json

            injector = FaultInjector(plan_from_json(options.fault_plan_json))
            injector.arm()
        try:
            state = init_fn(*init_args) if init_fn is not None else None
        except BaseException as error:  # noqa: BLE001 - isolation boundary
            result_queue.put((MSG_ERROR, worker_id, None, 0,
                              failure_summary(error), {}, 0.0))
            return
        result_queue.put((MSG_READY, worker_id, os.getpid()))
        crash_keys = frozenset(options.crash_tasks)

        while True:
            item = task_queue.get()
            if item is None:
                return
            key, _index, fn, args, attempt = item
            result_queue.put((MSG_STARTED, worker_id, key, attempt))
            if key in crash_keys and attempt == 1:
                # Deterministic mid-task crash (tests/CI): die the hard
                # way, exactly like an OOM kill — no cleanup, no result.
                os.kill(os.getpid(), signal.SIGKILL)
            stop = threading.Event()
            beat = threading.Thread(
                target=_heartbeat_loop,
                args=(result_queue, worker_id, key,
                      options.heartbeat_s, stop),
                daemon=True)
            beat.start()
            start = time.perf_counter()
            try:
                value, counters = _run_attempt(state, fn, args, options,
                                               key, attempt)
                result_queue.put((MSG_DONE, worker_id, key, attempt, value,
                                  counters, time.perf_counter() - start))
            except BaseException as error:  # noqa: BLE001 - isolation
                result_queue.put((MSG_ERROR, worker_id, key, attempt,
                                  failure_summary(error), {},
                                  time.perf_counter() - start))
            finally:
                stop.set()
    finally:
        if injector is not None:
            injector.disarm()


# -- parent side -----------------------------------------------------------


@dataclass
class WorkerHandle:
    """Parent-side record of one worker process."""

    worker_id: int
    process: object
    task_queue: object
    #: None while idle, else (key, index, attempt, assigned_monotonic).
    running: Optional[Tuple[str, int, int, float]] = None
    #: True once the worker's init completed.
    ready: bool = False
    #: Monotonic time of the last started/heartbeat/ready signal.
    last_signal: float = field(default_factory=time.monotonic)
    #: Monotonic spawn time (feeds the worker-lifetime spans).
    spawned_at: float = field(default_factory=time.monotonic)
    tasks_done: int = 0

    @property
    def idle(self) -> bool:
        return self.ready and self.running is None

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def assign(self, task, attempt: int) -> None:
        if self.running is not None:
            raise OptimizationError(
                f"worker {self.worker_id} is already running "
                f"{self.running[0]!r}")
        now = time.monotonic()
        self.running = (task.key, task.index, attempt, now)
        self.last_signal = now
        self.task_queue.put((task.key, task.index, task.fn, task.args,
                             attempt))

    def kill(self) -> None:
        """SIGKILL the worker (used for hangs/timeouts) and reap it."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)

    def shutdown(self, grace_s: float = 1.0) -> None:
        """Politely stop an idle worker, escalating to SIGKILL."""
        try:
            if self.process.is_alive():
                self.task_queue.put(None)
        except Exception:  # pragma: no cover - queue already broken
            pass
        self.process.join(timeout=grace_s)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)


class ProcessPool:
    """Spawns, tracks, respawns, and tears down worker processes."""

    def __init__(self, jobs: int, init_fn, init_args,
                 options: WorkerOptions,
                 start_method: Optional[str] = None):
        self._context = _pool_context(start_method)
        self._init_fn = init_fn
        self._init_args = init_args
        self._options = options
        self._next_worker_id = 0
        self.result_queue = self._context.Queue()
        self.workers: dict[int, WorkerHandle] = {}
        #: Workers that have been replaced or shut down (lifetime stats).
        self.retired: list[WorkerHandle] = []
        for _ in range(jobs):
            self.spawn()

    def spawn(self) -> WorkerHandle:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_queue = self._context.SimpleQueue()
        process = self._context.Process(
            target=worker_main,
            args=(worker_id, self._init_fn, self._init_args,
                  task_queue, self.result_queue, self._options),
            daemon=True,
            name=f"repro-pool-{worker_id}")
        process.start()
        handle = WorkerHandle(worker_id=worker_id, process=process,
                              task_queue=task_queue)
        self.workers[worker_id] = handle
        return handle

    def respawn(self, worker_id: int) -> WorkerHandle:
        """Replace a dead/killed worker with a fresh process."""
        self.retire(worker_id)
        return self.spawn()

    def retire(self, worker_id: int) -> None:
        """Kill and reap one worker without replacing it."""
        old = self.workers.pop(worker_id)
        old.kill()
        self.retired.append(old)

    def close(self) -> None:
        for handle in self.workers.values():
            handle.shutdown()
            self.retired.append(handle)
        self.workers.clear()
        self.result_queue.close()
        self.result_queue.join_thread()
