"""The supervised parallel executor: retries, quarantine, determinism.

:func:`run_sharded` executes a list of pure :class:`~repro.runtime.tasks.Task`
shards — (Vdd, Vth) grid chunks, experiments, Monte-Carlo batches —
on a crash-isolated :class:`~repro.runtime.pool.ProcessPool` and merges
the outcomes in canonical (index) order. The policy it enforces:

* **crash recovery** — a worker that dies mid-task (SIGKILL, OOM,
  segfault) is respawned and the task retried on a fresh process;
* **hang detection** — workers heartbeat while running; silence beyond
  the heartbeat timeout, or exceeding the per-task deadline, gets the
  worker killed and the task retried;
* **retry with backoff** — failed attempts reschedule after
  :func:`~repro.runtime.tasks.backoff_delay` (exponential, capped,
  deterministic jitter), up to ``retries`` retries;
* **poison-task quarantine** — a task that fails every allowed attempt
  is reported as a labeled quarantined :class:`TaskResult` (mirroring
  ``DegradedResult``), never silently dropped;
* **jobs-invariance** — shard functions are pure and merge order is
  canonical, so ``jobs=8`` with injected crashes produces byte-identical
  results to ``jobs=1`` serial.

Parallelism reaches the optimizers the same way controllers and metrics
do: ambiently. ``use_parallel(ParallelPlan(jobs=4))`` installs a plan;
code at a shardable seam calls :func:`resolve_parallel` and hands its
tasks to :func:`run_sharded`. Inside a pool worker ``resolve_parallel``
always returns ``None`` — nested pools are refused, inner seams simply
run serially.

When multiprocessing is unavailable (restricted sandboxes) the run
degrades to in-process serial execution with the same retry/quarantine
policy, logging a warning rather than failing.
"""

from __future__ import annotations

import contextlib
import logging
import os
import queue as queue_module
import time
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import DeadlineExceeded, OptimizationError, RunCancelled
from repro.obs.instrument import (POOL_TASKS_COMPLETED, POOL_TASKS_QUARANTINED,
                                  POOL_TASKS_RETRIED, POOL_WORKER_RESPAWNS,
                                  POOL_WORKERS_STARTED)
from repro.obs.metrics import current_metrics
from repro.obs.trace import current_tracer
from repro.runtime.controller import RunController, resolve_controller
from repro.runtime.pool import (CRASH_TASKS_ENV, FAULT_PLAN_ENV, MSG_DONE,
                                MSG_ERROR, MSG_HEARTBEAT, MSG_READY,
                                MSG_STARTED, ProcessPool, WorkerOptions,
                                in_worker, multiprocessing_available)
from repro.runtime.tasks import (PoolStats, ShardedRun, Task, TaskResult,
                                 backoff_delay, failure_summary)

logger = logging.getLogger("repro.runtime.supervisor")

#: Poll interval of the supervisor event loop (seconds).
_POLL_S = 0.02


@dataclass(frozen=True)
class ParallelPlan:
    """How a sharded run should execute.

    ``jobs=1`` is a meaningful plan: in-process execution but with the
    same retry/quarantine policy. ``active`` is what shardable seams
    check before paying any sharding overhead.
    """

    jobs: int = 1
    #: Retries per task after its first attempt (0 = fail fast to
    #: quarantine).
    retries: int = 2
    #: Default per-task wall-clock budget (None = unbounded); a task's
    #: own ``timeout_s`` overrides it.
    task_timeout_s: Optional[float] = None
    #: Worker heartbeat period while a task runs.
    heartbeat_s: float = 0.5
    #: Silence longer than this marks a worker hung (None = derived:
    #: ``max(5 s, 10 x heartbeat_s)``).
    heartbeat_timeout_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: Directory for per-shard trace files (None = no shard traces).
    trace_dir: Optional[str] = None
    #: JSON fault plan armed inside every worker (tests/CI).
    fault_plan_json: Optional[str] = None
    #: Task keys whose first attempt crashes their worker (tests/CI).
    crash_tasks: Tuple[str, ...] = ()
    #: Stop dispatching after the first quarantined task (fail fast);
    #: undispatched tasks finish as ``"skipped"``.
    stop_after_failure: bool = False
    #: Multiprocessing start method override (None = fork when offered).
    start_method: Optional[str] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise OptimizationError(f"jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise OptimizationError(
                f"retries must be >= 0, got {self.retries}")
        if self.heartbeat_s <= 0.0:
            raise OptimizationError(
                f"heartbeat_s must be > 0, got {self.heartbeat_s}")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0.0:
            raise OptimizationError(
                f"task_timeout_s must be > 0, got {self.task_timeout_s}")

    @property
    def active(self) -> bool:
        """Should a shardable seam bother sharding at all?"""
        return self.jobs > 1

    @property
    def hang_timeout_s(self) -> float:
        if self.heartbeat_timeout_s is not None:
            return self.heartbeat_timeout_s
        return max(5.0, 10.0 * self.heartbeat_s)


#: Ambient plan for the current thread/task (see use_parallel).
_CURRENT: ContextVar[Optional[ParallelPlan]] = ContextVar(
    "repro_parallel_plan", default=None)


def current_parallel() -> Optional[ParallelPlan]:
    """The ambient plan installed by :func:`use_parallel`, if any."""
    if in_worker():
        return None
    return _CURRENT.get()


def resolve_parallel(explicit: Optional[ParallelPlan] = None
                     ) -> Optional[ParallelPlan]:
    """The plan a shardable seam should use: explicit wins over ambient.

    Always ``None`` inside a pool worker — nested pools are refused, so
    inner shardable seams transparently run serially.
    """
    if in_worker():
        return None
    return explicit if explicit is not None else _CURRENT.get()


@contextlib.contextmanager
def use_parallel(plan: Optional[ParallelPlan]
                 ) -> Iterator[Optional[ParallelPlan]]:
    """Install ``plan`` as the ambient parallel plan for this context."""
    token = _CURRENT.set(plan)
    try:
        yield plan
    finally:
        _CURRENT.reset(token)


# -- env-driven test/CI injection ------------------------------------------


def _crash_tasks(plan: ParallelPlan, tasks: Sequence[Task]
                 ) -> Tuple[str, ...]:
    """The plan's crash keys plus any from ``REPRO_POOL_CRASH_TASKS``.

    The env sentinel ``first`` names the run's first task without the
    caller having to know its key — how CI injects "kill one worker
    mid-run" into an arbitrary sweep.
    """
    keys = list(plan.crash_tasks)
    raw = os.environ.get(CRASH_TASKS_ENV, "")
    for item in raw.split(","):
        item = item.strip()
        if not item:
            continue
        if item == "first":
            keys.append(tasks[0].key)
        else:
            keys.append(item)
    return tuple(dict.fromkeys(keys))


def _fault_plan_json(plan: ParallelPlan) -> Optional[str]:
    return plan.fault_plan_json or os.environ.get(FAULT_PLAN_ENV) or None


# -- the public entry point ------------------------------------------------


def run_sharded(tasks: Sequence[Task],
                init_fn: Optional[Callable] = None,
                init_args: Tuple = (),
                plan: Optional[ParallelPlan] = None,
                controller: Optional[RunController] = None,
                on_result: Optional[Callable[[TaskResult], None]] = None,
                what: str = "sharded run") -> ShardedRun:
    """Execute ``tasks`` under supervision and merge canonically.

    ``init_fn(*init_args)`` runs once per worker (and once for the
    in-process path); its return value is the ``state`` every task
    function receives. ``on_result`` fires as each task reaches a final
    state — in **completion order**, not canonical order — which is how
    the optimizers record finished shards into their checkpoint.
    ``controller`` (explicit or ambient) bounds the whole run; a
    deadline or cancellation propagates after the pool is torn down.
    """
    tasks = list(tasks)
    seen_keys = set()
    for task in tasks:
        if task.key in seen_keys:
            raise OptimizationError(
                f"duplicate task key {task.key!r} in {what}")
        seen_keys.add(task.key)
    stats = PoolStats()
    if not tasks:
        return ShardedRun([], stats)

    plan = plan if plan is not None else ParallelPlan(jobs=1)
    controller = resolve_controller(controller)
    metrics = current_metrics()
    tracer = current_tracer()

    use_pool = plan.jobs > 1 and not in_worker()
    if use_pool and not multiprocessing_available(plan.start_method):
        logger.warning(
            "multiprocessing unavailable; running %s in-process "
            "(%d tasks, requested jobs=%d)", what, len(tasks), plan.jobs)
        use_pool = False

    with tracer.span("pool.run", what=what, tasks=len(tasks),
                     jobs=plan.jobs if use_pool else 1,
                     mode="pool" if use_pool else "in-process") as span:
        if use_pool:
            run = _run_pool(tasks, init_fn, init_args, plan, controller,
                            on_result, metrics, tracer, stats, what)
        else:
            run = _run_serial(tasks, init_fn, init_args, plan, controller,
                              on_result, metrics, stats, what)
        span.annotate(completed=stats.completed, retried=stats.retried,
                      quarantined=stats.quarantined, skipped=stats.skipped,
                      respawns=stats.worker_respawns)
    return run


# -- in-process fallback ---------------------------------------------------


def _run_serial(tasks, init_fn, init_args, plan, controller, on_result,
                metrics, stats, what) -> ShardedRun:
    """The degraded path: same policy, one process, no preemption.

    Worker-crash injection and per-task timeouts need process isolation
    and are inert here; retries, backoff pacing, and quarantine behave
    identically to the pool.
    """
    stats.mode = "in-process"
    state = init_fn(*init_args) if init_fn is not None else None
    results: List[TaskResult] = []
    stopped = False
    for task in tasks:
        if stopped:
            results.append(TaskResult(key=task.key, index=task.index,
                                      status="skipped"))
            stats.skipped += 1
            continue
        if controller is not None:
            controller.check(what)
        failures: List[str] = []
        result: Optional[TaskResult] = None
        for attempt in range(1, plan.retries + 2):
            start = time.perf_counter()
            try:
                value = task.fn(state, *task.args)
            except (DeadlineExceeded, RunCancelled):
                raise  # control flow, not a task fault
            except Exception as error:  # noqa: BLE001 - isolation boundary
                failures.append(failure_summary(error))
                if attempt <= plan.retries:
                    stats.retried += 1
                    metrics.incr(POOL_TASKS_RETRIED)
                    time.sleep(backoff_delay(
                        attempt, task.key,
                        base_s=plan.backoff_base_s,
                        cap_s=plan.backoff_cap_s))
                continue
            result = TaskResult(key=task.key, index=task.index, status="ok",
                                value=value, attempts=attempt,
                                elapsed_s=time.perf_counter() - start,
                                failures=tuple(failures))
            break
        if result is None:
            result = TaskResult(key=task.key, index=task.index,
                                status="quarantined", error=failures[-1],
                                attempts=plan.retries + 1,
                                failures=tuple(failures))
            stats.quarantined += 1
            metrics.incr(POOL_TASKS_QUARANTINED)
            if plan.stop_after_failure:
                stopped = True
        else:
            stats.completed += 1
            metrics.incr(POOL_TASKS_COMPLETED)
        results.append(result)
        if on_result is not None:
            on_result(result)
    return ShardedRun(results, stats)


# -- the pool supervisor ---------------------------------------------------


class _TaskState:
    """Supervisor-side bookkeeping of one task."""

    __slots__ = ("task", "attempts", "failures")

    def __init__(self, task: Task):
        self.task = task
        self.attempts = 0
        self.failures: List[str] = []


def _run_pool(tasks, init_fn, init_args, plan, controller, on_result,
              metrics, tracer, stats, what) -> ShardedRun:
    stats.mode = "pool"
    crash_keys = _crash_tasks(plan, tasks)
    options = WorkerOptions(heartbeat_s=plan.heartbeat_s,
                            metrics_enabled=metrics.enabled,
                            trace_dir=plan.trace_dir,
                            fault_plan_json=_fault_plan_json(plan),
                            crash_tasks=crash_keys)
    jobs = min(plan.jobs, len(tasks))
    pool = ProcessPool(jobs, init_fn, init_args, options,
                       start_method=plan.start_method)
    stats.workers = jobs
    metrics.incr(POOL_WORKERS_STARTED, jobs)
    # Far above any legitimate respawn need; a worker that dies before
    # becoming ready on every spawn would otherwise loop forever.
    respawn_budget = (plan.retries + 1) * len(tasks) + 3 * jobs

    states: Dict[str, _TaskState] = {task.key: _TaskState(task)
                                     for task in tasks}
    #: (task, not-before monotonic time), dispatch-eligible work.
    pending: List[Tuple[Task, float]] = [(task, 0.0) for task in tasks]
    results: Dict[str, TaskResult] = {}
    stopped = False

    def finish(result: TaskResult) -> None:
        results[result.key] = result
        if on_result is not None:
            on_result(result)

    def task_failed(state: _TaskState, summary: str, now: float) -> None:
        nonlocal stopped
        state.failures.append(summary)
        if state.attempts <= plan.retries:
            stats.retried += 1
            metrics.incr(POOL_TASKS_RETRIED)
            delay = backoff_delay(state.attempts, state.task.key,
                                  base_s=plan.backoff_base_s,
                                  cap_s=plan.backoff_cap_s)
            pending.append((state.task, now + delay))
        else:
            stats.quarantined += 1
            metrics.incr(POOL_TASKS_QUARANTINED)
            finish(TaskResult(key=state.task.key, index=state.task.index,
                              status="quarantined",
                              error=state.failures[-1],
                              attempts=state.attempts,
                              failures=tuple(state.failures)))
            if plan.stop_after_failure:
                stopped = True

    def reap(worker_id: int, reason: str, now: float) -> None:
        """A worker died or was killed mid-task: fail the task, replace
        the worker if unfinished work still needs a seat."""
        handle = pool.workers.get(worker_id)
        if handle is None:
            return
        running = handle.running
        if running is not None:
            key = running[0]
            state = states[key]
            if key not in results:
                task_failed(state, f"{reason} (attempt {running[2]} "
                                   f"of task {key!r})", now)
        busy_elsewhere = sum(
            1 for other in pool.workers.values()
            if other.worker_id != worker_id and other.running is not None)
        unfinished = len(tasks) - len(results)
        stats.worker_respawns += 1
        metrics.incr(POOL_WORKER_RESPAWNS)
        if respawn_budget <= stats.worker_respawns:
            pool.retire(worker_id)
            raise OptimizationError(
                f"{what}: worker respawn budget exhausted "
                f"({stats.worker_respawns} respawns) — workers are dying "
                f"before completing work")
        if unfinished > busy_elsewhere and not stopped:
            pool.respawn(worker_id)
        else:
            pool.retire(worker_id)

    try:
        while len(results) < len(tasks):
            if stopped:
                for key, state in states.items():
                    if key not in results:
                        stats.skipped += 1
                        finish(TaskResult(key=key, index=state.task.index,
                                          status="skipped",
                                          attempts=state.attempts,
                                          failures=tuple(state.failures)))
                break
            if controller is not None:
                controller.check(what)
            now = time.monotonic()

            # Dispatch eligible pending tasks onto idle ready workers.
            idle = [handle for handle in pool.workers.values()
                    if handle.idle and handle.alive]
            for handle in idle:
                chosen = next(
                    (entry for entry in pending
                     if entry[1] <= now and entry[0].key not in results),
                    None)
                if chosen is None:
                    break
                pending.remove(chosen)
                task = chosen[0]
                state = states[task.key]
                state.attempts += 1
                handle.assign(task, state.attempts)

            # Pump worker messages.
            for message in _drain(pool.result_queue, timeout=_POLL_S):
                _handle_message(message, pool, states, results, plan,
                                metrics, stats, finish, task_failed, what)

            # Health sweep: crashes, per-task timeouts, lost heartbeats.
            now = time.monotonic()
            for worker_id in list(pool.workers):
                handle = pool.workers.get(worker_id)
                if handle is None:
                    continue
                if not handle.alive:
                    reap(worker_id, "worker crashed", now)
                    continue
                if handle.running is None:
                    continue
                key, _index, _attempt, started_at = handle.running
                timeout = states[key].task.timeout_s
                if timeout is None:
                    timeout = plan.task_timeout_s
                if timeout is not None and now - started_at > timeout:
                    reap(worker_id,
                         f"task deadline of {timeout:.3g} s exceeded", now)
                    continue
                if now - handle.last_signal > plan.hang_timeout_s:
                    reap(worker_id,
                         f"no heartbeat for {plan.hang_timeout_s:.3g} s "
                         f"(worker hung)", now)
    finally:
        pool.close()
        now = time.monotonic()
        if tracer.enabled:
            for handle in pool.retired:
                with tracer.span("pool.worker",
                                 worker_id=handle.worker_id,
                                 tasks=handle.tasks_done,
                                 lifetime_s=round(now - handle.spawned_at,
                                                  6)):
                    pass

    return ShardedRun(list(results.values()), stats)


def _handle_message(message, pool, states, results, plan, metrics, stats,
                    finish, task_failed, what) -> None:
    kind = message[0]
    now = time.monotonic()
    if kind == MSG_READY:
        _kind, worker_id, _pid = message
        handle = pool.workers.get(worker_id)
        if handle is not None:
            handle.ready = True
            handle.last_signal = now
        return
    if kind == MSG_STARTED:
        _kind, worker_id, key, attempt = message
        handle = pool.workers.get(worker_id)
        if handle is not None and handle.running is not None \
                and handle.running[0] == key \
                and handle.running[2] == attempt:
            # Re-arm the per-task deadline from actual execution start
            # (queue latency does not count against the task).
            handle.running = (key, handle.running[1], attempt, now)
            handle.last_signal = now
        return
    if kind == MSG_HEARTBEAT:
        _kind, worker_id, key = message
        handle = pool.workers.get(worker_id)
        if handle is not None and handle.running is not None \
                and handle.running[0] == key:
            handle.last_signal = now
        return
    if kind == MSG_DONE:
        _kind, worker_id, key, attempt, value, counters, elapsed_s = message
        _mark_worker_idle(pool, worker_id, key, now)
        if key in results:
            return  # duplicate (late result of a worker we gave up on)
        for name, amount in counters.items():
            metrics.incr(name, amount)
        state = states[key]
        stats.completed += 1
        metrics.incr(POOL_TASKS_COMPLETED)
        finish(TaskResult(key=key, index=state.task.index, status="ok",
                          value=value, attempts=attempt,
                          elapsed_s=elapsed_s,
                          failures=tuple(state.failures)))
        return
    if kind == MSG_ERROR:
        _kind, worker_id, key, _attempt, summary, counters, _elapsed = message
        if key is None:
            raise OptimizationError(
                f"{what}: worker initialization failed — {summary}")
        _mark_worker_idle(pool, worker_id, key, now)
        if key in results:
            return
        for name, amount in counters.items():
            metrics.incr(name, amount)
        task_failed(states[key], summary, now)
        return
    raise OptimizationError(
        f"unknown pool message kind {kind!r}")  # pragma: no cover


def _mark_worker_idle(pool, worker_id, key, now) -> None:
    handle = pool.workers.get(worker_id)
    if handle is not None and handle.running is not None \
            and handle.running[0] == key:
        handle.running = None
        handle.last_signal = now
        handle.tasks_done += 1


def _drain(result_queue, timeout: float) -> List[tuple]:
    """All currently queued messages (blocking up to ``timeout`` for
    the first one)."""
    messages: List[tuple] = []
    try:
        messages.append(result_queue.get(timeout=timeout))
    except queue_module.Empty:
        return messages
    while True:
        try:
            messages.append(result_queue.get_nowait())
        except queue_module.Empty:
            return messages
