"""The supervised-pool task model: pure shards, canonical merges.

A :class:`Task` is one unit of a sharded computation — a chunk of
(Vdd, Vth) grid cells, one experiment, a batch of Monte-Carlo samples.
The determinism contract every producer must honour:

* the task function is a **pure shard function**: its value depends only
  on the worker-init state and the task arguments, never on execution
  order, the worker it lands on, or how many attempts it took;
* task ``index`` fixes the **canonical merge order**: consumers read
  :attr:`ShardedRun.results` (sorted by index), so a run with 8 workers
  and two crashed attempts merges to exactly what a serial run produces.

Failure taxonomy (:class:`TaskResult.status`):

``"ok"``
    The task value is present; ``attempts`` says how many tries it took.
``"quarantined"``
    The task failed on every allowed attempt (a *poison task*). It is
    reported — with the per-attempt error summaries in
    :attr:`TaskResult.degradation` — never silently dropped; consumers
    either surface it as a labeled degraded row (the experiment runner)
    or refuse to merge (:meth:`ShardedRun.raise_if_quarantined`).
``"skipped"``
    Cancelled before dispatch (fail-fast or a shared deadline).

Retry pacing is :func:`backoff_delay`: exponential in the attempt
number, capped, with *deterministic* jitter derived from the task key —
reproducible schedules, but no two poison tasks hammering a resource in
lockstep.
"""

from __future__ import annotations

import random
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.errors import OptimizationError

#: Final states a task can end a sharded run in.
TASK_STATUSES = ("ok", "quarantined", "skipped")

#: Traceback frames kept in a worker-side failure summary.
_TRACEBACK_FRAMES = 4


@dataclass(frozen=True)
class Task:
    """One pure shard of a sharded computation.

    ``fn`` must be a module-level callable (picklable by reference) with
    signature ``fn(state, *args)`` where ``state`` is whatever the
    run's worker initializer returned (``None`` without one). ``key``
    labels the task in logs/metrics/trace files and must be unique
    within a run; ``index`` is the canonical merge position.
    """

    key: str
    index: int
    fn: Callable
    args: Tuple = ()
    #: Per-task wall-clock budget override (None = the plan's default).
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.key:
            raise OptimizationError("task key must be non-empty")
        if self.index < 0:
            raise OptimizationError(
                f"task index must be >= 0, got {self.index}")


@dataclass(frozen=True)
class TaskResult:
    """Final outcome of one task after retries/quarantine resolved."""

    key: str
    index: int
    #: One of :data:`TASK_STATUSES`.
    status: str
    #: The shard value (``None`` unless ``status == "ok"``).
    value: object = None
    #: Compact error summary of the *last* failed attempt.
    error: str = ""
    #: Attempts consumed (0 for skipped tasks).
    attempts: int = 0
    #: Wall-clock seconds of the successful attempt (worker-side).
    elapsed_s: float = 0.0
    #: Per-attempt failure summaries, oldest first.
    failures: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def degradation(self) -> Dict[str, object]:
        """The labeled-degraded record of a quarantined task.

        Mirrors the shape of
        :class:`repro.runtime.fallback.DegradedResult.degradation` so
        report code can treat a quarantined shard like any other
        degraded outcome: a ``stage`` label plus the attempts that
        failed.
        """
        if self.status != "quarantined":
            return {}
        return {
            "stage": "quarantine",
            "task": self.key,
            "attempts": self.attempts,
            "errors": list(self.failures),
        }


class ShardedRun:
    """The merged outcome of one supervised sharded run.

    ``results`` holds one :class:`TaskResult` per submitted task in
    canonical (index) order — *always*, whatever order workers finished
    in and however many attempts each task took.
    """

    def __init__(self, results: Sequence[TaskResult], stats: "PoolStats"):
        ordered = sorted(results, key=lambda result: result.index)
        self.results: Tuple[TaskResult, ...] = tuple(ordered)
        self.stats = stats

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def quarantined(self) -> Tuple[TaskResult, ...]:
        return tuple(result for result in self.results
                     if result.status == "quarantined")

    def values(self) -> Tuple[object, ...]:
        """Task values in canonical order (all tasks must be ok)."""
        self.raise_if_quarantined()
        return tuple(result.value for result in self.results)

    def raise_if_quarantined(self, what: str = "sharded run") -> None:
        """Refuse to merge a run with poison shards.

        Consumers whose merge would be *wrong* with holes (an optimizer
        grid, a Monte-Carlo estimate) call this; consumers that can
        surface per-shard degradation (the experiment runner) inspect
        :attr:`quarantined` instead.
        """
        poisoned = self.quarantined
        if poisoned:
            details = "; ".join(
                f"{result.key} after {result.attempts} attempts "
                f"({result.error.splitlines()[-1] if result.error else '?'})"
                for result in poisoned[:4])
            raise OptimizationError(
                f"{what}: {len(poisoned)} task(s) quarantined — {details}")


@dataclass
class PoolStats:
    """Counters of one sharded run (mirrored into the metrics registry)."""

    #: "pool" (worker processes) or "in-process" (serial fallback).
    mode: str = "in-process"
    completed: int = 0
    retried: int = 0
    quarantined: int = 0
    skipped: int = 0
    worker_respawns: int = 0
    workers: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "completed": self.completed,
            "retried": self.retried,
            "quarantined": self.quarantined,
            "skipped": self.skipped,
            "worker_respawns": self.worker_respawns,
            "workers": self.workers,
        }


def backoff_delay(attempt: int, key: str = "",
                  base_s: float = 0.05, cap_s: float = 2.0,
                  jitter: float = 0.5) -> float:
    """Delay before retry number ``attempt`` (the first retry is 1).

    Exponential (``base_s * 2**(attempt-1)``), capped at ``cap_s``,
    with deterministic jitter: the multiplier is drawn from
    ``[1 - jitter/2, 1 + jitter/2]`` by a :class:`random.Random` seeded
    from ``(key, attempt)`` — the same task retries on the same
    schedule in every run, but different tasks decorrelate.
    """
    if attempt < 1:
        raise OptimizationError(f"attempt must be >= 1, got {attempt}")
    if not 0.0 <= jitter <= 1.0:
        raise OptimizationError(f"jitter must lie in [0, 1], got {jitter}")
    raw = min(cap_s, base_s * (2.0 ** (attempt - 1)))
    seed = int.from_bytes(f"{key}#{attempt}".encode(), "little")
    spread = random.Random(seed).random() - 0.5
    return raw * (1.0 + jitter * spread)


def chunk_ranges(total: int, max_chunks: int) -> Tuple[Tuple[int, int], ...]:
    """Split ``range(total)`` into at most ``max_chunks`` contiguous shards.

    Chunk boundaries depend only on ``(total, max_chunks)`` — never on
    worker count or timing — so sharded producers that batch by chunk
    (Monte-Carlo samples, sweep points) stay jobs-invariant. Sizes
    differ by at most one, larger chunks first.
    """
    if total < 0:
        raise OptimizationError(f"total must be >= 0, got {total}")
    if max_chunks < 1:
        raise OptimizationError(
            f"max_chunks must be >= 1, got {max_chunks}")
    chunks = min(max_chunks, total)
    if chunks == 0:
        return ()
    base, extra = divmod(total, chunks)
    ranges = []
    start = 0
    for chunk in range(chunks):
        size = base + (1 if chunk < extra else 0)
        ranges.append((start, start + size))
        start += size
    return tuple(ranges)


def failure_summary(error: BaseException) -> str:
    """Last traceback frames + exception line, shippable across a queue."""
    frames = traceback.extract_tb(error.__traceback__)
    lines = traceback.format_list(frames[-_TRACEBACK_FRAMES:])
    lines += traceback.format_exception_only(type(error), error)
    return "".join(lines).rstrip()
