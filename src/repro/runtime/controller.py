"""Run control: wall-clock deadlines, cancellation, and progress.

A :class:`RunController` is the cooperative contract between a caller
(CLI, experiment suite, service) and a long-running search. The search
calls :meth:`RunController.check` at every objective evaluation; the
controller raises :class:`~repro.errors.DeadlineExceeded` once the
wall-clock budget is spent or :class:`~repro.errors.RunCancelled` after
:meth:`RunController.cancel`. Optimizers flush their checkpoint before
propagating either, so an interrupted search resumes exactly where it
stopped.

Controllers reach the optimizers two ways:

* explicitly, via the ``controller`` field of the optimizer settings
  objects (:class:`~repro.optimize.heuristic.HeuristicSettings` etc.);
* ambiently, via :func:`use_controller` — a context manager that
  installs a controller for everything on the current thread, which is
  how the experiment runner bounds whole table regenerations without
  threading a parameter through every driver.

Time is injected (``clock=``) so tests and the fault harness can advance
a :class:`FakeClock` deterministically instead of sleeping.
"""

from __future__ import annotations

import contextlib
import math
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Mapping, Optional

from repro.errors import DeadlineExceeded, OptimizationError, RunCancelled


@dataclass(frozen=True)
class ProgressEvent:
    """One progress callback payload from a running search."""

    #: Which stage of the search emitted the event (``"grid"``,
    #: ``"refine"``, ``"paper"``, ``"anneal"``, ``"baseline"``...).
    phase: str
    #: Objective evaluations completed so far.
    evaluations: int
    #: Best total energy seen so far (``inf`` until a feasible point).
    best_energy: float
    #: Wall-clock seconds since the controller was created.
    elapsed_s: float
    #: Counter snapshot from the ambient metrics registry at emit time
    #: (``None`` when observability is disabled).
    metrics: Optional[Mapping[str, int]] = None

    def to_dict(self) -> dict:
        """Strict-JSON form of the event.

        ``best_energy`` is ``inf`` until the first feasible point;
        ``json.dumps`` would emit the non-JSON token ``Infinity`` and
        corrupt checkpoints/traces downstream, so non-finite values
        serialize as ``null`` (:func:`ProgressEvent.from_dict` restores
        them).
        """
        from repro.obs.serialize import json_sanitize

        return {
            "phase": self.phase,
            "evaluations": self.evaluations,
            "best_energy": (self.best_energy
                            if math.isfinite(self.best_energy) else None),
            "elapsed_s": self.elapsed_s,
            "metrics": json_sanitize(self.metrics),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ProgressEvent":
        """Rebuild an event from :meth:`to_dict` output.

        A ``null`` ``best_energy`` round-trips back to ``inf`` (the
        not-yet-feasible sentinel the optimizers use).
        """
        best = payload.get("best_energy")
        return cls(phase=str(payload["phase"]),
                   evaluations=int(payload["evaluations"]),
                   best_energy=math.inf if best is None else float(best),
                   elapsed_s=float(payload["elapsed_s"]),
                   metrics=payload.get("metrics"))


class FakeClock:
    """A manually advanced clock for deterministic deadline tests.

    Pass the instance itself as ``RunController(clock=...)`` — it is
    callable and returns the current fake time.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds`` (must be >= 0)."""
        if seconds < 0.0:
            raise OptimizationError(
                f"cannot advance a clock backwards ({seconds} s)")
        self._now += seconds


class RunController:
    """Deadline, cancellation, checkpoint and progress plumbing for a run.

    ``deadline_s``
        Wall-clock budget in seconds, measured from construction;
        ``None`` means unbounded.
    ``clock``
        Monotonic time source (default :func:`time.monotonic`); inject a
        :class:`FakeClock` for deterministic tests.
    ``progress``
        Optional callback receiving :class:`ProgressEvent` instances.
    ``checkpoint_path`` / ``checkpoint_every``
        Where (and how often, in objective evaluations) checkpointing
        searches persist their state. Optimizers that support resume
        honour these; others ignore them.
    """

    def __init__(self, deadline_s: Optional[float] = None,
                 clock: Optional[Callable[[], float]] = None,
                 progress: Optional[Callable[[ProgressEvent], None]] = None,
                 checkpoint_path: str | Path | None = None,
                 checkpoint_every: int = 1):
        if deadline_s is not None and deadline_s <= 0.0:
            raise OptimizationError(
                f"deadline_s must be > 0, got {deadline_s}")
        if checkpoint_every < 1:
            raise OptimizationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.deadline_s = deadline_s
        self._clock = clock or time.monotonic
        self._progress = progress
        self.checkpoint_path = (Path(checkpoint_path)
                                if checkpoint_path is not None else None)
        self.checkpoint_every = checkpoint_every
        self._started = self._clock()
        self._cancelled = False
        self.events_emitted = 0
        self.checks = 0

    # -- time -------------------------------------------------------------

    def elapsed(self) -> float:
        """Wall-clock seconds since the controller was created."""
        return self._clock() - self._started

    def remaining(self) -> Optional[float]:
        """Seconds left before the deadline (``None`` = unbounded)."""
        if self.deadline_s is None:
            return None
        return self.deadline_s - self.elapsed()

    @property
    def expired(self) -> bool:
        """True once the wall-clock budget is spent."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    # -- cancellation ------------------------------------------------------

    def cancel(self) -> None:
        """Request cooperative cancellation; the next ``check()`` raises."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    # -- the cooperative checkpoint ---------------------------------------

    def check(self, where: str = "") -> None:
        """Raise if the run should stop (deadline passed or cancelled)."""
        self.checks += 1
        suffix = f" during {where}" if where else ""
        if self._cancelled:
            raise RunCancelled(f"run cancelled{suffix}")
        if self.expired:
            raise DeadlineExceeded(
                f"wall-clock deadline of {self.deadline_s:.3g} s exceeded"
                f"{suffix} (elapsed {self.elapsed():.3g} s)")

    # -- progress ----------------------------------------------------------

    def report(self, phase: str, evaluations: int,
               best_energy: float) -> None:
        """Emit a :class:`ProgressEvent` to the callback, if any.

        When an ambient metrics registry is installed
        (:func:`repro.obs.use_metrics`), the event carries a counter
        snapshot so progress consumers see the hot counters live.
        """
        self.events_emitted += 1
        if self._progress is not None:
            from repro.obs.metrics import current_metrics

            registry = current_metrics()
            snapshot = registry.counters() if registry.enabled else None
            self._progress(ProgressEvent(phase=phase, evaluations=evaluations,
                                         best_energy=best_energy,
                                         elapsed_s=self.elapsed(),
                                         metrics=snapshot))


#: Ambient controller for the current thread/task (see use_controller).
_CURRENT: ContextVar[Optional[RunController]] = ContextVar(
    "repro_run_controller", default=None)


def current_controller() -> Optional[RunController]:
    """The ambient controller installed by :func:`use_controller`, if any."""
    return _CURRENT.get()


def resolve_controller(explicit: Optional[RunController]
                       ) -> Optional[RunController]:
    """The controller a search should obey: explicit wins over ambient."""
    return explicit if explicit is not None else _CURRENT.get()


@contextlib.contextmanager
def use_controller(controller: Optional[RunController]
                   ) -> Iterator[Optional[RunController]]:
    """Install ``controller`` as the ambient controller for this context.

    Everything called inside the ``with`` block that does not carry its
    own explicit controller (optimizers invoked by the experiment
    drivers, for instance) picks this one up via
    :func:`resolve_controller`.
    """
    token = _CURRENT.set(controller)
    try:
        yield controller
    finally:
        _CURRENT.reset(token)
