"""Crash-safe file persistence primitives.

A process killed mid-``write_text`` leaves a truncated file behind — for
a design point or a checkpoint that means the *previous* good state is
destroyed along with the new one. Every durable artifact in the library
(design points, CSV exports, search checkpoints) therefore goes through
:func:`atomic_write_text`: the payload is written to a temporary file in
the destination directory, fsynced, and atomically renamed over the
target with :func:`os.replace`. Readers either see the old complete file
or the new complete file, never a torn write.

:func:`read_json_object` is the matching loader: it turns truncated or
corrupt JSON into a typed library error with an actionable message
instead of a bare :class:`json.JSONDecodeError`.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Type

from repro.errors import OptimizationError, ReproError


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (tempfile + ``os.replace``).

    The temporary file is created in the destination directory so the
    final rename never crosses a filesystem boundary. Parent directories
    are created as needed. On any failure the temporary file is removed
    and the original ``path`` (if it existed) is left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(handle, "w") as stream:
            stream.write(text)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already renamed or gone
            pass
        raise
    return path


def atomic_write_json(path: str | Path, payload: Dict[str, object]) -> Path:
    """Serialize ``payload`` as pretty-printed JSON and write atomically."""
    return atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def append_text(path: str | Path, text: str) -> Path:
    """Append ``text`` to ``path`` durably (open-append, flush, fsync).

    The write-ahead journal's primitive: ``O_APPEND`` makes each record
    a single contiguous write and the fsync makes it durable before the
    caller acts on it. Appends are *not* atomic across a crash — a
    SIGKILL can leave a torn final record — which is exactly the damage
    :meth:`repro.serve.journal.JobJournal.read` detects and repairs by
    truncating to the last complete line.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as stream:
        stream.write(text)
        stream.flush()
        os.fsync(stream.fileno())
    return path


def read_json_object(path: str | Path,
                     error: Type[ReproError] = OptimizationError
                     ) -> Dict[str, object]:
    """Load a JSON object from ``path`` with corruption detection.

    Raises ``error`` (default :class:`~repro.errors.OptimizationError`)
    with a clear message when the file is missing, empty, truncated,
    not valid JSON, or not a JSON object — callers never see a bare
    :class:`json.JSONDecodeError`.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except FileNotFoundError:
        raise error(f"{path}: no such file") from None
    except OSError as exc:
        raise error(f"{path}: unreadable ({exc})") from None
    if not text.strip():
        raise error(f"{path}: empty file (interrupted or truncated write?)")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise error(
            f"{path}: invalid JSON at line {exc.lineno}, column {exc.colno} "
            f"({exc.msg}); the file may be truncated or corrupt") from None
    if not isinstance(payload, dict):
        raise error(f"{path}: expected a JSON object, "
                    f"got {type(payload).__name__}")
    return payload
