"""Resilient execution runtime for optimizers and experiments.

Production reality for an optimization service: runs must be bounded in
wall-clock time, interruptible, resumable, and a single failure must
degrade — visibly — rather than abort a batch. This package supplies
those guarantees as a layer *around* the numeric code:

* :mod:`~repro.runtime.controller` — :class:`RunController`: deadlines,
  cooperative cancellation, progress callbacks; threaded through every
  optimizer via its settings object or ambiently via
  :func:`use_controller`.
* :mod:`~repro.runtime.checkpoint` — :class:`SearchCheckpoint`: exact
  resume of the deterministic (Vdd, Vth) searches from the last
  completed corner (``resume_from=`` on the optimizers, ``--resume`` on
  the CLI).
* :mod:`~repro.runtime.fallback` — :func:`optimize_with_fallback`:
  a declared strategy chain (grid → paper bisection → nearest-feasible
  cycle-time relaxation) returning labeled :class:`DegradedResult`
  outcomes instead of raising.
* :mod:`~repro.runtime.faults` — :class:`FaultInjector`: deterministic
  NaN/exception/timeout injection at the energy/delay/sizing model
  seams, so every recovery path above is actually tested.
* :mod:`~repro.runtime.atomicio` — crash-safe tempfile +
  ``os.replace`` persistence used by checkpoints, design points, and
  CSV exports.
* :mod:`~repro.runtime.supervisor` / :mod:`~repro.runtime.pool` /
  :mod:`~repro.runtime.tasks` — the supervised parallel executor:
  crash-isolated worker processes running pure task shards with
  heartbeats, per-task deadlines, retry + backoff, poison-task
  quarantine, and canonical (jobs-invariant) merging; installed
  ambiently via :func:`use_parallel` and consumed by the optimizers,
  the experiment runner, and the analysis sweeps.
"""

from repro.runtime.controller import (
    FakeClock,
    ProgressEvent,
    RunController,
    current_controller,
    resolve_controller,
    use_controller,
)
from repro.runtime.atomicio import (
    atomic_write_json,
    atomic_write_text,
    read_json_object,
)
from repro.runtime.checkpoint import SearchCheckpoint
from repro.runtime.faults import (
    SEAMS,
    FaultInjector,
    FaultSpec,
    TriggeredFault,
)
from repro.runtime.fallback import (
    RELAX_STAGE,
    DegradedResult,
    FallbackPolicy,
    optimize_with_fallback,
)
from repro.runtime.pool import in_worker, multiprocessing_available
from repro.runtime.supervisor import (
    ParallelPlan,
    current_parallel,
    resolve_parallel,
    run_sharded,
    use_parallel,
)
from repro.runtime.tasks import (
    PoolStats,
    ShardedRun,
    Task,
    TaskResult,
    backoff_delay,
    chunk_ranges,
)

__all__ = [
    "RunController",
    "ProgressEvent",
    "FakeClock",
    "use_controller",
    "current_controller",
    "resolve_controller",
    "SearchCheckpoint",
    "atomic_write_text",
    "atomic_write_json",
    "read_json_object",
    "FaultSpec",
    "FaultInjector",
    "TriggeredFault",
    "SEAMS",
    "FallbackPolicy",
    "DegradedResult",
    "RELAX_STAGE",
    "optimize_with_fallback",
    "ParallelPlan",
    "use_parallel",
    "current_parallel",
    "resolve_parallel",
    "run_sharded",
    "Task",
    "TaskResult",
    "ShardedRun",
    "PoolStats",
    "backoff_delay",
    "chunk_ranges",
    "in_worker",
    "multiprocessing_available",
]
