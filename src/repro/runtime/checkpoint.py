"""Checkpoint/resume state for the (Vdd, Vth) searches.

Both Procedure 2 strategies (``grid`` and the paper's nested bisection)
are deterministic sequences of objective evaluations at (Vdd, Vth)
corners. That makes resume simple and exact: persist the log of
completed corner evaluations plus the best-so-far design, and on resume
replay the search with a cache — corners already in the log return their
recorded energy instantly, the first unfinished corner onwards computes
live. A search interrupted at *any* corner therefore finishes with the
identical design point and energy as an uninterrupted run (property-
tested in ``tests/test_runtime_checkpoint.py``).

The file is JSON, written atomically (:mod:`repro.runtime.atomicio`) so
a crash mid-save never destroys the previous good checkpoint, and is
fingerprinted against the network/strategy/settings so a checkpoint
cannot silently resume a *different* search
(:class:`~repro.errors.CheckpointError` otherwise).
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import CheckpointError
from repro.obs.instrument import CHECKPOINT_FLUSHES
from repro.obs.metrics import current_metrics
from repro.runtime.atomicio import atomic_write_json, read_json_object

FORMAT_KEY = "repro-checkpoint"
FORMAT_VERSION = 1


def _encode_float(value: float) -> float | str:
    """JSON-portable float: non-finite values become marker strings."""
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return float(value)


def _decode_float(value) -> float:
    if value == "nan":
        return math.nan
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)


class SearchCheckpoint:
    """The resumable state of one deterministic (Vdd, Vth) search.

    ``fingerprint`` identifies the search (network, strategy, grid
    sizes, frequency, ranges...); a checkpoint only resumes a search
    with an identical fingerprint. ``path`` is where :meth:`save`
    persists (atomic); ``every`` batches saves to one write per N
    recorded evaluations (the final :meth:`flush` always writes).
    """

    def __init__(self, fingerprint: Mapping[str, object],
                 path: str | Path | None = None, every: int = 1):
        if every < 1:
            raise CheckpointError(f"checkpoint every must be >= 1, "
                                  f"got {every}")
        self.fingerprint: Dict[str, object] = dict(fingerprint)
        self.path = Path(path) if path is not None else None
        self.every = every
        #: Completed evaluations in search order: (vdd, vth, energy, feasible).
        self.log: List[Tuple[float, float, float, bool]] = []
        self._index: Dict[Tuple[float, float], Tuple[float, bool]] = {}
        self.best_energy: float = math.inf
        self.best_point: Optional[Tuple[float, float]] = None
        self.best_widths: Optional[Dict[str, float]] = None
        #: Serialized ``SearchStrategy.state()`` snapshot, when the
        #: search runs through the strategy seam. Informational for
        #: resume (strategies are deterministic and rebuild their state
        #: by replaying the corner log) but persisted so an interrupted
        #: adaptive search is inspectable and verifiable.
        self.strategy_state: Optional[Dict[str, object]] = None
        #: Per-corner robust-estimate bookkeeping (sample/quarantine
        #: counters, yield CI), keyed by
        #: :func:`repro.robust.objective.corner_key`. Persisted so a
        #: resumed robust search reports byte-identical Monte-Carlo
        #: counters without re-sampling replayed corners; absent (and
        #: empty) for nominal searches, so old checkpoints still load.
        self.robust_stats: Dict[str, Dict[str, object]] = {}
        self._pending = 0
        self._state_dirty = False

    # -- recording ---------------------------------------------------------

    def lookup(self, vdd: float, vth: float
               ) -> Optional[Tuple[float, bool]]:
        """(energy, feasible) of an already-completed corner, or None."""
        return self._index.get((vdd, vth))

    def record(self, vdd: float, vth: float, energy: float, feasible: bool,
               best_energy: float,
               best_point: Optional[Tuple[float, float]],
               best_widths: Optional[Mapping[str, float]]) -> None:
        """Append one completed evaluation and the current best snapshot."""
        key = (vdd, vth)
        if key not in self._index:
            self.log.append((vdd, vth, energy, feasible))
            self._index[key] = (energy, feasible)
        if best_point is not None and best_energy < self.best_energy:
            self.best_energy = best_energy
            self.best_point = best_point
            self.best_widths = dict(best_widths) if best_widths else None
        self._pending += 1
        if self.path is not None and self._pending >= self.every:
            self.save()

    def note_strategy_state(self, state: Optional[Dict[str, object]]) -> None:
        """Update the persisted strategy snapshot (saved on next flush)."""
        self.strategy_state = dict(state) if state is not None else None
        self._state_dirty = True

    def note_robust_stat(self, key: str,
                         stat: Mapping[str, object]) -> None:
        """Attach one corner's robust-estimate record (keyed dedup)."""
        self.robust_stats[key] = dict(stat)
        self._state_dirty = True

    @property
    def completed(self) -> int:
        """Number of distinct corners already evaluated."""
        return len(self.log)

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form of the checkpoint."""
        return {
            "_format": FORMAT_KEY,
            "_version": FORMAT_VERSION,
            "fingerprint": dict(self.fingerprint),
            "evaluations": [[_encode_float(vdd), _encode_float(vth),
                             _encode_float(energy), bool(feasible)]
                            for vdd, vth, energy, feasible in self.log],
            "best_energy": _encode_float(self.best_energy),
            "best_point": (list(self.best_point)
                           if self.best_point is not None else None),
            "best_widths": self.best_widths,
            "strategy_state": self.strategy_state,
            "robust_stats": self.robust_stats or None,
        }

    def save(self) -> Optional[Path]:
        """Atomically persist to :attr:`path` (no-op when path is None)."""
        if self.path is None:
            return None
        atomic_write_json(self.path, self.to_dict())
        current_metrics().incr(CHECKPOINT_FLUSHES)
        self._pending = 0
        self._state_dirty = False
        return self.path

    def flush(self) -> Optional[Path]:
        """Persist any batched-but-unsaved records."""
        if self.path is not None and (self._pending > 0 or self._state_dirty):
            return self.save()
        return None

    @classmethod
    def load(cls, path: str | Path,
             fingerprint: Mapping[str, object],
             every: int = 1) -> "SearchCheckpoint":
        """Load and validate a checkpoint for the search ``fingerprint``.

        Raises :class:`~repro.errors.CheckpointError` on corrupt or
        truncated files and on fingerprint mismatches (a checkpoint from
        a different network, strategy, or settings must never steer this
        search).
        """
        payload = read_json_object(path, error=CheckpointError)
        if payload.get("_format") != FORMAT_KEY:
            raise CheckpointError(
                f"{path}: not a checkpoint file (missing format marker)")
        if payload.get("_version") != FORMAT_VERSION:
            raise CheckpointError(
                f"{path}: unsupported checkpoint version "
                f"{payload.get('_version')!r}")
        stored = payload.get("fingerprint")
        if not isinstance(stored, dict):
            raise CheckpointError(f"{path}: checkpoint has no fingerprint")
        expected = dict(fingerprint)
        mismatched = sorted(
            key for key in set(stored) | set(expected)
            if stored.get(key) != _jsonable(expected.get(key)))
        if mismatched:
            details = ", ".join(
                f"{key}: checkpoint={stored.get(key)!r} "
                f"search={expected.get(key)!r}" for key in mismatched[:4])
            raise CheckpointError(
                f"{path}: checkpoint belongs to a different search "
                f"({details})")

        checkpoint = cls(fingerprint, path=path, every=every)
        raw_log = payload.get("evaluations")
        if not isinstance(raw_log, list):
            raise CheckpointError(f"{path}: checkpoint has no evaluation log")
        try:
            for entry in raw_log:
                vdd, vth, energy, feasible = entry
                vdd = _decode_float(vdd)
                vth = _decode_float(vth)
                checkpoint.log.append(
                    (vdd, vth, _decode_float(energy), bool(feasible)))
                checkpoint._index[(vdd, vth)] = (
                    _decode_float(energy), bool(feasible))
            checkpoint.best_energy = _decode_float(
                payload.get("best_energy", "inf"))
            point = payload.get("best_point")
            if point is not None:
                checkpoint.best_point = (_decode_float(point[0]),
                                         _decode_float(point[1]))
            widths = payload.get("best_widths")
            if widths is not None:
                if not isinstance(widths, dict):
                    raise CheckpointError(
                        f"{path}: best_widths must be an object")
                checkpoint.best_widths = {str(name): float(width)
                                          for name, width in widths.items()}
            strategy_state = payload.get("strategy_state")
            if strategy_state is not None:
                if not isinstance(strategy_state, dict):
                    raise CheckpointError(
                        f"{path}: strategy_state must be an object")
                checkpoint.strategy_state = strategy_state
            robust_stats = payload.get("robust_stats")
            if robust_stats is not None:
                if not isinstance(robust_stats, dict):
                    raise CheckpointError(
                        f"{path}: robust_stats must be an object")
                checkpoint.robust_stats = {
                    str(key): dict(stat)
                    for key, stat in robust_stats.items()}
        except CheckpointError:
            raise
        except (TypeError, ValueError, IndexError) as exc:
            raise CheckpointError(
                f"{path}: malformed checkpoint payload ({exc})") from None
        checkpoint._pending = 0
        return checkpoint


def _jsonable(value):
    """The form a fingerprint value takes after a JSON round-trip."""
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    return value
