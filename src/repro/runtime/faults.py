"""Deterministic fault injection at the model seams.

Recovery code that is never exercised is broken code. This harness
injects three fault kinds — NaN results, raised exceptions, and
wall-clock timeouts — at the three seams every optimizer funnels
through:

* ``"energy"``  — :func:`repro.power.energy.total_energy`
* ``"delay"``   — :func:`repro.timing.sta.analyze_timing`
* ``"sizing"``  — :func:`repro.optimize.width_search.size_widths`

Faults trigger on exact per-seam call counts (``at_call``/``count``), so
every run of a test is identical. Because the library imports these
functions with ``from ... import``, a patch of the defining module alone
would miss the consumers' bindings; :class:`FaultInjector` therefore
rebinds every module attribute in :data:`sys.modules` that references
the original function, and restores all of them on exit.

Use as a context manager::

    plan = [FaultSpec(seam="energy", kind="nan", at_call=3, count=2)]
    with FaultInjector(plan) as injector:
        optimize_joint(problem)
    assert injector.triggered

or imperatively — :meth:`FaultInjector.arm` / :meth:`FaultInjector.disarm`
— which is how pool workers activate a plan for their whole lifetime.
Plans serialize to JSON (:func:`plan_to_json` / :func:`plan_from_json`)
so the supervisor can ship one to worker subprocesses through the task
payload or the ``REPRO_FAULT_PLAN`` environment variable.

Every wrapper carries the original callable on a well-known attribute
(:data:`ORIGINAL_ATTR`). That makes restoration robust against the two
ways a binding can escape the arm-time bookkeeping: a module imported
(or re-imported — ``importlib.reload`` in a worker) while the plan was
armed copies the *wrapper* into its namespace via ``from ... import``,
and a forked worker inherits wrappers installed by a parent injector
instance it never saw. Disarm sweeps :data:`sys.modules` and restores
any binding tagged as a fault wrapper, whoever installed it; arm
unwraps already-tagged bindings first, so stacked/stale wrappers can
never double-count a call.

Timeout faults advance the injector's :class:`FakeClock` when one is
supplied (the deterministic path used by tests — pair it with a
``RunController(clock=fake_clock)``) and fall back to a real
:func:`time.sleep` otherwise.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import FaultInjectedError, OptimizationError
from repro.runtime.controller import FakeClock

#: seam name -> (defining module, function name).
SEAMS: Dict[str, Tuple[str, str]] = {
    "energy": ("repro.power.energy", "total_energy"),
    "delay": ("repro.timing.sta", "analyze_timing"),
    "sizing": ("repro.optimize.width_search", "size_widths"),
}

_KINDS = ("nan", "exception", "timeout")

#: Attribute tagging a fault wrapper with the callable it replaced.
ORIGINAL_ATTR = "__repro_fault_original__"


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: *what* to inject, *where*, and *when*.

    ``at_call`` is 1-based: ``at_call=3, count=2`` faults the third and
    fourth calls of the seam. ``delay_s`` only applies to ``timeout``
    faults.
    """

    seam: str
    kind: str
    at_call: int = 1
    count: int = 1
    delay_s: float = 3600.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.seam not in SEAMS:
            raise OptimizationError(
                f"unknown fault seam {self.seam!r}; have {sorted(SEAMS)}")
        if self.kind not in _KINDS:
            raise OptimizationError(
                f"unknown fault kind {self.kind!r}; have {_KINDS}")
        if self.at_call < 1 or self.count < 1:
            raise OptimizationError("at_call and count must be >= 1")
        if self.kind == "nan" and self.seam == "sizing":
            raise OptimizationError(
                "NaN injection applies to the energy/delay model seams; "
                "use kind='exception' for the sizing seam")

    def matches(self, call_number: int) -> bool:
        """Does this spec fire on the seam's ``call_number``-th call?"""
        return self.at_call <= call_number < self.at_call + self.count

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (see :func:`plan_to_json`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        known = {spec_field.name for spec_field in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise OptimizationError(
                f"unknown FaultSpec fields {sorted(unknown)}")
        return cls(**payload)


@dataclass(frozen=True)
class TriggeredFault:
    """A fault that actually fired (for test assertions)."""

    spec: FaultSpec
    call_number: int


class FaultInjector:
    """Context manager that arms a plan of :class:`FaultSpec` faults."""

    def __init__(self, plan: Iterable[FaultSpec],
                 clock: Optional[FakeClock] = None,
                 sleep: Callable[[float], None] = time.sleep):
        self.plan: Tuple[FaultSpec, ...] = tuple(plan)
        self.clock = clock
        self._sleep = sleep
        self.calls: Dict[str, int] = {seam: 0 for seam in SEAMS}
        self.triggered: List[TriggeredFault] = []
        #: (module, attribute, original) bindings to restore on exit.
        self._patched: List[Tuple[object, str, object]] = []
        #: wrapper (by id) -> original, for bindings created *during* the
        #: armed window by modules imported while the plan was active.
        self._originals: Dict[int, object] = {}

    # -- arming/disarming --------------------------------------------------

    def arm(self) -> "FaultInjector":
        """Install the plan's wrappers at every seam binding.

        A binding that is already a fault wrapper — left behind by a
        prior injector in a forked worker, or re-imported while another
        plan was armed — is unwrapped to its tagged original first, so
        wrappers never stack.
        """
        for seam, (module_name, function_name) in SEAMS.items():
            module = importlib.import_module(module_name)
            original = getattr(module, function_name)
            original = getattr(original, ORIGINAL_ATTR, original)
            wrapper = self._wrap(seam, original)
            self._originals[id(wrapper)] = original
            for candidate in list(sys.modules.values()):
                candidate_dict = getattr(candidate, "__dict__", None)
                if not isinstance(candidate_dict, dict):
                    continue
                for attribute, value in list(candidate_dict.items()):
                    unwrapped = getattr(value, ORIGINAL_ATTR, value)
                    if unwrapped is original:
                        self._patched.append((candidate, attribute, original))
                        setattr(candidate, attribute, wrapper)
        return self

    def disarm(self) -> None:
        """Restore every seam binding this plan (or a stale one) wrapped."""
        for module, attribute, original in reversed(self._patched):
            setattr(module, attribute, original)
        self._patched.clear()
        # A module imported — or re-imported, as workers do — while the
        # plan was armed copies the *wrapper* into its own namespace via
        # ``from ... import``. Those bindings were not recorded above,
        # and leaving them in place would hide the seam from the next
        # injector, so sweep sys.modules and restore anything still
        # tagged as a fault wrapper (even one installed by another
        # injector instance, e.g. inherited across a fork).
        for candidate in list(sys.modules.values()):
            candidate_dict = getattr(candidate, "__dict__", None)
            if not isinstance(candidate_dict, dict):
                continue
            for attribute, value in list(candidate_dict.items()):
                original = getattr(value, ORIGINAL_ATTR, None)
                if original is not None:
                    setattr(candidate, attribute, original)
        self._originals.clear()

    def __enter__(self) -> "FaultInjector":
        return self.arm()

    def __exit__(self, *exc_info) -> None:
        self.disarm()

    # -- the injected behaviors -------------------------------------------

    def _wrap(self, seam: str, original: Callable) -> Callable:
        def wrapper(*args, **kwargs):
            self.calls[seam] += 1
            call_number = self.calls[seam]
            spec = next((candidate for candidate in self.plan
                         if candidate.seam == seam
                         and candidate.matches(call_number)), None)
            if spec is None:
                return original(*args, **kwargs)
            self.triggered.append(TriggeredFault(spec, call_number))
            if spec.kind == "exception":
                raise FaultInjectedError(
                    f"{spec.message} (seam={seam}, call={call_number})")
            if spec.kind == "timeout":
                if self.clock is not None:
                    self.clock.advance(spec.delay_s)
                else:  # pragma: no cover - real sleeps are test-hostile
                    self._sleep(spec.delay_s)
                return original(*args, **kwargs)
            # kind == "nan": compute the genuine result, then poison it.
            result = original(*args, **kwargs)
            return _poison(seam, result)

        wrapper.__name__ = f"faulty_{original.__name__}"
        wrapper.__doc__ = original.__doc__
        setattr(wrapper, ORIGINAL_ATTR, original)
        return wrapper


def plan_to_json(plan: Iterable[FaultSpec]) -> str:
    """Serialize a fault plan for shipment to worker subprocesses."""
    return json.dumps([spec.to_dict() for spec in plan], sort_keys=True)


def plan_from_json(payload: str) -> Tuple[FaultSpec, ...]:
    """Rebuild a plan serialized by :func:`plan_to_json`."""
    try:
        raw = json.loads(payload)
    except json.JSONDecodeError as error:
        raise OptimizationError(f"invalid fault plan JSON: {error}") from None
    if not isinstance(raw, list):
        raise OptimizationError(
            f"fault plan JSON must be a list, got {type(raw).__name__}")
    return tuple(FaultSpec.from_dict(item) for item in raw)


def _poison(seam: str, result):
    """Replace the headline figure of a model result with NaN."""
    if seam == "energy":
        return dataclasses.replace(result, static=float("nan"))
    if seam == "delay":
        return dataclasses.replace(result, critical_delay=float("nan"))
    raise OptimizationError(
        f"NaN poisoning unsupported for seam {seam!r}")  # pragma: no cover
