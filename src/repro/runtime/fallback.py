"""Strategy fallback: degrade gracefully instead of aborting.

Procedure 2 can fail two ways in practice: the published bisection's
steering predicate is not monotone near the feasible boundary (DESIGN.md
deviation 5), and a tight clock can make the problem genuinely
infeasible at every corner. A production flow re-running hundreds of
perturbed instances wants neither failure to abort the batch — it wants
the best answer the chain of strategies can produce, *labeled* as such.

:func:`optimize_with_fallback` walks a declared chain of stages:

1. ``"grid"`` / ``"paper"`` — the two Procedure 2 strategies;
2. ``"relax_cycle_time"`` — a nearest-feasible relaxation: the cycle
   time is stretched along a geometric ladder up to
   ``FallbackPolicy.relax_max`` and the first feasible stretch wins.

The first stage to succeed returns. If it was not the first stage
attempted (or the clock had to be relaxed), the outcome is a
:class:`DegradedResult` — a normal
:class:`~repro.optimize.problem.OptimizationResult` whose
``degradation`` mapping records which stages failed, why, and what was
relaxed, and whose ``details["degraded"]`` flag is set. Callers that
ignore the label still get a feasible design for the (possibly relaxed)
problem; callers that check it can route the instance for review.
Deadline/cancellation always propagate — a fallback chain must not eat
the stop signal. When every stage fails,
:class:`~repro.errors.FallbackExhaustedError` carries the per-stage
diagnostics.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

from repro.errors import (
    DeadlineExceeded,
    FallbackExhaustedError,
    InfeasibleError,
    OptimizationError,
    ReproError,
    RunCancelled,
)
from repro.obs import trace
from repro.obs.instrument import FALLBACK_ATTEMPTS, FALLBACK_STAGE
from repro.obs.metrics import current_metrics
from repro.optimize.problem import (
    OptimizationProblem,
    OptimizationResult,
)
from repro.runtime.controller import resolve_controller

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.optimize.heuristic import HeuristicSettings

#: The terminal stage: solve at the nearest feasible (relaxed) clock.
RELAX_STAGE = "relax_cycle_time"

_STRATEGY_STAGES = ("grid", "paper")


@dataclass(frozen=True)
class FallbackPolicy:
    """Declared recovery chain and its relaxation budget."""

    #: Stages tried in order: Procedure 2 strategies and/or the
    #: terminal ``"relax_cycle_time"`` stage.
    chain: Tuple[str, ...] = ("grid", "paper", RELAX_STAGE)
    #: Largest cycle-time stretch factor the relax stage may use.
    relax_max: float = 4.0
    #: Geometric ladder resolution between 1x and ``relax_max``.
    relax_steps: int = 10

    def __post_init__(self) -> None:
        if not self.chain:
            raise OptimizationError("fallback chain must not be empty")
        for stage in self.chain:
            if stage not in _STRATEGY_STAGES and stage != RELAX_STAGE:
                raise OptimizationError(
                    f"unknown fallback stage {stage!r}; have "
                    f"{_STRATEGY_STAGES + (RELAX_STAGE,)}")
        if self.relax_max <= 1.0:
            raise OptimizationError(
                f"relax_max must be > 1, got {self.relax_max}")
        if self.relax_steps < 1:
            raise OptimizationError(
                f"relax_steps must be >= 1, got {self.relax_steps}")


@dataclass(frozen=True)
class DegradedResult(OptimizationResult):
    """A labeled fallback outcome.

    Identical to :class:`~repro.optimize.problem.OptimizationResult`
    (and usable anywhere one is) plus the ``degradation`` record:
    ``stage`` that finally succeeded, the ``attempts`` that failed
    before it (stage, error type, message), and — when the clock was
    relaxed — ``relax_factor`` / ``requested_cycle_time`` /
    ``relaxed_cycle_time``. ``details["degraded"]`` is always set so
    table/report code can flag the row.
    """

    degradation: Mapping[str, object] = field(default_factory=dict)


def _degrade(result: OptimizationResult,
             degradation: Dict[str, object]) -> DegradedResult:
    details = dict(result.details)
    details["degraded"] = True
    return DegradedResult(problem=result.problem, design=result.design,
                          energy=result.energy, timing=result.timing,
                          evaluations=result.evaluations, details=details,
                          degradation=degradation)


def optimize_with_fallback(problem: OptimizationProblem,
                           settings: "HeuristicSettings | None" = None,
                           policy: FallbackPolicy | None = None,
                           budgets=None,
                           resume_from=None) -> OptimizationResult:
    """Run Procedure 2 with the declared retry/fallback chain.

    The first chain stage uses ``settings.strategy`` semantics with
    checkpoint resume (``resume_from``); later stages run clean. A
    clean first-stage success returns a plain
    :class:`~repro.optimize.problem.OptimizationResult`; any recovery
    returns a :class:`DegradedResult`. Deadline and cancellation errors
    propagate immediately. Raises
    :class:`~repro.errors.FallbackExhaustedError` when every stage
    fails, with per-stage diagnostics attached.
    """
    from repro.optimize.heuristic import HeuristicSettings, optimize_joint

    settings = settings or HeuristicSettings()
    policy = policy or FallbackPolicy()
    controller = resolve_controller(settings.controller)
    attempts: list = []

    metrics = current_metrics()
    for position, stage in enumerate(policy.chain):
        if controller is not None:
            controller.check(where=f"fallback stage {stage!r}")
        relax_info: Optional[Dict[str, object]] = None
        metrics.incr(FALLBACK_ATTEMPTS)
        metrics.set_gauge(FALLBACK_STAGE, position)
        try:
            # A per-stage span (marked ``error`` when the stage fails)
            # makes a trace explain *why* a run degraded, stage by stage.
            with trace.span("fallback_stage", stage=stage,
                            position=position):
                if stage == RELAX_STAGE:
                    result, relax_info = _relaxed_solve(problem, settings,
                                                        policy)
                else:
                    stage_settings = dataclasses.replace(settings,
                                                         strategy=stage)
                    result = optimize_joint(
                        problem, settings=stage_settings, budgets=budgets,
                        resume_from=resume_from if position == 0 else None)
                    if not result.feasible:
                        raise OptimizationError(
                            f"stage {stage!r} returned an infeasible design")
                if not math.isfinite(result.total_energy):
                    raise OptimizationError(
                        f"stage {stage!r} returned non-finite energy "
                        f"{result.total_energy!r}")
        except (DeadlineExceeded, RunCancelled):
            raise
        except ReproError as error:
            attempts.append({"stage": stage,
                             "error": type(error).__name__,
                             "message": str(error)})
            continue

        if not attempts and relax_info is None:
            return result
        degradation: Dict[str, object] = {
            "stage": stage,
            "requested_strategy": settings.strategy,
            "attempts": tuple(dict(attempt) for attempt in attempts),
        }
        if relax_info is not None:
            degradation.update(relax_info)
        return _degrade(result, degradation)

    summary = "; ".join(f"{attempt['stage']}: {attempt['error']} "
                        f"({attempt['message']})" for attempt in attempts)
    raise FallbackExhaustedError(
        f"{problem.network.name}: every fallback stage failed — {summary}",
        attempts=tuple(dict(attempt) for attempt in attempts))


def _relaxed_solve(problem: OptimizationProblem,
                   settings: "HeuristicSettings",
                   policy: FallbackPolicy
                   ) -> Tuple[OptimizationResult, Dict[str, object]]:
    """Nearest-feasible cycle-time relaxation (the terminal stage).

    Walks a geometric ladder of stretch factors in ``(1, relax_max]``
    and returns the solve at the smallest feasible stretch, together
    with the degradation record. Raises
    :class:`~repro.errors.InfeasibleError` when even ``relax_max`` is
    not enough.
    """
    from repro.optimize.heuristic import optimize_joint

    last_error: Optional[ReproError] = None
    for step in range(1, policy.relax_steps + 1):
        factor = policy.relax_max ** (step / policy.relax_steps)
        relaxed = dataclasses.replace(problem,
                                      frequency=problem.frequency / factor)
        try:
            result = optimize_joint(problem=relaxed, settings=settings)
        except InfeasibleError as error:
            last_error = error
            continue
        info: Dict[str, object] = {
            "relax_factor": factor,
            "requested_cycle_time": problem.cycle_time,
            "relaxed_cycle_time": relaxed.cycle_time,
        }
        return result, info
    raise InfeasibleError(
        f"{problem.network.name}: no feasible point within a "
        f"{policy.relax_max:g}x cycle-time relaxation"
        + (f" (last: {last_error})" if last_error is not None else ""))
