"""Exact (correlation-aware) activity estimation — the paper's ref. [11].

Najm's propagation (§4.1, :mod:`repro.activity.transition_density`) is a
first-order approximation: it ignores spatial correlation introduced by
reconvergent fanout and counts simultaneous input toggles twice. The
paper cites Stamoulis–Hajj [11] for the exact treatment; this module
implements it with BDDs:

* **Signal probability**: build each node's global function over the
  primary inputs (an ROBDD) and evaluate ``P(f = 1)`` exactly under
  independent inputs.
* **Transition density**: model each input as the two-state Markov chain
  of :mod:`repro.activity.simulation` (stationary probability ``p``,
  per-cycle density ``D``), instantiate the function at two consecutive
  cycles over an *interleaved* variable order
  ``x_t(0), x_{t+1}(0), x_t(1), ...``, and evaluate
  ``D(f) = P(f_t XOR f_{t+1})`` with the per-input joint distributions
  ``P(x_t = a, x_{t+1} = b) = pi(a) * P(a -> b)``.

The result is exact for any reconvergence and any simultaneous-switching
pattern — the test suite checks it against long Monte-Carlo runs on the
(heavily reconvergent) s27 core.

Cost is exponential in a cone's support in the worst case, so cones whose
support exceeds ``max_support`` inputs fall back to the first-order value
(reported in ``ExactActivityResult.approximate_nodes``), which is how
[11]-class tools are deployed in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.activity.profiles import InputProfile, max_density
from repro.activity.transition_density import (
    ActivityEstimate,
    estimate_activity,
)
from repro.bdd.core import BDD, BDDFunction
from repro.errors import ActivityError
from repro.netlist.gates import GateType
from repro.netlist.network import LogicNetwork

#: Default cap on a cone's support for the exact computation.
DEFAULT_MAX_SUPPORT = 16


@dataclass(frozen=True)
class ExactActivityResult:
    """Exact probabilities/densities, with per-node fallback tracking."""

    network_name: str
    probabilities: Mapping[str, float]
    densities: Mapping[str, float]
    #: Nodes whose support exceeded the cap (first-order values used).
    approximate_nodes: Tuple[str, ...]

    def probability(self, name: str) -> float:
        return self.probabilities[name]

    def density(self, name: str) -> float:
        return self.densities[name]

    def activity(self, name: str) -> float:
        return self.densities[name]

    def as_estimate(self) -> ActivityEstimate:
        """View as a plain :class:`ActivityEstimate` (duck-compatible)."""
        return ActivityEstimate(network_name=self.network_name,
                                probabilities=self.probabilities,
                                densities=self.densities)


def _combine(gate_type: GateType,
             inputs: List[BDDFunction]) -> BDDFunction:
    if gate_type is GateType.BUF:
        return inputs[0]
    if gate_type is GateType.NOT:
        return ~inputs[0]
    if gate_type in (GateType.AND, GateType.NAND):
        result = inputs[0]
        for function in inputs[1:]:
            result = result & function
        return ~result if gate_type is GateType.NAND else result
    if gate_type in (GateType.OR, GateType.NOR):
        result = inputs[0]
        for function in inputs[1:]:
            result = result | function
        return ~result if gate_type is GateType.NOR else result
    if gate_type in (GateType.XOR, GateType.XNOR):
        result = inputs[0]
        for function in inputs[1:]:
            result = result ^ function
        return ~result if gate_type is GateType.XNOR else result
    raise ActivityError(f"unsupported gate type {gate_type}")


def _markov_joint(probability: float,
                  density: float) -> Tuple[float, float, float, float]:
    """``(p00, p01, p10, p11)`` of (x_t, x_{t+1}) for a Markov input."""
    # P(a -> b) from the stationary (p, D) pair; see simulation.py.
    if probability <= 0.0:
        return (1.0, 0.0, 0.0, 0.0)
    if probability >= 1.0:
        return (0.0, 0.0, 0.0, 1.0)
    rate_up = density / (2.0 * (1.0 - probability))
    rate_down = density / (2.0 * probability)
    if rate_up > 1.0 + 1e-9 or rate_down > 1.0 + 1e-9:
        raise ActivityError(
            f"(p={probability}, D={density}) violates the Markov limit")
    p0 = 1.0 - probability
    return (p0 * (1.0 - rate_up),          # 0 -> 0
            p0 * rate_up,                  # 0 -> 1
            probability * rate_down,       # 1 -> 0
            probability * (1.0 - rate_down))  # 1 -> 1


def estimate_activity_exact(network: LogicNetwork, profile: InputProfile,
                            max_support: int = DEFAULT_MAX_SUPPORT
                            ) -> ExactActivityResult:
    """Exact probabilities and transition densities for every node."""
    if max_support < 1:
        raise ActivityError(f"max_support must be >= 1, got {max_support}")
    profile.require_covers(network)
    first_order = estimate_activity(network, profile)

    inputs = list(network.inputs)
    input_index = {name: position for position, name in enumerate(inputs)}
    manager = BDD(2 * len(inputs))

    now_vars = {name: manager.variable(2 * input_index[name])
                for name in inputs}
    next_vars = {name: manager.variable(2 * input_index[name] + 1)
                 for name in inputs}

    joints = [_markov_joint(profile.probability(name),
                            profile.density(name)) for name in inputs]
    marginals = [profile.probability(name) for name in inputs]
    # Interleaved order: even levels are x_t, odd are x_{t+1}; the plain
    # probability evaluator needs a value per *level*.
    level_probs: List[float] = []
    for name in inputs:
        level_probs.append(profile.probability(name))
        level_probs.append(profile.probability(name))

    functions_now: Dict[str, BDDFunction] = {}
    functions_next: Dict[str, BDDFunction] = {}
    probabilities: Dict[str, float] = {}
    densities: Dict[str, float] = {}
    approximate: List[str] = []

    for name in network.topological_order():
        gate = network.gate(name)
        if gate.is_input:
            functions_now[name] = now_vars[name]
            functions_next[name] = next_vars[name]
            probabilities[name] = profile.probability(name)
            densities[name] = profile.density(name)
            continue
        fanin_now = [functions_now.get(fanin) for fanin in gate.fanins]
        fanin_next = [functions_next.get(fanin) for fanin in gate.fanins]
        if any(f is None for f in fanin_now):
            # A fanin fell back; everything downstream must too.
            approximate.append(name)
            probabilities[name] = first_order.probability(name)
            densities[name] = first_order.density(name)
            continue
        function_now = _combine(gate.gate_type, fanin_now)  # type: ignore[arg-type]
        # function_now only touches the even (x_t) levels: one per input.
        if len(function_now.support()) > max_support:
            approximate.append(name)
            probabilities[name] = first_order.probability(name)
            densities[name] = first_order.density(name)
            continue
        function_next = _combine(gate.gate_type, fanin_next)  # type: ignore[arg-type]
        functions_now[name] = function_now
        functions_next[name] = function_next

        probabilities[name] = function_now.probability(level_probs)
        toggled = function_now ^ function_next
        densities[name] = toggled.paired_probability(joints, marginals,
                                                     marginals)

    return ExactActivityResult(network_name=network.name,
                               probabilities=probabilities,
                               densities=densities,
                               approximate_nodes=tuple(approximate))


def correlation_error(network: LogicNetwork, profile: InputProfile,
                      max_support: int = DEFAULT_MAX_SUPPORT
                      ) -> Dict[str, float]:
    """Per-node ratio of first-order to exact density (1.0 = no error).

    Quantifies the approximation the paper accepts in §4.1. Nodes where
    the exact computation fell back (or the density is ~0) are omitted.
    """
    first_order = estimate_activity(network, profile)
    exact = estimate_activity_exact(network, profile,
                                    max_support=max_support)
    skip = set(exact.approximate_nodes)
    ratios: Dict[str, float] = {}
    for name in network.logic_gates:
        if name in skip:
            continue
        exact_density = exact.density(name)
        if exact_density < 1e-12:
            continue
        ratios[name] = first_order.density(name) / exact_density
    return ratios
