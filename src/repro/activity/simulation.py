"""Monte-Carlo validation of the activity estimates.

Each primary input is modelled as a two-state Markov chain with the
requested stationary probability ``p`` and per-cycle transition density
``D``: transition rates ``P(0->1) = D / (2 (1 - p))`` and
``P(1->0) = D / (2 p)`` give exactly those stationary statistics. The
network is evaluated cycle by cycle and output toggles are counted.

This plays the role HSPICE/exact simulation plays in the paper's
validation story: on fanout-free circuits at low activity the measured
densities converge to Najm's propagation (the propagation neglects
simultaneous input toggles, an ``O(D^2)`` effect, and so sits slightly
above synchronous measurements at high activity); on reconvergent
circuits it additionally quantifies the first-order correlation error.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.activity.profiles import InputProfile
from repro.errors import ActivityError
from repro.netlist.network import LogicNetwork


@dataclass(frozen=True)
class SimulatedActivity:
    """Measured per-node statistics from a Monte-Carlo run."""

    network_name: str
    cycles: int
    probabilities: Mapping[str, float]
    densities: Mapping[str, float]

    def probability(self, name: str) -> float:
        return self.probabilities[name]

    def density(self, name: str) -> float:
        return self.densities[name]


def _markov_rates(probability: float, density: float) -> tuple[float, float]:
    """``(P(0->1), P(1->0))`` realizing the stationary (p, D) pair."""
    if probability <= 0.0 or probability >= 1.0:
        if density > 0.0:
            raise ActivityError(
                f"a constant input (p={probability}) cannot have density "
                f"{density}")
        return 0.0, 0.0
    rate_up = density / (2.0 * (1.0 - probability))
    rate_down = density / (2.0 * probability)
    if rate_up > 1.0 + 1e-12 or rate_down > 1.0 + 1e-12:
        raise ActivityError(
            f"(p={probability}, D={density}) violates the Markov limit")
    return min(rate_up, 1.0), min(rate_down, 1.0)


def simulate_activity(network: LogicNetwork, profile: InputProfile,
                      cycles: int = 4096, seed: int = 0,
                      warmup: int = 64) -> SimulatedActivity:
    """Measure node probabilities/densities over ``cycles`` clock cycles."""
    if cycles < 1:
        raise ActivityError(f"cycles must be >= 1, got {cycles}")
    profile.require_covers(network)
    rng = random.Random(seed)

    rates: Dict[str, tuple[float, float]] = {}
    state: Dict[str, bool] = {}
    for name in network.inputs:
        probability = profile.probability(name)
        rates[name] = _markov_rates(probability, profile.density(name))
        state[name] = rng.random() < probability

    ones: Dict[str, int] = {name: 0 for name in network.topological_order()}
    toggles: Dict[str, int] = {name: 0 for name in network.topological_order()}
    previous: Dict[str, bool] = {}

    for cycle in range(warmup + cycles):
        for name in network.inputs:
            rate_up, rate_down = rates[name]
            if state[name]:
                if rng.random() < rate_down:
                    state[name] = False
            else:
                if rng.random() < rate_up:
                    state[name] = True
        values = network.evaluate(state)
        if cycle >= warmup:
            for name, value in values.items():
                if value:
                    ones[name] += 1
                if previous and previous[name] != value:
                    toggles[name] += 1
        previous = values

    probabilities = {name: count / cycles for name, count in ones.items()}
    densities = {name: count / cycles for name, count in toggles.items()}
    return SimulatedActivity(network_name=network.name, cycles=cycles,
                             probabilities=probabilities, densities=densities)
