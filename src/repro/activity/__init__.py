"""Switching-activity estimation.

The paper's energy model needs an activity factor ``a_i`` (expected output
transitions per clock cycle) for every gate. Following §4.1, input signal
probabilities and transition densities are given, and internal activities
are computed with Najm's *transition density* propagation [8]:

    D(y) = sum_i P(dy/dx_i) * D(x_i)

where ``dy/dx_i`` is the Boolean difference of the gate function with
respect to input ``i``. As in the paper this is first order: input signal
correlations (spatial and temporal) are neglected. A Monte-Carlo logic
simulator (:mod:`repro.activity.simulation`) validates the propagation on
small circuits, and a BDD-based exact estimator
(:mod:`repro.activity.exact`, the paper's ref. [11]) computes
correlation-aware probabilities and densities where the cone supports
allow it.
"""

from repro.activity.profiles import InputProfile, uniform_profile
from repro.activity.transition_density import ActivityEstimate, estimate_activity
from repro.activity.boolean_diff import (
    output_probability,
    boolean_difference_probabilities,
)
from repro.activity.simulation import simulate_activity, SimulatedActivity
from repro.activity.exact import (
    ExactActivityResult,
    correlation_error,
    estimate_activity_exact,
)

__all__ = [
    "InputProfile",
    "uniform_profile",
    "ActivityEstimate",
    "estimate_activity",
    "output_probability",
    "boolean_difference_probabilities",
    "simulate_activity",
    "SimulatedActivity",
    "ExactActivityResult",
    "correlation_error",
    "estimate_activity_exact",
]
