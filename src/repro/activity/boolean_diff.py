"""Boolean-difference probabilities for gate functions.

Najm's transition-density propagation [8] needs, for every gate input
``x_i``, the probability that the Boolean difference

    df/dx_i = f(..., x_i = 1, ...) XOR f(..., x_i = 0, ...)

evaluates to 1 under the (assumed independent) input signal probabilities.
For the standard gate family the differences have closed forms:

* AND/NAND: ``prod_{j != i} p_j``
* OR/NOR:   ``prod_{j != i} (1 - p_j)``
* XOR/XNOR: 1 (every input change propagates)
* NOT/BUF:  1

A truth-table fallback handles any supported gate exactly (still under the
independence assumption) and lets tests cross-check the closed forms.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ActivityError
from repro.netlist.gates import GateType, truth_table


def _validate_probabilities(probabilities: Sequence[float]) -> None:
    for probability in probabilities:
        if not 0.0 <= probability <= 1.0:
            raise ActivityError(
                f"signal probability {probability} not in [0, 1]")


def output_probability(gate_type: GateType,
                       probabilities: Sequence[float]) -> float:
    """``P(f = 1)`` for a gate with independent input probabilities."""
    _validate_probabilities(probabilities)
    if gate_type is GateType.INPUT:
        raise ActivityError("INPUT pseudo-gates carry their own probability")
    if gate_type is GateType.BUF:
        return probabilities[0]
    if gate_type is GateType.NOT:
        return 1.0 - probabilities[0]
    if gate_type is GateType.AND or gate_type is GateType.NAND:
        product = 1.0
        for probability in probabilities:
            product *= probability
        return product if gate_type is GateType.AND else 1.0 - product
    if gate_type is GateType.OR or gate_type is GateType.NOR:
        product = 1.0
        for probability in probabilities:
            product *= 1.0 - probability
        return 1.0 - product if gate_type is GateType.OR else product
    if gate_type is GateType.XOR or gate_type is GateType.XNOR:
        # P(odd parity) via the product formula: E[(-1)^sum] = prod(1 - 2p).
        signed = 1.0
        for probability in probabilities:
            signed *= 1.0 - 2.0 * probability
        odd = 0.5 * (1.0 - signed)
        return odd if gate_type is GateType.XOR else 1.0 - odd
    raise ActivityError(f"unsupported gate type {gate_type}")


def boolean_difference_probabilities(
        gate_type: GateType,
        probabilities: Sequence[float]) -> Tuple[float, ...]:
    """``P(df/dx_i = 1)`` for every input ``i`` (closed forms)."""
    _validate_probabilities(probabilities)
    arity = len(probabilities)
    if gate_type is GateType.INPUT:
        raise ActivityError("INPUT pseudo-gates have no Boolean difference")
    if gate_type in (GateType.BUF, GateType.NOT):
        return (1.0,)
    if gate_type in (GateType.AND, GateType.NAND):
        return tuple(_product_excluding(probabilities, index)
                     for index in range(arity))
    if gate_type in (GateType.OR, GateType.NOR):
        complements = [1.0 - probability for probability in probabilities]
        return tuple(_product_excluding(complements, index)
                     for index in range(arity))
    if gate_type in (GateType.XOR, GateType.XNOR):
        return tuple(1.0 for _ in range(arity))
    raise ActivityError(f"unsupported gate type {gate_type}")


def _product_excluding(values: Sequence[float], skip: int) -> float:
    product = 1.0
    for index, value in enumerate(values):
        if index != skip:
            product *= value
    return product


def boolean_difference_probabilities_exact(
        gate_type: GateType,
        probabilities: Sequence[float]) -> Tuple[float, ...]:
    """Truth-table evaluation of the Boolean-difference probabilities.

    Exponential in fanin (capped at 16 by :func:`truth_table`); used by
    tests to validate the closed forms and available for exotic gates.
    """
    _validate_probabilities(probabilities)
    arity = len(probabilities)
    table = truth_table(gate_type, arity)
    results: List[float] = []
    for index in range(arity):
        total = 0.0
        for assignment in range(1 << arity):
            if (assignment >> index) & 1:
                continue  # enumerate assignments of the *other* inputs
            flipped = assignment | (1 << index)
            if table[assignment] == table[flipped]:
                continue
            weight = 1.0
            for position in range(arity):
                if position == index:
                    continue
                bit = (assignment >> position) & 1
                weight *= probabilities[position] if bit \
                    else 1.0 - probabilities[position]
            total += weight
        results.append(total)
    return tuple(results)
