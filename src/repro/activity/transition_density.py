"""Najm transition-density propagation (§4.1 of the paper, ref. [8]).

Signal probabilities and transition densities are propagated through the
network in topological order under the independence assumption:

* ``P(y)`` from the gate's output-probability formula,
* ``D(y) = sum_i P(dy/dx_i) * D(x_i)``.

The result's ``activity(name)`` is the paper's ``a_i`` — the expected
output transitions per clock cycle used directly in the dynamic-energy
equation (A2).

The propagation is exact for tree (fanout-free) circuits with independent
inputs; with reconvergent fanout it is the standard first-order
approximation the paper adopts ("does not take into account input signal
correlations"). Densities are clamped to the Markov feasibility limit
``2 * min(p, 1-p)`` so reconvergence can never produce a physically
impossible activity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.activity.boolean_diff import (
    boolean_difference_probabilities,
    output_probability,
)
from repro.activity.profiles import InputProfile, max_density
from repro.errors import ActivityError
from repro.netlist.network import LogicNetwork


@dataclass(frozen=True)
class ActivityEstimate:
    """Per-node signal probabilities and transition densities."""

    network_name: str
    probabilities: Mapping[str, float]
    densities: Mapping[str, float]

    def probability(self, name: str) -> float:
        try:
            return self.probabilities[name]
        except KeyError:
            raise ActivityError(
                f"no probability for node {name!r} "
                f"(network {self.network_name!r})") from None

    def density(self, name: str) -> float:
        try:
            return self.densities[name]
        except KeyError:
            raise ActivityError(
                f"no density for node {name!r} "
                f"(network {self.network_name!r})") from None

    def activity(self, name: str) -> float:
        """The paper's ``a_i`` — alias for :meth:`density`."""
        return self.density(name)

    def total_density(self) -> float:
        """Sum of all node densities (a scalar switching-volume metric)."""
        return sum(self.densities.values())


def estimate_activity(network: LogicNetwork,
                      profile: InputProfile) -> ActivityEstimate:
    """Propagate ``profile`` through ``network`` (topological, one pass)."""
    profile.require_covers(network)
    probabilities: Dict[str, float] = {}
    densities: Dict[str, float] = {}

    for name in network.topological_order():
        gate = network.gate(name)
        if gate.is_input:
            probabilities[name] = profile.probability(name)
            densities[name] = profile.density(name)
            continue
        fanin_probs = [probabilities[fanin] for fanin in gate.fanins]
        probabilities[name] = output_probability(gate.gate_type, fanin_probs)
        sensitivities = boolean_difference_probabilities(gate.gate_type,
                                                         fanin_probs)
        density = 0.0
        for sensitivity, fanin in zip(sensitivities, gate.fanins):
            density += sensitivity * densities[fanin]
        densities[name] = min(density, max_density(probabilities[name]))

    return ActivityEstimate(network_name=network.name,
                            probabilities=probabilities,
                            densities=densities)
