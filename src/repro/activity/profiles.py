"""Input activity profiles.

An :class:`InputProfile` supplies, for every primary input of a network,
its stationary signal probability ``P(x = 1)`` and its transition density
``D(x)`` in expected transitions per clock cycle. The paper's Tables use
uniform profiles ("the activity levels are the same over all the inputs",
§5); :func:`uniform_profile` builds those.

Transition densities are bounded by the two-state Markov limit
``D <= 2 * min(p, 1 - p)`` (a signal cannot toggle more often than it
visits its rarer state allows); profiles are validated against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.errors import ActivityError
from repro.netlist.network import LogicNetwork


def max_density(probability: float) -> float:
    """Largest transition density consistent with signal probability ``p``."""
    return 2.0 * min(probability, 1.0 - probability)


@dataclass(frozen=True)
class InputProfile:
    """Signal probability and transition density for each primary input."""

    probabilities: Mapping[str, float]
    densities: Mapping[str, float]

    def __post_init__(self) -> None:
        if set(self.probabilities) != set(self.densities):
            raise ActivityError(
                "probability and density maps must cover the same inputs")
        for name, probability in self.probabilities.items():
            if not 0.0 <= probability <= 1.0:
                raise ActivityError(
                    f"input {name!r}: probability {probability} not in [0, 1]")
            density = self.densities[name]
            if density < 0.0:
                raise ActivityError(
                    f"input {name!r}: density {density} negative")
            limit = max_density(probability)
            if density > limit + 1e-12:
                raise ActivityError(
                    f"input {name!r}: density {density} exceeds the Markov "
                    f"limit {limit} for probability {probability}")

    def probability(self, name: str) -> float:
        try:
            return self.probabilities[name]
        except KeyError:
            raise ActivityError(f"no profile for input {name!r}") from None

    def density(self, name: str) -> float:
        try:
            return self.densities[name]
        except KeyError:
            raise ActivityError(f"no profile for input {name!r}") from None

    def covers(self, network: LogicNetwork) -> bool:
        return set(network.inputs) <= set(self.probabilities)

    def require_covers(self, network: LogicNetwork) -> None:
        missing = sorted(set(network.inputs) - set(self.probabilities))
        if missing:
            raise ActivityError(
                f"profile misses {len(missing)} input(s) of "
                f"{network.name!r}: {missing[:5]}")


def uniform_profile(network: LogicNetwork, probability: float = 0.5,
                    density: float | None = None) -> InputProfile:
    """Uniform profile over all inputs of ``network``.

    ``density`` defaults to the random-data value ``2 p (1 - p)``
    (independent samples each cycle). The paper's experiments use uniform
    activities of e.g. 0.1 and 0.5 transitions/cycle across all inputs.
    """
    if density is None:
        density = 2.0 * probability * (1.0 - probability)
    probabilities: Dict[str, float] = {}
    densities: Dict[str, float] = {}
    for name in network.inputs:
        probabilities[name] = probability
        densities[name] = density
    return InputProfile(probabilities=probabilities, densities=densities)
