"""Physical constants used by the device models."""

from __future__ import annotations

import math

#: Boltzmann constant (J/K).
BOLTZMANN = 1.380649e-23

#: Elementary charge (C).
ELECTRON_CHARGE = 1.602176634e-19

#: Default junction temperature for all models (K). The paper's models are
#: evaluated at a single operating temperature; 300 K keeps kT/q at the
#: textbook 25.85 mV.
ROOM_TEMPERATURE = 300.0


def thermal_voltage(temperature: float = ROOM_TEMPERATURE) -> float:
    """Thermal voltage ``kT/q`` in volts at ``temperature`` kelvin.

    >>> round(thermal_voltage(300.0), 5)
    0.02585
    """
    if temperature <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    return BOLTZMANN * temperature / ELECTRON_CHARGE


def subthreshold_slope_to_ideality(slope: float,
                                   temperature: float = ROOM_TEMPERATURE) -> float:
    """Convert a subthreshold slope ``S`` (V/decade) to the ideality factor n.

    ``S = n * vT * ln(10)`` so ``n = S / (vT * ln 10)``.
    """
    if slope <= 0.0:
        raise ValueError(f"subthreshold slope must be positive, got {slope}")
    return slope / (thermal_voltage(temperature) * math.log(10.0))


def ideality_to_subthreshold_slope(ideality: float,
                                   temperature: float = ROOM_TEMPERATURE) -> float:
    """Inverse of :func:`subthreshold_slope_to_ideality`."""
    if ideality < 1.0:
        raise ValueError(f"ideality factor must be >= 1, got {ideality}")
    return ideality * thermal_voltage(temperature) * math.log(10.0)
