"""Per-gate minimum-width sizing under delay budgets (Procedure 2's inner loop).

At a fixed ``(Vdd, Vth)``, both energy and delay are monotonic in each
gate's width — energy increasing, the gate's own delay decreasing — so
the energy-optimal width for a gate is the *smallest* width meeting its
Procedure 1 budget (§4.3). Gates are processed in reverse topological
order so every gate's fanout widths (which set its load) are already
fixed; the input-slope term uses the *budgets* of the driving gates
(their actual delays are guaranteed not to exceed those budgets).

Two solvers are provided:

* ``closed_form`` (default): the delay is ``t(w) = t_fix + A + B/w`` with
  ``A = k*Vdd*c_self/I_w`` and ``B = k*Vdd*C_ext/I_w``, so the minimum
  feasible width is ``B / (t_avail - A)`` exactly.
* ``bisect``: the paper's M-step binary search on ``[w_min, w_max]``,
  retained for fidelity and as an ablation reference.

**Budget repair.** A handful of gates can carry budgets below their
physical delay floor at a given corner (the width-independent self-loading
plus slope terms). The paper fixes these with "some post processing of
delay assignments (typically for a very small fraction of the total
number of logic gates)". We implement that post-processing here, where
the corner is known: an under-budgeted gate takes the deficit ``delta``
onto its own budget and subtracts the same ``delta`` from each driving
gate's budget (never below the driver's own delay floor). Because repair
can grow budgets in aggregate, any assignment that used repair is
re-verified with a full STA pass against ``repair_ceiling`` (the
effective cycle time, which callers must supply to enable repair); a
failing check reports the assignment infeasible, exactly as without
repair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.context import CircuitContext
from repro.errors import OptimizationError
from repro.obs import trace
from repro.obs.instrument import (
    BUDGET_REPAIRS,
    WIDTH_BISECT_ITERATIONS,
    WIDTH_SIZINGS,
    seam,
)
from repro.obs.metrics import current_metrics
from repro.timing.delay_model import (
    effective_drive_per_width,
    slope_coefficient,
    vdd_for,
)
from repro.timing.sta import analyze_timing

#: Smallest budget (s) a driver may be squeezed to during repair.
_MIN_BUDGET = 1e-15


@dataclass(frozen=True)
class WidthAssignment:
    """Result of one width-sizing pass."""

    widths: Mapping[str, float]
    feasible: bool
    infeasible_gates: Tuple[str, ...]
    #: Gates whose budgets were repaired (deficit moved onto drivers).
    repaired_gates: Tuple[str, ...]
    #: Delay evaluations performed (for complexity accounting).
    evaluations: int


def _vth_for(vth: float | Mapping[str, float], name: str) -> float:
    if isinstance(vth, Mapping):
        return vth[name]
    return vth


def size_widths(ctx: CircuitContext, budgets: Mapping[str, float],
                vdd: float | Mapping[str, float],
                vth: float | Mapping[str, float],
                method: str = "closed_form",
                bisect_steps: int = 24,
                repair_ceiling: float | None = None,
                warm: Mapping[str, float] | None = None) -> WidthAssignment:
    """Size every gate to the smallest budget-meeting width.

    ``budgets`` maps each logic gate to its Procedure 1 maximum delay.
    Passing ``repair_ceiling`` (the effective cycle time ``b * T_c``)
    enables the local budget-repair post-processing described in the
    module docstring. ``warm`` optionally maps gates to previously-solved
    widths used to seed the ``bisect`` brackets (one extra probe per
    gate, usually collapsing the bracket immediately); the closed-form
    solver is exact and ignores it.
    """
    if method not in ("closed_form", "bisect"):
        raise OptimizationError(f"unknown width-search method {method!r}")
    span_name = "width_bisect" if method == "bisect" else "width_search"
    with trace.span(span_name, method=method), \
            seam("width_search", counter=WIDTH_SIZINGS):
        return _size_widths(ctx, budgets, vdd, vth, method, bisect_steps,
                            repair_ceiling, warm)


def _size_widths(ctx: CircuitContext, budgets: Mapping[str, float],
                 vdd: float | Mapping[str, float],
                 vth: float | Mapping[str, float],
                 method: str, bisect_steps: int,
                 repair_ceiling: float | None,
                 warm: Mapping[str, float] | None = None) -> WidthAssignment:
    tech = ctx.tech
    working: Dict[str, float] = dict(budgets)
    widths: Dict[str, float] = {}
    infeasible: List[str] = []
    repaired: List[str] = []
    evaluations = 0

    for name in ctx.gates_reversed:
        info = ctx.info(name)
        gate_vth = _vth_for(vth, name)
        gate_vdd = vdd_for(vdd, name)
        budget = working.get(name)
        if budget is None:
            raise OptimizationError(f"no delay budget for gate {name!r}")

        drive = effective_drive_per_width(tech, gate_vdd, gate_vth,
                                          info.fanin_count)
        if drive <= 0.0:
            # Subthreshold contention: the gate cannot switch at any width.
            widths[name] = tech.width_max
            infeasible.append(name)
            continue

        slope = _slope_term(ctx, name, gate_vdd, gate_vth, working)
        # The gate's fanout widths are final (reverse topological order),
        # so its parasitics are computed once here and shared by the
        # solver and, on failure, the repair pass.
        wire_rc, flight, external_cap = _fixed_and_external(ctx, name, widths)
        if method == "closed_form":
            width, used = _closed_form_width(ctx, name, budget, slope,
                                             gate_vdd, drive, wire_rc,
                                             flight, external_cap)
        else:
            width, used = _bisect_width(ctx, name, budget, slope, gate_vdd,
                                        drive, wire_rc, flight, external_cap,
                                        bisect_steps,
                                        None if warm is None
                                        else warm.get(name))
        evaluations += used

        if width is None and repair_ceiling is not None:
            width = _attempt_repair(ctx, name, vdd, gate_vth, drive, working,
                                    widths, wire_rc, flight, external_cap)
            if width is not None:
                repaired.append(name)
        if width is None:
            widths[name] = tech.width_max
            infeasible.append(name)
        else:
            widths[name] = width

    feasible = not infeasible
    if feasible and repaired:
        if repair_ceiling is None:
            raise OptimizationError(
                "budget repair ran without a repair_ceiling")  # pragma: no cover
        # Repairs perturb the budget bookkeeping that the per-gate
        # guarantees rest on (raised budgets invalidate the slope
        # assumptions of already-sized downstream gates), so verify the
        # actual design with a full STA pass.
        report = analyze_timing(ctx, vdd, vth, widths)
        if report.critical_delay > repair_ceiling * (1.0 + 1e-9):
            feasible = False
            infeasible = list(repaired)

    metrics = current_metrics()
    metrics.incr(WIDTH_BISECT_ITERATIONS, evaluations)
    if repaired:
        metrics.incr(BUDGET_REPAIRS, len(repaired))
    return WidthAssignment(widths=widths, feasible=feasible,
                           infeasible_gates=tuple(infeasible),
                           repaired_gates=tuple(repaired),
                           evaluations=evaluations)


def _slope_term(ctx: CircuitContext, name: str, vdd: float, vth: float,
                budgets: Mapping[str, float]) -> float:
    """Input-slope delay component from the drivers' (current) budgets."""
    info = ctx.info(name)
    fanin_budget = 0.0
    for fanin in info.fanin_names:
        if fanin in budgets:
            fanin_budget = max(fanin_budget, budgets[fanin])
    return slope_coefficient(ctx.tech, vdd, vth) * fanin_budget


def _fixed_and_external(ctx: CircuitContext, name: str,
                        widths: Mapping[str, float]
                        ) -> Tuple[float, float, float]:
    """(worst branch RC, worst flight, external cap) for a gate's output."""
    info = ctx.info(name)
    wire_rc = 0.0
    flight = 0.0
    external_cap = info.wire_cap
    for sink, cap_per_width, branch_cap, branch_res, branch_flight in zip(
            info.fanout_names, info.fanout_input_caps, info.branch_caps,
            info.branch_resistances, info.branch_flights):
        sink_width = ctx.BOUNDARY_WIDTH if sink == "" \
            else widths.get(sink, 1.0)
        external_cap += sink_width * cap_per_width
        rc = branch_res * (0.5 * branch_cap + sink_width * cap_per_width)
        wire_rc = max(wire_rc, rc)
        flight = max(flight, branch_flight)
    return wire_rc, flight, external_cap


def _closed_form_width(ctx: CircuitContext, name: str, budget: float,
                       slope: float, vdd: float, drive_per_width: float,
                       wire_rc: float, flight: float, external_cap: float
                       ) -> Tuple[float | None, int]:
    """Exact minimum feasible width from the ``t = t_fix + A + B/w`` form."""
    tech = ctx.tech
    info = ctx.info(name)
    k_vdd = tech.velocity_saturation_coeff * vdd
    self_term = k_vdd * info.self_cap / drive_per_width
    available = budget - slope - wire_rc - flight - self_term
    external_term = k_vdd * external_cap / drive_per_width
    if available <= 0.0:
        return None, 1
    width = external_term / available
    if width > tech.width_max:
        return None, 1
    return max(width, tech.width_min), 1


def _bisect_width(ctx: CircuitContext, name: str, budget: float,
                  slope: float, vdd: float, drive_per_width: float,
                  wire_rc: float, flight: float, external_cap: float,
                  steps: int,
                  warm_width: float | None = None
                  ) -> Tuple[float | None, int]:
    """The paper's M-step binary search on the width range.

    The width-independent delay terms (slope, wire RC, flight, external
    cap) are hoisted by the caller, so each probe is pure arithmetic —
    no per-step fanout re-walk. ``warm_width`` (an interior
    previously-solved width) collapses the starting bracket with a
    single extra probe.
    """
    tech = ctx.tech
    info = ctx.info(name)
    k_vdd = tech.velocity_saturation_coeff * vdd
    fixed = slope + wire_rc + flight
    self_cap = info.self_cap
    evaluations = 0

    def delay_at(width: float) -> float:
        load = width * self_cap + external_cap
        return fixed + k_vdd * load / (drive_per_width * width)

    evaluations += 1
    if delay_at(tech.width_max) > budget:
        return None, evaluations
    evaluations += 1
    if delay_at(tech.width_min) <= budget:
        return tech.width_min, evaluations

    low, high = tech.width_min, tech.width_max
    if warm_width is not None and low < warm_width < high:
        evaluations += 1
        if delay_at(warm_width) <= budget:
            high = warm_width
        else:
            low = warm_width
    for _ in range(steps):
        mid = 0.5 * (low + high)
        evaluations += 1
        if delay_at(mid) <= budget:
            high = mid
        else:
            low = mid
    return high, evaluations


def _gate_floor(ctx: CircuitContext, name: str,
                vdd: float | Mapping[str, float],
                vth: float | Mapping[str, float],
                widths: Mapping[str, float]) -> float:
    """Width-independent delay floor of a gate at this corner (slope aside)."""
    gate_vth = _vth_for(vth, name)
    gate_vdd = vdd_for(vdd, name)
    drive = effective_drive_per_width(ctx.tech, gate_vdd, gate_vth,
                                      ctx.info(name).fanin_count)
    if drive <= 0.0:
        return math.inf
    wire_rc, flight, _ = _fixed_and_external(ctx, name, widths)
    k_vdd = ctx.tech.velocity_saturation_coeff * gate_vdd
    return k_vdd * ctx.info(name).self_cap / drive + wire_rc + flight


def _attempt_repair(ctx: CircuitContext, name: str,
                    vdd: float | Mapping[str, float],
                    vth: float | Mapping[str, float],
                    drive_per_width: float, working: Dict[str, float],
                    widths: Mapping[str, float],
                    wire_rc: float, flight: float,
                    external_cap: float) -> float | None:
    """Shift the gate's budget deficit onto its drivers (see module doc).

    The gate is given the budget it needs at a conservative width
    (80 % of ``w_max``, leaving sizing margin); the same delta is removed
    from each logic-gate driver, but never below the driver's own delay
    floor, so a repaired gate cannot render its drivers hopeless. Budgets
    may therefore grow in aggregate — the caller re-verifies the final
    design with a full STA pass. Returns the width, or None when even the
    repaired budget cannot be met.

    The gate's own parasitics (``wire_rc``/``flight``/``external_cap``)
    come from the caller's sizing pass — repair never changes fanout
    widths, so recomputing them here would walk the same fanouts for the
    same values.
    """
    tech = ctx.tech
    info = ctx.info(name)
    gate_vth = _vth_for(vth, name)
    gate_vdd = vdd_for(vdd, name)
    logic_fanins = [fanin for fanin in info.fanin_names if fanin in working]

    k_vdd = tech.velocity_saturation_coeff * gate_vdd
    self_term = k_vdd * info.self_cap / drive_per_width
    external_term = k_vdd * external_cap / drive_per_width

    for _ in range(4):
        slope = _slope_term(ctx, name, gate_vdd, gate_vth, working)
        needed = (slope + wire_rc + flight + self_term
                  + external_term / (0.8 * tech.width_max))
        delta = needed - working[name]
        if delta <= 0.0:
            break
        working[name] += delta
        for fanin in logic_fanins:
            floor = 1.05 * _gate_floor(ctx, fanin, vdd, vth, widths)
            working[fanin] = max(working[fanin] - delta, floor, _MIN_BUDGET)

    slope = _slope_term(ctx, name, gate_vdd, gate_vth, working)
    width, _ = _closed_form_width(ctx, name, working[name], slope, gate_vdd,
                                  drive_per_width, wire_rc, flight,
                                  external_cap)
    return width


def _longest_budget_path(ctx: CircuitContext,
                         budgets: Mapping[str, float]) -> float:
    """Longest input→output path measured in (possibly repaired) budgets."""
    network = ctx.network
    arrival: Dict[str, float] = {}
    worst = 0.0
    outputs = set(network.outputs)
    for name in network.topological_order():
        gate = network.gate(name)
        if gate.is_input:
            arrival[name] = 0.0
        else:
            arrival[name] = budgets[name] + max(arrival[fanin]
                                                for fanin in gate.fanins)
        if name in outputs:
            worst = max(worst, arrival[name])
    return worst
