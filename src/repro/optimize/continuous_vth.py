"""Per-gate continuous threshold assignment: the ``n_v → ∞`` bound.

§4 fixes "the same threshold voltage V_TSi and the same supply voltage
V_dd to all the logic gates" as the practical limiting case, while §2
prices each extra distinct threshold in masks or tub biases. The natural
question a technologist asks is: *how much is left on the table?* — what
would an unconstrained, per-gate threshold assignment (every gate its own
tub bias) save over ``n_v = 1, 2, 3``?

The safe local move is **slack reclamation**. At the single-Vth optimum,
many gates sit at the minimum width ``w = 1`` with their budget-required
width *below* 1 — the width clamp parks timing slack in them. For such a
gate, raising its private ``Vth`` until the required width grows back to
exactly 1 changes *nothing* outside the gate (its width, and therefore
every load and every other gate's sizing, stays identical) while its
subthreshold leakage falls exponentially. The refinement is therefore
provably non-worsening gate by gate; a full STA re-verifies the result.

(A greedier variant — letting every gate trade width for threshold under
a first-order cost model — measurably *loses*: the upstream width cascade
it ignores dominates. That experiment motivated this conservative design
and is kept in the bench notes.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.context import CircuitContext
from repro.engine import make_engine, resolve_engine_name
from repro.errors import OptimizationError
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.problem import (
    DesignPoint,
    OptimizationProblem,
    OptimizationResult,
)
from repro.optimize.width_search import (
    _closed_form_width,
    _fixed_and_external,
    _slope_term,
)
from repro.power.energy import total_energy
from repro.timing.budgeting import BudgetResult
from repro.timing.delay_model import effective_drive_per_width
from repro.timing.sta import analyze_timing


def _required_width(ctx: CircuitContext, name: str, vdd: float, vth: float,
                    budget: float, budgets: Dict[str, float],
                    widths: Dict[str, float]) -> float | None:
    """Unclamped budget-required width of one gate (None = infeasible)."""
    info = ctx.info(name)
    drive = effective_drive_per_width(ctx.tech, vdd, vth, info.fanin_count)
    if drive <= 0.0:
        return None
    slope = _slope_term(ctx, name, vdd, vth, budgets)
    wire_rc, flight, external_cap = _fixed_and_external(ctx, name, widths)
    width, _ = _closed_form_width(ctx, name, budget, slope, vdd, drive,
                                  wire_rc, flight, external_cap)
    return width


def reclaim_slack_with_vth(problem: OptimizationProblem,
                           base: OptimizationResult,
                           budgets: BudgetResult,
                           refine_iters: int = 24,
                           width_tolerance: float = 1e-6
                           ) -> Tuple[Dict[str, float], Tuple[str, ...]]:
    """Raise slack-parked gates' thresholds at constant width.

    Returns ``(vth_map, reclaimed)`` — the per-gate thresholds and the
    names of gates whose slack was converted into leakage savings. All
    widths are untouched by construction.
    """
    if refine_iters < 2:
        raise OptimizationError("refine_iters must be >= 2")
    ctx = problem.ctx
    tech = problem.tech
    vdd = float(base.design.distinct_vdds()[0])
    base_vth = float(base.design.distinct_vths()[0])
    budget_map = dict(budgets.budgets)
    widths = dict(base.design.widths)

    vth_map: Dict[str, float] = {name: base_vth for name in ctx.gates}
    reclaimed = []
    floor = tech.width_min * (1.0 + width_tolerance)
    for name in ctx.gates:
        if widths[name] > floor:
            continue  # sized above the clamp: no parked slack.
        budget = budget_map[name]
        needed = _required_width(ctx, name, vdd, base_vth, budget,
                                 budget_map, widths)
        if needed is None or needed > tech.width_min:
            continue
        if base_vth >= tech.vth_max:
            continue
        # Required width is monotone increasing in Vth: bisect the
        # highest Vth whose requirement still fits under the clamp.
        low, high = base_vth, tech.vth_max
        top = _required_width(ctx, name, vdd, high, budget, budget_map,
                              widths)
        if top is not None and top <= tech.width_min:
            vth_map[name] = high
            reclaimed.append(name)
            continue
        for _ in range(refine_iters):
            middle = 0.5 * (low + high)
            needed = _required_width(ctx, name, vdd, middle, budget,
                                     budget_map, widths)
            if needed is not None and needed <= tech.width_min:
                low = middle
            else:
                high = middle
        if low > base_vth * (1.0 + 1e-9):
            vth_map[name] = low
            reclaimed.append(name)
    return vth_map, tuple(reclaimed)


@dataclass(frozen=True)
class ContinuousVthOutcome:
    """The n_v → ∞ bound next to its single-Vth starting point."""

    single: OptimizationResult
    refined: OptimizationResult
    reclaimed: Tuple[str, ...]

    @property
    def gain(self) -> float:
        """single / refined total energy (>= 1)."""
        return self.single.total_energy / self.refined.total_energy


def optimize_continuous_vth(problem: OptimizationProblem,
                            settings: HeuristicSettings | None = None,
                            budgets: BudgetResult | None = None,
                            refine_iters: int = 24
                            ) -> ContinuousVthOutcome:
    """Per-gate Vth slack reclamation on top of the single-Vth optimum.

    Never worse than the single-Vth design (widths untouched, leakage
    only reduced); re-verified with a full STA pass.
    """
    if budgets is None:
        budgets = problem.budgets()
    single = optimize_joint(problem, settings=settings, budgets=budgets)
    vth_map, reclaimed = reclaim_slack_with_vth(problem, single, budgets,
                                                refine_iters=refine_iters)
    if not reclaimed:
        return ContinuousVthOutcome(single=single, refined=single,
                                    reclaimed=())
    vdd = float(single.design.distinct_vdds()[0])
    widths = dict(single.design.widths)
    # Accept check through the engine seam (vectorized under the array
    # engine); the full scalar reports are materialized only on accept.
    engine_name = resolve_engine_name(
        settings.engine if settings is not None else "auto")
    check = make_engine(problem, engine_name).measure(vdd, vth_map, widths)
    ceiling = problem.cycle_time * problem.skew_factor
    if (check.critical_delay > ceiling * (1.0 + 1e-9)
            or check.energy >= single.total_energy):
        return ContinuousVthOutcome(single=single, refined=single,
                                    reclaimed=())
    timing = analyze_timing(problem.ctx, vdd, vth_map, widths)
    energy = total_energy(problem.ctx, vdd, vth_map, widths,
                          problem.frequency)
    refined = OptimizationResult(
        problem=problem,
        design=DesignPoint(vdd=vdd, vth=vth_map, widths=widths),
        energy=energy, timing=timing, evaluations=single.evaluations,
        details={"strategy": "continuous-vth",
                 "single_vth_energy": single.total_energy,
                 "reclaimed_gates": len(reclaimed),
                 "distinct_vths": len(set(round(value, 6)
                                          for value in vth_map.values()))})
    return ContinuousVthOutcome(single=single, refined=refined,
                                reclaimed=reclaimed)
