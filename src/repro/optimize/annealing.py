"""Multiple-pass simulated annealing comparator (§4.3, §5).

The paper implemented "an optimization tool for the above problem using
multiple-pass simulated annealing" and found the heuristic "performed
significantly better than annealing over all the circuits" — the search
space (N + 2 continuous variables) is simply too large for annealing to
converge in practical time. This module reproduces that comparator so the
claim can be re-measured (``benchmarks/bench_annealing.py``).

State: ``(Vdd, Vth, w_1..w_N)``. Moves perturb one variable at a time
(multiplicative for widths, additive for voltages). The objective is the
total energy with a multiplicative penalty for cycle-time violation, so
the annealer may traverse infeasible regions but converges to feasible
designs. Each *pass* restarts the temperature schedule from the best
state found so far.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.engine import (
    ENGINE_CHOICES,
    Engine,
    make_engine,
    resolve_engine_name,
)
from repro.errors import InfeasibleError, OptimizationError
from repro.obs import trace
from repro.obs.instrument import (
    ANNEALING_ACCEPTS,
    ANNEALING_MOVES,
    OBJECTIVE_EVALUATIONS,
    engine_evaluations_metric,
)
from repro.obs.metrics import current_metrics
from repro.optimize.problem import (
    DesignPoint,
    OptimizationProblem,
    OptimizationResult,
)
from repro.power.energy import total_energy
from repro.runtime.controller import RunController, resolve_controller
from repro.timing.sta import analyze_timing


@dataclass(frozen=True)
class AnnealingSettings:
    """Schedule and move parameters."""

    passes: int = 3
    iterations_per_pass: int = 1500
    initial_temperature: float = 1.0
    cooling: float = 0.995
    #: Multiplicative penalty weight on relative cycle-time violation.
    penalty: float = 20.0
    #: Move sizes: voltages (V), width (log-space factor).
    vdd_step: float = 0.15
    vth_step: float = 0.05
    width_step: float = 0.35
    seed: int = 1
    #: Evaluation engine for the per-move energy/STA measurement
    #: ("auto" honors :func:`repro.engine.use_engine` / ``REPRO_ENGINE``).
    engine: str = "auto"
    #: Optional run control (deadline/cancel/progress); falls back to
    #: the ambient :func:`repro.runtime.use_controller` controller.
    controller: Optional[RunController] = None

    def __post_init__(self) -> None:
        if self.passes < 1:
            raise OptimizationError(f"passes must be >= 1, got {self.passes}")
        if self.iterations_per_pass < 1:
            raise OptimizationError("iterations_per_pass must be >= 1")
        if not 0.0 < self.cooling < 1.0:
            raise OptimizationError(
                f"cooling must lie in (0, 1), got {self.cooling}")
        if self.engine not in ENGINE_CHOICES:
            raise OptimizationError(f"unknown engine {self.engine!r}")


class _State:
    """Mutable annealing state."""

    def __init__(self, vdd: float, vth: float, widths: Dict[str, float]):
        self.vdd = vdd
        self.vth = vth
        self.widths = widths

    def copy(self) -> "_State":
        return _State(self.vdd, self.vth, dict(self.widths))


def _cost(engine: Engine, problem: OptimizationProblem, state: _State,
          penalty: float, reference_energy: float) -> tuple[float, float, bool]:
    """(cost, energy, feasible) of a state; cost is energy-normalized.

    One :meth:`Engine.measure` call (energy then STA, the reference
    evaluation order) — the annealer's only per-move work, so the array
    engine vectorizes the entire move loop.
    """
    measurement = engine.measure(state.vdd, state.vth, state.widths)
    energy = measurement.energy
    cycle = problem.cycle_time
    violation = max(0.0, (measurement.critical_delay - cycle) / cycle)
    if math.isinf(violation):
        return math.inf, energy, False
    cost = (energy / reference_energy) * (1.0 + penalty * violation)
    return cost, energy, violation <= 1e-9


def optimize_annealing(problem: OptimizationProblem,
                       settings: AnnealingSettings | None = None,
                       initial: Optional[DesignPoint] = None,
                       ) -> OptimizationResult:
    """Run the annealing comparator; returns the best *feasible* design.

    Raises :class:`InfeasibleError` if no feasible state was ever visited
    (can happen with very tight clocks and short schedules — which is the
    paper's point about annealing on this problem).
    """
    settings = settings or AnnealingSettings()
    controller = resolve_controller(settings.controller)
    engine_name = resolve_engine_name(settings.engine)
    engine = make_engine(problem, engine_name)
    rng = random.Random(settings.seed)
    tech = problem.tech
    gates = list(problem.ctx.gates)

    if initial is None:
        state = _State(vdd=tech.vdd_max, vth=0.5 * (tech.vth_min + tech.vth_max),
                       widths={name: 10.0 for name in gates})
    else:
        state = _State(initial.vdd,
                       initial.vth if isinstance(initial.vth, float)
                       else sum(initial.vth.values()) / len(initial.vth),
                       dict(initial.widths))

    ref_static, ref_dynamic = engine.total_energy(
        tech.vdd_max, tech.vth_max, {name: 10.0 for name in gates})
    reference = ref_static + ref_dynamic
    cost, energy, feasible = _cost(engine, problem, state, settings.penalty,
                                   reference)
    evaluations = 1

    best_feasible: Optional[_State] = state.copy() if feasible else None
    best_feasible_energy = energy if feasible else math.inf
    best_cost = cost

    tracer = trace.current_tracer()
    metrics = current_metrics()
    for pass_index in range(settings.passes):
        with tracer.span("annealing_pass", index=pass_index,
                         engine=engine_name) as pass_span:
            temperature = settings.initial_temperature
            accepts = 0
            for _ in range(settings.iterations_per_pass):
                if controller is not None:
                    controller.check(f"{problem.network.name} annealing")
                candidate = state.copy()
                _perturb(candidate, rng, settings, tech, gates)
                new_cost, new_energy, new_feasible = _cost(
                    engine, problem, candidate, settings.penalty, reference)
                evaluations += 1
                accept = new_cost <= cost or (
                    math.isfinite(new_cost)
                    and rng.random() < math.exp((cost - new_cost)
                                                / temperature))
                if accept:
                    accepts += 1
                    state, cost = candidate, new_cost
                    if new_feasible and new_energy < best_feasible_energy:
                        best_feasible = candidate.copy()
                        best_feasible_energy = new_energy
                    best_cost = min(best_cost, new_cost)
                temperature *= settings.cooling
            # One batched update per pass keeps the move loop hook-free.
            metrics.incr(ANNEALING_MOVES, settings.iterations_per_pass)
            metrics.incr(ANNEALING_ACCEPTS, accepts)
            metrics.incr(OBJECTIVE_EVALUATIONS, settings.iterations_per_pass)
            metrics.incr(engine_evaluations_metric(engine_name),
                         settings.iterations_per_pass)
            pass_span.annotate(accepts=accepts,
                               best_energy=best_feasible_energy)
        if controller is not None:
            controller.report(phase="anneal", evaluations=evaluations,
                              best_energy=best_feasible_energy)
        if best_feasible is not None:
            state = best_feasible.copy()
            cost, _, _ = _cost(engine, problem, state, settings.penalty,
                               reference)

    if best_feasible is None:
        raise InfeasibleError(
            f"{problem.network.name}: annealing never reached a feasible "
            f"state in {evaluations} evaluations")

    design = DesignPoint(vdd=best_feasible.vdd, vth=best_feasible.vth,
                         widths=dict(best_feasible.widths))
    energy_report = total_energy(problem.ctx, design.vdd, design.vth,
                                 design.widths, problem.frequency)
    timing = analyze_timing(problem.ctx, design.vdd, design.vth,
                            design.widths)
    return OptimizationResult(
        problem=problem, design=design, energy=energy_report, timing=timing,
        evaluations=evaluations,
        details={"strategy": "annealing", "engine": engine_name,
                 "passes": settings.passes,
                 "iterations_per_pass": settings.iterations_per_pass,
                 "seed": settings.seed})


def _perturb(state: _State, rng: random.Random, settings: AnnealingSettings,
             tech, gates: List[str]) -> None:
    """Mutate one randomly chosen variable in place."""
    roll = rng.random()
    if roll < 0.15:
        state.vdd = _clamp(state.vdd + rng.uniform(-1.0, 1.0)
                           * settings.vdd_step, tech.vdd_min, tech.vdd_max)
    elif roll < 0.30:
        state.vth = _clamp(state.vth + rng.uniform(-1.0, 1.0)
                           * settings.vth_step, tech.vth_min, tech.vth_max)
    else:
        name = gates[rng.randrange(len(gates))]
        factor = math.exp(rng.uniform(-1.0, 1.0) * settings.width_step)
        state.widths[name] = _clamp(state.widths[name] * factor,
                                    tech.width_min, tech.width_max)


def _clamp(value: float, low: float, high: float) -> float:
    return min(max(value, low), high)
