"""Multiple-pass simulated annealing comparator (§4.3, §5).

The paper implemented "an optimization tool for the above problem using
multiple-pass simulated annealing" and found the heuristic "performed
significantly better than annealing over all the circuits" — the search
space (N + 2 continuous variables) is simply too large for annealing to
converge in practical time. This module reproduces that comparator so the
claim can be re-measured (``benchmarks/bench_annealing.py``).

State: ``(Vdd, Vth, w_1..w_N)``. Moves perturb one variable at a time
(multiplicative for widths, additive for voltages). The objective is the
total energy with a multiplicative penalty for cycle-time violation, so
the annealer may traverse infeasible regions but converges to feasible
designs. Each *pass* restarts the temperature schedule from the best
state found so far.

With ``engine="incremental"`` each width move is evaluated as an exact
delta on the installed design point (and reverted by re-applying the
previous width on rejection); voltage moves snapshot, refresh and
restore. Measurements are bit-identical to full evaluation, so the
accepted-move trajectory — exposed as a digest in
``details["trajectory"]`` — matches ``engine="fast"`` move for move.
"""

from __future__ import annotations

import hashlib
import math
import random
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine import (
    ENGINE_CHOICES,
    Engine,
    make_engine,
    resolve_engine_name,
)
from repro.errors import InfeasibleError, OptimizationError
from repro.obs import trace
from repro.obs.instrument import (
    ANNEALING_ACCEPTS,
    ANNEALING_MOVES,
    OBJECTIVE_EVALUATIONS,
    engine_evaluations_metric,
)
from repro.obs.metrics import current_metrics
from repro.optimize.problem import (
    DesignPoint,
    OptimizationProblem,
    OptimizationResult,
)
from repro.power.energy import total_energy
from repro.runtime.controller import RunController, resolve_controller
from repro.timing.sta import analyze_timing


@dataclass(frozen=True)
class AnnealingSettings:
    """Schedule and move parameters."""

    passes: int = 3
    iterations_per_pass: int = 1500
    initial_temperature: float = 1.0
    cooling: float = 0.995
    #: Multiplicative penalty weight on relative cycle-time violation.
    penalty: float = 20.0
    #: Move sizes: voltages (V), width (log-space factor).
    vdd_step: float = 0.15
    vth_step: float = 0.05
    width_step: float = 0.35
    seed: int = 1
    #: Evaluation engine for the per-move energy/STA measurement
    #: ("auto" honors :func:`repro.engine.use_engine` / ``REPRO_ENGINE``).
    engine: str = "auto"
    #: Number of lockstep restart chains. ``population > 1`` runs that
    #: many independent annealing chains (chain ``k`` seeded
    #: ``seed + k``) side by side, evaluating each step's B candidate
    #: states with **one** :meth:`~repro.engine.Engine.measure_batch`
    #: call; chain ``k``'s accepted-move trajectory digest equals a
    #: sequential single-chain run with ``seed + k``.
    population: int = 1
    #: Optional run control (deadline/cancel/progress); falls back to
    #: the ambient :func:`repro.runtime.use_controller` controller.
    controller: Optional[RunController] = None

    def __post_init__(self) -> None:
        if self.passes < 1:
            raise OptimizationError(f"passes must be >= 1, got {self.passes}")
        if self.iterations_per_pass < 1:
            raise OptimizationError("iterations_per_pass must be >= 1")
        if not 0.0 < self.cooling < 1.0:
            raise OptimizationError(
                f"cooling must lie in (0, 1), got {self.cooling}")
        if self.engine not in ENGINE_CHOICES:
            raise OptimizationError(f"unknown engine {self.engine!r}")
        if self.population < 1:
            raise OptimizationError(
                f"population must be >= 1, got {self.population}")


class _State:
    """Mutable annealing state."""

    def __init__(self, vdd: float, vth: float, widths: Dict[str, float]):
        self.vdd = vdd
        self.vth = vth
        self.widths = widths

    def copy(self) -> "_State":
        return _State(self.vdd, self.vth, dict(self.widths))


def _cost_of(measurement, problem: OptimizationProblem, penalty: float,
             reference_energy: float) -> tuple[float, float, bool]:
    """(cost, energy, feasible) from one measurement; cost is
    energy-normalized with a multiplicative cycle-violation penalty."""
    energy = measurement.energy
    cycle = problem.cycle_time
    violation = max(0.0, (measurement.critical_delay - cycle) / cycle)
    if math.isinf(violation):
        return math.inf, energy, False
    cost = (energy / reference_energy) * (1.0 + penalty * violation)
    return cost, energy, violation <= 1e-9


def _cost(engine: Engine, problem: OptimizationProblem, state: _State,
          penalty: float, reference_energy: float) -> tuple[float, float, bool]:
    """(cost, energy, feasible) of a state.

    One :meth:`Engine.measure` call — the annealer's only per-move work
    (see that method's reference-evaluation-order contract).
    """
    return _cost_of(engine.measure(state.vdd, state.vth, state.widths),
                    problem, penalty, reference_energy)


def optimize_annealing(problem: OptimizationProblem,
                       settings: AnnealingSettings | None = None,
                       initial: Optional[DesignPoint] = None,
                       ) -> OptimizationResult:
    """Run the annealing comparator; returns the best *feasible* design.

    Raises :class:`InfeasibleError` if no feasible state was ever visited
    (can happen with very tight clocks and short schedules — which is the
    paper's point about annealing on this problem).
    """
    settings = settings or AnnealingSettings()
    if settings.population > 1:
        return _optimize_population(problem, settings, initial)
    controller = resolve_controller(settings.controller)
    engine_name = resolve_engine_name(settings.engine)
    engine = make_engine(problem, engine_name)
    rng = random.Random(settings.seed)
    tech = problem.tech
    gates = list(problem.ctx.gates)

    state = _initial_state(problem, initial, gates)

    ref_static, ref_dynamic = engine.total_energy(
        tech.vdd_max, tech.vth_max, {name: 10.0 for name in gates})
    reference = ref_static + ref_dynamic
    # Engines exposing the stateful move API (the incremental engine)
    # evaluate each move as a delta on the installed design point; every
    # measurement is bit-identical to the stateless full evaluation, so
    # the accepted-move trajectory is engine-independent.
    incremental = bool(getattr(engine, "supports_moves", False))
    if incremental:
        cost, energy, feasible = _cost_of(
            engine.begin(state.vdd, state.vth, state.widths),
            problem, settings.penalty, reference)
    else:
        cost, energy, feasible = _cost(engine, problem, state,
                                       settings.penalty, reference)
    evaluations = 1

    best_feasible: Optional[_State] = state.copy() if feasible else None
    best_feasible_energy = energy if feasible else math.inf
    best_cost = cost
    trajectory = hashlib.sha256()
    accepts_per_pass: List[int] = []

    tracer = trace.current_tracer()
    metrics = current_metrics()
    for pass_index in range(settings.passes):
        with tracer.span("annealing_pass", index=pass_index,
                         engine=engine_name) as pass_span:
            temperature = settings.initial_temperature
            accepts = 0
            for iteration in range(settings.iterations_per_pass):
                if controller is not None:
                    controller.check(f"{problem.network.name} annealing")
                move = _propose(state, rng, settings, tech, gates)
                if incremental:
                    candidate = None
                    if move[0] == "width":
                        old_width = state.widths[move[1]]
                        token = None
                        measurement = engine.apply_move(move[1], move[2])
                    else:
                        token = engine.snapshot()
                        measurement = (engine.apply_voltage(vdd=move[1])
                                       if move[0] == "vdd"
                                       else engine.apply_voltage(vth=move[1]))
                    new_cost, new_energy, new_feasible = _cost_of(
                        measurement, problem, settings.penalty, reference)
                else:
                    candidate = state.copy()
                    _apply(candidate, move)
                    new_cost, new_energy, new_feasible = _cost(
                        engine, problem, candidate, settings.penalty,
                        reference)
                evaluations += 1
                accept = new_cost <= cost or (
                    math.isfinite(new_cost)
                    and rng.random() < math.exp((cost - new_cost)
                                                / temperature))
                if accept:
                    accepts += 1
                    if incremental:
                        _apply(state, move)
                    else:
                        state = candidate
                    cost = new_cost
                    trajectory.update(struct.pack(
                        "<qqdd", pass_index, iteration, new_cost, new_energy))
                    if new_feasible and new_energy < best_feasible_energy:
                        best_feasible = state.copy()
                        best_feasible_energy = new_energy
                    best_cost = min(best_cost, new_cost)
                elif incremental:
                    # Exact revert: re-applying the previous width
                    # recomputes the same pure functions; voltage moves
                    # restore the pre-refresh snapshot.
                    if move[0] == "width":
                        engine.apply_move(move[1], old_width)
                    else:
                        engine.restore(token)
                temperature *= settings.cooling
            # One batched update per pass keeps the move loop hook-free.
            metrics.incr(ANNEALING_MOVES, settings.iterations_per_pass)
            metrics.incr(ANNEALING_ACCEPTS, accepts)
            metrics.incr(OBJECTIVE_EVALUATIONS, settings.iterations_per_pass)
            metrics.incr(engine_evaluations_metric(engine_name),
                         settings.iterations_per_pass)
            accepts_per_pass.append(accepts)
            pass_span.annotate(accepts=accepts,
                               best_energy=best_feasible_energy)
        if controller is not None:
            controller.report(phase="anneal", evaluations=evaluations,
                              best_energy=best_feasible_energy)
        if best_feasible is not None:
            state = best_feasible.copy()
            if incremental:
                cost, _, _ = _cost_of(
                    engine.begin(state.vdd, state.vth, state.widths),
                    problem, settings.penalty, reference)
            else:
                cost, _, _ = _cost(engine, problem, state, settings.penalty,
                                   reference)

    if best_feasible is None:
        raise InfeasibleError(
            f"{problem.network.name}: annealing never reached a feasible "
            f"state in {evaluations} evaluations")

    design = DesignPoint(vdd=best_feasible.vdd, vth=best_feasible.vth,
                         widths=dict(best_feasible.widths))
    energy_report = total_energy(problem.ctx, design.vdd, design.vth,
                                 design.widths, problem.frequency)
    timing = analyze_timing(problem.ctx, design.vdd, design.vth,
                            design.widths)
    return OptimizationResult(
        problem=problem, design=design, energy=energy_report, timing=timing,
        evaluations=evaluations,
        details={"strategy": "annealing", "engine": engine_name,
                 "passes": settings.passes,
                 "iterations_per_pass": settings.iterations_per_pass,
                 "seed": settings.seed,
                 "accepts_per_pass": accepts_per_pass,
                 "trajectory": trajectory.hexdigest()})


def _initial_state(problem: OptimizationProblem,
                   initial: Optional[DesignPoint],
                   gates: List[str]) -> _State:
    tech = problem.tech
    if initial is None:
        return _State(vdd=tech.vdd_max,
                      vth=0.5 * (tech.vth_min + tech.vth_max),
                      widths={name: 10.0 for name in gates})
    return _State(initial.vdd,
                  initial.vth if isinstance(initial.vth, float)
                  else sum(initial.vth.values()) / len(initial.vth),
                  dict(initial.widths))


def _optimize_population(problem: OptimizationProblem,
                         settings: AnnealingSettings,
                         initial: Optional[DesignPoint]
                         ) -> OptimizationResult:
    """Population annealing: B lockstep chains, one batched measure/step.

    Chain ``k`` is an ordinary restart chain seeded ``settings.seed + k``
    — it proposes with its own RNG, anneals its own state, and keeps its
    own best — but all B candidate states of a step are measured with a
    single :meth:`~repro.engine.Engine.measure_batch` call (one kernel
    invocation on a batch-capable engine; a transparent per-chain loop
    elsewhere). Measurements are stateless and bit-identical per row, so
    each chain's trajectory digest equals the sequential single-chain
    run with its seed, digest for digest.
    """
    controller = resolve_controller(settings.controller)
    engine_name = resolve_engine_name(settings.engine)
    engine = make_engine(problem, engine_name)
    tech = problem.tech
    gates = list(problem.ctx.gates)
    size = settings.population

    states = [_initial_state(problem, initial, gates) for _ in range(size)]
    rngs = [random.Random(settings.seed + k) for k in range(size)]

    ref_static, ref_dynamic = engine.total_energy(
        tech.vdd_max, tech.vth_max, {name: 10.0 for name in gates})
    reference = ref_static + ref_dynamic

    def measure_states(chain_states: List[_State]):
        return engine.measure_batch(
            [chain.vdd for chain in chain_states],
            [chain.vth for chain in chain_states],
            [chain.widths for chain in chain_states])

    costs = [math.inf] * size
    best_states: List[Optional[_State]] = [None] * size
    best_energies = [math.inf] * size
    for k, measurement in enumerate(measure_states(states)):
        cost, energy, feasible = _cost_of(measurement, problem,
                                          settings.penalty, reference)
        costs[k] = cost
        if feasible:
            best_states[k] = states[k].copy()
            best_energies[k] = energy
    evaluations = size

    trajectories = [hashlib.sha256() for _ in range(size)]
    accepts_per_pass = [[] for _ in range(size)]

    tracer = trace.current_tracer()
    metrics = current_metrics()
    for pass_index in range(settings.passes):
        with tracer.span("annealing_pass", index=pass_index,
                         engine=engine_name,
                         population=size) as pass_span:
            temperature = settings.initial_temperature
            accepts = [0] * size
            for iteration in range(settings.iterations_per_pass):
                if controller is not None:
                    controller.check(f"{problem.network.name} annealing")
                moves = [_propose(states[k], rngs[k], settings, tech, gates)
                         for k in range(size)]
                candidates = []
                for k in range(size):
                    candidate = states[k].copy()
                    _apply(candidate, moves[k])
                    candidates.append(candidate)
                measurements = measure_states(candidates)
                evaluations += size
                for k in range(size):
                    new_cost, new_energy, new_feasible = _cost_of(
                        measurements[k], problem, settings.penalty,
                        reference)
                    # Identical accept expression (and rng consumption)
                    # to the sequential chain — the determinism contract.
                    accept = new_cost <= costs[k] or (
                        math.isfinite(new_cost)
                        and rngs[k].random() < math.exp(
                            (costs[k] - new_cost) / temperature))
                    if accept:
                        accepts[k] += 1
                        states[k] = candidates[k]
                        costs[k] = new_cost
                        trajectories[k].update(struct.pack(
                            "<qqdd", pass_index, iteration, new_cost,
                            new_energy))
                        if new_feasible and new_energy < best_energies[k]:
                            best_states[k] = states[k].copy()
                            best_energies[k] = new_energy
                temperature *= settings.cooling
            metrics.incr(ANNEALING_MOVES,
                         settings.iterations_per_pass * size)
            metrics.incr(ANNEALING_ACCEPTS, sum(accepts))
            metrics.incr(OBJECTIVE_EVALUATIONS,
                         settings.iterations_per_pass * size)
            metrics.incr(engine_evaluations_metric(engine_name),
                         settings.iterations_per_pass * size)
            for k in range(size):
                accepts_per_pass[k].append(accepts[k])
            pass_span.annotate(accepts=sum(accepts),
                               best_energy=min(best_energies))
        if controller is not None:
            controller.report(phase="anneal", evaluations=evaluations,
                              best_energy=min(best_energies))
        # Restart every chain that has a feasible best from it — one
        # batched re-measure for all restarting chains, uncounted, like
        # the sequential pass-end re-cost.
        restarting = [k for k in range(size) if best_states[k] is not None]
        if restarting:
            for k in restarting:
                states[k] = best_states[k].copy()
            for k, measurement in zip(
                    restarting,
                    measure_states([states[k] for k in restarting])):
                costs[k], _, _ = _cost_of(measurement, problem,
                                          settings.penalty, reference)

    if all(best is None for best in best_states):
        raise InfeasibleError(
            f"{problem.network.name}: annealing never reached a feasible "
            f"state in {evaluations} evaluations across {size} chains")

    winner = min(range(size), key=lambda k: (best_energies[k], k))
    best = best_states[winner]
    design = DesignPoint(vdd=best.vdd, vth=best.vth,
                         widths=dict(best.widths))
    energy_report = total_energy(problem.ctx, design.vdd, design.vth,
                                 design.widths, problem.frequency)
    timing = analyze_timing(problem.ctx, design.vdd, design.vth,
                            design.widths)
    return OptimizationResult(
        problem=problem, design=design, energy=energy_report, timing=timing,
        evaluations=evaluations,
        details={"strategy": "annealing", "engine": engine_name,
                 "passes": settings.passes,
                 "iterations_per_pass": settings.iterations_per_pass,
                 "seed": settings.seed,
                 "population": size,
                 "chain": winner,
                 "accepts_per_pass": accepts_per_pass[winner],
                 "trajectory": trajectories[winner].hexdigest(),
                 "trajectories": [digest.hexdigest()
                                  for digest in trajectories]})


#: ("vdd", value) | ("vth", value) | ("width", gate, value).
_Move = Tuple


def _propose(state: _State, rng: random.Random, settings: AnnealingSettings,
             tech, gates: List[str]) -> _Move:
    """Draw one move. The rng consumption sequence is the determinism
    contract: identical across engines and across apply/revert paths."""
    roll = rng.random()
    if roll < 0.15:
        return ("vdd", _clamp(state.vdd + rng.uniform(-1.0, 1.0)
                              * settings.vdd_step,
                              tech.vdd_min, tech.vdd_max))
    if roll < 0.30:
        return ("vth", _clamp(state.vth + rng.uniform(-1.0, 1.0)
                              * settings.vth_step,
                              tech.vth_min, tech.vth_max))
    name = gates[rng.randrange(len(gates))]
    factor = math.exp(rng.uniform(-1.0, 1.0) * settings.width_step)
    return ("width", name, _clamp(state.widths[name] * factor,
                                  tech.width_min, tech.width_max))


def _apply(state: _State, move: _Move) -> None:
    if move[0] == "vdd":
        state.vdd = move[1]
    elif move[0] == "vth":
        state.vth = move[1]
    else:
        state.widths[move[1]] = move[2]


def _perturb(state: _State, rng: random.Random, settings: AnnealingSettings,
             tech, gates: List[str]) -> None:
    """Mutate one randomly chosen variable in place."""
    _apply(state, _propose(state, rng, settings, tech, gates))


def _clamp(value: float, low: float, high: float) -> float:
    return min(max(value, low), high)
