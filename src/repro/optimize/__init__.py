"""Device-circuit optimizers (§4 of the paper).

* :mod:`~repro.optimize.problem` — problem/design-point/result types.
* :mod:`~repro.optimize.width_search` — per-gate minimum-width sizing
  under Procedure 1 budgets (the inner loop of Procedure 2).
* :mod:`~repro.optimize.heuristic` — Procedure 2: the joint
  (Vdd, Vth, widths) search, in both the paper's feasibility-steered
  binary-search form and a robust grid+ternary refinement.
* :mod:`~repro.optimize.baseline` — the Table 1 comparator: fixed
  ``Vth = 700 mV``, widths + Vdd only.
* :mod:`~repro.optimize.annealing` — multiple-pass simulated annealing
  comparator (§4.3/§5).
* :mod:`~repro.optimize.scipy_opt` — SciPy continuous optimizers over the
  same objective (cross-validation of the heuristic).
* :mod:`~repro.optimize.multivth` — ``n_v > 1`` distinct threshold
  voltages by gate grouping.
* :mod:`~repro.optimize.multivdd` — dual supply rails by clustered
  voltage scaling (the paper's "more than one ... power supply voltage
  if desired" extension).
* :mod:`~repro.optimize.variation` — worst-case Vth-tolerance robust
  optimization (Figure 2a).
"""

from repro.optimize.problem import (
    DesignPoint,
    OptimizationProblem,
    OptimizationResult,
)
from repro.optimize.width_search import WidthAssignment, size_widths
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.baseline import optimize_fixed_vth
from repro.optimize.annealing import AnnealingSettings, optimize_annealing
from repro.optimize.scipy_opt import optimize_scipy
from repro.optimize.multivth import MultiVthSettings, optimize_multi_vth
from repro.optimize.multivdd import MultiVddSettings, optimize_multi_vdd
from repro.optimize.variation import VariationModel, optimize_with_variation
from repro.optimize.yield_opt import YieldResult, YieldTarget, optimize_for_yield
from repro.optimize.continuous_vth import (
    ContinuousVthOutcome,
    optimize_continuous_vth,
)
from repro.optimize.persist import load_design, save_design
from repro.optimize.discretize import (
    DiscretizationOutcome,
    discretize_result,
    geometric_grid,
    snap_widths,
)

__all__ = [
    "DesignPoint",
    "OptimizationProblem",
    "OptimizationResult",
    "WidthAssignment",
    "size_widths",
    "HeuristicSettings",
    "optimize_joint",
    "optimize_fixed_vth",
    "AnnealingSettings",
    "optimize_annealing",
    "optimize_scipy",
    "MultiVthSettings",
    "optimize_multi_vth",
    "MultiVddSettings",
    "optimize_multi_vdd",
    "VariationModel",
    "optimize_with_variation",
    "YieldResult",
    "YieldTarget",
    "optimize_for_yield",
    "ContinuousVthOutcome",
    "optimize_continuous_vth",
    "load_design",
    "save_design",
    "DiscretizationOutcome",
    "discretize_result",
    "geometric_grid",
    "snap_widths",
]
