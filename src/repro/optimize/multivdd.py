"""Dual supply voltages by clustered voltage scaling (extension).

The paper keeps a single global ``Vdd`` "since it is impractical to have
more than one power supply in the circuit" but explicitly retains "the
flexibility to use more than one threshold or power supply voltage if
desired" (§4). This module is that flexibility: the classic
*clustered voltage scaling* (CVS) scheme with two rails.

CVS constraint: a low-rail gate may never drive a high-rail gate (its
output cannot fully turn off the receiver's pmos), so the low-rail
cluster must be closed under fanout — it grows backwards from the primary
outputs. Level-shifter overhead at the module boundary is neglected
(documented; the paper's single-Vdd stance makes this an exploratory
extension, not a headline result).

Algorithm:

1. Solve the single-Vdd problem with Procedure 2 (high rail, global Vth).
2. Order gates by *slack* (actual delay vs budget at the optimum); grow
   the low cluster from the outputs over fanout-closed, slack-rich gates
   up to a target fraction.
3. Ternary-search the low rail in ``[vdd_min, vdd_high]``, re-sizing all
   widths at every candidate; keep the best feasible point.

**Measured finding** (bench ``benchmarks/bench_multivdd.py``): under the
paper's budget-then-size flow the dual rail does *not* pay — Procedure 1
already converts all path slack into loose budgets, so low-rail gates
have no surplus timing to trade and the width inflation outweighs the
``V^2`` saving. The optimizer detects this and falls back to the
single-rail design (``strategy="multi-vdd-fallback"``), which quantifies
and supports the paper's own "impractical to have more than one power
supply" stance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Set, Tuple

from repro.engine import resolve_engine_name
from repro.errors import OptimizationError
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.problem import (
    DesignPoint,
    OptimizationProblem,
    OptimizationResult,
)
from repro.power.energy import total_energy
from repro.timing.budgeting import BudgetResult
from repro.timing.sta import analyze_timing


@dataclass(frozen=True)
class MultiVddSettings:
    """Knobs of the CVS refinement."""

    #: Target fraction of gates in the low-rail cluster.
    cluster_fraction: float = 0.5
    #: Ternary iterations for the low-rail search.
    refine_iters: int = 14
    #: Settings of the bootstrap single-Vdd solve.
    single: HeuristicSettings = HeuristicSettings()

    def __post_init__(self) -> None:
        if not 0.0 < self.cluster_fraction < 1.0:
            raise OptimizationError(
                f"cluster_fraction must lie in (0, 1), got "
                f"{self.cluster_fraction}")
        if self.refine_iters < 2:
            raise OptimizationError("refine_iters must be >= 2")


def grow_low_cluster(problem: OptimizationProblem,
                     budgets: BudgetResult,
                     slacks: Mapping[str, float],
                     fraction: float) -> Tuple[str, ...]:
    """Select a fanout-closed low-rail cluster of about ``fraction`` gates.

    Gates are visited in reverse topological order (so each gate's
    fanouts are decided first — CVS closure is checkable locally) and
    admitted greedily while slack-rich, preferring larger slack.
    """
    network = problem.network
    target = int(fraction * network.gate_count)
    ordered = sorted(network.logic_gates,
                     key=lambda name: -slacks.get(name, 0.0))
    rank = {name: index for index, name in enumerate(ordered)}

    cluster: Set[str] = set()
    for name in reversed(network.topological_order()):
        if network.gate(name).is_input:
            continue
        if len(cluster) >= target:
            break
        fanouts = network.fanouts(name)
        if any(sink not in cluster for sink in fanouts):
            continue  # would drive a high-rail gate
        if rank[name] > 2 * target:
            continue  # slack-poor; keep on the fast rail
        cluster.add(name)
    return tuple(sorted(cluster))


def optimize_multi_vdd(problem: OptimizationProblem,
                       settings: MultiVddSettings | None = None,
                       budgets: BudgetResult | None = None
                       ) -> OptimizationResult:
    """CVS dual-rail optimization; falls back to single-Vdd if it loses."""
    settings = settings or MultiVddSettings()
    if budgets is None:
        budgets = problem.budgets()
    single = optimize_joint(problem, settings=settings.single,
                            budgets=budgets)
    high_rail = float(single.design.distinct_vdds()[0])
    vth = single.design.vth

    slacks = {name: budgets.budgets[name] - single.timing.delay(name)
              for name in problem.network.logic_gates}
    cluster = grow_low_cluster(problem, budgets, slacks,
                               settings.cluster_fraction)
    if not cluster:
        return single

    evaluations = single.evaluations
    engine_name = resolve_engine_name(settings.single.engine)
    evaluator = problem.evaluator(
        budgets, engine_name, width_method=settings.single.width_method)

    def rail_map(low_rail: float) -> Dict[str, float]:
        mapping = {name: high_rail for name in problem.network.logic_gates}
        for name in cluster:
            mapping[name] = low_rail
        return mapping

    def evaluate(low_rail: float):
        """(energy, sizing-or-None) with the cluster on ``low_rail``.

        One shared-evaluator call on a per-gate Vdd mapping (vectorized
        end-to-end on the array engine); widths stay an engine handle
        until the winning rail is materialized.
        """
        nonlocal evaluations
        evaluations += 1
        evaluation = evaluator(rail_map(low_rail), vth)
        return evaluation.energy, evaluation.sizing

    low, high = problem.tech.vdd_min, high_rail
    for _ in range(settings.refine_iters):
        third = (high - low) / 3.0
        left, right = low + third, high - third
        if evaluate(left)[0] <= evaluate(right)[0]:
            high = right
        else:
            low = left
    best_low = 0.5 * (low + high)
    energy, sizing = evaluate(best_low)

    if sizing is None or energy >= single.total_energy:
        details = dict(single.details)
        details["strategy"] = "multi-vdd-fallback"
        details["cluster_size"] = len(cluster)
        return OptimizationResult(problem=problem, design=single.design,
                                  energy=single.energy,
                                  timing=single.timing,
                                  evaluations=evaluations,
                                  details=details)

    mapping = rail_map(best_low)
    design = DesignPoint(vdd=mapping, vth=vth, widths=sizing.widths_map())
    energy_report = total_energy(problem.ctx, mapping, vth, design.widths,
                                 problem.frequency)
    timing = analyze_timing(problem.ctx, mapping, vth, design.widths)
    return OptimizationResult(
        problem=problem, design=design, energy=energy_report, timing=timing,
        evaluations=evaluations,
        details={"strategy": "multi-vdd", "cluster_size": len(cluster),
                 "engine": engine_name,
                 "high_rail": round(high_rail, 4),
                 "low_rail": round(best_low, 4),
                 "single_vdd_energy": single.total_energy})
