"""Discrete device widths: snapping the continuous optimum to a library.

The paper sizes each transistor continuously in ``[1, 100]``; a standard
cell library only offers a geometric ladder of drive strengths (X1, X1.4,
X2, ...). This module quantifies that manufacturability step:

* :func:`geometric_grid` — the size ladder,
* :func:`snap_widths` — per-gate rounding of a continuous width map.
  Rounding **up** preserves every gate's own delay bound; it also grows
  the loads of driving gates, so the snapped design is re-verified with
  a full STA pass and — if the load growth broke timing — iteratively
  bumps the violating gates' drivers one step (at most a few passes; the
  ladder is finite),
* :func:`discretize_result` — the end-to-end wrapper producing a new
  :class:`~repro.optimize.problem.OptimizationResult` plus the measured
  energy penalty of discreteness.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.errors import InfeasibleError, OptimizationError
from repro.optimize.problem import (
    DesignPoint,
    OptimizationProblem,
    OptimizationResult,
)
from repro.power.energy import total_energy
from repro.timing.sta import analyze_timing


def geometric_grid(minimum: float = 1.0, maximum: float = 100.0,
                   ratio: float = math.sqrt(2.0)) -> Tuple[float, ...]:
    """A geometric drive-strength ladder covering ``[minimum, maximum]``.

    The default sqrt(2) ratio is the classic X1/X1.4/X2/... library
    progression; the top size is always included.
    """
    if minimum <= 0.0 or maximum <= minimum:
        raise OptimizationError(
            f"need 0 < minimum < maximum, got [{minimum}, {maximum}]")
    if ratio <= 1.0:
        raise OptimizationError(f"ratio must be > 1, got {ratio}")
    sizes: List[float] = []
    size = minimum
    while size < maximum * (1.0 - 1e-12):
        sizes.append(size)
        size *= ratio
    sizes.append(maximum)
    return tuple(sizes)


def _snap_up(grid: Tuple[float, ...], width: float) -> float:
    index = bisect_left(grid, width * (1.0 - 1e-12))
    if index >= len(grid):
        return grid[-1]
    return grid[index]


def _bump(grid: Tuple[float, ...], width: float) -> float:
    """The next ladder step above ``width`` (saturates at the top)."""
    index = bisect_left(grid, width * (1.0 + 1e-12))
    if index >= len(grid):
        return grid[-1]
    return grid[index]


def snap_widths(problem: OptimizationProblem, design: DesignPoint,
                grid: Tuple[float, ...] | None = None,
                max_repair_passes: int = 8) -> Dict[str, float]:
    """Snap a continuous design's widths up onto ``grid``, repair timing.

    Raises :class:`InfeasibleError` if even saturating the ladder cannot
    recover the cycle time (practically impossible when the continuous
    design was feasible, since the ladder tops out at ``width_max``).
    """
    tech = problem.tech
    if grid is None:
        grid = geometric_grid(tech.width_min, tech.width_max)
    snapped = {name: _snap_up(grid, width)
               for name, width in design.widths.items()}

    cycle = problem.cycle_time * problem.skew_factor
    for _ in range(max_repair_passes):
        report = analyze_timing(problem.ctx, design.vdd, design.vth,
                                snapped)
        if report.meets(cycle, tolerance=1e-9):
            return snapped
        # Bump the drivers along the violating critical path one step.
        moved = False
        for name in report.critical_path:
            if name not in snapped:
                continue
            bigger = _bump(grid, snapped[name])
            if bigger > snapped[name]:
                snapped[name] = bigger
                moved = True
        if not moved:
            break
    raise InfeasibleError(
        f"{problem.network.name}: discrete sizing could not recover the "
        f"cycle time on grid of {len(grid)} sizes")


@dataclass(frozen=True)
class DiscretizationOutcome:
    """Continuous-vs-discrete comparison."""

    continuous: OptimizationResult
    discrete: OptimizationResult
    grid_size: int

    @property
    def energy_penalty(self) -> float:
        """discrete / continuous total energy (>= ~1)."""
        return self.discrete.total_energy / self.continuous.total_energy


def discretize_result(problem: OptimizationProblem,
                      result: OptimizationResult,
                      grid: Tuple[float, ...] | None = None
                      ) -> DiscretizationOutcome:
    """Snap ``result`` to the ladder and package the comparison."""
    tech = problem.tech
    if grid is None:
        grid = geometric_grid(tech.width_min, tech.width_max)
    snapped = snap_widths(problem, result.design, grid=grid)
    design = DesignPoint(vdd=result.design.vdd, vth=result.design.vth,
                         widths=snapped)
    energy = total_energy(problem.ctx, design.vdd, design.vth, snapped,
                          problem.frequency)
    timing = analyze_timing(problem.ctx, design.vdd, design.vth, snapped)
    discrete = OptimizationResult(
        problem=problem, design=design, energy=energy, timing=timing,
        evaluations=result.evaluations,
        details={"strategy": "discretized", "grid_size": len(grid)})
    return DiscretizationOutcome(continuous=result, discrete=discrete,
                                 grid_size=len(grid))
