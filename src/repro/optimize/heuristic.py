"""Procedure 2: the joint (Vdd, Vth, widths) heuristic (§4.3).

All searches over the (Vdd, Vth) plane share the same inner loop
(Procedure 1 budgets + minimum-width sizing, see
:mod:`repro.optimize.width_search`) and the same objective (total energy
per cycle, eqs. A1 + A2). Which corners get evaluated is pluggable
behind the :mod:`repro.search` strategy seam:

* ``"grid"`` (default) — a coarse exhaustive grid over the plane
  followed by coordinate-descent ternary refinement around the best
  cell. Deterministic, never misses the global basin at grid
  resolution, and is what the experiments use.
  :class:`repro.search.grid.GridStrategy` is the exact pre-seam scan
  (PR 5 bound pruning included), bit-identical serial and sharded.
* ``"random"`` / ``"surrogate"`` / ``"hyperband"`` — budgeted adaptive
  samplers (uniform counter-seeded sampling; quadratic response surface
  seeded from the closed-form lower bounds; successive halving over
  annealing hyperparameters). Each ends with one refinement pass and is
  held to the grid argmin's energy by the parity harness
  (``tests/test_search_parity.py``) at a fraction of the evaluations.
* ``"paper"`` — the published nested binary search: M bisection steps
  on ``Vdd``, M on ``Vth``, range halving steered by feasibility and
  energy improvement, exactly as in the Procedure 2 pseudocode. It
  steers per evaluation (no round structure to shard), so it stays a
  dedicated code path rather than a seam strategy. The ablation bench
  (``benchmarks/bench_ablation_search.py``) compares it to the grid.

The returned design is always re-verified with a full STA pass at the
chosen point; the Procedure 1 + minimum-width construction guarantees the
verification passes (budget sums bound every path by ``b * T_c``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.engine import (ENGINE_CHOICES, fingerprint_engine_name,
                          resolve_engine_name)
from repro.errors import InfeasibleError, OptimizationError
from repro.obs import trace
from repro.obs.instrument import WARM_START_SKIPPED
from repro.obs.logs import get_logger
from repro.obs.metrics import current_metrics
from repro.optimize.problem import (
    DesignPoint,
    OptimizationProblem,
    OptimizationResult,
)
from repro.power.energy import total_energy
from repro.robust.config import RobustConfig
from repro.robust.objective import (RobustEvaluator, corner_key,
                                    robust_details)
from repro.runtime.checkpoint import SearchCheckpoint
from repro.runtime.controller import RunController, resolve_controller
from repro.runtime.supervisor import ParallelPlan, resolve_parallel
from repro.search import (STRATEGY_CHOICES, make_strategy, run_search,
                          search_config)
# Re-exported here for backward compatibility: the grid internals grew
# up in this module before moving to the strategy package.
from repro.search.grid import (grid_cells as _grid_cells,
                               grid_lower_bounds as _grid_lower_bounds,
                               linspace as _linspace,
                               prune_cells as _prune_cells)
from repro.timing.budgeting import BudgetResult
from repro.timing.sta import analyze_timing

logger = get_logger("optimize.heuristic")


@dataclass(frozen=True)
class HeuristicSettings:
    """Tuning knobs of Procedure 2."""

    strategy: str = "grid"
    #: Adaptive strategies (random/surrogate/hyperband): total objective
    #: evaluations to spend before the final refinement pass (None =
    #: per-strategy default, see :data:`repro.search.DEFAULT_BUDGETS`)
    #: and the RNG seed of the counter-seeded proposal streams.
    search_budget: Optional[int] = None
    seed: int = 0
    #: Paper strategy: bisection steps per voltage loop (the paper's M).
    m_steps: int = 12
    #: Grid strategy: grid resolution on each axis.
    grid_vdd: int = 15
    grid_vth: int = 13
    #: Grid strategy: ternary-refinement iterations per coordinate pass.
    refine_iters: int = 18
    #: Coordinate-descent passes after the grid.
    refine_rounds: int = 2
    #: Width solver: "closed_form" (exact) or "bisect" (paper-faithful).
    width_method: str = "closed_form"
    #: Evaluation engine: "scalar" (reference), "fast" (vectorized
    #: NumPy, budget repair included — equivalent to float round-off),
    #: or "auto" (honor :func:`repro.engine.use_engine` / the
    #: ``REPRO_ENGINE`` environment variable, defaulting to "scalar").
    engine: str = "auto"
    #: Grid strategy: skip cells whose admissible closed-form lower
    #: bound (dynamic energy at all-minimum widths + leakage floor,
    #: vectorized pre-pass) exceeds the best energy found by a few probe
    #: evaluations. The bound is a true lower bound on any feasible
    #: sizing's energy, so pruning never changes the argmin — the CI
    #: parity gate (``ci/check_incremental_parity.py``) proves the
    #: pruned and unpruned scans pick the identical cell at any
    #: ``--jobs`` count. Costs ``prune_probes + 1`` extra sizings
    #: (probed cells are re-evaluated in scan order so the best-point
    #: trajectory is untouched).
    prune: bool = False
    prune_probes: int = 8
    #: Bisect-only: seed each cell's per-gate bisection brackets from
    #: the nearest already-solved cell (the previous feasible evaluation
    #: — grid scans visit adjacent cells consecutively). Changes the
    #: bisection discretization (within solver tolerance, not
    #: bit-identical), so it is opt-in, excluded from the cross-engine
    #: parity gates, and forces the grid phase serial.
    warm_start: bool = False
    #: Optional search-range overrides (defaults: technology bounds).
    vdd_range: Optional[Tuple[float, float]] = None
    vth_range: Optional[Tuple[float, float]] = None
    #: Optional run control (deadline/cancel/progress/checkpointing).
    #: When None, the ambient controller installed via
    #: :func:`repro.runtime.use_controller` applies, if any.
    controller: Optional[RunController] = None
    #: Optional parallel execution of the grid phase on the supervised
    #: worker pool. When None, the ambient plan installed via
    #: :func:`repro.runtime.use_parallel` applies, if any. Results are
    #: jobs-invariant: the grid cells are pure shard functions and the
    #: merge is canonical, so any jobs count (with or without worker
    #: crashes) yields the serial design. Only the ``"grid"`` strategy
    #: shards; the paper bisection and the refinement are sequential by
    #: construction.
    parallel: Optional[ParallelPlan] = None
    #: Optional statistical objective: when set, every corner is scored
    #: by the configured risk measure (mean/p95/CVaR energy under Vth
    #: variation) with the timing-yield target enforced as feasibility
    #: (see :mod:`repro.robust`). The resolved config joins the
    #: checkpoint fingerprint, so nominal and robust searches can never
    #: share a checkpoint or a serve cache slot.
    robust: Optional[RobustConfig] = None

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGY_CHOICES + ("paper",):
            raise OptimizationError(f"unknown strategy {self.strategy!r}")
        if self.search_budget is not None and self.search_budget < 1:
            raise OptimizationError(
                f"search_budget must be >= 1, got {self.search_budget}")
        if self.m_steps < 2:
            raise OptimizationError(f"m_steps must be >= 2, got {self.m_steps}")
        if self.grid_vdd < 2 or self.grid_vth < 2:
            raise OptimizationError("grid must be at least 2x2")
        if self.engine not in ENGINE_CHOICES:
            raise OptimizationError(f"unknown engine {self.engine!r}")
        if self.prune_probes < 1:
            raise OptimizationError(
                f"prune_probes must be >= 1, got {self.prune_probes}")


@dataclass
class _SearchState:
    """Mutable bookkeeping shared by the search strategies."""

    best_energy: float = math.inf
    best_point: Optional[Tuple[float, float]] = None
    best_widths: Optional[Mapping[str, float]] = None
    evaluations: int = 0
    feasible_points: int = 0
    #: Robust searches: per-corner estimate records (sample counters,
    #: yield CI), keyed by :func:`repro.robust.objective.corner_key`.
    robust_stats: Dict[str, Dict[str, object]] = field(default_factory=dict)


def _make_objective(problem: OptimizationProblem, budgets: BudgetResult,
                    settings: HeuristicSettings,
                    state: _SearchState,
                    engine_name: str = "auto",
                    energy_vth_bias: Callable[[float], float] | None = None,
                    delay_vth_bias: Callable[[float], float] | None = None,
                    warm_starts: Optional[bool] = None,
                    ) -> Callable[[float, float], float]:
    """Objective: total energy at (vdd, vth), inf when sizing fails.

    A thin wrapper over the shared :class:`repro.engine.Evaluator` (the
    single evaluate-loop implementation, on whichever engine
    ``engine_name`` names) that tracks the running best in ``state``.
    The two bias hooks let the variation-aware optimizer evaluate delay
    at the slow-corner threshold and leakage at the leaky-corner
    threshold while the search variable remains the nominal Vth
    (Figure 2a).
    """
    if warm_starts is None:
        warm_starts = settings.warm_start
    evaluator = problem.evaluator(budgets, engine_name,
                                  width_method=settings.width_method,
                                  delay_vth_bias=delay_vth_bias,
                                  energy_vth_bias=energy_vth_bias,
                                  warm_starts=warm_starts)
    if settings.robust is not None:
        evaluator = RobustEvaluator(evaluator, settings.robust,
                                    stats=state.robust_stats)

    def objective(vdd: float, vth: float) -> float:
        state.evaluations += 1
        evaluation = evaluator(vdd, vth)
        if evaluation.feasible:
            state.feasible_points += 1
            if evaluation.energy < state.best_energy:
                state.best_energy = evaluation.energy
                state.best_point = (vdd, vth)
                state.best_widths = evaluation.widths_map()
        return evaluation.energy

    # Batch-capable engines pre-evaluate whole strategy rounds through
    # this hook (a no-op elsewhere); the per-corner calls then consume
    # the cache with identical results and counters.
    objective.prefetch = evaluator.prefetch
    objective.engine = evaluator.engine
    return objective


def _ranges(problem: OptimizationProblem,
            settings: HeuristicSettings) -> Tuple[Tuple[float, float],
                                                  Tuple[float, float]]:
    tech = problem.tech
    vdd_range = settings.vdd_range or (tech.vdd_min, tech.vdd_max)
    vth_range = settings.vth_range or (tech.vth_min, tech.vth_max)
    if vdd_range[0] >= vdd_range[1] or vth_range[0] >= vth_range[1]:
        raise OptimizationError(
            f"bad search ranges vdd={vdd_range}, vth={vth_range}")
    return vdd_range, vth_range


def _ternary_min(function: Callable[[float], float], low: float, high: float,
                 iterations: int) -> float:
    """Ternary search for the minimizer of a (near) unimodal function."""
    for _ in range(iterations):
        third = (high - low) / 3.0
        left = low + third
        right = high - third
        if function(left) <= function(right):
            high = right
        else:
            low = left
    return 0.5 * (low + high)


def _refine(objective: Callable[[float, float], float], state: _SearchState,
            vdd_range: Tuple[float, float], vth_range: Tuple[float, float],
            settings: HeuristicSettings) -> None:
    """Coordinate-descent ternary refinement around the best grid cell."""
    if state.best_point is None:
        return
    vdd_step = (vdd_range[1] - vdd_range[0]) / (settings.grid_vdd - 1)
    vth_step = (vth_range[1] - vth_range[0]) / (settings.grid_vth - 1)
    for _ in range(settings.refine_rounds):
        vdd_best, vth_best = state.best_point
        low = max(vdd_range[0], vdd_best - vdd_step)
        high = min(vdd_range[1], vdd_best + vdd_step)
        vdd_candidate = _ternary_min(
            lambda vdd: objective(vdd, state.best_point[1]),
            low, high, settings.refine_iters)
        objective(vdd_candidate, state.best_point[1])
        vdd_best, vth_best = state.best_point
        low = max(vth_range[0], vth_best - vth_step)
        high = min(vth_range[1], vth_best + vth_step)
        vth_candidate = _ternary_min(
            lambda vth: objective(state.best_point[0], vth),
            low, high, settings.refine_iters)
        objective(state.best_point[0], vth_candidate)


#: Pattern-search step halvings before the descent stops; six halvings
#: of the initial quarter-span step leave ~0.4% resolution per axis,
#: matching what the grid's local refinement achieves.
_DESCEND_SHRINKS = 6


def _descend(objective: Callable[[float, float], float],
             state: _SearchState,
             vdd_range: Tuple[float, float],
             vth_range: Tuple[float, float]) -> None:
    """Feasibility-frontier descent from an adaptive strategy's best.

    The energy minimum lives in a *diagonal* valley: dynamic energy
    pulls Vdd toward the feasibility frontier, but hugging the frontier
    blows the widths (and with them the capacitance) up, so the optimum
    sits where Vdd and Vth rise together off the wall. Coordinate-wise
    ternary refinement stalls on such valleys, so the descent is a
    Hooke-Jeeves pattern search: exploratory ±step probes per axis pick
    a downhill move, and each accepted move is followed by a *pattern*
    (momentum) step that doubles down along the achieved direction —
    which is what lets the walk track the diagonal. When no probe
    improves, the step halves; after ``_DESCEND_SHRINKS`` halvings the
    resolution is ~0.4% of each axis span and the search stops.
    Deterministic in ``state.best_point`` and driven through
    ``objective`` like every other phase, so checkpoint replay and
    resume-identity work unchanged. Infeasible probes read as +inf and
    simply never attract a move.
    """
    if state.best_point is None:
        # No feasible sample in budget: probe the fastest corners the
        # way the prune pre-pass does, so the descent has a start.
        objective(vdd_range[1], 0.5 * (vth_range[0] + vth_range[1]))
        if state.best_point is None:
            objective(vdd_range[1], vth_range[0])
        if state.best_point is None:
            return
    ranges = (vdd_range, vth_range)

    def clipped(point: Tuple[float, float], axis: int,
                delta: float) -> Tuple[float, float]:
        moved = list(point)
        moved[axis] = min(max(moved[axis] + delta, ranges[axis][0]),
                          ranges[axis][1])
        return (moved[0], moved[1])

    def explore(point: Tuple[float, float], value: float,
                steps: List[float]) -> Tuple[Tuple[float, float], float]:
        for axis in range(2):
            for sign in (1.0, -1.0):
                probe = clipped(point, axis, sign * steps[axis])
                if probe[axis] == point[axis]:
                    continue  # clipped onto the boundary: no move
                energy = objective(*probe)
                if energy < value:
                    point, value = probe, energy
                    break
        return point, value

    steps = [0.25 * (vdd_range[1] - vdd_range[0]),
             0.25 * (vth_range[1] - vth_range[0])]
    base = state.best_point
    base_energy = state.best_energy
    shrinks = 0
    while shrinks < _DESCEND_SHRINKS:
        point, value = explore(base, base_energy, steps)
        if value >= base_energy:
            steps = [0.5 * step for step in steps]
            shrinks += 1
            continue
        previous, base, base_energy = base, point, value
        pattern = (min(max(2.0 * base[0] - previous[0], vdd_range[0]),
                       vdd_range[1]),
                   min(max(2.0 * base[1] - previous[1], vth_range[0]),
                       vth_range[1]))
        pattern_energy = objective(*pattern)
        if pattern_energy < base_energy:
            point, value = explore(pattern, pattern_energy, steps)
            if value < base_energy:
                base, base_energy = point, value


def _paper_search(objective: Callable[[float, float], float],
                  state: _SearchState,
                  vdd_range: Tuple[float, float],
                  vth_range: Tuple[float, float],
                  settings: HeuristicSettings) -> None:
    """The published feasibility/improvement-steered nested bisection."""
    vdd_low, vdd_high = vdd_range
    previous_outer_best = math.inf
    for _ in range(settings.m_steps):
        vdd = 0.5 * (vdd_low + vdd_high)
        vth_low, vth_high = vth_range
        inner_best = math.inf
        previous_inner_best = math.inf
        for _ in range(settings.m_steps):
            vth = 0.5 * (vth_low + vth_high)
            energy = objective(vdd, vth)
            improved = energy < previous_inner_best
            if improved:
                previous_inner_best = energy
                inner_best = min(inner_best, energy)
            if math.isfinite(energy) and improved:
                # Feasible and improving: raise Vth to shave more leakage.
                vth_low = vth
            else:
                vth_high = vth
        if math.isfinite(inner_best) and inner_best < previous_outer_best:
            previous_outer_best = inner_best
            # Feasible and improving: push the supply further down.
            vdd_high = vdd
        else:
            vdd_low = vdd


def _search_fingerprint(problem: OptimizationProblem,
                        settings: HeuristicSettings,
                        vdd_range: Tuple[float, float],
                        vth_range: Tuple[float, float],
                        engine_name: str) -> Dict[str, object]:
    """Identity of a search for checkpoint validation.

    Two searches with equal fingerprints perform the identical
    deterministic evaluation sequence, which is what makes corner-level
    resume exact; any field differing makes a checkpoint unusable. The
    engine is recorded by its *resolved* name — ``engine="auto"`` under
    ``REPRO_ENGINE=fast`` fingerprints as ``"fast"`` — so a resumed run
    can never silently switch engines. The ``search`` entry is the
    resolved strategy config (:func:`repro.search.search_config` — name,
    budget, seed, shape knobs), so a checkpoint — and, downstream, a
    serve cache entry keyed off this same fingerprint — can never cross
    strategies silently.
    """
    return {
        "search": search_config(settings),
        "network": problem.network.name,
        "gate_count": problem.network.gate_count,
        "frequency_hz": problem.frequency,
        "skew_factor": problem.skew_factor,
        "strategy": settings.strategy,
        "m_steps": settings.m_steps,
        "grid_vdd": settings.grid_vdd,
        "grid_vth": settings.grid_vth,
        "refine_iters": settings.refine_iters,
        "refine_rounds": settings.refine_rounds,
        "width_method": settings.width_method,
        # Canonicalized: the batch engine is bit-identical to "fast"
        # per corner, so their checkpoints (and serve cache entries,
        # which reuse this fingerprint) are interchangeable.
        "engine": fingerprint_engine_name(engine_name),
        "prune": settings.prune,
        "prune_probes": settings.prune_probes,
        "warm_start": settings.warm_start,
        "vdd_range": list(vdd_range),
        "vth_range": list(vth_range),
        "robust": (settings.robust.resolved()
                   if settings.robust is not None else None),
    }


def _open_checkpoint(problem: OptimizationProblem,
                     settings: HeuristicSettings,
                     controller: Optional[RunController],
                     resume_from, vdd_range, vth_range,
                     engine_name: str) -> Optional[SearchCheckpoint]:
    """Load (or create) the search checkpoint, if one was requested.

    ``resume_from`` wins over the controller's ``checkpoint_path``; a
    nonexistent ``resume_from`` file starts a fresh checkpoint at that
    path, so ``--resume run.ckpt`` is idempotent across interruptions.
    """
    path = None
    if resume_from is not None:
        path = Path(resume_from)
    elif controller is not None and controller.checkpoint_path is not None:
        path = controller.checkpoint_path
    if path is None:
        return None
    every = controller.checkpoint_every if controller is not None else 1
    fingerprint = _search_fingerprint(problem, settings, vdd_range, vth_range,
                                      engine_name)
    if path.exists():
        return SearchCheckpoint.load(path, fingerprint, every=every)
    return SearchCheckpoint(fingerprint, path=path, every=every)


def optimize_joint(problem: OptimizationProblem,
                   settings: HeuristicSettings | None = None,
                   budgets: BudgetResult | None = None,
                   seeds: "Tuple[Tuple[float, float], ...]" = (),
                   resume_from: str | Path | None = None,
                   _energy_vth_bias: Callable[[float], float] | None = None,
                   _delay_vth_bias: Callable[[float], float] | None = None,
                   ) -> OptimizationResult:
    """Run Procedure 2 on ``problem`` and return the optimized design.

    ``seeds`` are extra (Vdd, Vth) candidates evaluated alongside the
    search — sweeps warm-start each point with the previous optimum so a
    relaxed problem can never appear worse than a tighter one.

    ``resume_from`` names a checkpoint file: if it exists, the search
    resumes from the last completed corner recorded there (and keeps
    checkpointing to the same file); if not, a fresh checkpoint is
    written there as the search runs. ``settings.controller`` (or the
    ambient :func:`repro.runtime.use_controller` controller) adds
    wall-clock deadlines, cooperative cancellation, and progress
    callbacks; the checkpoint is flushed before a deadline or
    cancellation propagates, so the run can be resumed.

    Raises :class:`InfeasibleError` when no (Vdd, Vth, widths) point in
    the technology's ranges meets the cycle time. For ``n_vth > 1`` use
    :func:`repro.optimize.multivth.optimize_multi_vth`, which builds on
    this single-Vth optimizer.
    """
    settings = settings or HeuristicSettings()
    controller = resolve_controller(settings.controller)
    engine_name = resolve_engine_name(settings.engine)
    # The corner-bias hooks are closures and cannot cross a process
    # boundary; variation-aware searches run their rounds in-process.
    plan = resolve_parallel(settings.parallel)
    parallel_search = (plan is not None and plan.active
                       and settings.strategy != "paper"
                       and _energy_vth_bias is None
                       and _delay_vth_bias is None)
    # Warm starts chain each evaluation to the previous feasible one,
    # which a sharded round cannot reproduce. Parallelism wins: the
    # warm start is skipped, loudly.
    warm_start_skipped = settings.warm_start and parallel_search
    if warm_start_skipped:
        current_metrics().incr(WARM_START_SKIPPED)
        logger.warning(
            "%s: warm_start=True skipped — warm starts are serial-only "
            "and a parallel plan (jobs=%d) is active; drop --jobs to "
            "keep warm starts", problem.network.name, plan.jobs)
    # The bound pre-pass assumes the plain objective (energy billed at
    # the search Vth); variation-aware searches scan unpruned.
    # ... and so do robust searches: the admissible bound is a bound on
    # the *nominal* energy, not on a risk measure over variation.
    prune_active = (settings.prune and settings.strategy == "grid"
                    and settings.robust is None
                    and _energy_vth_bias is None
                    and _delay_vth_bias is None)
    if budgets is None:
        budgets = problem.budgets()
    state = _SearchState()
    raw_objective = _make_objective(
        problem, budgets, settings, state,
        engine_name=engine_name,
        energy_vth_bias=_energy_vth_bias,
        delay_vth_bias=_delay_vth_bias,
        warm_starts=settings.warm_start and not warm_start_skipped)
    vdd_range, vth_range = _ranges(problem, settings)
    checkpoint = _open_checkpoint(problem, settings, controller, resume_from,
                                  vdd_range, vth_range, engine_name)
    resumed_corners = checkpoint.completed if checkpoint is not None else 0

    if checkpoint is None and controller is None:
        objective = raw_objective
    else:
        where = f"{problem.network.name} (Vdd, Vth) search"

        def objective(vdd: float, vth: float) -> float:
            if controller is not None:
                controller.check(where)
            if checkpoint is not None:
                cached = checkpoint.lookup(vdd, vth)
                if cached is not None:
                    # Replay the recorded evaluation without recomputing.
                    # Updating the running best here (not seeding it up
                    # front) matters: the refinement steers by the best
                    # point *as it evolves*, so resume must rebuild that
                    # trajectory corner by corner to stay on the exact
                    # path of the interrupted run. The widths of a
                    # replayed best are recovered from the checkpoint
                    # snapshot after the search.
                    energy, feasible = cached
                    state.evaluations += 1
                    if feasible:
                        state.feasible_points += 1
                    if energy < state.best_energy:
                        state.best_energy = energy
                        state.best_point = (vdd, vth)
                        state.best_widths = None
                    if settings.robust is not None:
                        # Restore the corner's Monte-Carlo bookkeeping
                        # instead of re-sampling, so a resumed run
                        # reports byte-identical robust counters.
                        stat = checkpoint.robust_stats.get(
                            corner_key(vdd, vth))
                        if stat is not None:
                            state.robust_stats[corner_key(vdd, vth)] = \
                                dict(stat)
                    return energy
            feasible_before = state.feasible_points
            energy = raw_objective(vdd, vth)
            if checkpoint is not None:
                if settings.robust is not None:
                    # Nominal-infeasible corners never draw samples and
                    # have no stat to persist.
                    stat = state.robust_stats.get(corner_key(vdd, vth))
                    if stat is not None:
                        checkpoint.note_robust_stat(corner_key(vdd, vth),
                                                    stat)
                checkpoint.record(
                    vdd, vth, energy,
                    feasible=state.feasible_points > feasible_before,
                    best_energy=state.best_energy,
                    best_point=state.best_point,
                    best_widths=state.best_widths)
            if controller is not None:
                controller.report(phase=settings.strategy,
                                  evaluations=state.evaluations,
                                  best_energy=state.best_energy)
            return energy

        raw_prefetch = getattr(raw_objective, "prefetch", None)
        if raw_prefetch is not None:
            def _prefetch(corners):
                # Corners already in the checkpoint replay from the
                # record; only fresh corners are worth batching.
                if checkpoint is not None:
                    corners = [corner for corner in corners
                               if checkpoint.lookup(corner[0], corner[1])
                               is None]
                return raw_prefetch(corners)

            objective.prefetch = _prefetch

    strategy = None
    tracer = trace.current_tracer()
    try:
        with tracer.span("optimize_joint", network=problem.network.name,
                         strategy=settings.strategy,
                         engine=engine_name) as root:
            if seeds:
                with tracer.span("seeds", count=len(seeds)):
                    for seed_vdd, seed_vth in seeds:
                        objective(seed_vdd, seed_vth)
            if settings.strategy == "paper":
                with tracer.span("paper_search", m_steps=settings.m_steps):
                    _paper_search(objective, state, vdd_range, vth_range,
                                  settings)
            else:
                strategy = make_strategy(problem, budgets, settings,
                                         engine_name, vdd_range, vth_range,
                                         prune_active)
                run_search(strategy, problem=problem, budgets=budgets,
                           settings=settings, state=state,
                           engine_name=engine_name, objective=objective,
                           checkpoint=checkpoint, controller=controller,
                           plan=plan, parallel=parallel_search)
                if settings.strategy == "grid":
                    with tracer.span("refine",
                                     rounds=settings.refine_rounds):
                        _refine(objective, state, vdd_range, vth_range,
                                settings)
                else:
                    # The pattern search both escapes the sampled
                    # best's basin and polishes to refine-level
                    # resolution, so the adaptive path skips the
                    # grid-step ternary refinement entirely.
                    with tracer.span("descend", shrinks=_DESCEND_SHRINKS):
                        _descend(objective, state, vdd_range, vth_range)
            # Refine once more around the overall best (a seed may have
            # won; the adaptive strategies' descent already polishes).
            if settings.strategy == "grid":
                with tracer.span("refine", rounds=settings.refine_rounds):
                    _refine(objective, state, vdd_range, vth_range, settings)
            root.annotate(evaluations=state.evaluations,
                          feasible_points=state.feasible_points,
                          best_energy=state.best_energy)
    finally:
        # Persist progress even when a deadline, cancellation, SIGINT,
        # or model error aborts the search mid-corner.
        if checkpoint is not None:
            checkpoint.flush()

    if state.best_point is None:
        raise InfeasibleError(
            f"{problem.network.name}: no (Vdd, Vth) point meets "
            f"T_c = {problem.cycle_time:.3e} s — even the fastest corner "
            f"fails; relax the clock or widen the technology ranges")

    vdd, vth = state.best_point
    if state.best_widths is None and checkpoint is not None \
            and checkpoint.best_point == state.best_point:
        # The winning corner was replayed from the checkpoint cache; its
        # widths come from the persisted best snapshot.
        state.best_widths = checkpoint.best_widths
    if state.best_widths is None:
        # Defensive re-derivation: size the winning corner once more.
        state.best_energy = math.inf
        raw_objective(vdd, vth)
    if state.best_widths is None:
        raise InfeasibleError(
            f"{problem.network.name}: the recorded best corner "
            f"(Vdd={vdd:.4f} V, Vth={vth:.4f} V) is no longer sizable")
    design = DesignPoint(vdd=vdd, vth=vth, widths=dict(state.best_widths))
    energy = total_energy(problem.ctx, vdd,
                          vth if _energy_vth_bias is None
                          else _energy_vth_bias(vth),
                          design.widths, problem.frequency)
    if not math.isfinite(energy.total):
        # Never report a silently-wrong optimum: a corrupted model
        # evaluation (e.g. an injected NaN) must surface as a typed
        # error so fallback policies can react.
        raise OptimizationError(
            f"{problem.network.name}: non-finite energy "
            f"{energy.total!r} at the chosen optimum "
            f"(Vdd={vdd:.4f} V, Vth={vth:.4f} V)")
    timing = analyze_timing(problem.ctx, vdd,
                            vth if _delay_vth_bias is None
                            else _delay_vth_bias(vth),
                            design.widths)
    if not math.isfinite(timing.critical_delay):
        raise OptimizationError(
            f"{problem.network.name}: non-finite critical delay "
            f"{timing.critical_delay!r} at the chosen optimum")
    details: Dict[str, object] = {
        "strategy": settings.strategy,
        "search": search_config(settings),
        "engine": engine_name,
        "feasible_points": state.feasible_points,
        "budget_rescale": budgets.rescale_factor,
        "budget_paths": budgets.paths_processed,
        "width_method": settings.width_method,
    }
    if parallel_search:
        details["parallel_jobs"] = plan.jobs
    if prune_active and strategy is not None:
        details["pruned_cells"] = len(strategy.pruned)
        details["prune_probes"] = strategy.prune_probes_used
    if settings.warm_start:
        details["warm_start"] = not warm_start_skipped
        if warm_start_skipped:
            details["warm_start_skipped"] = True
    if settings.robust is not None:
        details["robust"] = robust_details(
            settings.robust, state.robust_stats, state.best_point,
            engine=getattr(raw_objective, "engine", None))
    if checkpoint is not None:
        checkpoint.flush()
        details["checkpoint"] = str(checkpoint.path)
        details["resumed_corners"] = resumed_corners
    result = OptimizationResult(problem=problem, design=design, energy=energy,
                                timing=timing, evaluations=state.evaluations,
                                details=details)
    if settings.robust is not None:
        summary = details["robust"]
        if summary["samples_quarantined"] or summary["corners_degraded"]:
            # Statistical degradation is never silent: quarantined
            # samples or deadline-partial estimates taint the result
            # with an explicit label (the estimates themselves stay
            # usable — that is the graceful half of the contract).
            from repro.runtime.fallback import _degrade
            result = _degrade(result, {
                "stage": "robust_estimate",
                "samples_quarantined": summary["samples_quarantined"],
                "corners_degraded": summary["corners_degraded"],
            })
    return result
