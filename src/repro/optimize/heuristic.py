"""Procedure 2: the joint (Vdd, Vth, widths) heuristic (§4.3).

Two search strategies over the (Vdd, Vth) plane are provided; both use
the same inner loop (Procedure 1 budgets + minimum-width sizing, see
:mod:`repro.optimize.width_search`) and the same objective (total energy
per cycle, eqs. A1 + A2), and both exploit the §4.3 observation that
power and delay are monotonic in each variable individually:

* ``"paper"`` — the published nested binary search: M bisection steps on
  ``Vdd`` (range [0.1, 3.3] V), M on ``Vth`` (range [0.1, 0.7] V), with
  range halving steered by feasibility and energy improvement, exactly as
  in the Procedure 2 pseudocode. ``O(M^2)`` circuit evaluations with the
  closed-form width solver (the paper's per-gate width bisection adds the
  third M).
* ``"grid"`` (default) — a coarse exhaustive grid over the same plane
  followed by coordinate-descent ternary refinement around the best cell.
  The published search can get trapped when the feasible region's
  boundary makes the steering predicate non-monotone; the grid strategy
  is deterministic, never misses the global basin at grid resolution, and
  is what the experiments use. The ablation bench
  (``benchmarks/bench_ablation_search.py``) compares the two.

The returned design is always re-verified with a full STA pass at the
chosen point; the Procedure 1 + minimum-width construction guarantees the
verification passes (budget sums bound every path by ``b * T_c``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.engine import ENGINE_CHOICES, resolve_engine_name
from repro.errors import InfeasibleError, OptimizationError
from repro.obs import trace
from repro.obs.instrument import PRUNED_CELLS
from repro.obs.metrics import current_metrics
from repro.optimize.problem import (
    DesignPoint,
    OptimizationProblem,
    OptimizationResult,
)
from repro.power.energy import total_energy
from repro.runtime.checkpoint import SearchCheckpoint
from repro.runtime.controller import RunController, resolve_controller
from repro.runtime.supervisor import (ParallelPlan, resolve_parallel,
                                      run_sharded)
from repro.runtime.tasks import Task, chunk_ranges
from repro.timing.budgeting import BudgetResult
from repro.timing.sta import analyze_timing


@dataclass(frozen=True)
class HeuristicSettings:
    """Tuning knobs of Procedure 2."""

    strategy: str = "grid"
    #: Paper strategy: bisection steps per voltage loop (the paper's M).
    m_steps: int = 12
    #: Grid strategy: grid resolution on each axis.
    grid_vdd: int = 15
    grid_vth: int = 13
    #: Grid strategy: ternary-refinement iterations per coordinate pass.
    refine_iters: int = 18
    #: Coordinate-descent passes after the grid.
    refine_rounds: int = 2
    #: Width solver: "closed_form" (exact) or "bisect" (paper-faithful).
    width_method: str = "closed_form"
    #: Evaluation engine: "scalar" (reference), "fast" (vectorized
    #: NumPy, budget repair included — equivalent to float round-off),
    #: or "auto" (honor :func:`repro.engine.use_engine` / the
    #: ``REPRO_ENGINE`` environment variable, defaulting to "scalar").
    engine: str = "auto"
    #: Grid strategy: skip cells whose admissible closed-form lower
    #: bound (dynamic energy at all-minimum widths + leakage floor,
    #: vectorized pre-pass) exceeds the best energy found by a few probe
    #: evaluations. The bound is a true lower bound on any feasible
    #: sizing's energy, so pruning never changes the argmin — the CI
    #: parity gate (``ci/check_incremental_parity.py``) proves the
    #: pruned and unpruned scans pick the identical cell at any
    #: ``--jobs`` count. Costs ``prune_probes + 1`` extra sizings
    #: (probed cells are re-evaluated in scan order so the best-point
    #: trajectory is untouched).
    prune: bool = False
    prune_probes: int = 8
    #: Bisect-only: seed each cell's per-gate bisection brackets from
    #: the nearest already-solved cell (the previous feasible evaluation
    #: — grid scans visit adjacent cells consecutively). Changes the
    #: bisection discretization (within solver tolerance, not
    #: bit-identical), so it is opt-in, excluded from the cross-engine
    #: parity gates, and forces the grid phase serial.
    warm_start: bool = False
    #: Optional search-range overrides (defaults: technology bounds).
    vdd_range: Optional[Tuple[float, float]] = None
    vth_range: Optional[Tuple[float, float]] = None
    #: Optional run control (deadline/cancel/progress/checkpointing).
    #: When None, the ambient controller installed via
    #: :func:`repro.runtime.use_controller` applies, if any.
    controller: Optional[RunController] = None
    #: Optional parallel execution of the grid phase on the supervised
    #: worker pool. When None, the ambient plan installed via
    #: :func:`repro.runtime.use_parallel` applies, if any. Results are
    #: jobs-invariant: the grid cells are pure shard functions and the
    #: merge is canonical, so any jobs count (with or without worker
    #: crashes) yields the serial design. Only the ``"grid"`` strategy
    #: shards; the paper bisection and the refinement are sequential by
    #: construction.
    parallel: Optional[ParallelPlan] = None

    def __post_init__(self) -> None:
        if self.strategy not in ("grid", "paper"):
            raise OptimizationError(f"unknown strategy {self.strategy!r}")
        if self.m_steps < 2:
            raise OptimizationError(f"m_steps must be >= 2, got {self.m_steps}")
        if self.grid_vdd < 2 or self.grid_vth < 2:
            raise OptimizationError("grid must be at least 2x2")
        if self.engine not in ENGINE_CHOICES:
            raise OptimizationError(f"unknown engine {self.engine!r}")
        if self.prune_probes < 1:
            raise OptimizationError(
                f"prune_probes must be >= 1, got {self.prune_probes}")


@dataclass
class _SearchState:
    """Mutable bookkeeping shared by the search strategies."""

    best_energy: float = math.inf
    best_point: Optional[Tuple[float, float]] = None
    best_widths: Optional[Mapping[str, float]] = None
    evaluations: int = 0
    feasible_points: int = 0


def _make_objective(problem: OptimizationProblem, budgets: BudgetResult,
                    settings: HeuristicSettings,
                    state: _SearchState,
                    engine_name: str = "auto",
                    energy_vth_bias: Callable[[float], float] | None = None,
                    delay_vth_bias: Callable[[float], float] | None = None,
                    ) -> Callable[[float, float], float]:
    """Objective: total energy at (vdd, vth), inf when sizing fails.

    A thin wrapper over the shared :class:`repro.engine.Evaluator` (the
    single evaluate-loop implementation, on whichever engine
    ``engine_name`` names) that tracks the running best in ``state``.
    The two bias hooks let the variation-aware optimizer evaluate delay
    at the slow-corner threshold and leakage at the leaky-corner
    threshold while the search variable remains the nominal Vth
    (Figure 2a).
    """
    evaluator = problem.evaluator(budgets, engine_name,
                                  width_method=settings.width_method,
                                  delay_vth_bias=delay_vth_bias,
                                  energy_vth_bias=energy_vth_bias,
                                  warm_starts=settings.warm_start)

    def objective(vdd: float, vth: float) -> float:
        state.evaluations += 1
        evaluation = evaluator(vdd, vth)
        if evaluation.feasible:
            state.feasible_points += 1
            if evaluation.energy < state.best_energy:
                state.best_energy = evaluation.energy
                state.best_point = (vdd, vth)
                state.best_widths = evaluation.widths_map()
        return evaluation.energy

    return objective


def _ranges(problem: OptimizationProblem,
            settings: HeuristicSettings) -> Tuple[Tuple[float, float],
                                                  Tuple[float, float]]:
    tech = problem.tech
    vdd_range = settings.vdd_range or (tech.vdd_min, tech.vdd_max)
    vth_range = settings.vth_range or (tech.vth_min, tech.vth_max)
    if vdd_range[0] >= vdd_range[1] or vth_range[0] >= vth_range[1]:
        raise OptimizationError(
            f"bad search ranges vdd={vdd_range}, vth={vth_range}")
    return vdd_range, vth_range


def _linspace(low: float, high: float, count: int) -> List[float]:
    if count == 1:
        return [0.5 * (low + high)]
    step = (high - low) / (count - 1)
    return [low + index * step for index in range(count)]


def _grid_cells(vdd_range: Tuple[float, float],
                vth_range: Tuple[float, float],
                settings: HeuristicSettings
                ) -> List[Tuple[int, float, float]]:
    """The grid corners, indexed in canonical (vdd-outer) scan order.

    Serial scan, parallel sharding and the bound-based prune pre-pass all
    work off this one list, so "cell index" means the same corner
    everywhere.
    """
    cells: List[Tuple[int, float, float]] = []
    for vdd in _linspace(*vdd_range, settings.grid_vdd):
        for vth in _linspace(*vth_range, settings.grid_vth):
            cells.append((len(cells), vdd, vth))
    return cells


def _grid_lower_bounds(problem: OptimizationProblem,
                       cells: List[Tuple[int, float, float]]) -> List[float]:
    """Admissible per-cell lower bound on total energy (J/cycle).

    Every energy term of eqs. A1 + A2 is monotonically increasing in
    each gate width — static is ``Vdd * sum(w * I_off) / f``, and both
    dynamic terms charge loads that only grow with the widths they
    gather — so evaluating them at all-minimum widths bounds any sizing
    the solver can return, feasible or not. The width-dependent load
    sums are computed once (vectorized, via the fastpath parasitics
    kernel); each cell then costs two scalar device-model calls. Cells
    whose drive is non-positive at minimum stack loading are infeasible
    for *every* width assignment and bound to ``inf``.
    """
    import numpy as np

    from repro.engine.array import array_context_for
    from repro.fastpath.evaluate import _currents, _external_caps

    arrays = array_context_for(problem.ctx)
    tech = problem.tech
    n = arrays.n_gates
    wmin = np.full(n, tech.width_min)
    ext, _, _ = _external_caps(arrays, wmin, 0, n)
    load = wmin * arrays.self_cap + ext
    activity_load = float(np.sum(arrays.activity * load))
    sink_caps = arrays.segment_sum(
        arrays.input_fanout,
        wmin[arrays.input_fanout.indices] * arrays.input_fanout_cap)
    input_load = float(np.sum(arrays.input_activity * (
        arrays.input_self_plus_wire + arrays.input_fixed_cap + sink_caps)))
    width_sum = float(np.sum(wmin))
    stacks = [(float(fanin), 1.0 + tech.stack_derating * (fanin - 1))
              for fanin in np.unique(arrays.fanin_count)]
    frequency = problem.frequency

    bounds: List[float] = []
    for _, vdd, vth in cells:
        current, off = _currents(arrays, vdd, vth)
        if any(current / stack - fanin * off <= 0.0
               for fanin, stack in stacks):
            bounds.append(math.inf)
            continue
        bounds.append(vdd * width_sum * off / frequency
                      + 0.5 * vdd * vdd * (activity_load + input_load))
    return bounds


def _prune_cells(problem: OptimizationProblem, budgets: BudgetResult,
                 settings: HeuristicSettings, engine_name: str,
                 cells: List[Tuple[int, float, float]],
                 vdd_range: Tuple[float, float],
                 vth_range: Tuple[float, float]) -> Tuple[set, int]:
    """The bound-based cut: ``(pruned cell indices, probes spent)``.

    A short feasibility bisection along the Vdd axis (at the middle Vth
    column, falling back to the fastest corner) finds a cheap feasible
    design whose energy ``U`` is an upper bound on the grid optimum;
    any cell whose *lower* bound exceeds ``U`` is strictly worse than
    the optimum and is skipped. The probes run on a private evaluator —
    they never touch the search state or the checkpoint — so the
    surviving scan's best-point trajectory is exactly the unpruned one
    minus provably-losing corners. The margin ``U * (1 + 1e-9)`` keeps
    any exact tie for the minimum unpruned — and absorbs the few-ulp
    summation-order slack between the closed-form bound and the
    engine's per-gate sums — so the argmin (including tie-breaking by
    scan order) is invariant.
    """
    bounds = _grid_lower_bounds(problem, cells)
    pruned = {index for index, bound in enumerate(bounds)
              if not math.isfinite(bound)}
    if len(pruned) == len(cells):
        return pruned, 0

    vdd_values = _linspace(*vdd_range, settings.grid_vdd)
    vth_values = _linspace(*vth_range, settings.grid_vth)
    mid_vth = vth_values[len(vth_values) // 2]
    prober = problem.evaluator(budgets, engine_name,
                               width_method=settings.width_method)
    upper = math.inf
    probes = 0

    def probe(vdd: float, vth: float) -> bool:
        nonlocal upper, probes
        probes += 1
        evaluation = prober(vdd, vth)
        if evaluation.feasible and evaluation.energy < upper:
            upper = evaluation.energy
        return evaluation.feasible

    lo, hi = 0, len(vdd_values) - 1
    if probe(vdd_values[hi], mid_vth):
        # Walk the feasibility boundary down: the lowest feasible Vdd
        # probed has the smallest energy, hence the tightest cut.
        while probes < settings.prune_probes and lo < hi - 1:
            mid = (lo + hi) // 2
            if probe(vdd_values[mid], mid_vth):
                hi = mid
            else:
                lo = mid
    else:
        # Mid-Vth column fails even at max Vdd; the fastest corner is
        # the last hope for a feasibility witness.
        probe(vdd_values[-1], vth_values[0])

    if math.isfinite(upper):
        cut = upper * (1.0 + 1e-9)
        pruned.update(index for index, bound in enumerate(bounds)
                      if bound > cut)
    return pruned, probes


def _grid_search(objective: Callable[[float, float], float],
                 cells: List[Tuple[int, float, float]],
                 pruned: set) -> None:
    for index, vdd, vth in cells:
        if index not in pruned:
            objective(vdd, vth)


def _grid_shard_init(problem: OptimizationProblem, budgets: BudgetResult,
                     engine_name: str, width_method: str):
    """Worker initializer of the parallel grid: one evaluator per worker."""
    return problem.evaluator(budgets, engine_name, width_method=width_method)


def _grid_shard_task(evaluator, cells: Tuple[Tuple[int, float, float], ...]
                     ) -> Dict[str, object]:
    """One pure grid shard: evaluate a contiguous canonical-order chunk.

    Returns per-cell ``(index, energy, feasible)`` plus the widths of
    every *chunk-local* improvement (feasible cells that beat all prior
    feasible cells of the chunk, scanned in canonical order). Any cell
    that improves the *global* canonical running best necessarily
    improves its chunk-local prefix too — the global prefix minimum is
    never above the chunk prefix minimum — so the merge always finds the
    winning cell's widths here without every feasible cell shipping its
    (large) width map across the queue.
    """
    out_cells = []
    improvements: Dict[int, Dict[str, float]] = {}
    chunk_best = math.inf
    for index, vdd, vth in cells:
        evaluation = evaluator(vdd, vth)
        out_cells.append((index, evaluation.energy, evaluation.feasible))
        if evaluation.feasible and evaluation.energy < chunk_best:
            chunk_best = evaluation.energy
            improvements[index] = dict(evaluation.widths_map())
    return {"cells": out_cells, "improvements": improvements}


def _parallel_grid_search(problem: OptimizationProblem,
                          budgets: BudgetResult,
                          settings: HeuristicSettings,
                          state: _SearchState,
                          engine_name: str,
                          checkpoint: Optional[SearchCheckpoint],
                          controller: Optional[RunController],
                          plan: ParallelPlan,
                          objective: Callable[[float, float], float],
                          cells: List[Tuple[int, float, float]],
                          pruned: set) -> None:
    """The grid phase on the supervised pool, merged canonically.

    Corners already in the checkpoint are excluded from sharding and
    replayed through ``objective`` (the cache branch) during the merge;
    fresh corners are computed by the workers and applied to ``state``
    in exactly the serial scan order, so the best-point trajectory — and
    therefore the refinement that follows — is identical to ``jobs=1``.
    Completed chunks are recorded into the checkpoint as they finish
    (``on_result``), so a crash mid-sweep resumes at chunk granularity.

    ``pruned`` cells are computed in-process *before* sharding (the same
    set at every jobs count), excluded here exactly as the serial scan
    excludes them, and never checkpointed — a resumed run re-derives the
    identical set from the same deterministic bound pre-pass.
    """
    fresh = [cell for cell in cells
             if cell[0] not in pruned
             and (checkpoint is None
                  or checkpoint.lookup(cell[1], cell[2]) is None)]

    what = f"{problem.network.name} grid search"
    computed: Dict[int, Tuple[float, bool, Optional[Dict[str, float]]]] = {}
    if fresh:
        tasks = []
        for start, stop in chunk_ranges(len(fresh), plan.jobs * 4):
            tasks.append(Task(key=f"grid[{start}:{stop}]", index=start,
                              fn=_grid_shard_task,
                              args=(tuple(fresh[start:stop]),)))

        def on_result(result) -> None:
            # Crash-safety: persist finished chunks immediately (in
            # completion order — record() is keyed, so the canonical
            # re-record during the merge below is a harmless dedup).
            if checkpoint is None or not result.ok:
                return
            for index, energy, feasible in result.value["cells"]:
                widths = result.value["improvements"].get(index)
                point = (cells[index][1], cells[index][2])
                checkpoint.record(
                    point[0], point[1], energy, feasible=feasible,
                    best_energy=energy if widths is not None else math.inf,
                    best_point=point if widths is not None else None,
                    best_widths=widths)

        run = run_sharded(tasks, init_fn=_grid_shard_init,
                          init_args=(problem, budgets, engine_name,
                                     settings.width_method),
                          plan=plan, controller=controller,
                          on_result=on_result, what=what)
        run.raise_if_quarantined(what)
        for result in run.results:
            for index, energy, feasible in result.value["cells"]:
                computed[index] = (energy, feasible,
                                   result.value["improvements"].get(index))

    for index, vdd, vth in cells:
        if index in pruned:
            continue
        if index not in computed:
            objective(vdd, vth)  # checkpoint-cached corner: replay
            continue
        energy, feasible, widths = computed[index]
        state.evaluations += 1
        if feasible:
            state.feasible_points += 1
            if energy < state.best_energy:
                if widths is None:  # pragma: no cover - see shard docstring
                    raise OptimizationError(
                        f"{what}: winning cell {index} returned no widths")
                state.best_energy = energy
                state.best_point = (vdd, vth)
                state.best_widths = widths
        if checkpoint is not None:
            checkpoint.record(vdd, vth, energy, feasible=feasible,
                              best_energy=state.best_energy,
                              best_point=state.best_point,
                              best_widths=state.best_widths)
        if controller is not None:
            controller.report(phase="grid", evaluations=state.evaluations,
                              best_energy=state.best_energy)


def _ternary_min(function: Callable[[float], float], low: float, high: float,
                 iterations: int) -> float:
    """Ternary search for the minimizer of a (near) unimodal function."""
    for _ in range(iterations):
        third = (high - low) / 3.0
        left = low + third
        right = high - third
        if function(left) <= function(right):
            high = right
        else:
            low = left
    return 0.5 * (low + high)


def _refine(objective: Callable[[float, float], float], state: _SearchState,
            vdd_range: Tuple[float, float], vth_range: Tuple[float, float],
            settings: HeuristicSettings) -> None:
    """Coordinate-descent ternary refinement around the best grid cell."""
    if state.best_point is None:
        return
    vdd_step = (vdd_range[1] - vdd_range[0]) / (settings.grid_vdd - 1)
    vth_step = (vth_range[1] - vth_range[0]) / (settings.grid_vth - 1)
    for _ in range(settings.refine_rounds):
        vdd_best, vth_best = state.best_point
        low = max(vdd_range[0], vdd_best - vdd_step)
        high = min(vdd_range[1], vdd_best + vdd_step)
        vdd_candidate = _ternary_min(
            lambda vdd: objective(vdd, state.best_point[1]),
            low, high, settings.refine_iters)
        objective(vdd_candidate, state.best_point[1])
        vdd_best, vth_best = state.best_point
        low = max(vth_range[0], vth_best - vth_step)
        high = min(vth_range[1], vth_best + vth_step)
        vth_candidate = _ternary_min(
            lambda vth: objective(state.best_point[0], vth),
            low, high, settings.refine_iters)
        objective(state.best_point[0], vth_candidate)


def _paper_search(objective: Callable[[float, float], float],
                  state: _SearchState,
                  vdd_range: Tuple[float, float],
                  vth_range: Tuple[float, float],
                  settings: HeuristicSettings) -> None:
    """The published feasibility/improvement-steered nested bisection."""
    vdd_low, vdd_high = vdd_range
    previous_outer_best = math.inf
    for _ in range(settings.m_steps):
        vdd = 0.5 * (vdd_low + vdd_high)
        vth_low, vth_high = vth_range
        inner_best = math.inf
        previous_inner_best = math.inf
        for _ in range(settings.m_steps):
            vth = 0.5 * (vth_low + vth_high)
            energy = objective(vdd, vth)
            improved = energy < previous_inner_best
            if improved:
                previous_inner_best = energy
                inner_best = min(inner_best, energy)
            if math.isfinite(energy) and improved:
                # Feasible and improving: raise Vth to shave more leakage.
                vth_low = vth
            else:
                vth_high = vth
        if math.isfinite(inner_best) and inner_best < previous_outer_best:
            previous_outer_best = inner_best
            # Feasible and improving: push the supply further down.
            vdd_high = vdd
        else:
            vdd_low = vdd


def _search_fingerprint(problem: OptimizationProblem,
                        settings: HeuristicSettings,
                        vdd_range: Tuple[float, float],
                        vth_range: Tuple[float, float],
                        engine_name: str) -> Dict[str, object]:
    """Identity of a search for checkpoint validation.

    Two searches with equal fingerprints perform the identical
    deterministic evaluation sequence, which is what makes corner-level
    resume exact; any field differing makes a checkpoint unusable. The
    engine is recorded by its *resolved* name — ``engine="auto"`` under
    ``REPRO_ENGINE=fast`` fingerprints as ``"fast"`` — so a resumed run
    can never silently switch engines.
    """
    return {
        "network": problem.network.name,
        "gate_count": problem.network.gate_count,
        "frequency_hz": problem.frequency,
        "skew_factor": problem.skew_factor,
        "strategy": settings.strategy,
        "m_steps": settings.m_steps,
        "grid_vdd": settings.grid_vdd,
        "grid_vth": settings.grid_vth,
        "refine_iters": settings.refine_iters,
        "refine_rounds": settings.refine_rounds,
        "width_method": settings.width_method,
        "engine": engine_name,
        "prune": settings.prune,
        "prune_probes": settings.prune_probes,
        "warm_start": settings.warm_start,
        "vdd_range": list(vdd_range),
        "vth_range": list(vth_range),
    }


def _open_checkpoint(problem: OptimizationProblem,
                     settings: HeuristicSettings,
                     controller: Optional[RunController],
                     resume_from, vdd_range, vth_range,
                     engine_name: str) -> Optional[SearchCheckpoint]:
    """Load (or create) the search checkpoint, if one was requested.

    ``resume_from`` wins over the controller's ``checkpoint_path``; a
    nonexistent ``resume_from`` file starts a fresh checkpoint at that
    path, so ``--resume run.ckpt`` is idempotent across interruptions.
    """
    path = None
    if resume_from is not None:
        path = Path(resume_from)
    elif controller is not None and controller.checkpoint_path is not None:
        path = controller.checkpoint_path
    if path is None:
        return None
    every = controller.checkpoint_every if controller is not None else 1
    fingerprint = _search_fingerprint(problem, settings, vdd_range, vth_range,
                                      engine_name)
    if path.exists():
        return SearchCheckpoint.load(path, fingerprint, every=every)
    return SearchCheckpoint(fingerprint, path=path, every=every)


def optimize_joint(problem: OptimizationProblem,
                   settings: HeuristicSettings | None = None,
                   budgets: BudgetResult | None = None,
                   seeds: "Tuple[Tuple[float, float], ...]" = (),
                   resume_from: str | Path | None = None,
                   _energy_vth_bias: Callable[[float], float] | None = None,
                   _delay_vth_bias: Callable[[float], float] | None = None,
                   ) -> OptimizationResult:
    """Run Procedure 2 on ``problem`` and return the optimized design.

    ``seeds`` are extra (Vdd, Vth) candidates evaluated alongside the
    search — sweeps warm-start each point with the previous optimum so a
    relaxed problem can never appear worse than a tighter one.

    ``resume_from`` names a checkpoint file: if it exists, the search
    resumes from the last completed corner recorded there (and keeps
    checkpointing to the same file); if not, a fresh checkpoint is
    written there as the search runs. ``settings.controller`` (or the
    ambient :func:`repro.runtime.use_controller` controller) adds
    wall-clock deadlines, cooperative cancellation, and progress
    callbacks; the checkpoint is flushed before a deadline or
    cancellation propagates, so the run can be resumed.

    Raises :class:`InfeasibleError` when no (Vdd, Vth, widths) point in
    the technology's ranges meets the cycle time. For ``n_vth > 1`` use
    :func:`repro.optimize.multivth.optimize_multi_vth`, which builds on
    this single-Vth optimizer.
    """
    settings = settings or HeuristicSettings()
    controller = resolve_controller(settings.controller)
    engine_name = resolve_engine_name(settings.engine)
    # The corner-bias hooks are closures and cannot cross a process
    # boundary; variation-aware searches run their grids in-process.
    plan = resolve_parallel(settings.parallel)
    # Warm starts make each evaluation depend on the previous feasible
    # one, which a sharded scan cannot reproduce — the grid stays serial.
    parallel_grid = (plan is not None and plan.active
                     and settings.strategy == "grid"
                     and not settings.warm_start
                     and _energy_vth_bias is None
                     and _delay_vth_bias is None)
    # The bound pre-pass assumes the plain objective (energy billed at
    # the search Vth); variation-aware searches scan unpruned.
    prune_active = (settings.prune and settings.strategy == "grid"
                    and _energy_vth_bias is None
                    and _delay_vth_bias is None)
    if budgets is None:
        budgets = problem.budgets()
    state = _SearchState()
    raw_objective = _make_objective(problem, budgets, settings, state,
                                    engine_name=engine_name,
                                    energy_vth_bias=_energy_vth_bias,
                                    delay_vth_bias=_delay_vth_bias)
    vdd_range, vth_range = _ranges(problem, settings)
    checkpoint = _open_checkpoint(problem, settings, controller, resume_from,
                                  vdd_range, vth_range, engine_name)
    resumed_corners = checkpoint.completed if checkpoint is not None else 0

    if checkpoint is None and controller is None:
        objective = raw_objective
    else:
        where = f"{problem.network.name} (Vdd, Vth) search"

        def objective(vdd: float, vth: float) -> float:
            if controller is not None:
                controller.check(where)
            if checkpoint is not None:
                cached = checkpoint.lookup(vdd, vth)
                if cached is not None:
                    # Replay the recorded evaluation without recomputing.
                    # Updating the running best here (not seeding it up
                    # front) matters: the refinement steers by the best
                    # point *as it evolves*, so resume must rebuild that
                    # trajectory corner by corner to stay on the exact
                    # path of the interrupted run. The widths of a
                    # replayed best are recovered from the checkpoint
                    # snapshot after the search.
                    energy, feasible = cached
                    state.evaluations += 1
                    if feasible:
                        state.feasible_points += 1
                    if energy < state.best_energy:
                        state.best_energy = energy
                        state.best_point = (vdd, vth)
                        state.best_widths = None
                    return energy
            feasible_before = state.feasible_points
            energy = raw_objective(vdd, vth)
            if checkpoint is not None:
                checkpoint.record(
                    vdd, vth, energy,
                    feasible=state.feasible_points > feasible_before,
                    best_energy=state.best_energy,
                    best_point=state.best_point,
                    best_widths=state.best_widths)
            if controller is not None:
                controller.report(phase=settings.strategy,
                                  evaluations=state.evaluations,
                                  best_energy=state.best_energy)
            return energy

    tracer = trace.current_tracer()
    try:
        with tracer.span("optimize_joint", network=problem.network.name,
                         strategy=settings.strategy,
                         engine=engine_name) as root:
            if seeds:
                with tracer.span("seeds", count=len(seeds)):
                    for seed_vdd, seed_vth in seeds:
                        objective(seed_vdd, seed_vth)
            if settings.strategy == "grid":
                cells = _grid_cells(vdd_range, vth_range, settings)
                pruned: set = set()
                if prune_active:
                    with tracer.span("prune_bounds", cells=len(cells)):
                        pruned, prune_probes_used = _prune_cells(
                            problem, budgets, settings, engine_name,
                            cells, vdd_range, vth_range)
                    current_metrics().incr(PRUNED_CELLS, len(pruned))
                with tracer.span("grid_search",
                                 vdd_points=settings.grid_vdd,
                                 vth_points=settings.grid_vth,
                                 pruned=len(pruned),
                                 jobs=plan.jobs if parallel_grid else 1):
                    if parallel_grid:
                        _parallel_grid_search(problem, budgets, settings,
                                              state, engine_name, checkpoint,
                                              controller, plan, objective,
                                              cells, pruned)
                    else:
                        _grid_search(objective, cells, pruned)
                with tracer.span("refine", rounds=settings.refine_rounds):
                    _refine(objective, state, vdd_range, vth_range, settings)
            else:
                with tracer.span("paper_search", m_steps=settings.m_steps):
                    _paper_search(objective, state, vdd_range, vth_range,
                                  settings)
            # Refine once more around the overall best (a seed may have won).
            if settings.strategy == "grid":
                with tracer.span("refine", rounds=settings.refine_rounds):
                    _refine(objective, state, vdd_range, vth_range, settings)
            root.annotate(evaluations=state.evaluations,
                          feasible_points=state.feasible_points,
                          best_energy=state.best_energy)
    finally:
        # Persist progress even when a deadline, cancellation, SIGINT,
        # or model error aborts the search mid-corner.
        if checkpoint is not None:
            checkpoint.flush()

    if state.best_point is None:
        raise InfeasibleError(
            f"{problem.network.name}: no (Vdd, Vth) point meets "
            f"T_c = {problem.cycle_time:.3e} s — even the fastest corner "
            f"fails; relax the clock or widen the technology ranges")

    vdd, vth = state.best_point
    if state.best_widths is None and checkpoint is not None \
            and checkpoint.best_point == state.best_point:
        # The winning corner was replayed from the checkpoint cache; its
        # widths come from the persisted best snapshot.
        state.best_widths = checkpoint.best_widths
    if state.best_widths is None:
        # Defensive re-derivation: size the winning corner once more.
        state.best_energy = math.inf
        raw_objective(vdd, vth)
    if state.best_widths is None:
        raise InfeasibleError(
            f"{problem.network.name}: the recorded best corner "
            f"(Vdd={vdd:.4f} V, Vth={vth:.4f} V) is no longer sizable")
    design = DesignPoint(vdd=vdd, vth=vth, widths=dict(state.best_widths))
    energy = total_energy(problem.ctx, vdd,
                          vth if _energy_vth_bias is None
                          else _energy_vth_bias(vth),
                          design.widths, problem.frequency)
    if not math.isfinite(energy.total):
        # Never report a silently-wrong optimum: a corrupted model
        # evaluation (e.g. an injected NaN) must surface as a typed
        # error so fallback policies can react.
        raise OptimizationError(
            f"{problem.network.name}: non-finite energy "
            f"{energy.total!r} at the chosen optimum "
            f"(Vdd={vdd:.4f} V, Vth={vth:.4f} V)")
    timing = analyze_timing(problem.ctx, vdd,
                            vth if _delay_vth_bias is None
                            else _delay_vth_bias(vth),
                            design.widths)
    if not math.isfinite(timing.critical_delay):
        raise OptimizationError(
            f"{problem.network.name}: non-finite critical delay "
            f"{timing.critical_delay!r} at the chosen optimum")
    details: Dict[str, object] = {
        "strategy": settings.strategy,
        "engine": engine_name,
        "feasible_points": state.feasible_points,
        "budget_rescale": budgets.rescale_factor,
        "budget_paths": budgets.paths_processed,
        "width_method": settings.width_method,
    }
    if parallel_grid:
        details["parallel_jobs"] = plan.jobs
    if prune_active:
        details["pruned_cells"] = len(pruned)
        details["prune_probes"] = prune_probes_used
    if settings.warm_start:
        details["warm_start"] = True
    if checkpoint is not None:
        checkpoint.flush()
        details["checkpoint"] = str(checkpoint.path)
        details["resumed_corners"] = resumed_corners
    return OptimizationResult(problem=problem, design=design, energy=energy,
                              timing=timing, evaluations=state.evaluations,
                              details=details)
