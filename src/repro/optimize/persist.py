"""Design-point serialization.

A real flow optimizes once and consumes the design point many times
(sign-off, discretization, bias programming). This module round-trips
:class:`~repro.optimize.problem.DesignPoint` through JSON with enough
provenance (circuit name, frequency, deck name, library version) to
catch mismatched reloads.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping

from repro import __version__
from repro.errors import OptimizationError
from repro.optimize.problem import (
    DesignPoint,
    OptimizationProblem,
    OptimizationResult,
)
from repro.runtime.atomicio import atomic_write_text, read_json_object

FORMAT_KEY = "repro-design"
FORMAT_VERSION = 1


def _voltage_payload(value: float | Mapping[str, float]):
    if isinstance(value, Mapping):
        return {name: float(v) for name, v in value.items()}
    return float(value)


def design_to_dict(result: OptimizationResult) -> Dict[str, object]:
    """JSON-compatible form of a result's design point + provenance."""
    problem = result.problem
    return {
        "_format": FORMAT_KEY,
        "_version": FORMAT_VERSION,
        "library_version": __version__,
        "network": problem.network.name,
        "gate_count": problem.network.gate_count,
        "frequency_hz": problem.frequency,
        "technology": problem.tech.name,
        "vdd": _voltage_payload(result.design.vdd),
        "vth": _voltage_payload(result.design.vth),
        "widths": {name: float(width)
                   for name, width in result.design.widths.items()},
        "total_energy_j": result.total_energy,
        "critical_delay_s": result.timing.critical_delay,
    }


def save_design(result: OptimizationResult, path: str | Path) -> Path:
    """Write the design point to ``path`` as pretty-printed JSON.

    The write is atomic (tempfile + ``os.replace``): a crash mid-save
    leaves either the previous complete file or the new one, never a
    truncated design.
    """
    return atomic_write_text(path, json.dumps(design_to_dict(result),
                                              indent=2, sort_keys=True) + "\n")


def design_from_dict(payload: Dict[str, object],
                     problem: OptimizationProblem) -> DesignPoint:
    """Rebuild a design point, verifying it matches ``problem``."""
    if payload.get("_format") != FORMAT_KEY:
        raise OptimizationError("not a design file (missing format marker)")
    if payload.get("_version") != FORMAT_VERSION:
        raise OptimizationError(
            f"unsupported design format version {payload.get('_version')!r}")
    if payload.get("network") != problem.network.name:
        raise OptimizationError(
            f"design is for network {payload.get('network')!r}, "
            f"problem is {problem.network.name!r}")
    widths_raw = payload.get("widths")
    if not isinstance(widths_raw, dict):
        raise OptimizationError("design file has no widths map")
    widths = {str(name): float(width)
              for name, width in widths_raw.items()}
    missing = set(problem.network.logic_gates) - set(widths)
    if missing:
        raise OptimizationError(
            f"design misses widths for {len(missing)} gate(s), e.g. "
            f"{sorted(missing)[:3]}")

    def voltage(value) -> float | Dict[str, float]:
        if isinstance(value, dict):
            return {str(name): float(v) for name, v in value.items()}
        return float(value)

    return DesignPoint(vdd=voltage(payload.get("vdd")),
                       vth=voltage(payload.get("vth")),
                       widths=widths)


def load_design(path: str | Path,
                problem: OptimizationProblem) -> DesignPoint:
    """Read a design point from JSON and validate it against ``problem``.

    Truncated, empty, or otherwise corrupt files raise a clear
    :class:`~repro.errors.OptimizationError` (never a bare
    ``json.JSONDecodeError``).
    """
    payload = read_json_object(path, error=OptimizationError)
    return design_from_dict(payload, problem)
