"""SciPy continuous optimizers over the (Vdd, Vth) plane.

An independent cross-check of the Procedure 2 heuristic: the same
objective (Procedure 1 budgets + minimum-width sizing + total energy) is
handed to ``scipy.optimize``, either

* ``"differential_evolution"`` (default) — a global stochastic search
  with bounds, robust to the infeasible plateau (returned as a large
  finite penalty), or
* ``"nelder-mead"`` — local polish, seeded from the best corner of a tiny
  bootstrap grid (or a caller-provided start).

Agreement between the SciPy optimum and the heuristic's (to a few
percent in energy) is asserted by the integration tests — the repro hint
for this paper ("scipy optimizers plus simple gate delay models") is this
module.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np
from scipy import optimize as scipy_optimize

from repro.errors import InfeasibleError, OptimizationError
from repro.optimize.problem import (
    DesignPoint,
    OptimizationProblem,
    OptimizationResult,
)
from repro.optimize.width_search import size_widths
from repro.power.energy import total_energy
from repro.timing.budgeting import BudgetResult
from repro.timing.sta import analyze_timing

#: Penalty (J) returned for infeasible points — colossal next to the
#: picojoule-scale real energies, yet finite so gradient-free methods can
#: still rank points.
_INFEASIBLE_ENERGY = 1.0


def optimize_scipy(problem: OptimizationProblem,
                   method: str = "differential_evolution",
                   budgets: BudgetResult | None = None,
                   seed: int = 7,
                   maxiter: int = 40,
                   popsize: int = 12,
                   start: Optional[Tuple[float, float]] = None,
                   ) -> OptimizationResult:
    """Minimize total energy over (Vdd, Vth) with SciPy."""
    if method not in ("differential_evolution", "nelder-mead"):
        raise OptimizationError(f"unknown scipy method {method!r}")
    if budgets is None:
        budgets = problem.budgets()
    tech = problem.tech
    bounds = [(tech.vdd_min, tech.vdd_max), (tech.vth_min, tech.vth_max)]

    evaluations = 0
    best: Dict[str, object] = {"energy": math.inf, "vdd": None, "vth": None,
                               "widths": None}

    def objective(x: np.ndarray) -> float:
        nonlocal evaluations
        evaluations += 1
        vdd = float(min(max(x[0], bounds[0][0]), bounds[0][1]))
        vth = float(min(max(x[1], bounds[1][0]), bounds[1][1]))
        assignment = size_widths(problem.ctx, budgets.budgets, vdd, vth,
                                 repair_ceiling=budgets.effective_cycle_time)
        if not assignment.feasible:
            return _INFEASIBLE_ENERGY
        energy = total_energy(problem.ctx, vdd, vth, assignment.widths,
                              problem.frequency).total
        if energy < best["energy"]:
            best.update(energy=energy, vdd=vdd, vth=vth,
                        widths=assignment.widths)
        return energy

    if method == "differential_evolution":
        scipy_optimize.differential_evolution(
            objective, bounds=bounds, seed=seed, maxiter=maxiter,
            popsize=popsize, tol=1e-8, polish=False, init="sobol")
    else:
        if start is None:
            start = _bootstrap_start(objective, bounds)
        scipy_optimize.minimize(
            objective, x0=np.asarray(start), method="Nelder-Mead",
            options={"maxiter": maxiter * 10, "xatol": 1e-4, "fatol": 1e-25})

    if best["vdd"] is None:
        raise InfeasibleError(
            f"{problem.network.name}: scipy {method} found no feasible "
            f"(Vdd, Vth) point")

    vdd = float(best["vdd"])  # type: ignore[arg-type]
    vth = float(best["vth"])  # type: ignore[arg-type]
    design = DesignPoint(vdd=vdd, vth=vth,
                         widths=dict(best["widths"]))  # type: ignore[arg-type]
    energy = total_energy(problem.ctx, vdd, vth, design.widths,
                          problem.frequency)
    timing = analyze_timing(problem.ctx, vdd, vth, design.widths)
    return OptimizationResult(
        problem=problem, design=design, energy=energy, timing=timing,
        evaluations=evaluations,
        details={"strategy": f"scipy-{method}", "seed": seed,
                 "maxiter": maxiter})


def _bootstrap_start(objective, bounds) -> Tuple[float, float]:
    """Pick the best corner of a small grid as the Nelder-Mead start."""
    best_value = math.inf
    best_start = (0.5 * (bounds[0][0] + bounds[0][1]),
                  0.5 * (bounds[1][0] + bounds[1][1]))
    vdd_values = np.linspace(bounds[0][0], bounds[0][1], 6)
    vth_values = np.linspace(bounds[1][0], bounds[1][1], 5)
    for vdd in vdd_values:
        for vth in vth_values:
            value = objective(np.array([vdd, vth]))
            if value < best_value:
                best_value = value
                best_start = (float(vdd), float(vth))
    return best_start
