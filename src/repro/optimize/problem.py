"""Problem statement and result types for the power minimization (§2).

Given a network, a technology, input activities and a clock frequency,
find ``Vdd`` (global), ``Vth`` (one value, or ``n_v`` distinct values) and
per-gate widths minimizing total energy per cycle subject to the critical
path meeting ``T_c = 1/f_c``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.activity.profiles import InputProfile
from repro.context import CircuitContext
from repro.errors import OptimizationError
from repro.interconnect.parasitics import WireModel
from repro.interconnect.rent import RentParameters
from repro.netlist.network import LogicNetwork
from repro.power.energy import EnergyReport, total_energy
from repro.technology.process import Technology
from repro.timing.budgeting import BudgetResult, assign_delay_budgets
from repro.timing.sta import TimingReport, analyze_timing


@dataclass(frozen=True)
class OptimizationProblem:
    """One instance of the paper's power-minimization problem."""

    ctx: CircuitContext
    frequency: float
    #: Clock skew factor b <= 1 of eq. (1).
    skew_factor: float = 1.0
    #: Number of distinct threshold voltages permitted (n_v, §2).
    n_vth: int = 1

    def __post_init__(self) -> None:
        if self.frequency <= 0.0:
            raise OptimizationError(
                f"frequency must be > 0, got {self.frequency}")
        if not 0.0 < self.skew_factor <= 1.0:
            raise OptimizationError(
                f"skew_factor must lie in (0, 1], got {self.skew_factor}")
        if self.n_vth < 1:
            raise OptimizationError(f"n_vth must be >= 1, got {self.n_vth}")

    @property
    def tech(self) -> Technology:
        return self.ctx.tech

    @property
    def network(self) -> LogicNetwork:
        return self.ctx.network

    @property
    def cycle_time(self) -> float:
        return 1.0 / self.frequency

    def budgets(self, **kwargs) -> BudgetResult:
        """Run Procedure 1 for this problem's cycle time."""
        return assign_delay_budgets(self.network, self.cycle_time,
                                    skew_factor=self.skew_factor, **kwargs)

    def evaluator(self, budgets: Optional[BudgetResult] = None,
                  engine: str = "auto", *,
                  width_method: str = "closed_form",
                  bisect_steps: int = 24,
                  delay_vth_bias=None, energy_vth_bias=None,
                  warm_starts: bool = False):
        """The shared objective factory: one engine-backed evaluator.

        Resolves ``engine`` ("auto" honors :func:`repro.engine.use_engine`
        and ``$REPRO_ENGINE``), runs Procedure 1 if ``budgets`` is not
        supplied, and returns a :class:`repro.engine.Evaluator` — the
        single evaluate-loop implementation every optimizer shares.
        ``warm_starts`` seeds each sizing's bisection brackets from the
        previous feasible evaluation (see :class:`repro.engine.Evaluator`).
        """
        from repro.engine import Evaluator, make_engine

        impl = make_engine(self, engine, width_method=width_method,
                           bisect_steps=bisect_steps)
        if budgets is None:
            budgets = self.budgets()
        return Evaluator(self, impl, budgets,
                         delay_vth_bias=delay_vth_bias,
                         energy_vth_bias=energy_vth_bias,
                         warm_starts=warm_starts)

    @classmethod
    def build(cls, tech: Technology, network: LogicNetwork,
              profile: InputProfile, frequency: float,
              skew_factor: float = 1.0, n_vth: int = 1,
              rent: RentParameters | None = None,
              wire_model: WireModel = WireModel.STOCHASTIC_MEAN,
              activity_method: str = "najm"
              ) -> "OptimizationProblem":
        """Assemble the evaluation context and wrap it in a problem.

        ``activity_method``: ``"najm"`` (the paper's first-order
        propagation, default) or ``"exact"`` (the BDD-based ref. [11]
        computation, falling back per cone beyond 16 support inputs).
        """
        if activity_method not in ("najm", "exact"):
            raise OptimizationError(
                f"unknown activity_method {activity_method!r}")
        activity = None
        if activity_method == "exact":
            from repro.activity.exact import estimate_activity_exact

            activity = estimate_activity_exact(network,
                                               profile).as_estimate()
        ctx = CircuitContext(tech, network, profile, rent=rent,
                             wire_model=wire_model, activity=activity)
        return cls(ctx=ctx, frequency=frequency, skew_factor=skew_factor,
                   n_vth=n_vth)


@dataclass(frozen=True)
class DesignPoint:
    """A complete assignment of the decision variables.

    ``vdd`` is normally the single global supply of the paper's problem
    statement; the clustered-voltage-scaling extension
    (:mod:`repro.optimize.multivdd`) uses a per-gate mapping instead.
    """

    vdd: float | Mapping[str, float]
    #: Global threshold, or one per gate (n_v distinct values).
    vth: float | Mapping[str, float]
    widths: Mapping[str, float]

    def vdd_of(self, name: str) -> float:
        if isinstance(self.vdd, Mapping):
            return self.vdd[name]
        return self.vdd

    def distinct_vdds(self) -> Tuple[float, ...]:
        if isinstance(self.vdd, Mapping):
            return tuple(sorted(set(self.vdd.values())))
        return (self.vdd,)

    def vth_of(self, name: str) -> float:
        if isinstance(self.vth, Mapping):
            return self.vth[name]
        return self.vth

    def distinct_vths(self) -> Tuple[float, ...]:
        if isinstance(self.vth, Mapping):
            return tuple(sorted(set(self.vth.values())))
        return (self.vth,)

    def width_of(self, name: str) -> float:
        return self.widths[name]

    def evaluate_energy(self, problem: OptimizationProblem) -> EnergyReport:
        return total_energy(problem.ctx, self.vdd, self.vth, self.widths,
                            problem.frequency)

    def evaluate_timing(self, problem: OptimizationProblem) -> TimingReport:
        return analyze_timing(problem.ctx, self.vdd, self.vth, self.widths)

    def is_feasible(self, problem: OptimizationProblem,
                    tolerance: float = 1e-9) -> bool:
        report = self.evaluate_timing(problem)
        return report.meets(problem.cycle_time, tolerance=tolerance)


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of any of the optimizers."""

    problem: OptimizationProblem
    design: DesignPoint
    energy: EnergyReport
    timing: TimingReport
    #: Objective evaluations (circuit-level energy evaluations) performed.
    evaluations: int
    #: Free-form per-optimizer diagnostics (grid sizes, temperatures, ...).
    details: Mapping[str, object] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return self.timing.meets(self.problem.cycle_time, tolerance=1e-9)

    @property
    def total_energy(self) -> float:
        return self.energy.total

    @property
    def total_power(self) -> float:
        return self.energy.total_power

    def summary(self) -> Dict[str, object]:
        """Compact dict for tables and logs."""
        vths = self.design.distinct_vths()
        widths = self.design.widths
        vdds = self.design.distinct_vdds()
        return {
            "network": self.problem.network.name,
            "vdd": round(vdds[0], 4) if len(vdds) == 1
            else tuple(round(v, 4) for v in vdds),
            "vth": tuple(round(v, 4) for v in vths),
            "mean_width": round(sum(widths.values()) / max(len(widths), 1), 2),
            "static_energy": self.energy.static,
            "dynamic_energy": self.energy.dynamic,
            "total_energy": self.energy.total,
            "critical_delay": self.timing.critical_delay,
            "feasible": self.feasible,
            "evaluations": self.evaluations,
        }
