"""The Table 1 baseline: fixed ``Vth``, optimize widths and ``Vdd`` only.

The paper's comparison point (§5) fixes the threshold at the conventional
700 mV and minimizes power over device widths and the supply voltage under
the same 300 MHz cycle-time constraint. With the threshold stuck high, the
supply cannot scale down without losing the speed target — the optimizer
"coincidentally returned Vdd values close to 3.3 V" — which is precisely
why the joint optimization of Table 2 wins by an order of magnitude.

Implementation: a 1-D sweep + ternary refinement over ``Vdd`` with the
same Procedure 1 budgets and minimum-width inner loop as Procedure 2.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.errors import InfeasibleError
from repro.obs import trace
from repro.obs.instrument import FEASIBLE_POINTS, OBJECTIVE_EVALUATIONS
from repro.obs.metrics import current_metrics
from repro.optimize.problem import (
    DesignPoint,
    OptimizationProblem,
    OptimizationResult,
)
from repro.optimize.width_search import size_widths
from repro.power.energy import total_energy
from repro.runtime.controller import RunController, resolve_controller
from repro.timing.budgeting import BudgetResult
from repro.timing.sta import analyze_timing

#: The conventional threshold of the paper's baseline (V).
DEFAULT_FIXED_VTH = 0.7


def optimize_fixed_vth(problem: OptimizationProblem,
                       vth: float = DEFAULT_FIXED_VTH,
                       budgets: BudgetResult | None = None,
                       grid_points: int = 25,
                       refine_iters: int = 24,
                       width_method: str = "closed_form",
                       vdd_range: Optional[Tuple[float, float]] = None,
                       controller: Optional[RunController] = None,
                       ) -> OptimizationResult:
    """Minimize energy over (Vdd, widths) at a fixed threshold voltage.

    ``controller`` (explicit, or the ambient one installed via
    :func:`repro.runtime.use_controller`) bounds the sweep with a
    wall-clock deadline and cooperative cancellation, and receives
    progress events.
    """
    if budgets is None:
        budgets = problem.budgets()
    controller = resolve_controller(controller)
    tech = problem.tech
    low, high = vdd_range or (tech.vdd_min, tech.vdd_max)

    evaluations = 0
    best_energy = math.inf
    best_vdd: Optional[float] = None
    best_widths = None

    def objective(vdd: float) -> float:
        nonlocal evaluations, best_energy, best_vdd, best_widths
        if controller is not None:
            controller.check(f"{problem.network.name} fixed-Vth sweep")
        evaluations += 1
        current_metrics().incr(OBJECTIVE_EVALUATIONS)
        assignment = size_widths(problem.ctx, budgets.budgets, vdd, vth,
                                 method=width_method,
                                 repair_ceiling=budgets.effective_cycle_time)
        if not assignment.feasible:
            return math.inf
        current_metrics().incr(FEASIBLE_POINTS)
        report = total_energy(problem.ctx, vdd, vth, assignment.widths,
                              problem.frequency)
        if report.total < best_energy:
            best_energy = report.total
            best_vdd = vdd
            best_widths = assignment.widths
        if controller is not None:
            controller.report(phase="baseline", evaluations=evaluations,
                              best_energy=best_energy)
        return report.total

    tracer = trace.current_tracer()
    with tracer.span("baseline_sweep", network=problem.network.name,
                     fixed_vth=vth) as sweep_span:
        step = (high - low) / (grid_points - 1)
        with tracer.span("grid_search", vdd_points=grid_points):
            for index in range(grid_points):
                objective(low + index * step)
        if best_vdd is not None:
            with tracer.span("refine", iterations=refine_iters):
                refine_low = max(low, best_vdd - step)
                refine_high = min(high, best_vdd + step)
                for _ in range(refine_iters):
                    third = (refine_high - refine_low) / 3.0
                    left = refine_low + third
                    right = refine_high - third
                    if objective(left) <= objective(right):
                        refine_high = right
                    else:
                        refine_low = left
                objective(0.5 * (refine_low + refine_high))
        sweep_span.annotate(evaluations=evaluations, best_energy=best_energy)

    if best_vdd is None or best_widths is None:
        raise InfeasibleError(
            f"{problem.network.name}: no Vdd meets T_c = "
            f"{problem.cycle_time:.3e} s at fixed Vth = {vth} V")

    design = DesignPoint(vdd=best_vdd, vth=vth, widths=dict(best_widths))
    energy = total_energy(problem.ctx, best_vdd, vth, design.widths,
                          problem.frequency)
    timing = analyze_timing(problem.ctx, best_vdd, vth, design.widths)
    if not (math.isfinite(energy.total)
            and math.isfinite(timing.critical_delay)):
        # A corrupted model evaluation must surface as a typed error,
        # never as a silently-wrong optimum.
        from repro.errors import OptimizationError

        raise OptimizationError(
            f"{problem.network.name}: non-finite result at the fixed-Vth "
            f"optimum (energy={energy.total!r}, "
            f"delay={timing.critical_delay!r})")
    details: Dict[str, object] = {
        "strategy": "fixed-vth",
        "fixed_vth": vth,
        "budget_rescale": budgets.rescale_factor,
        "width_method": width_method,
    }
    return OptimizationResult(problem=problem, design=design, energy=energy,
                              timing=timing, evaluations=evaluations,
                              details=details)
