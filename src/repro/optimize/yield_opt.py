"""Yield-targeted robust optimization (statistical Figure 2a).

Figure 2a's designer must pick a worst-case tolerance *a priori*; too
small loses yield, too large wastes energy (savings decay monotonically
with tolerance). Given a statistical variation model and a target timing
yield, this module picks the tolerance for them:

1. binary-search the tolerance in ``[0, max_tolerance]``,
2. at each probe, run the variation-aware optimizer
   (:func:`repro.optimize.variation.optimize_with_variation`) and measure
   the design's Monte-Carlo timing yield,
3. keep the smallest tolerance whose design meets the target — by the
   Figure 2a monotonicity, that is the lowest-energy compliant design.

Yield is monotone in the tolerance up to sampling noise; the fixed seed
makes the bisection deterministic and the verification re-samples with a
fresh seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.montecarlo import (
    MonteCarloOutcome,
    VariationStatistics,
    monte_carlo_variation,
)
from repro.engine import resolve_engine_name
from repro.errors import InfeasibleError, OptimizationError
from repro.optimize.heuristic import HeuristicSettings
from repro.optimize.problem import OptimizationProblem, OptimizationResult
from repro.optimize.variation import VariationModel, optimize_with_variation


@dataclass(frozen=True)
class YieldTarget:
    """What the production engineer asks for."""

    #: Minimum acceptable timing yield in (0, 1].
    timing_yield: float = 0.99
    #: Monte-Carlo samples per probe.
    samples: int = 120
    #: Statistical variation model.
    statistics: VariationStatistics = VariationStatistics()
    #: Bisection range and resolution on the worst-case tolerance.
    max_tolerance: float = 0.5
    iterations: int = 6
    seed: int = 0
    #: Optional :mod:`repro.engine` name for the Monte-Carlo probes
    #: (``"batch"`` evaluates whole sample ranges per kernel call);
    #: ``None`` keeps the legacy reference-model path.
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.timing_yield <= 1.0:
            raise OptimizationError(
                f"timing_yield must lie in (0, 1], got {self.timing_yield}")
        if not 0.0 < self.max_tolerance < 1.0:
            raise OptimizationError(
                f"max_tolerance must lie in (0, 1), got "
                f"{self.max_tolerance}")
        if self.iterations < 1 or self.samples < 1:
            raise OptimizationError("iterations and samples must be >= 1")


@dataclass(frozen=True)
class YieldResult:
    """Outcome of the yield-targeted search."""

    result: OptimizationResult
    tolerance: float
    outcome: MonteCarloOutcome
    #: Fresh-seed re-sampling of the chosen design (the bisection
    #: selected on ``outcome``'s samples, so only an independent draw
    #: measures the yield honestly), and the seed it used.
    verification: Optional[MonteCarloOutcome] = None
    verify_seed: Optional[int] = None

    @property
    def timing_yield(self) -> float:
        return self.outcome.timing_yield

    @property
    def verified_yield(self) -> Optional[float]:
        """Timing yield under the fresh verification seed."""
        if self.verification is None:
            return None
        return self.verification.timing_yield


def optimize_for_yield(problem: OptimizationProblem,
                       target: YieldTarget | None = None,
                       settings: HeuristicSettings | None = None,
                       verify_seed: Optional[int] = None
                       ) -> YieldResult:
    """Smallest-tolerance robust design meeting the yield target.

    The chosen design is re-sampled with ``verify_seed`` (defaults to
    ``target.seed + 1``; must differ from ``target.seed``) and both the
    seed and the verification outcome are recorded on the result and in
    ``result.details["yield_verification"]``.

    Raises :class:`InfeasibleError` if even ``max_tolerance`` cannot reach
    the target under the given statistics.
    """
    target = target or YieldTarget()
    if verify_seed is None:
        verify_seed = target.seed + 1
    if verify_seed == target.seed:
        raise OptimizationError(
            f"verify_seed must differ from the bisection seed "
            f"{target.seed} — re-sampling the selection set verifies "
            f"nothing")
    budgets = problem.budgets()

    def probe(tolerance: float) -> tuple[OptimizationResult, MonteCarloOutcome]:
        result = optimize_with_variation(problem, VariationModel(tolerance),
                                         settings=settings, budgets=budgets)
        outcome = monte_carlo_variation(problem, result.design,
                                        statistics=target.statistics,
                                        samples=target.samples,
                                        seed=target.seed,
                                        engine=target.engine)
        return result, outcome

    def finish(tolerance: float, result: OptimizationResult,
               outcome: MonteCarloOutcome) -> YieldResult:
        verification = monte_carlo_variation(problem, result.design,
                                             statistics=target.statistics,
                                             samples=target.samples,
                                             seed=verify_seed,
                                             engine=target.engine)
        batched = (target.engine is not None
                   and resolve_engine_name(target.engine) == "batch"
                   and target.samples > 1)
        details = dict(result.details)
        details["yield_verification"] = {
            "seed": verify_seed,
            "samples": target.samples,
            "timing_yield": verification.timing_yield,
            "samples_failed": verification.samples_failed,
            # Execution shape: dies per engine invocation (a serial
            # batched run evaluates the whole draw in one call).
            "batched": batched,
            "samples_per_call": target.samples if batched else 1,
        }
        result = OptimizationResult(
            problem=result.problem, design=result.design,
            energy=result.energy, timing=result.timing,
            evaluations=result.evaluations, details=details)
        return YieldResult(result=result, tolerance=tolerance,
                           outcome=outcome, verification=verification,
                           verify_seed=verify_seed)

    best: Optional[tuple[float, OptimizationResult,
                         MonteCarloOutcome]] = None

    # Check the extremes first: the nominal design may already comply,
    # and the max tolerance must comply for the bisection to make sense.
    result, outcome = probe(0.0)
    if outcome.timing_yield >= target.timing_yield:
        return finish(0.0, result, outcome)
    result, outcome = probe(target.max_tolerance)
    if outcome.timing_yield < target.timing_yield:
        raise InfeasibleError(
            f"{problem.network.name}: {outcome.timing_yield:.2%} yield at "
            f"the maximum tolerance {target.max_tolerance}; target "
            f"{target.timing_yield:.2%} unreachable under these statistics")
    best = (target.max_tolerance, result, outcome)

    low, high = 0.0, target.max_tolerance
    for _ in range(target.iterations):
        middle = 0.5 * (low + high)
        result, outcome = probe(middle)
        if outcome.timing_yield >= target.timing_yield:
            best = (middle, result, outcome)
            high = middle
        else:
            low = middle

    tolerance, result, outcome = best
    return finish(tolerance, result, outcome)
