"""Multiple distinct threshold voltages (``n_v > 1``, §2 and §4.3).

The paper keeps a single global ``Vdd`` but "allows the use of multiple
threshold values in the circuit if desired" — each extra value costs an
implant mask or a separate tub bias (Figure 1), so ``n_v`` is small
(1–3). The classic payoff: gates with tight Procedure 1 budgets keep a
low (fast, leaky) threshold while slack-rich gates take a high (slow,
frugal) threshold.

Implementation:

1. Solve the single-Vth problem with Procedure 2.
2. Partition the gates into ``n_v`` groups by *budget tightness* — the
   per-fanout delay budget ``t_MAXi / f_oi`` (the quantity Procedure 1
   equalizes along the most critical path), tightest group first.
3. Coordinate-descent: ternary-search each group's threshold (tightest
   group last, so it adapts to the relaxed groups), re-sizing all widths
   at every trial point; then re-refine ``Vdd``. Rounds repeat until no
   group moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine import resolve_engine_name
from repro.errors import InfeasibleError, OptimizationError
from repro.obs import trace
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.problem import (
    DesignPoint,
    OptimizationProblem,
    OptimizationResult,
)
from repro.power.energy import total_energy
from repro.runtime.controller import (
    RunController,
    resolve_controller,
    use_controller,
)
from repro.timing.budgeting import BudgetResult
from repro.timing.paths import node_weight
from repro.timing.sta import analyze_timing


@dataclass(frozen=True)
class MultiVthSettings:
    """Knobs of the multi-threshold refinement."""

    #: Ternary iterations per group refinement.
    refine_iters: int = 14
    #: Coordinate-descent rounds over the groups.
    rounds: int = 3
    #: Settings of the bootstrap single-Vth solve.
    single: HeuristicSettings = HeuristicSettings()
    #: Optional run control, applied to the bootstrap solve and every
    #: group-refinement evaluation; falls back to the ambient
    #: :func:`repro.runtime.use_controller` controller.
    controller: Optional[RunController] = None

    def __post_init__(self) -> None:
        if self.refine_iters < 2 or self.rounds < 1:
            raise OptimizationError("refine_iters >= 2 and rounds >= 1 required")


def group_gates_by_budget(problem: OptimizationProblem,
                          budgets: BudgetResult,
                          n_groups: int) -> Tuple[Tuple[str, ...], ...]:
    """Partition gates into ``n_groups`` by per-fanout budget tightness.

    Group 0 is the tightest (most speed-critical); equal-size quantile
    split, deterministic by (tightness, name).
    """
    if n_groups < 1:
        raise OptimizationError(f"n_groups must be >= 1, got {n_groups}")
    network = problem.network
    keyed = sorted(
        (budgets.budgets[name] / max(node_weight(network, name), 1), name)
        for name in network.logic_gates)
    names = [name for _, name in keyed]
    total = len(names)
    groups: List[Tuple[str, ...]] = []
    for index in range(n_groups):
        start = index * total // n_groups
        stop = (index + 1) * total // n_groups
        groups.append(tuple(names[start:stop]))
    return tuple(group for group in groups if group)


def optimize_multi_vth(problem: OptimizationProblem,
                       settings: MultiVthSettings | None = None,
                       budgets: BudgetResult | None = None,
                       resume_from=None,
                       ) -> OptimizationResult:
    """Solve with ``problem.n_vth`` distinct threshold voltages.

    ``resume_from`` forwards to the bootstrap single-Vth Procedure 2
    solve (the dominant cost), making it checkpoint/resumable; the
    group refinement obeys the settings' (or ambient) controller for
    deadlines and cancellation.
    """
    settings = settings or MultiVthSettings()
    controller = resolve_controller(settings.controller)
    with use_controller(controller):
        return _optimize_multi_vth(problem, settings, budgets, resume_from,
                                   controller)


def _optimize_multi_vth(problem: OptimizationProblem,
                        settings: MultiVthSettings,
                        budgets: BudgetResult | None,
                        resume_from,
                        controller: Optional[RunController],
                        ) -> OptimizationResult:
    if budgets is None:
        budgets = problem.budgets()
    tracer = trace.current_tracer()
    with tracer.span("multivth_bootstrap", network=problem.network.name):
        single = optimize_joint(problem, settings=settings.single,
                                budgets=budgets, resume_from=resume_from)
    if problem.n_vth == 1:
        return single

    tech = problem.tech
    groups = group_gates_by_budget(problem, budgets, problem.n_vth)
    base_vth = float(single.design.distinct_vths()[0])
    group_vths: List[float] = [base_vth for _ in groups]
    vdd = single.design.vdd
    evaluations = single.evaluations
    engine_name = resolve_engine_name(settings.single.engine)
    evaluator = problem.evaluator(
        budgets, engine_name, width_method=settings.single.width_method)

    def vth_map(vths: List[float]) -> Dict[str, float]:
        mapping: Dict[str, float] = {}
        for vth, group in zip(vths, groups):
            for name in group:
                mapping[name] = vth
        return mapping

    def evaluate(vdd_value: float, vths: List[float]):
        """(energy, sizing-or-None) at a per-group threshold vector.

        One shared-evaluator call: the engine sizes at the per-gate
        mapping (vectorized end-to-end on the array engine, budget
        repair included). Widths stay an engine handle; only accepted
        bests are materialized into a ``{name: width}`` dict.
        """
        nonlocal evaluations
        if controller is not None:
            controller.check(f"{problem.network.name} multi-Vth refinement")
        evaluations += 1
        evaluation = evaluator(vdd_value, vth_map(vths))
        return evaluation.energy, evaluation.sizing

    best_energy, best_sizing = evaluate(vdd, group_vths)
    if best_sizing is None:
        raise InfeasibleError(
            f"{problem.network.name}: single-Vth optimum did not transfer "
            "to the multi-Vth evaluation")
    best_vths = list(group_vths)
    best_vdd = vdd

    with tracer.span("multivth_refine", groups=len(groups),
                     rounds=settings.rounds,
                     engine=engine_name) as refine_span:
        for round_index in range(settings.rounds):
            moved = False
            # Slack-rich groups first (reverse order): they have the most
            # leakage to give back.
            for index in reversed(range(len(groups))):
                low, high = tech.vth_min, tech.vth_max

                def group_objective(vth_value: float) -> float:
                    trial = list(best_vths)
                    trial[index] = vth_value
                    energy, _ = evaluate(best_vdd, trial)
                    return energy

                for _ in range(settings.refine_iters):
                    third = (high - low) / 3.0
                    left, right = low + third, high - third
                    if group_objective(left) <= group_objective(right):
                        high = right
                    else:
                        low = left
                candidate = 0.5 * (low + high)
                trial = list(best_vths)
                trial[index] = candidate
                energy, sizing = evaluate(best_vdd, trial)
                if sizing is not None and energy < best_energy:
                    best_energy, best_sizing = energy, sizing
                    best_vths = trial
                    moved = True
            # Re-refine the shared supply around the current point.
            low = max(tech.vdd_min, best_vdd - 0.2)
            high = min(tech.vdd_max, best_vdd + 0.2)
            for _ in range(settings.refine_iters):
                third = (high - low) / 3.0
                left, right = low + third, high - third
                left_energy, _ = evaluate(left, best_vths)
                right_energy, _ = evaluate(right, best_vths)
                if left_energy <= right_energy:
                    high = right
                else:
                    low = left
            candidate_vdd = 0.5 * (low + high)
            energy, sizing = evaluate(candidate_vdd, best_vths)
            if sizing is not None and energy < best_energy:
                best_energy, best_sizing, best_vdd = (energy, sizing,
                                                      candidate_vdd)
                moved = True
            if not moved:
                break
        refine_span.annotate(rounds_run=round_index + 1,
                             best_energy=best_energy)

    mapping = vth_map(best_vths)
    design = DesignPoint(vdd=best_vdd, vth=mapping,
                         widths=best_sizing.widths_map())
    energy_report = total_energy(problem.ctx, best_vdd, mapping,
                                 design.widths, problem.frequency)
    timing = analyze_timing(problem.ctx, best_vdd, mapping, design.widths)
    return OptimizationResult(
        problem=problem, design=design, energy=energy_report, timing=timing,
        evaluations=evaluations,
        details={"strategy": "multi-vth", "n_vth": problem.n_vth,
                 "engine": engine_name,
                 "group_vths": tuple(round(v, 4) for v in best_vths),
                 "group_sizes": tuple(len(g) for g in groups),
                 "single_vth_energy": single.energy.total})
