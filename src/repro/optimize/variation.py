"""Worst-case threshold-variation robust optimization (§5, Figure 2a).

The paper: "We modified our optimization algorithm to use worst-case
values of threshold voltage (ie. nominal plus-minus allowed percentage
variation) during the delay and power computation. The delay of the
optimized circuit is guaranteed to meet the cycle time constraint under
the stated threshold variation. The worst case power under the stipulated
Vts variation is used to compute the power savings."

Corner logic for a tolerance ``tol`` around the nominal ``Vth``:

* delay is worst when devices are *slow*: ``Vth * (1 + tol)``,
* leakage is worst when devices are *leaky*: ``Vth * (1 - tol)``,
* dynamic energy is threshold-independent.

Both corners are active simultaneously in the pessimistic (fully
uncorrelated) analysis the paper uses, so the optimizer sizes against the
slow corner while paying the leaky corner's static energy. As the
tolerance grows the optimizer is squeezed from both sides and the
achievable savings shrink — Figure 2a's monotone decay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OptimizationError
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.problem import OptimizationProblem, OptimizationResult
from repro.timing.budgeting import BudgetResult


@dataclass(frozen=True)
class VariationModel:
    """Symmetric relative threshold tolerance (0.1 = ±10 %)."""

    tolerance: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.tolerance < 1.0:
            raise OptimizationError(
                f"tolerance must lie in [0, 1), got {self.tolerance}")

    def slow_corner(self, vth: float) -> float:
        """Threshold used for delay (slow devices)."""
        return vth * (1.0 + self.tolerance)

    def leaky_corner(self, vth: float) -> float:
        """Threshold used for static energy (leaky devices)."""
        return vth * (1.0 - self.tolerance)


def optimize_with_variation(problem: OptimizationProblem,
                            variation: VariationModel,
                            settings: HeuristicSettings | None = None,
                            budgets: BudgetResult | None = None,
                            ) -> OptimizationResult:
    """Procedure 2 with worst-case corners wired into the objective.

    The returned design's ``vth`` is the *nominal* value the process
    would target; its energy report and timing report are evaluated at
    the leaky and slow corners respectively, i.e. they are worst-case
    guarantees, directly comparable against a nominal baseline as in
    Figure 2a.
    """
    settings = settings or HeuristicSettings()
    result = optimize_joint(
        problem, settings=settings, budgets=budgets,
        _energy_vth_bias=variation.leaky_corner,
        _delay_vth_bias=variation.slow_corner)
    details = dict(result.details)
    details["strategy"] = "variation-aware"
    details["vth_tolerance"] = variation.tolerance
    return OptimizationResult(
        problem=result.problem, design=result.design, energy=result.energy,
        timing=result.timing, evaluations=result.evaluations,
        details=details)
