"""Reduced ordered binary decision diagrams (ROBDDs).

The paper's §4.1 adopts Najm's first-order transition densities and
points at "more complex transition density computation algorithms [11]"
(Stamoulis–Hajj: probabilistic simulation with signal correlation) for
exactness. This subpackage is the substrate for that exact computation:
a small, dependency-free ROBDD engine with

* hash-consed nodes (a unique table per manager),
* memoized ``apply`` for AND/OR/XOR and complement,
* cofactor/restrict,
* probability evaluation under independent variables, and
* *paired* probability evaluation where adjacent variable pairs carry a
  joint distribution — exactly what the two-timestep transition-density
  computation of :mod:`repro.activity.exact` needs.

Sizing note: the exact algorithms are exponential in the worst case; the
callers cap the support size per cone and fall back to the first-order
estimate beyond it, mirroring how [11]-style methods are deployed.
"""

from repro.bdd.core import BDD, BDDFunction

__all__ = ["BDD", "BDDFunction"]
