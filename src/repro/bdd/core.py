"""A compact ROBDD manager.

Nodes are integers: 0 and 1 are the terminals; every other node is a
triple ``(level, low, high)`` interned in a unique table, so structural
equality is pointer equality and the canonicity invariants (ordered,
reduced) hold by construction. :class:`BDDFunction` wraps a node id with
its manager for an ergonomic operator API.

Only what the exact activity computation needs is implemented — apply
(AND/OR/XOR), NOT, ITE, restrict, support, satisfying-fraction and the
two probability evaluators — but each piece is general-purpose.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.errors import ReproError

#: Terminal node ids.
FALSE = 0
TRUE = 1


class BDD:
    """An ROBDD manager over a fixed variable order.

    Variables are addressed by *level* (0 = top). Callers map their own
    names onto levels (see :meth:`variable`).
    """

    def __init__(self, num_vars: int):
        if num_vars < 0:
            raise ReproError(f"num_vars must be >= 0, got {num_vars}")
        self.num_vars = num_vars
        # node id -> (level, low, high); ids 0/1 are terminals.
        self._level: List[int] = [num_vars, num_vars]
        self._low: List[int] = [FALSE, TRUE]
        self._high: List[int] = [FALSE, TRUE]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        self._restrict_cache: Dict[Tuple[int, int, int], int] = {}

    # --- node plumbing -----------------------------------------------------

    def _make(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        node = len(self._level)
        self._level.append(level)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        return node

    def level_of(self, node: int) -> int:
        return self._level[node]

    def low_of(self, node: int) -> int:
        return self._low[node]

    def high_of(self, node: int) -> int:
        return self._high[node]

    @property
    def node_count(self) -> int:
        return len(self._level)

    # --- constructors -----------------------------------------------------

    def variable(self, level: int) -> "BDDFunction":
        """The function of the single variable at ``level``."""
        if not 0 <= level < self.num_vars:
            raise ReproError(
                f"variable level {level} outside [0, {self.num_vars})")
        return BDDFunction(self, self._make(level, FALSE, TRUE))

    @property
    def true(self) -> "BDDFunction":
        return BDDFunction(self, TRUE)

    @property
    def false(self) -> "BDDFunction":
        return BDDFunction(self, FALSE)

    # --- operations --------------------------------------------------------

    def _apply(self, op: str, left: int, right: int) -> int:
        if op == "and":
            if left == FALSE or right == FALSE:
                return FALSE
            if left == TRUE:
                return right
            if right == TRUE:
                return left
            if left == right:
                return left
        elif op == "or":
            if left == TRUE or right == TRUE:
                return TRUE
            if left == FALSE:
                return right
            if right == FALSE:
                return left
            if left == right:
                return left
        elif op == "xor":
            if left == right:
                return FALSE
            if left == FALSE:
                return right
            if right == FALSE:
                return left
        else:  # pragma: no cover - internal
            raise ReproError(f"unknown op {op!r}")

        if left > right and op in ("and", "or", "xor"):
            left, right = right, left  # commutative: canonical cache key
        key = (op, left, right)
        found = self._apply_cache.get(key)
        if found is not None:
            return found

        level_left = self._level[left]
        level_right = self._level[right]
        level = min(level_left, level_right)
        low_left, high_left = (self._low[left], self._high[left]) \
            if level_left == level else (left, left)
        low_right, high_right = (self._low[right], self._high[right]) \
            if level_right == level else (right, right)
        result = self._make(level,
                            self._apply(op, low_left, low_right),
                            self._apply(op, high_left, high_right))
        self._apply_cache[key] = result
        return result

    def _not(self, node: int) -> int:
        if node == FALSE:
            return TRUE
        if node == TRUE:
            return FALSE
        found = self._not_cache.get(node)
        if found is not None:
            return found
        result = self._make(self._level[node],
                            self._not(self._low[node]),
                            self._not(self._high[node]))
        self._not_cache[node] = result
        return result

    def _restrict(self, node: int, level: int, value: int) -> int:
        node_level = self._level[node]
        if node_level > level:
            return node
        key = (node, level, value)
        found = self._restrict_cache.get(key)
        if found is not None:
            return found
        if node_level == level:
            result = self._high[node] if value else self._low[node]
        else:
            result = self._make(node_level,
                                self._restrict(self._low[node], level, value),
                                self._restrict(self._high[node], level,
                                               value))
        self._restrict_cache[key] = result
        return result

    # --- analysis ------------------------------------------------------------

    def _support(self, node: int, accumulator: set) -> None:
        seen = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen or current <= TRUE:
                continue
            seen.add(current)
            accumulator.add(self._level[current])
            stack.append(self._low[current])
            stack.append(self._high[current])

    def _probability(self, node: int, probs: Sequence[float],
                     cache: Dict[int, float]) -> float:
        if node == FALSE:
            return 0.0
        if node == TRUE:
            return 1.0
        found = cache.get(node)
        if found is not None:
            return found
        level = self._level[node]
        p = probs[level]
        value = ((1.0 - p) * self._probability(self._low[node], probs, cache)
                 + p * self._probability(self._high[node], probs, cache))
        cache[node] = value
        return value

    def _paired_probability(self, node: int,
                            joints: Sequence[Tuple[float, float, float,
                                                   float]],
                            marginals_now: Sequence[float],
                            marginals_next: Sequence[float],
                            cache: Dict[int, float]) -> float:
        """Probability with variable pairs ``(2k, 2k+1)`` jointly distributed.

        ``joints[k] = (p00, p01, p10, p11)`` is the joint distribution of
        (var 2k, var 2k+1); ``marginals_*[k]`` are the marginals used when
        only one of the pair appears in the function's support.
        """
        if node == FALSE:
            return 0.0
        if node == TRUE:
            return 1.0
        found = cache.get(node)
        if found is not None:
            return found
        level = self._level[node]
        pair = level // 2
        if level % 2 == 0:
            # Top variable is x_t of pair `pair`; expand both halves.
            p00, p01, p10, p11 = joints[pair]
            low = self._low[node]
            high = self._high[node]
            partner = level + 1
            low0 = self._restrict(low, partner, 0)
            low1 = self._restrict(low, partner, 1)
            high0 = self._restrict(high, partner, 0)
            high1 = self._restrict(high, partner, 1)
            value = (
                p00 * self._paired_probability(low0, joints, marginals_now,
                                               marginals_next, cache)
                + p01 * self._paired_probability(low1, joints, marginals_now,
                                                 marginals_next, cache)
                + p10 * self._paired_probability(high0, joints,
                                                 marginals_now,
                                                 marginals_next, cache)
                + p11 * self._paired_probability(high1, joints,
                                                 marginals_now,
                                                 marginals_next, cache))
        else:
            # x_t of this pair is absent above: use the x_{t+1} marginal.
            p = marginals_next[pair]
            value = ((1.0 - p) * self._paired_probability(
                self._low[node], joints, marginals_now, marginals_next,
                cache)
                + p * self._paired_probability(
                    self._high[node], joints, marginals_now, marginals_next,
                    cache))
        cache[node] = value
        return value


class BDDFunction:
    """A Boolean function: a node id bound to its manager."""

    __slots__ = ("manager", "node")

    def __init__(self, manager: BDD, node: int):
        self.manager = manager
        self.node = node

    def _coerce(self, other: "BDDFunction") -> int:
        if other.manager is not self.manager:
            raise ReproError("cannot combine functions from different "
                             "BDD managers")
        return other.node

    def __and__(self, other: "BDDFunction") -> "BDDFunction":
        return BDDFunction(self.manager,
                           self.manager._apply("and", self.node,
                                               self._coerce(other)))

    def __or__(self, other: "BDDFunction") -> "BDDFunction":
        return BDDFunction(self.manager,
                           self.manager._apply("or", self.node,
                                               self._coerce(other)))

    def __xor__(self, other: "BDDFunction") -> "BDDFunction":
        return BDDFunction(self.manager,
                           self.manager._apply("xor", self.node,
                                               self._coerce(other)))

    def __invert__(self) -> "BDDFunction":
        return BDDFunction(self.manager, self.manager._not(self.node))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, BDDFunction)
                and other.manager is self.manager
                and other.node == self.node)

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    @property
    def is_true(self) -> bool:
        return self.node == TRUE

    @property
    def is_false(self) -> bool:
        return self.node == FALSE

    def restrict(self, level: int, value: bool) -> "BDDFunction":
        """Cofactor with the variable at ``level`` fixed to ``value``."""
        return BDDFunction(self.manager,
                           self.manager._restrict(self.node, level,
                                                  1 if value else 0))

    def support(self) -> Tuple[int, ...]:
        """Levels of the variables the function actually depends on."""
        accumulator: set = set()
        self.manager._support(self.node, accumulator)
        return tuple(sorted(accumulator))

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Evaluate under a level→value assignment."""
        node = self.node
        manager = self.manager
        while node > TRUE:
            level = manager.level_of(node)
            try:
                value = assignment[level]
            except KeyError:
                raise ReproError(
                    f"assignment misses variable level {level}") from None
            node = manager.high_of(node) if value else manager.low_of(node)
        return node == TRUE

    def probability(self, probs: Sequence[float]) -> float:
        """``P(f = 1)`` under independent variables; ``probs[level]``."""
        if len(probs) < self.manager.num_vars:
            raise ReproError(
                f"need {self.manager.num_vars} probabilities, got "
                f"{len(probs)}")
        for p in probs:
            if not 0.0 <= p <= 1.0:
                raise ReproError(f"probability {p} not in [0, 1]")
        return self.manager._probability(self.node, probs, {})

    def paired_probability(self,
                           joints: Sequence[Tuple[float, float, float,
                                                  float]],
                           marginals_now: Sequence[float],
                           marginals_next: Sequence[float]) -> float:
        """``P(f = 1)`` with adjacent variable pairs jointly distributed.

        The variable order must interleave pairs: levels ``2k`` and
        ``2k+1`` belong to pair ``k``. ``joints[k]`` is
        ``(p00, p01, p10, p11)`` over (var ``2k``, var ``2k+1``).
        """
        if self.manager.num_vars % 2 != 0:
            raise ReproError("paired probability needs an even variable "
                             "count (interleaved pairs)")
        pairs = self.manager.num_vars // 2
        if len(joints) < pairs:
            raise ReproError(f"need {pairs} joint distributions, got "
                             f"{len(joints)}")
        for joint in joints:
            total = sum(joint)
            if not 0.999999 < total < 1.000001:
                raise ReproError(f"joint distribution {joint} does not "
                                 "sum to 1")
        return self.manager._paired_probability(
            self.node, joints, marginals_now, marginals_next, {})

    def satisfying_fraction(self) -> float:
        """Fraction of assignments satisfying f (uniform variables)."""
        return self.probability([0.5] * self.manager.num_vars)
