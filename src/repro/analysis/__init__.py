"""Analysis harnesses: sweeps, reporting, technology selection.

* :mod:`~repro.analysis.sweeps` — parameter sweeps over Vth tolerance
  (Figure 2a) and cycle-time slack (Figure 2b), plus general (Vdd, Vth)
  energy-surface scans.
* :mod:`~repro.analysis.report` — plain-text table rendering shared by
  the experiment drivers and benches.
* :mod:`~repro.analysis.technology_selection` — the §1 use case: run the
  optimizer across benchmarks on scaled process decks to recommend the
  threshold voltage a future low-power process should target.
* :mod:`~repro.analysis.sensitivity` — numerical verification of §3's
  stationarity/balance condition at the joint optimum.
* :mod:`~repro.analysis.pareto` — energy/cycle-time frontier and the
  Burr–Shott-style minimum energy-delay product point.
* :mod:`~repro.analysis.montecarlo` — statistical Vth-variation sampling
  (timing yield, energy percentiles) complementing Figure 2a's worst
  case.
"""

from repro.analysis.sweeps import (
    SlackSweepPoint,
    VariationSweepPoint,
    sweep_cycle_slack,
    sweep_vth_tolerance,
)
from repro.analysis.report import format_table
from repro.analysis.technology_selection import (
    VthRecommendation,
    recommend_threshold,
)
from repro.analysis.sensitivity import (
    SensitivityReport,
    analyze_optimum_sensitivity,
)
from repro.analysis.pareto import (
    ParetoPoint,
    energy_delay_tradeoff,
    minimum_energy_delay_product,
)
from repro.analysis.timing_report import SlackReport, slack_report
from repro.analysis.export import render_csv, write_csv
from repro.analysis.montecarlo import (
    MonteCarloOutcome,
    VariationStatistics,
    monte_carlo_variation,
    worst_case_pessimism,
)

__all__ = [
    "SlackSweepPoint",
    "VariationSweepPoint",
    "sweep_cycle_slack",
    "sweep_vth_tolerance",
    "format_table",
    "VthRecommendation",
    "recommend_threshold",
    "SensitivityReport",
    "analyze_optimum_sensitivity",
    "ParetoPoint",
    "energy_delay_tradeoff",
    "minimum_energy_delay_product",
    "MonteCarloOutcome",
    "VariationStatistics",
    "monte_carlo_variation",
    "worst_case_pessimism",
    "SlackReport",
    "slack_report",
    "render_csv",
    "write_csv",
]
