"""Parameter sweeps behind Figures 2(a) and 2(b).

* :func:`sweep_vth_tolerance` — power savings vs worst-case threshold
  tolerance (Figure 2a): re-optimize with the variation-aware objective
  at each tolerance and compare against the *same* fixed-Vth baseline.
* :func:`sweep_cycle_slack` — power savings vs available cycle time
  (Figure 2b): scale the clock period by a slack factor and re-run both
  the baseline and the joint optimization.
* :func:`scan_energy_surface` — raw (Vdd, Vth) → energy maps for plots
  and for the unimodality diagnostics used by tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import InfeasibleError
from repro.optimize.baseline import optimize_fixed_vth
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.problem import OptimizationProblem
from repro.optimize.variation import VariationModel, optimize_with_variation
from repro.optimize.width_search import size_widths
from repro.power.energy import total_energy
from repro.runtime.supervisor import resolve_parallel, run_sharded
from repro.runtime.tasks import Task, chunk_ranges


@dataclass(frozen=True)
class VariationSweepPoint:
    """One Figure 2(a) sample."""

    tolerance: float
    baseline_energy: float
    optimized_energy: float
    vdd: float
    vth_nominal: float

    @property
    def savings(self) -> float:
        """Baseline-to-optimized power ratio (the figure's y-axis)."""
        return self.baseline_energy / self.optimized_energy


def _tolerance_point(_state, problem: OptimizationProblem,
                     tolerance: float, baseline_energy: float,
                     settings: HeuristicSettings | None,
                     budgets) -> VariationSweepPoint:
    """One Figure 2(a) tolerance point — a pure sweep shard."""
    result = optimize_with_variation(problem, VariationModel(tolerance),
                                     settings=settings, budgets=budgets)
    return VariationSweepPoint(
        tolerance=tolerance,
        baseline_energy=baseline_energy,
        optimized_energy=result.total_energy,
        vdd=result.design.vdd,
        vth_nominal=float(result.design.distinct_vths()[0]))


def sweep_vth_tolerance(problem: OptimizationProblem,
                        tolerances: Sequence[float],
                        settings: HeuristicSettings | None = None
                        ) -> Tuple[VariationSweepPoint, ...]:
    """Figure 2(a): savings under worst-case Vth variation.

    The baseline (fixed 700 mV Vth, width+Vdd optimization) is computed
    once at nominal conditions, exactly as Table 1 anchors the paper's
    savings numbers; each tolerance point re-optimizes with worst-case
    corners and reports the *worst-case* optimized power.

    Tolerance points are independent (each gets the same shared budgets
    and baseline), so an ambient :func:`repro.runtime.use_parallel` plan
    shards them one-per-task; the merge is positional and the points are
    pure functions of their inputs, so the sweep is jobs-invariant.
    """
    budgets = problem.budgets()
    baseline = optimize_fixed_vth(problem, budgets=budgets)
    plan = resolve_parallel(None)
    if plan is not None and plan.active and len(tolerances) > 1:
        tasks = [Task(key=f"vth_tol[{tolerance:g}]", index=index,
                      fn=_tolerance_point,
                      args=(problem, tolerance, baseline.total_energy,
                            settings, budgets))
                 for index, tolerance in enumerate(tolerances)]
        run = run_sharded(tasks, plan=plan,
                          what=f"{problem.network.name} Vth-tolerance sweep")
        run.raise_if_quarantined(f"{problem.network.name} Vth-tolerance sweep")
        return tuple(run.values())
    return tuple(_tolerance_point(None, problem, tolerance,
                                  baseline.total_energy, settings, budgets)
                 for tolerance in tolerances)


@dataclass(frozen=True)
class SlackSweepPoint:
    """One Figure 2(b) sample."""

    slack_factor: float
    cycle_time: float
    baseline_energy: float
    optimized_energy: float
    vdd: float
    vth: float

    @property
    def savings(self) -> float:
        return self.baseline_energy / self.optimized_energy


def sweep_cycle_slack(problem: OptimizationProblem,
                      slack_factors: Sequence[float],
                      settings: HeuristicSettings | None = None,
                      rebaseline: bool = False
                      ) -> Tuple[SlackSweepPoint, ...]:
    """Figure 2(b): savings vs cycle-time slack.

    ``slack_factor`` multiplies the problem's cycle time (1.0 = the
    original clock). By default the baseline is pinned to the original
    clock — the paper's question is "how much more do we save if the
    clock could be relaxed?"; pass ``rebaseline=True`` to re-run the
    fixed-Vth baseline at each relaxed clock instead.

    This sweep is deliberately *not* sharded: each point warm-starts
    from the previous optimum (``seeds``), so the points form a chain,
    not a set. Parallelism, if any, lives inside each ``optimize_joint``
    call via the ambient plan.
    """
    base_frequency = problem.frequency
    pinned_baseline = optimize_fixed_vth(problem)
    points: List[SlackSweepPoint] = []
    seeds: Tuple[Tuple[float, float], ...] = ()
    for factor in slack_factors:
        if factor <= 0.0:
            raise InfeasibleError(f"slack factor must be > 0, got {factor}")
        relaxed = OptimizationProblem(ctx=problem.ctx,
                                      frequency=base_frequency / factor,
                                      skew_factor=problem.skew_factor,
                                      n_vth=problem.n_vth)
        # Warm-start with the previous point's optimum so the search can
        # never miss it. Note energy *per cycle* is still not guaranteed
        # monotone in slack: static energy integrates leakage over the
        # (longer) cycle, so Figure 2b's savings rise and then saturate.
        joint = optimize_joint(relaxed, settings=settings, seeds=seeds)
        seeds = ((joint.design.vdd,
                  float(joint.design.distinct_vths()[0])),)
        if rebaseline:
            baseline_energy = optimize_fixed_vth(relaxed).total_energy
        else:
            baseline_energy = pinned_baseline.total_energy
        points.append(SlackSweepPoint(
            slack_factor=factor,
            cycle_time=relaxed.cycle_time,
            baseline_energy=baseline_energy,
            optimized_energy=joint.total_energy,
            vdd=joint.design.vdd,
            vth=float(joint.design.distinct_vths()[0])))
    return tuple(points)


def _surface_cell(problem: OptimizationProblem, budgets,
                  vdd: float, vth: float) -> float:
    assignment = size_widths(
        problem.ctx, budgets.budgets, vdd, vth,
        repair_ceiling=budgets.effective_cycle_time)
    if not assignment.feasible:
        return math.inf
    return total_energy(problem.ctx, vdd, vth, assignment.widths,
                        problem.frequency).total


def _surface_chunk(_state, problem: OptimizationProblem, budgets,
                   cells: Tuple[Tuple[float, float], ...]
                   ) -> Tuple[float, ...]:
    """Energies of a contiguous run of (Vdd, Vth) cells — a pure shard."""
    return tuple(_surface_cell(problem, budgets, vdd, vth)
                 for vdd, vth in cells)


def scan_energy_surface(problem: OptimizationProblem,
                        vdd_values: Sequence[float],
                        vth_values: Sequence[float]
                        ) -> Dict[Tuple[float, float], float]:
    """Total energy at each (Vdd, Vth); ``inf`` marks infeasible points.

    Cells are independent, so an ambient parallel plan shards the grid
    into contiguous chunks; the surface dict is rebuilt in canonical
    (vdd-outer, vth-inner) order either way.
    """
    budgets = problem.budgets()
    cells = tuple((vdd, vth) for vdd in vdd_values for vth in vth_values)
    plan = resolve_parallel(None)
    if plan is not None and plan.active and len(cells) > 1:
        chunks = chunk_ranges(len(cells), plan.jobs * 4)
        tasks = [Task(key=f"surface[{start}:{stop}]", index=start,
                      fn=_surface_chunk,
                      args=(problem, budgets, cells[start:stop]))
                 for start, stop in chunks]
        run = run_sharded(tasks, plan=plan,
                          what=f"{problem.network.name} energy surface")
        run.raise_if_quarantined(f"{problem.network.name} energy surface")
        energies = [energy for chunk in run.values() for energy in chunk]
    else:
        energies = [_surface_cell(problem, budgets, vdd, vth)
                    for vdd, vth in cells]
    return {cell: energy for cell, energy in zip(cells, energies)}
