"""CSV export of experiment series.

The experiment drivers print aligned text; downstream plotting (the
figures a paper or report would carry) wants machine-readable series.
This module writes the regenerated tables/figures as plain CSV with a
one-line provenance comment, so ``benchmarks/results/*.csv`` can be
dropped straight into any plotting tool.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Sequence

from repro import __version__
from repro.errors import ReproError
from repro.runtime.atomicio import atomic_write_text


def render_csv(headers: Sequence[str], rows: Iterable[Sequence[object]],
               provenance: str | None = None) -> str:
    """CSV text with an optional ``# provenance`` first line."""
    buffer = io.StringIO()
    if provenance:
        buffer.write(f"# {provenance} (repro {__version__})\n")
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    count = len(headers)
    for row in rows:
        materialized = list(row)
        if len(materialized) != count:
            raise ReproError(
                f"row has {len(materialized)} cells for {count} headers")
        writer.writerow(materialized)
    return buffer.getvalue()


def write_csv(path: str | Path, headers: Sequence[str],
              rows: Iterable[Sequence[object]],
              provenance: str | None = None) -> Path:
    """Write :func:`render_csv` output to ``path`` and return it.

    The write is atomic (tempfile + ``os.replace``), so an interrupted
    export never leaves a truncated CSV behind.
    """
    return atomic_write_text(path, render_csv(headers, rows,
                                              provenance=provenance))


def table1_rows_to_csv(rows) -> str:
    """CSV form of Table 1 rows (see repro.experiments.table1)."""
    return render_csv(
        headers=["circuit", "gates", "depth", "activity", "static_J",
                 "dynamic_J", "total_J", "critical_delay_s", "vdd_V"],
        rows=[[row.circuit, row.gates, row.depth, row.activity,
               row.static_energy, row.dynamic_energy, row.total_energy,
               row.critical_delay, row.vdd] for row in rows],
        provenance="Table 1 - fixed-Vth baseline")


def table2_rows_to_csv(rows) -> str:
    """CSV form of Table 2 rows (see repro.experiments.table2)."""
    return render_csv(
        headers=["circuit", "activity", "static_J", "dynamic_J", "total_J",
                 "critical_delay_s", "vdd_V", "vth_V", "savings"],
        rows=[[row.circuit, row.activity, row.static_energy,
               row.dynamic_energy, row.total_energy, row.critical_delay,
               row.vdd, row.vth, row.savings] for row in rows],
        provenance="Table 2 - joint Vdd/Vth/width optimization")


def figure_points_to_csv(points, x_field: str, provenance: str) -> str:
    """Generic series export for the Figure 2 point dataclasses."""
    if not points:
        raise ReproError("no points to export")
    first = points[0]
    fields = [name for name in first.__dataclass_fields__]  # type: ignore[attr-defined]
    if x_field not in fields:
        raise ReproError(f"unknown x field {x_field!r}; have {fields}")
    ordered = [x_field] + [name for name in fields if name != x_field]
    extra = [name for name in ("savings",)
             if hasattr(first, name) and name not in ordered]
    return render_csv(
        headers=ordered + extra,
        rows=[[getattr(point, name) for name in ordered]
              + [getattr(point, name) for name in extra]
              for point in points],
        provenance=provenance)
