"""Plain-text table rendering for experiment output.

The experiment drivers print the same rows the paper's tables report;
this module keeps the formatting in one place (fixed-width columns,
engineering notation for energies/delays).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.units import format_si


def format_energy(value: float) -> str:
    """Engineering-notation joules, e.g. ``'123.456 fJ'``."""
    return format_si(value, "J")


def format_delay(value: float) -> str:
    return format_si(value, "s")


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned plain-text table.

    >>> print(format_table(['a', 'b'], [[1, 'x']]))
    a  b
    -  -
    1  x
    """
    materialized: List[List[str]] = [[str(cell) for cell in row]
                                     for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(headers))
    lines.append(render_row(["-" * width for width in widths]))
    for row in materialized:
        lines.append(render_row(row))
    return "\n".join(lines)
