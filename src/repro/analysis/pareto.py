"""Energy-vs-cycle-time trade-off and the energy-delay product.

The paper's introduction contrasts its hard-constraint formulation with
Burr–Shott [2], who choose supply/threshold so leakage equals switching
*without* a performance requirement and temper the speed loss by
minimizing the energy-delay product instead. This module provides that
complementary view on top of the constraint-based optimizer:

* :func:`energy_delay_tradeoff` — the Pareto frontier ``E(T_c)`` obtained
  by sweeping the cycle-time constraint and re-running Procedure 1 + 2
  (each point warm-started with its predecessor),
* :func:`minimum_energy_delay_product` — the frontier point minimizing
  ``E * T_c``, i.e. the operating point a Burr–Shott-style designer would
  pick when the clock is negotiable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import OptimizationError
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.problem import OptimizationProblem


@dataclass(frozen=True)
class ParetoPoint:
    """One point of the energy/cycle-time frontier."""

    cycle_time: float
    energy: float
    vdd: float
    vth: float

    @property
    def energy_delay_product(self) -> float:
        return self.energy * self.cycle_time

    @property
    def power(self) -> float:
        return self.energy / self.cycle_time


def energy_delay_tradeoff(problem: OptimizationProblem,
                          slack_factors: Sequence[float],
                          settings: HeuristicSettings | None = None
                          ) -> Tuple[ParetoPoint, ...]:
    """Optimized energy at each cycle time ``slack * T_c``.

    ``slack_factors`` should be increasing; each point warm-starts from
    the previous optimum so the frontier is well-behaved.
    """
    if not slack_factors:
        raise OptimizationError("need at least one slack factor")
    points: List[ParetoPoint] = []
    seeds: Tuple[Tuple[float, float], ...] = ()
    for factor in slack_factors:
        if factor <= 0.0:
            raise OptimizationError(
                f"slack factor must be > 0, got {factor}")
        relaxed = OptimizationProblem(ctx=problem.ctx,
                                      frequency=problem.frequency / factor,
                                      skew_factor=problem.skew_factor,
                                      n_vth=problem.n_vth)
        result = optimize_joint(relaxed, settings=settings, seeds=seeds)
        vdd = float(result.design.distinct_vdds()[0])
        vth = float(result.design.distinct_vths()[0])
        seeds = ((vdd, vth),)
        points.append(ParetoPoint(cycle_time=relaxed.cycle_time,
                                  energy=result.total_energy,
                                  vdd=vdd, vth=vth))
    return tuple(points)


def minimum_energy_delay_product(points: Sequence[ParetoPoint]
                                 ) -> ParetoPoint:
    """The frontier point with the smallest ``E * T_c``."""
    if not points:
        raise OptimizationError("empty frontier")
    return min(points, key=lambda point: point.energy_delay_product)
