"""Statistical process-variation analysis (the Figure 2a complement).

The paper's §5 robustness study is a *worst-case* analysis: every device
simultaneously at the slow (or leaky) Vth corner. Real die-to-die and
within-die variation is statistical, and worst-casing every gate at once
is pessimistic. This module quantifies that pessimism:

* each sample draws an independent Gaussian Vth offset per gate
  (within-die, ``sigma_within``) on top of one shared offset per sample
  (die-to-die, ``sigma_die``),
* each sample is evaluated with full STA and the energy model at the
  *fixed* design (voltages and widths do not change per die),
* the result is a timing-yield estimate and energy percentiles —
  the numbers a production engineer would hold next to Figure 2a.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import (FaultInjectedError, InfeasibleError,
                          OptimizationError, TimingError)
from repro.obs.instrument import MC_SAMPLES_FAILED
from repro.obs.metrics import current_metrics
from repro.optimize.problem import DesignPoint, OptimizationProblem
from repro.power.energy import total_energy
from repro.runtime.supervisor import (ParallelPlan, resolve_parallel,
                                      run_sharded)
from repro.runtime.tasks import Task, chunk_ranges
from repro.timing.sta import analyze_timing

#: Errors that quarantine a single sample instead of killing the run
#: (matches :data:`repro.robust.estimator.SAMPLE_FAULTS`).
_SAMPLE_FAULTS = (TimingError, InfeasibleError, OptimizationError,
                  FaultInjectedError)


@dataclass(frozen=True)
class VariationStatistics:
    """Gaussian Vth variation parameters (volts)."""

    #: Die-to-die (shared) standard deviation.
    sigma_die: float = 0.015
    #: Within-die (per gate, independent) standard deviation.
    sigma_within: float = 0.010

    def __post_init__(self) -> None:
        if self.sigma_die < 0.0 or self.sigma_within < 0.0:
            raise OptimizationError("sigmas must be >= 0")


@dataclass(frozen=True)
class MonteCarloOutcome:
    """Aggregate of one Monte-Carlo variation run."""

    samples: int
    #: Fraction of surviving samples meeting the cycle time.
    timing_yield: float
    #: Per-sample total energies (J), sorted ascending.
    energies: Tuple[float, ...]
    #: Per-sample critical delays (s), sorted ascending.
    delays: Tuple[float, ...]
    nominal_energy: float
    nominal_delay: float
    #: Samples quarantined after an STA/energy fault (excluded from the
    #: statistics; ``len(energies) == samples - samples_failed``).
    samples_failed: int = 0

    def energy_percentile(self, fraction: float) -> float:
        return _percentile(self.energies, fraction)

    def delay_percentile(self, fraction: float) -> float:
        return _percentile(self.delays, fraction)

    @property
    def mean_energy(self) -> float:
        return sum(self.energies) / len(self.energies)


def _percentile(sorted_values: Tuple[float, ...], fraction: float) -> float:
    if not sorted_values:
        raise OptimizationError("no samples")
    if not 0.0 <= fraction <= 1.0:
        raise OptimizationError(f"fraction must be in [0, 1], got {fraction}")
    index = min(int(fraction * len(sorted_values)),
                len(sorted_values) - 1)
    return sorted_values[index]


def _sample_rng(seed: int, index: int) -> random.Random:
    """The RNG of sample ``index`` under run seed ``seed``.

    Counter-based (one independent stream per sample) rather than one
    sequential stream for the whole run: sample ``index`` draws the same
    offsets whether it is computed serially or inside any batch of any
    worker, which is what makes the Monte-Carlo sweep jobs-invariant.
    """
    return random.Random((seed << 32) ^ index)


def _mc_init(problem: OptimizationProblem, design: DesignPoint,
             statistics: VariationStatistics, seed: int,
             engine: Optional[str] = None):
    """Worker init of the Monte-Carlo shards: the shared evaluation state."""
    engine_obj = None
    if engine is not None:
        from repro.engine import make_engine

        engine_obj = make_engine(problem, engine)
    return (problem, design, statistics, seed,
            tuple(problem.network.logic_gates), engine_obj)


def _mc_vth_map(design: DesignPoint, statistics: VariationStatistics,
                gates, seed: int, index: int) -> Dict[str, float]:
    """Sample ``index``'s perturbed thresholds, in the legacy draw order."""
    rng = _sample_rng(seed, index)
    die_offset = rng.gauss(0.0, statistics.sigma_die)
    vth_map: Dict[str, float] = {}
    for name in gates:
        nominal = design.vth_of(name)
        offset = die_offset + rng.gauss(0.0, statistics.sigma_within)
        vth_map[name] = max(nominal + offset, 0.02)
    return vth_map


def _mc_engine_batch(state, start: int, stop: int
                     ) -> Tuple[Tuple[float, ...], Tuple[float, ...],
                                int, int]:
    """Engine-backed shard: whole sample ranges per kernel invocation.

    The opt-in fast path of :func:`monte_carlo_variation`: identical
    CRN draws (same ``_sample_rng`` streams, same per-gate order) fed
    through the engine seam instead of the reference models. With a
    batch-capable engine the shard is **one** ``measure_batch`` call;
    otherwise it loops ``engine.measure``. A fault inside the batched
    call falls back to the per-sample loop so exactly the faulty
    sample(s) are quarantined.
    """
    problem, design, statistics, seed, gates, engine = state
    maps = [_mc_vth_map(design, statistics, gates, seed, index)
            for index in range(start, stop)]
    measured = None
    if getattr(engine, "supports_batch", False) and len(maps) > 1:
        try:
            rows = engine.measure_batch([design.vdd] * len(maps), maps,
                                        [design.widths] * len(maps))
            measured = [(m.energy, m.critical_delay) for m in rows]
        except _SAMPLE_FAULTS:
            measured = None
    energies: List[float] = []
    delays: List[float] = []
    met = 0
    failed = 0
    cycle = problem.cycle_time
    for offset, vth_map in enumerate(maps):
        try:
            if measured is not None:
                energy, delay = measured[offset]
            else:
                measurement = engine.measure(design.vdd, vth_map,
                                             design.widths)
                energy = measurement.energy
                delay = measurement.critical_delay
            if not (math.isfinite(energy) and math.isfinite(delay)):
                raise OptimizationError(
                    f"non-finite sample {start + offset}: "
                    f"energy={energy!r}, delay={delay!r}")
        except _SAMPLE_FAULTS:
            failed += 1
            continue
        delays.append(delay)
        energies.append(energy)
        if delay <= cycle * (1.0 + 1e-9):
            met += 1
    return tuple(energies), tuple(delays), met, failed


def _mc_batch(state, start: int, stop: int
              ) -> Tuple[Tuple[float, ...], Tuple[float, ...], int, int]:
    """Evaluate samples ``[start, stop)`` — a pure Monte-Carlo shard.

    Returns (energies, delays, met, failed) with the per-sample values
    in sample order (the outcome sorts globally, so concatenation order
    never matters — but determinism per sample does). A sample whose
    STA or energy evaluation raises a model fault (or produces a
    non-finite value) is quarantined and counted in ``failed`` rather
    than killing the whole run; the caller enforces the failure-
    fraction threshold.
    """
    problem, design, statistics, seed, gates, _engine = state
    energies: List[float] = []
    delays: List[float] = []
    met = 0
    failed = 0
    cycle = problem.cycle_time
    for index in range(start, stop):
        vth_map = _mc_vth_map(design, statistics, gates, seed, index)
        try:
            timing = analyze_timing(problem.ctx, design.vdd, vth_map,
                                    design.widths)
            energy = total_energy(problem.ctx, design.vdd, vth_map,
                                  design.widths, problem.frequency).total
            if not (math.isfinite(energy)
                    and math.isfinite(timing.critical_delay)):
                raise OptimizationError(
                    f"non-finite sample {index}: energy={energy!r}, "
                    f"delay={timing.critical_delay!r}")
        except _SAMPLE_FAULTS:
            failed += 1
            continue
        delays.append(timing.critical_delay)
        energies.append(energy)
        if timing.meets(cycle, tolerance=1e-9):
            met += 1
    return tuple(energies), tuple(delays), met, failed


def monte_carlo_variation(problem: OptimizationProblem, design: DesignPoint,
                          statistics: VariationStatistics | None = None,
                          samples: int = 200, seed: int = 0,
                          parallel: Optional[ParallelPlan] = None,
                          max_failure_fraction: float = 0.5,
                          engine: Optional[str] = None
                          ) -> MonteCarloOutcome:
    """Sample Vth variation around ``design`` and measure timing/energy.

    The design's nominal Vth (scalar or per-gate) is perturbed per sample;
    offsets are clamped so every perturbed threshold stays positive.
    Sampling is counter-seeded per sample (see :func:`_sample_rng`), so
    the outcome depends only on ``(seed, samples)`` — a parallel plan
    (explicit ``parallel=`` or ambient
    :func:`repro.runtime.use_parallel`) shards the samples into batches
    without changing a single drawn value.

    A sample whose evaluation raises a model fault is quarantined (see
    :func:`_mc_batch`) and reported via ``samples_failed`` /
    the ``mc.samples_failed`` counter; beyond ``max_failure_fraction``
    the run raises a labeled :class:`~repro.errors.OptimizationError`
    instead of reporting statistics too corrupted to trust.

    ``engine`` opts into evaluating samples through the named
    :mod:`repro.engine` seam instead of the reference models — with
    ``"batch"`` an entire sample range becomes one vectorized kernel
    invocation (see :func:`_mc_engine_batch`). The CRN draws are
    identical either way; ``None`` (the default) keeps the legacy
    reference-model path bit-for-bit.
    """
    if samples < 1:
        raise OptimizationError(f"samples must be >= 1, got {samples}")
    if not 0.0 < max_failure_fraction <= 1.0:
        raise OptimizationError(
            f"max_failure_fraction must lie in (0, 1], "
            f"got {max_failure_fraction}")
    statistics = statistics or VariationStatistics()

    nominal_timing = analyze_timing(problem.ctx, design.vdd, design.vth,
                                    design.widths)
    nominal_energy = total_energy(problem.ctx, design.vdd, design.vth,
                                  design.widths, problem.frequency).total

    state = _mc_init(problem, design, statistics, seed, engine)
    shard_fn = _mc_batch if engine is None else _mc_engine_batch
    plan = resolve_parallel(parallel)
    if plan is not None and plan.active and samples > 1:
        tasks = [Task(key=f"mc[{start}:{stop}]", index=start, fn=shard_fn,
                      args=(start, stop))
                 for start, stop in chunk_ranges(samples, plan.jobs * 4)]
        run = run_sharded(tasks, init_fn=_mc_init,
                          init_args=(problem, design, statistics, seed,
                                     engine),
                          plan=plan,
                          what=f"{problem.network.name} Monte-Carlo")
        run.raise_if_quarantined(f"{problem.network.name} Monte-Carlo")
        batches = run.values()
    else:
        batches = [shard_fn(state, 0, samples)]

    energies: List[float] = []
    delays: List[float] = []
    met = 0
    failed = 0
    for batch_energies, batch_delays, batch_met, batch_failed in batches:
        energies.extend(batch_energies)
        delays.extend(batch_delays)
        met += batch_met
        failed += batch_failed

    if failed:
        # Counted at the merge, in the main process — worker-side
        # metrics registries do not cross the pool boundary.
        current_metrics().incr(MC_SAMPLES_FAILED, failed)
    if failed / samples > max_failure_fraction or not energies:
        raise OptimizationError(
            f"{problem.network.name} Monte-Carlo: {failed}/{samples} "
            f"samples failed (threshold "
            f"{max_failure_fraction:.0%}) — statistics would be "
            f"dominated by the fault, not the variation")

    return MonteCarloOutcome(samples=samples,
                             timing_yield=met / len(energies),
                             energies=tuple(sorted(energies)),
                             delays=tuple(sorted(delays)),
                             nominal_energy=nominal_energy,
                             nominal_delay=nominal_timing.critical_delay,
                             samples_failed=failed)


def worst_case_pessimism(problem: OptimizationProblem,
                         nominal: DesignPoint,
                         robust: DesignPoint,
                         statistics: VariationStatistics | None = None,
                         samples: int = 200, seed: int = 0
                         ) -> Tuple[MonteCarloOutcome, MonteCarloOutcome]:
    """Monte-Carlo both the nominal and the worst-case-robust designs.

    Returns ``(nominal_outcome, robust_outcome)``. Expected shape: the
    robust design yields ~100 % while the nominal design loses yield —
    and the statistical energy of the robust design sits *below* its
    worst-case guarantee (quantifying Figure 2a's pessimism).
    """
    nominal_outcome = monte_carlo_variation(problem, nominal,
                                            statistics=statistics,
                                            samples=samples, seed=seed)
    robust_outcome = monte_carlo_variation(problem, robust,
                                           statistics=statistics,
                                           samples=samples, seed=seed)
    return nominal_outcome, robust_outcome
