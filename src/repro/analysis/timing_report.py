"""Slack reporting: where a design's timing margin lives.

After Procedure 2, per-gate slack against the Procedure 1 budgets tells a
designer which gates constrain the design (zero slack — sized at their
budget edge) and where margin is parked. This module assembles the
standard reports: per-gate slacks, the K worst endpoints by arrival
slack, and a slack histogram for dashboards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import ReproError
from repro.optimize.problem import OptimizationProblem, OptimizationResult
from repro.timing.budgeting import BudgetResult


@dataclass(frozen=True)
class SlackReport:
    """Per-gate and per-endpoint slack at one design point."""

    network_name: str
    cycle_time: float
    #: Gate budget minus measured gate delay (s); >= 0 by construction.
    gate_slacks: Mapping[str, float]
    #: (output, cycle slack) pairs, worst first.
    endpoint_slacks: Tuple[Tuple[str, float], ...]

    @property
    def worst_endpoint(self) -> Tuple[str, float]:
        return self.endpoint_slacks[0]

    @property
    def critical_gates(self) -> Tuple[str, ...]:
        """Gates sized against their budget edge (< 1 % slack)."""
        return tuple(name for name, slack in sorted(self.gate_slacks.items())
                     if slack < 0.01 * self.cycle_time / 10)

    def histogram(self, bins: int = 8) -> Tuple[Tuple[float, int], ...]:
        """(upper edge, count) pairs over the gate-slack range."""
        if bins < 1:
            raise ReproError(f"bins must be >= 1, got {bins}")
        values = sorted(self.gate_slacks.values())
        if not values:
            raise ReproError("no gates to histogram")
        top = max(values[-1], 1e-30)
        width = top / bins
        counts = [0] * bins
        for value in values:
            index = min(int(value / width), bins - 1)
            counts[index] += 1
        return tuple(((i + 1) * width, counts[i]) for i in range(bins))


def slack_report(problem: OptimizationProblem, result: OptimizationResult,
                 budgets: BudgetResult | None = None) -> SlackReport:
    """Build the slack report for an optimization result."""
    if budgets is None:
        budgets = problem.budgets()
    network = problem.network
    gate_slacks: Dict[str, float] = {}
    for name in network.logic_gates:
        budget = budgets.budgets[name]
        delay = result.timing.delay(name)
        gate_slacks[name] = max(budget - delay, 0.0)

    endpoint: List[Tuple[str, float]] = []
    cycle = problem.cycle_time
    for output in network.outputs:
        arrival = result.timing.arrival(output)
        endpoint.append((output, cycle - arrival))
    endpoint.sort(key=lambda item: item[1])

    return SlackReport(network_name=network.name, cycle_time=cycle,
                       gate_slacks=gate_slacks,
                       endpoint_slacks=tuple(endpoint))
