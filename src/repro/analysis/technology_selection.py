"""Process threshold-voltage selection (the §1 use case).

"In determining the threshold voltage for a process being developed for
future applications, one may use the algorithms on existing benchmarks
with predicted circuit timing parameters to find the most desirable
threshold voltage."

:func:`recommend_threshold` runs the joint optimizer over a benchmark
suite on a (possibly scaled) technology deck and aggregates the chosen
thresholds into a single recommendation, reporting the spread so a
process engineer can judge how benchmark-sensitive the choice is.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.activity.profiles import uniform_profile
from repro.errors import InfeasibleError
from repro.netlist.benchmarks import benchmark_circuit
from repro.optimize.heuristic import HeuristicSettings, optimize_joint
from repro.optimize.problem import OptimizationProblem
from repro.technology.process import Technology


@dataclass(frozen=True)
class VthRecommendation:
    """Aggregated optimizer-chosen thresholds over a benchmark suite."""

    technology: str
    frequency: float
    #: (circuit, chosen Vth, chosen Vdd, total energy) per benchmark.
    per_circuit: Tuple[Tuple[str, float, float, float], ...]
    recommended_vth: float
    vth_spread: float
    #: Circuits that could not meet the clock on this deck.
    infeasible: Tuple[str, ...]


def recommend_threshold(tech: Technology, circuits: Sequence[str],
                        frequency: float,
                        activity: float = 0.1,
                        probability: float = 0.5,
                        settings: HeuristicSettings | None = None
                        ) -> VthRecommendation:
    """Run the joint optimizer over ``circuits`` and pool the Vth choices.

    The recommendation is the energy-weighted median of the per-circuit
    optima (median, not mean: a single outlier benchmark should not drag
    the process target).
    """
    per_circuit: List[Tuple[str, float, float, float]] = []
    infeasible: List[str] = []
    for name in circuits:
        network = benchmark_circuit(name)
        profile = uniform_profile(network, probability=probability,
                                  density=activity)
        problem = OptimizationProblem.build(tech, network, profile,
                                            frequency=frequency)
        try:
            result = optimize_joint(problem, settings=settings)
        except InfeasibleError:
            infeasible.append(name)
            continue
        vth = float(result.design.distinct_vths()[0])
        per_circuit.append((name, vth, result.design.vdd,
                            result.total_energy))

    if not per_circuit:
        raise InfeasibleError(
            f"no benchmark met {frequency:.3g} Hz on deck {tech.name!r}")
    vths = [vth for _, vth, _, _ in per_circuit]
    recommended = statistics.median(vths)
    spread = max(vths) - min(vths)
    return VthRecommendation(technology=tech.name, frequency=frequency,
                             per_circuit=tuple(per_circuit),
                             recommended_vth=recommended,
                             vth_spread=spread,
                             infeasible=tuple(infeasible))
