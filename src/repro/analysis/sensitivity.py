"""Sensitivity analysis of the joint optimum — the physics of §3.

§3 explains *why* a unique (Vdd, Vth, w) choice minimizes total energy:
"the sum total of the static and the dynamic components of dissipation is
minimized ... when the sum of the increased static dissipation due to
lower threshold voltage and larger device width and the increased dynamic
dissipation due to larger device width equals the reduction in the
dynamic power due to power supply voltage scaling."

This module verifies that stationarity numerically. The *reduced*
objective ``g(Vdd, Vth)`` — total energy after re-running the
minimum-width sizing — is differentiated by central differences at a
returned optimum:

* in the interior of the search box, both partials vanish (to the
  optimizer's resolution) and the §3 balance holds: the static gain and
  dynamic loss of a supply step cancel;
* on a box face (the common ``Vth = Vth_min`` case), the one-sided
  derivative points *into* the box — the optimizer is pressed against
  the technology limit, exactly the situation §2's ``n_v``/process
  discussion anticipates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import OptimizationError
from repro.optimize.problem import OptimizationProblem, OptimizationResult
from repro.optimize.width_search import size_widths
from repro.power.energy import total_energy
from repro.timing.budgeting import BudgetResult


@dataclass(frozen=True)
class SensitivityReport:
    """Numerical stationarity data at a (Vdd, Vth) design point."""

    vdd: float
    vth: float
    energy: float
    #: Central-difference (or one-sided at a boundary) partials (J/V).
    d_energy_d_vdd: float
    d_energy_d_vth: float
    #: Static/dynamic split of the Vdd partial (the §3 balance terms).
    d_static_d_vdd: float
    d_dynamic_d_vdd: float
    #: Whether each variable sits on its search-box boundary.
    vdd_at_boundary: bool
    vth_at_boundary: bool

    @property
    def vdd_stationary(self) -> bool:
        """Is the Vdd direction stationary (interior) or inward (boundary)?"""
        scale = max(self.energy / max(self.vdd, 1e-9), 1e-30)
        if self.vdd_at_boundary:
            return True
        return abs(self.d_energy_d_vdd) < 0.25 * scale

    @property
    def balance_ratio(self) -> float:
        """§3's balance: |dE_static/dVdd| / |dE_dynamic/dVdd| at optimum.

        Moving the supply down trades dynamic savings against static (and
        width-induced dynamic) growth; at a true interior optimum the
        ratio of opposing slopes is 1.
        """
        if self.d_dynamic_d_vdd == 0.0:
            return math.inf if self.d_static_d_vdd != 0.0 else 1.0
        return abs(self.d_static_d_vdd / self.d_dynamic_d_vdd)


def _reduced_energy(problem: OptimizationProblem, budgets: BudgetResult,
                    vdd: float, vth: float) -> Tuple[float, float, float]:
    """(total, static, dynamic) of the re-sized design; inf if infeasible."""
    assignment = size_widths(problem.ctx, budgets.budgets, vdd, vth,
                             repair_ceiling=budgets.effective_cycle_time)
    if not assignment.feasible:
        return math.inf, math.inf, math.inf
    report = total_energy(problem.ctx, vdd, vth, assignment.widths,
                          problem.frequency)
    return report.total, report.static, report.dynamic


def analyze_optimum_sensitivity(problem: OptimizationProblem,
                                result: OptimizationResult,
                                budgets: BudgetResult | None = None,
                                relative_step: float = 0.02
                                ) -> SensitivityReport:
    """Differentiate the reduced objective at ``result``'s design point."""
    if not 0.0 < relative_step < 0.5:
        raise OptimizationError(
            f"relative_step must lie in (0, 0.5), got {relative_step}")
    if budgets is None:
        budgets = problem.budgets()
    tech = problem.tech
    vdds = result.design.distinct_vdds()
    vths = result.design.distinct_vths()
    if len(vdds) != 1 or len(vths) != 1:
        raise OptimizationError(
            "sensitivity analysis expects a single-Vdd, single-Vth design")
    vdd, vth = float(vdds[0]), float(vths[0])

    energy, _, _ = _reduced_energy(problem, budgets, vdd, vth)

    vdd_step = relative_step * vdd
    vdd_low = max(vdd - vdd_step, tech.vdd_min)
    vdd_high = min(vdd + vdd_step, tech.vdd_max)
    vdd_boundary = math.isclose(vdd, tech.vdd_min, rel_tol=1e-6) \
        or math.isclose(vdd, tech.vdd_max, rel_tol=1e-6)
    total_lo, static_lo, dynamic_lo = _reduced_energy(problem, budgets,
                                                      vdd_low, vth)
    total_hi, static_hi, dynamic_hi = _reduced_energy(problem, budgets,
                                                      vdd_high, vth)
    span = vdd_high - vdd_low
    if math.isinf(total_lo):
        # Lower supply infeasible: one-sided derivative upward.
        span = vdd_high - vdd
        total_lo, static_lo, dynamic_lo = energy, *_reduced_energy(
            problem, budgets, vdd, vth)[1:]
    d_total_vdd = (total_hi - total_lo) / span
    d_static_vdd = (static_hi - static_lo) / span
    d_dynamic_vdd = (dynamic_hi - dynamic_lo) / span

    vth_step = relative_step * vth
    vth_low = max(vth - vth_step, tech.vth_min)
    vth_high = min(vth + vth_step, tech.vth_max)
    vth_boundary = math.isclose(vth, tech.vth_min, rel_tol=1e-6) \
        or math.isclose(vth, tech.vth_max, rel_tol=1e-6)
    total_vth_lo, _, _ = _reduced_energy(problem, budgets, vdd, vth_low)
    total_vth_hi, _, _ = _reduced_energy(problem, budgets, vdd, vth_high)
    vth_span = vth_high - vth_low
    if math.isinf(total_vth_hi):
        # Higher threshold infeasible (too slow): one-sided downward.
        vth_span = vth - vth_low
        total_vth_hi = energy
    d_total_vth = (total_vth_hi - total_vth_lo) / vth_span \
        if vth_span > 0.0 else 0.0

    return SensitivityReport(
        vdd=vdd, vth=vth, energy=energy,
        d_energy_d_vdd=d_total_vdd,
        d_energy_d_vth=d_total_vth,
        d_static_d_vdd=d_static_vdd,
        d_dynamic_d_vdd=d_dynamic_vdd,
        vdd_at_boundary=vdd_boundary,
        vth_at_boundary=vth_boundary)
