"""Rent's rule: ``T = t * N^p``.

``T`` is the number of terminals (I/Os) of a block of ``N`` gates, ``t``
the average terminals per gate and ``p`` the Rent exponent. Random logic
sits around ``p ≈ 0.55–0.75``; the default matches the classic value for
random logic networks used by the Davis wire-length derivation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReproError
from repro.netlist.network import LogicNetwork


@dataclass(frozen=True)
class RentParameters:
    """Rent's-rule coefficients of a design style."""

    #: Average terminals per gate (Rent coefficient t).
    terminals_per_gate: float = 4.0

    #: Rent exponent p in (0, 1).
    exponent: float = 0.6

    def __post_init__(self) -> None:
        if self.terminals_per_gate <= 0.0:
            raise ReproError(
                f"terminals_per_gate must be > 0, got {self.terminals_per_gate}")
        if not 0.0 < self.exponent < 1.0:
            raise ReproError(
                f"Rent exponent must lie in (0, 1), got {self.exponent}")

    def terminals(self, n_gates: float) -> float:
        """Expected terminal count of an ``n_gates`` block, ``t * N^p``."""
        if n_gates < 1:
            raise ReproError(f"n_gates must be >= 1, got {n_gates}")
        return self.terminals_per_gate * n_gates ** self.exponent

    @classmethod
    def random_logic(cls) -> "RentParameters":
        """The default random-logic style (t = 4, p = 0.6)."""
        return cls()


def fit_rent_exponent(network: LogicNetwork,
                      terminals_per_gate: float | None = None) -> RentParameters:
    """Fit Rent parameters from a network's boundary statistics.

    A single-level fit using the conservation-of-I/O identity at the module
    boundary: with ``T`` the observed primary I/O count and ``N`` the gate
    count, ``p = log(T / t) / log(N)``. ``t`` defaults to the network's
    average pin count per gate (fanin + 1 output). The exponent is clamped
    into the physically sensible (0.1, 0.9) band — tiny benchmarks can
    otherwise produce degenerate fits.
    """
    n_gates = network.gate_count
    terminals = len(network.inputs) + len(network.outputs)
    if terminals_per_gate is None:
        total_pins = sum(network.gate(name).fanin_count + 1
                         for name in network.logic_gates)
        terminals_per_gate = total_pins / max(n_gates, 1)
    if n_gates < 2:
        return RentParameters(terminals_per_gate=terminals_per_gate,
                              exponent=0.6)
    exponent = math.log(max(terminals, 1.0) / terminals_per_gate) \
        / math.log(n_gates)
    exponent = min(max(exponent, 0.1), 0.9)
    return RentParameters(terminals_per_gate=terminals_per_gate,
                          exponent=exponent)
