"""Stochastic interconnect estimation.

The paper determines the capacitive load of every net with "a complete
stochastic wire-length distribution model, derived from first principles
through recursive application of Rent's rule and the principle of
conservation of I/Os" (§2, refs. [4][5] — Davis/De/Meindl). This
subpackage implements that substrate:

* :mod:`~repro.interconnect.rent` — Rent's rule parameters and fitting.
* :mod:`~repro.interconnect.wirelength` — the Davis a-priori point-to-point
  wire-length distribution (closed form in gate pitches) with mean,
  quantiles and deterministic sampling.
* :mod:`~repro.interconnect.parasitics` — conversion of net lengths into
  the per-branch ``C_INT``, ``R_INT`` and time-of-flight terms consumed by
  the energy and delay models.
"""

from repro.interconnect.rent import RentParameters, fit_rent_exponent
from repro.interconnect.wirelength import WireLengthDistribution
from repro.interconnect.parasitics import (
    NetParasitics,
    WireModel,
    network_parasitics,
)

__all__ = [
    "RentParameters",
    "fit_rent_exponent",
    "WireLengthDistribution",
    "NetParasitics",
    "WireModel",
    "network_parasitics",
]
