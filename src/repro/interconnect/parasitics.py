"""Per-net interconnect parasitics.

Bridges the stochastic wire-length model (lengths in gate pitches) to the
electrical quantities the paper's equations consume:

* ``C_INTij`` — interconnect capacitance of fanout branch ``j`` (A2, A3),
* ``R_INTij`` — branch resistance for the distributed-RC delay term (A3),
* ``L_INTij / v_ij`` — the time-of-flight term (A3).

Each driver net is split into per-branch segments, one per fanout, in the
order of ``network.fanouts(driver)``; primary-output nets with no internal
sinks get a single boundary branch. Two wire models are offered for the
ablation study: the Davis stochastic distribution (paper's choice) and a
fixed length-per-fanout model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple

from repro.errors import ReproError
from repro.interconnect.rent import RentParameters, fit_rent_exponent
from repro.interconnect.wirelength import WireLengthDistribution
from repro.netlist.network import LogicNetwork
from repro.technology.process import Technology


class WireModel(Enum):
    """How branch lengths are assigned."""

    #: Expected lengths from the Davis distribution (deterministic).
    STOCHASTIC_MEAN = "stochastic-mean"
    #: Lengths sampled per branch from the Davis distribution (seeded).
    STOCHASTIC_SAMPLED = "stochastic-sampled"
    #: Fixed one-pitch branch per fanout (ablation baseline).
    FIXED = "fixed"


@dataclass(frozen=True)
class NetParasitics:
    """Electrical parasitics of one driver net, split per fanout branch."""

    driver: str
    #: Branch lengths in metres, one per fanout (>= 1 entry).
    branch_lengths: Tuple[float, ...]
    #: Branch capacitances C_INTij (F).
    branch_caps: Tuple[float, ...]
    #: Branch resistances R_INTij (ohm).
    branch_resistances: Tuple[float, ...]
    #: Branch time-of-flight delays L_INTij / v (s).
    branch_flight_times: Tuple[float, ...]

    @property
    def total_cap(self) -> float:
        """Total net capacitance ``sum_j C_INTij`` (F)."""
        return sum(self.branch_caps)

    @property
    def total_length(self) -> float:
        return sum(self.branch_lengths)

    @property
    def branch_count(self) -> int:
        return len(self.branch_lengths)


def _branch_lengths_pitches(model: WireModel,
                            distribution: WireLengthDistribution,
                            fanout: int, rng: random.Random) -> Tuple[float, ...]:
    branches = max(fanout, 1)
    if model is WireModel.FIXED:
        return tuple(1.0 for _ in range(branches))
    if model is WireModel.STOCHASTIC_SAMPLED:
        return tuple(float(distribution.sample(rng)) for _ in range(branches))
    # STOCHASTIC_MEAN: expected net length split evenly over branches.
    total = distribution.net_length(branches)
    return tuple(total / branches for _ in range(branches))


def net_parasitics(tech: Technology, driver: str, lengths_pitches: Tuple[float, ...]) -> NetParasitics:
    """Convert branch lengths in gate pitches into a :class:`NetParasitics`."""
    if not lengths_pitches:
        raise ReproError(f"net {driver!r} must have at least one branch")
    lengths = tuple(length * tech.gate_pitch for length in lengths_pitches)
    caps = tuple(length * tech.wire_cap_per_meter for length in lengths)
    resistances = tuple(length * tech.wire_res_per_meter for length in lengths)
    flights = tuple(length / tech.wire_velocity for length in lengths)
    return NetParasitics(driver=driver, branch_lengths=lengths,
                         branch_caps=caps, branch_resistances=resistances,
                         branch_flight_times=flights)


def network_parasitics(tech: Technology, network: LogicNetwork,
                       rent: RentParameters | None = None,
                       model: WireModel = WireModel.STOCHASTIC_MEAN,
                       seed: int = 0) -> Dict[str, NetParasitics]:
    """Parasitics for every driver net of ``network``.

    ``rent`` defaults to a fit of the network's own boundary statistics
    (clamped into the random-logic band). The returned dict is keyed by
    driver name; branch order matches ``network.fanouts(driver)`` (one
    boundary branch for sink-less primary outputs).
    """
    if rent is None:
        rent = fit_rent_exponent(network)
    distribution = WireLengthDistribution(max(network.gate_count, 1), rent)
    rng = random.Random(seed)
    result: Dict[str, NetParasitics] = {}
    for name in network.topological_order():
        fanout = len(network.fanouts(name))
        lengths = _branch_lengths_pitches(model, distribution, fanout, rng)
        result[name] = net_parasitics(tech, name, lengths)
    return result
