"""Davis a-priori point-to-point wire-length distribution.

Derived (Davis/De/Meindl, refs. [4][5] of the paper) by recursively
applying Rent's rule with conservation of I/Os on a square array of ``N``
gates. The expected number of point-to-point interconnects of length ``l``
(in gate pitches) has the closed form::

    region I  (1 <= l <= sqrt(N)):
        i(l) = (Gamma/2) * (l^3/3 - 2*sqrt(N)*l^2 + 2*N*l) * l^(2p-4)
    region II (sqrt(N) <= l <= 2*sqrt(N)):
        i(l) = (Gamma/6) * (2*sqrt(N) - l)^3 * l^(2p-4)

with ``p`` the Rent exponent and ``Gamma`` a normalization constant. We
only ever use the *shape* (normalized density, mean, quantiles, samples),
so ``Gamma`` is fixed by normalizing over the integer lengths
``1 .. 2*sqrt(N)``.

Lengths are in units of the average gate pitch; conversion to metres (and
then to farads/ohms/seconds) happens in
:mod:`repro.interconnect.parasitics`.
"""

from __future__ import annotations

import math
import random
from functools import lru_cache
from typing import List, Sequence, Tuple

from repro.errors import ReproError
from repro.interconnect.rent import RentParameters


class WireLengthDistribution:
    """Normalized point-to-point wire-length distribution for one design."""

    def __init__(self, n_gates: int,
                 rent: RentParameters | None = None):
        if n_gates < 1:
            raise ReproError(f"n_gates must be >= 1, got {n_gates}")
        self.n_gates = n_gates
        self.rent = rent or RentParameters.random_logic()
        self._lengths, self._pmf = self._build_pmf()
        self._cdf = self._build_cdf()

    # --- construction -----------------------------------------------------

    def _density(self, length: float) -> float:
        """Unnormalized i(l); zero outside (0, 2*sqrt(N)]."""
        n = float(self.n_gates)
        side = math.sqrt(n)
        if length <= 0.0 or length > 2.0 * side:
            return 0.0
        power = length ** (2.0 * self.rent.exponent - 4.0)
        if length <= side:
            polynomial = (length ** 3 / 3.0
                          - 2.0 * side * length ** 2
                          + 2.0 * n * length)
            value = 0.5 * polynomial * power
        else:
            value = (2.0 * side - length) ** 3 * power / 6.0
        return max(value, 0.0)

    def _build_pmf(self) -> Tuple[Tuple[int, ...], Tuple[float, ...]]:
        max_length = max(int(math.ceil(2.0 * math.sqrt(self.n_gates))), 1)
        lengths = tuple(range(1, max_length + 1))
        raw = [self._density(float(length)) for length in lengths]
        total = sum(raw)
        if total <= 0.0:
            # Degenerate (N = 1): every wire is one pitch long.
            return (1,), (1.0,)
        return lengths, tuple(value / total for value in raw)

    def _build_cdf(self) -> Tuple[float, ...]:
        cumulative = 0.0
        cdf: List[float] = []
        for probability in self._pmf:
            cumulative += probability
            cdf.append(cumulative)
        cdf[-1] = 1.0
        return tuple(cdf)

    # --- queries -------------------------------------------------------------

    @property
    def lengths(self) -> Tuple[int, ...]:
        """Support of the distribution (gate pitches)."""
        return self._lengths

    @property
    def pmf(self) -> Tuple[float, ...]:
        """Normalized probability of each support length."""
        return self._pmf

    def probability(self, length: int) -> float:
        if length < 1 or length > self._lengths[-1]:
            return 0.0
        return self._pmf[length - 1]

    def mean_length(self) -> float:
        """Expected point-to-point length (gate pitches)."""
        return sum(length * probability
                   for length, probability in zip(self._lengths, self._pmf))

    def quantile(self, fraction: float) -> int:
        """Smallest length whose CDF reaches ``fraction``."""
        if not 0.0 <= fraction <= 1.0:
            raise ReproError(f"fraction must be in [0, 1], got {fraction}")
        for length, cumulative in zip(self._lengths, self._cdf):
            if cumulative >= fraction:
                return length
        return self._lengths[-1]

    def sample(self, rng: random.Random) -> int:
        """Draw one point-to-point length."""
        roll = rng.random()
        for length, cumulative in zip(self._lengths, self._cdf):
            if roll < cumulative:
                return length
        return self._lengths[-1]

    def net_length(self, fanout: int, sharing: float = 0.75) -> float:
        """Expected total length of a ``fanout``-sink net (gate pitches).

        Multi-sink nets share trunk segments, so the total routed length
        grows sublinearly with fanout; ``sharing`` < 1 scales the
        incremental branches (a Steiner-tree sharing factor). ``fanout=0``
        (an unconnected primary output) still gets one pitch of boundary
        wiring.
        """
        if fanout < 0:
            raise ReproError(f"fanout must be >= 0, got {fanout}")
        if not 0.0 < sharing <= 1.0:
            raise ReproError(f"sharing must be in (0, 1], got {sharing}")
        mean = self.mean_length()
        if fanout == 0:
            return mean
        return mean * (1.0 + sharing * (fanout - 1))


@lru_cache(maxsize=64)
def distribution_for(n_gates: int, terminals_per_gate: float,
                     exponent: float) -> WireLengthDistribution:
    """Cached distribution lookup keyed by its defining scalars."""
    rent = RentParameters(terminals_per_gate=terminals_per_gate,
                          exponent=exponent)
    return WireLengthDistribution(n_gates, rent)
