"""Optimization-as-a-service: the resilient serving layer.

This package turns the batch optimizer into a long-running service
built from the robustness substrate of the lower layers:

* :mod:`repro.serve.journal` — the write-ahead job journal (append-only
  JSONL, fsynced per record, torn tails repaired on restart);
* :mod:`repro.serve.jobs` — the request/job model and the lifecycle
  state machine (``QUEUED → RUNNING → {DONE, DEGRADED, FAILED,
  CANCELLED, QUARANTINED}``) replayable from the journal;
* :mod:`repro.serve.admission` — the bounded priority queue with
  labeled ``ServiceOverloaded`` rejection;
* :mod:`repro.serve.cache` — the content-addressed, integrity-checked,
  LRU-bounded result cache;
* :mod:`repro.serve.service` — :class:`OptimizationService`, the daemon
  composing all of the above on the supervised pool;
* :mod:`repro.serve.client` — the file-protocol client used by
  ``repro submit`` / ``repro jobs``.

See ``docs/serving.md`` for the operational story.
"""

from repro.serve.admission import AdmissionQueue
from repro.serve.cache import ResultCache
from repro.serve.jobs import (Job, JobRequest, JOB_STATES, TERMINAL_STATES,
                              replay, request_fingerprint,
                              search_fingerprint_for, transition)
from repro.serve.journal import JobJournal, JournalDamage
from repro.serve.service import OptimizationService

__all__ = [
    "AdmissionQueue",
    "Job",
    "JobRequest",
    "JobJournal",
    "JournalDamage",
    "JOB_STATES",
    "OptimizationService",
    "ResultCache",
    "TERMINAL_STATES",
    "replay",
    "request_fingerprint",
    "search_fingerprint_for",
    "transition",
]
